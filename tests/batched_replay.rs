//! Batched replay oracle (DESIGN.md §14): scalar warm replay is the
//! ground truth, batching is purely an amortization.
//!
//! - B=1 batched replay must be *byte-identical* to the scalar warm path:
//!   same output bits, same `ReplayProfile` counters, same receipt bytes
//!   (so the receipt chain is indistinguishable).
//! - B-way batched replay must be bitwise identical to B sequential warm
//!   replays of the same inputs, across every zoo network, with the batch
//!   receipt committing to the per-lane inputs and concatenated outputs.

use grt_core::replay::{workload_weights, Replayer};
use grt_core::session::{RecordSession, RecorderMode};
use grt_ml::reference::test_input;
use std::rc::Rc;

fn rig(spec: &grt_ml::NetworkSpec) -> (RecordSession, grt_core::session::RecordOutcome) {
    let mut s = RecordSession::new(
        grt_gpu::GpuSku::mali_g71_mp8(),
        grt_net::NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let out = s.record(spec).expect("record");
    (s, out)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn f32_bytes(v: &[f32]) -> Vec<u8> {
    v.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// A batch of one *is* the scalar warm path: outputs, profile counters,
/// and the emitted receipt must all be byte-identical on every network.
#[test]
fn batch_of_one_is_byte_identical_to_scalar_warm_replay() {
    for spec in grt_ml::zoo::all_benchmarks() {
        let (s, out) = rig(&spec);
        let key = s.recording_key();
        let mut replayer = Replayer::new(&s.client, Rc::new(grt_lint::Linter::new()));
        let weights = workload_weights(&spec);
        let compiled = replayer.compile_signed(&out.recording, &key).unwrap();
        let input = test_input(&spec, 0xB1);

        // Warm both paths once so neither pays the first-replay TLB cold
        // misses the other skipped.
        replayer
            .replay_compiled(&compiled, &input, &weights)
            .unwrap();
        let (scalar, _) = replayer
            .replay_compiled(&compiled, &input, &weights)
            .unwrap();
        let scalar_profile = replayer.last_profile();
        let scalar_receipt = replayer.last_receipt().unwrap().to_bytes();

        let (batched, _) = replayer
            .replay_compiled_batch(&compiled, std::slice::from_ref(&input), &weights)
            .unwrap();
        let batch_profile = replayer.last_profile();
        let batch_receipt = replayer.last_receipt().unwrap().to_bytes();

        assert_eq!(batched.len(), 1, "{}: one input, one output", spec.name);
        assert_eq!(
            bits(&scalar),
            bits(&batched[0]),
            "{}: B=1 output bits",
            spec.name
        );
        assert_eq!(
            scalar_profile, batch_profile,
            "{}: B=1 ReplayProfile",
            spec.name
        );
        assert_eq!(
            scalar_receipt, batch_receipt,
            "{}: B=1 receipt bytes",
            spec.name
        );
    }
}

/// B-way batched replay is bitwise identical to B sequential warm
/// replays, for a per-network randomized B ∈ {2, 4, 8}, and the single
/// batch receipt verifies against the staged inputs and the concatenated
/// outputs.
#[test]
fn batched_replay_matches_sequential_warm_replays() {
    for (i, spec) in grt_ml::zoo::all_benchmarks().into_iter().enumerate() {
        let b = [2usize, 4, 8][(i + spec.name.len()) % 3];
        let (s, out) = rig(&spec);
        let key = s.recording_key();
        let mut replayer = Replayer::new(&s.client, Rc::new(grt_lint::Linter::new()));
        let weights = workload_weights(&spec);
        let compiled = replayer.compile_signed(&out.recording, &key).unwrap();
        let inputs: Vec<Vec<f32>> = (0..b)
            .map(|j| test_input(&spec, 0xBA7C_0000 ^ (i as u64) << 8 ^ j as u64))
            .collect();

        let sequential: Vec<Vec<f32>> = inputs
            .iter()
            .map(|input| {
                replayer
                    .replay_compiled(&compiled, input, &weights)
                    .unwrap()
                    .0
            })
            .collect();

        let (batched, _) = replayer
            .replay_compiled_batch(&compiled, &inputs, &weights)
            .unwrap();
        assert_eq!(batched.len(), b, "{}: lane count", spec.name);
        for (lane, (seq, bat)) in sequential.iter().zip(&batched).enumerate() {
            assert_eq!(
                bits(seq),
                bits(bat),
                "{}: lane {lane} of B={b} must match its sequential replay",
                spec.name
            );
        }

        // One receipt covers the batch: input digest commits to the lane
        // vector, output digest to the lane outputs in order.
        let receipt = replayer.last_receipt().unwrap().clone();
        assert!(receipt.verify(grt_core::session::PROVISIONING_SECRET));
        let input_lanes: Vec<Vec<u8>> = inputs.iter().map(|v| f32_bytes(v)).collect();
        let concat: Vec<u8> = batched.iter().flat_map(|v| f32_bytes(v)).collect();
        grt_attest::verify_batch_receipt_data(&receipt, &input_lanes, &concat)
            .expect("batch receipt data");
    }
}

/// Batch geometry violations are rejected before any device state is
/// touched: empty batches, oversized batches, and mis-shaped lanes.
#[test]
fn bad_batch_geometry_is_rejected() {
    let spec = grt_ml::zoo::mnist();
    let (s, out) = rig(&spec);
    let key = s.recording_key();
    let mut replayer = Replayer::new(&s.client, Rc::new(grt_lint::Linter::new()));
    let weights = workload_weights(&spec);
    let compiled = replayer.compile_signed(&out.recording, &key).unwrap();

    let empty: Vec<Vec<f32>> = Vec::new();
    assert!(matches!(
        replayer.replay_compiled_batch(&compiled, &empty, &weights),
        Err(grt_core::replay::ReplayError::BadInput)
    ));

    let too_many: Vec<Vec<f32>> = vec![test_input(&spec, 1); grt_core::compiled::MAX_BATCH + 1];
    assert!(matches!(
        replayer.replay_compiled_batch(&compiled, &too_many, &weights),
        Err(grt_core::replay::ReplayError::BadInput)
    ));

    let mut lanes = vec![test_input(&spec, 1), test_input(&spec, 2)];
    lanes[1].pop();
    assert!(matches!(
        replayer.replay_compiled_batch(&compiled, &lanes, &weights),
        Err(grt_core::replay::ReplayError::BadInput)
    ));
}
