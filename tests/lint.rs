//! Adversarial corpus for the grt-lint static analyzer.
//!
//! Every test starts from a known-good MNIST recording and applies one
//! surgical mutation — the kind of recording a compromised cloud stack
//! could ship — then asserts the analyzer flags it with *exactly* the
//! intended rule (no collateral diagnostics from other rules, which would
//! hint the rules overlap or misattribute). A final pair of tests pins the
//! other direction: all six zoo networks lint clean (no false positives),
//! and the JSON report is byte-identical across runs (auditable evidence).

use grt_core::recording::{Event, Recording, SignedRecording};
use grt_core::session::{RecordSession, RecorderMode};
use grt_gpu::regs::{job_control as jc, mmu_control as mc};
use grt_gpu::GpuSku;
use grt_lint::{Linter, Rule, Severity};
use grt_net::NetConditions;

fn record(spec: &grt_ml::NetworkSpec) -> (RecordSession, SignedRecording) {
    let mut s = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let out = s.record(spec).expect("record");
    (s, out.recording)
}

fn mnist_recording() -> Recording {
    let (s, signed) = record(&grt_ml::zoo::mnist());
    signed.verify_and_parse(&s.recording_key()).expect("parse")
}

fn lint(rec: &Recording) -> grt_lint::LintReport {
    let spec = grt_ml::zoo::mnist();
    Linter::new().lint(rec, &GpuSku::mali_g71_mp8(), Some(&spec))
}

/// The mutated recording fails, and every Error carries the expected rule.
/// Event-stream rules additionally anchor at least one diagnostic to a
/// concrete event index; header-level findings (like R4 slot overlaps,
/// detected before the event loop) legitimately have no anchor.
fn assert_trips_exactly(rec: &Recording, rule: Rule) {
    let report = lint(rec);
    assert!(!report.passed(), "{} mutation slipped through", rule.id());
    let errors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(!errors.is_empty());
    for d in &errors {
        assert_eq!(
            d.rule.id(),
            rule.id(),
            "expected only {} errors, got {}: {}",
            rule.id(),
            d.rule.id(),
            d.message
        );
    }
    if rule != Rule::R4SlotShape {
        assert!(
            errors.iter().any(|d| d.event.is_some()),
            "no error is anchored to an event index"
        );
    }
}

#[test]
fn r1_out_of_whitelist_register_write() {
    let mut rec = mnist_recording();
    rec.events.push(Event::RegWrite {
        offset: 0x4000, // beyond every register window
        value: 0xDEAD,
    });
    assert_trips_exactly(&rec, Rule::R1RegisterWhitelist);
}

#[test]
fn r1_malformed_gpu_command_value() {
    let mut rec = mnist_recording();
    let cmd = grt_gpu::regs::gpu_control::GPU_COMMAND;
    let w = rec
        .events
        .iter_mut()
        .find_map(|e| match e {
            Event::RegWrite { offset, value } if *offset == cmd => Some(value),
            _ => None,
        })
        .expect("a GPU_COMMAND write");
    *w = 0xFF; // not a defined command encoding
    assert_trips_exactly(&rec, Rule::R1RegisterWhitelist);
}

#[test]
fn r2_page_table_root_outside_carveout() {
    let mut rec = mnist_recording();
    // Redirect the staged AS0 translation-table base to a page-aligned
    // address beyond the client carveout; the AS_COMMAND UPDATE latch is
    // where reachability is judged.
    let transtab_lo = mc::as_base(0) + mc::AS_TRANSTAB_LO;
    let w = rec
        .events
        .iter_mut()
        .find_map(|e| match e {
            Event::RegWrite { offset, value } if *offset == transtab_lo && *value != 0 => {
                Some(value)
            }
            _ => None,
        })
        .expect("a TRANSTAB_LO write");
    *w = 0x0800_0000; // 128 MiB: past the 96 MiB carveout, still page-aligned
    assert_trips_exactly(&rec, Rule::R2PageTableReachability);
}

#[test]
fn r3_poll_with_zero_iteration_budget() {
    let mut rec = mnist_recording();
    let m = rec
        .events
        .iter_mut()
        .find_map(|e| match e {
            Event::Poll { max_iters, .. } => Some(max_iters),
            _ => None,
        })
        .expect("a poll");
    *m = 0; // can never terminate successfully
    assert_trips_exactly(&rec, Rule::R3Termination);
}

#[test]
fn r3_poll_with_absurd_iteration_budget() {
    let mut rec = mnist_recording();
    let m = rec
        .events
        .iter_mut()
        .find_map(|e| match e {
            Event::Poll { max_iters, .. } => Some(max_iters),
            _ => None,
        })
        .expect("a poll");
    *m = u32::MAX; // a denial-of-service budget
    assert_trips_exactly(&rec, Rule::R3Termination);
}

#[test]
fn r3_wait_for_an_interrupt_nothing_raises() {
    let mut rec = mnist_recording();
    // Drop every job submission: the recorded Job-line waits now wait for
    // interrupts with no recorded raiser. (Also exercised end-to-end via
    // the replayer gate in crates/core/tests/lint_gate.rs.)
    let js_command = jc::slot_base(0) + jc::JS_COMMAND;
    rec.events
        .retain(|e| !matches!(e, Event::RegWrite { offset, .. } if *offset == js_command));
    assert_trips_exactly(&rec, Rule::R3Termination);
}

#[test]
fn r4_overlapping_data_slots() {
    let mut rec = mnist_recording();
    // Alias the first weight slot onto the input slot: replay would let
    // attacker-controlled input masquerade as model weights.
    rec.weights[0].pa = rec.input.pa;
    assert_trips_exactly(&rec, Rule::R4SlotShape);
}

#[test]
fn r5_double_job_submission_without_sync() {
    let mut rec = mnist_recording();
    let js_command = jc::slot_base(0) + jc::JS_COMMAND;
    let first_start = rec
        .events
        .iter()
        .position(
            |e| matches!(e, Event::RegWrite { offset, value } if *offset == js_command && *value == jc::JS_CMD_START),
        )
        .expect("a job start");
    let dup = rec.events[first_start].clone();
    rec.events.insert(first_start, dup);
    assert_trips_exactly(&rec, Rule::R5JobQueueDiscipline);
}

#[test]
fn r6_shuffled_layer_indices() {
    let mut rec = mnist_recording();
    let idx = rec
        .events
        .iter_mut()
        .find_map(|e| match e {
            Event::BeginLayer { index } => Some(index),
            _ => None,
        })
        .expect("a layer boundary");
    *idx = 7; // MNIST's first boundary must be layer 0
    assert_trips_exactly(&rec, Rule::R6LayerStructure);
}

/// R7: displacing the input slot elsewhere in the carveout keeps every
/// structural rule happy (in-bounds, disjoint, spec-consistent length) but
/// leaves the first layer's reads uncovered by any definition — the
/// recorded program would consume bytes the client never injected.
#[test]
fn r7_displaced_input_slot_breaks_dataflow() {
    let mut rec = mnist_recording();
    rec.input.pa = 0x0580_0000;
    assert_trips_exactly(&rec, Rule::R7DataflowIntegrity);
}

/// R8: repointing the first chain head into unmapped VA space. The write
/// itself is whitelisted (JS_HEAD values are unconstrained) and the page
/// tables are untouched, so R1/R2 stay silent — only the interval analysis
/// sees that the descriptor fetch cannot resolve.
#[test]
fn r8_chain_head_into_unmapped_va() {
    let mut rec = mnist_recording();
    let span = jc::slot_base(1) - jc::slot_base(0);
    let head = rec
        .events
        .iter_mut()
        .find_map(|e| match e {
            Event::RegWrite { offset, value }
                if (jc::slot_base(0)..jc::slot_base(16)).contains(offset)
                    && (*offset - jc::slot_base(0)) % span == jc::JS_HEAD_LO =>
            {
                Some(value)
            }
            _ => None,
        })
        .expect("a JS_HEAD_LO write");
    *head = 0x3FF0_0000; // far outside every mapped VA region
    assert_trips_exactly(&rec, Rule::R8AddressIntervals);
}

/// R9: every poll individually respects R3's per-poll spin cap, but the
/// recording's worst-case total blows the SKU envelope — the attack R3
/// cannot see and R9 exists for.
#[test]
fn r9_poll_total_exceeds_envelope() {
    let mut rec = mnist_recording();
    for e in &mut rec.events {
        if let Event::Poll { max_iters, .. } = e {
            *max_iters = 9_999; // under the 10k per-poll cap
        }
    }
    assert_trips_exactly(&rec, Rule::R9CostEnvelope);
}

/// The replayer front-door enforces the same verdict: a recording the
/// analyzer rejects never reaches event execution.
#[test]
fn replayer_refuses_what_the_analyzer_rejects() {
    use grt_core::replay::{workload_weights, ReplayError, Replayer};
    let (s, signed) = record(&grt_ml::zoo::mnist());
    let key = s.recording_key();
    let mut rec = signed.verify_and_parse(&key).unwrap();
    rec.events.push(Event::RegWrite {
        offset: 0x4000,
        value: 0xDEAD,
    });
    let evil = SignedRecording::sign(&rec, &key);
    let spec = grt_ml::zoo::mnist();
    let mut r = Replayer::new(&s.client, std::rc::Rc::new(Linter::new()));
    let err = r
        .replay(
            &evil,
            &key,
            &grt_ml::reference::test_input(&spec, 0),
            &workload_weights(&spec),
        )
        .unwrap_err();
    assert!(matches!(err, ReplayError::Rejected { ref rule, .. } if rule == "R1"));
}

/// The serving registry refuses the same recording at insert time, before
/// any device would ever fetch it.
#[test]
fn registry_refuses_what_the_analyzer_rejects() {
    use grt_core::session::{recording_trust_root, RecordError};
    use grt_serve::{RecordingRegistry, RegistryConfig};
    let mut registry = RecordingRegistry::new(RegistryConfig::new(4));
    let spec = grt_ml::zoo::mnist();
    let sku = GpuSku::mali_g71_mp8();
    let good = registry.fetch(&spec, &sku).expect("cold-start record");
    let key = recording_trust_root();
    let mut rec = good.recording.verify_and_parse(&key).unwrap();
    rec.events.push(Event::RegWrite {
        offset: 0x4000,
        value: 0xDEAD,
    });
    let evil = SignedRecording::sign(&rec, &key);
    // Ship it with a well-formed provenance record: the refusal below must
    // come from static analysis, not from the provenance gate.
    let prov = grt_attest::ProvenanceRecord::build(
        "external",
        spec.name,
        sku.gpu_id,
        grt_crypto::Sha256::digest(&evil.bytes),
        [0u8; 32],
        grt_core::session::PROVISIONING_SECRET,
    );
    let err = registry
        .insert_signed(&spec, &sku, evil, Some(prov))
        .unwrap_err();
    assert!(matches!(err, RecordError::Rejected { ref rule, .. } if rule == "R1"));
}

/// No false positives: every zoo network's golden recording lints clean —
/// zero diagnostics at Error severity — with the spec-aware checks on.
#[test]
fn all_zoo_recordings_lint_clean() {
    for spec in grt_ml::zoo::all_benchmarks() {
        let (s, signed) = record(&spec);
        let rec = signed.verify_and_parse(&s.recording_key()).unwrap();
        let report = Linter::new().lint(&rec, s.client.gpu.borrow().sku(), Some(&spec));
        assert!(
            report.passed(),
            "{} has lint errors:\n{}",
            spec.name,
            report.to_json()
        );
        // A passing recording is cost-certified: R9 publishes the budget.
        let budget = report
            .budget
            .unwrap_or_else(|| panic!("{} passed but carries no certified budget", spec.name));
        assert!(budget.macs > 0 && budget.poll_iters > 0);
    }
}

/// The JSON report is byte-identical across runs over the same recording:
/// lint verdicts are reproducible audit evidence, not heuristics.
#[test]
fn report_json_is_deterministic() {
    let rec = mnist_recording();
    let a = lint(&rec).to_json();
    let b = lint(&rec).to_json();
    assert_eq!(a, b);
    // And a fresh, independently recorded session agrees byte-for-byte
    // (recording itself is deterministic, so the report must be too).
    let rec2 = mnist_recording();
    let c = lint(&rec2).to_json();
    assert_eq!(a, c);
}
