//! Negative-path tests of the ReplayService GlobalPlatform protocol.
//!
//! A TA's command interface is attack surface: the normal world can send
//! any command id with any byte buffer. Every malformed invocation must
//! come back as a `GpStatus` error — never a panic, never silently
//! corrupted TEE state.

use grt_core::service::cmd;
use grt_core::session::{RecordOutcome, RecordSession, RecorderMode};
use grt_core::ReplayService;
use grt_gpu::GpuSku;
use grt_ml::reference::test_input;
use grt_net::NetConditions;
use grt_tee::{GpStatus, TeeHost};
use std::cell::RefCell;

fn recorded() -> (RecordSession, RecordOutcome) {
    let mut s = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let out = s.record(&grt_ml::zoo::mnist()).expect("record");
    (s, out)
}

fn service_host(s: &RecordSession) -> (TeeHost, u32) {
    let host = TeeHost::new(&s.client.monitor);
    host.register(Box::new(RefCell::new(ReplayService::new(
        &s.client,
        s.recording_key(),
        std::rc::Rc::new(grt_lint::Linter::new()),
    ))));
    let session = host.open_session("grt.replay").expect("open session");
    (host, session)
}

fn load_blob(out: &RecordOutcome) -> Vec<u8> {
    out.recording.wire_blob()
}

#[test]
fn unknown_command_ids_are_rejected() {
    let (s, _out) = recorded();
    let (host, session) = service_host(&s);
    for bad in [0u32, 5, 6, 99, 1 << 16, u32::MAX] {
        assert_eq!(
            host.invoke(session, bad, &[]),
            Err(GpStatus::BadParameters),
            "command id {bad} must be rejected"
        );
        // And with a non-empty payload, for good measure.
        assert_eq!(
            host.invoke(session, bad, &[0xAA; 64]),
            Err(GpStatus::BadParameters)
        );
    }
}

#[test]
fn truncated_load_recording_is_rejected() {
    let (s, out) = recorded();
    let (host, session) = service_host(&s);
    // Shorter than a signature alone.
    for len in [0usize, 1, 16, 32] {
        assert_eq!(
            host.invoke(session, cmd::LOAD_RECORDING, &vec![0u8; len]),
            Err(GpStatus::BadParameters),
            "{len}-byte load blob must be rejected"
        );
    }
    // Long enough to split, but the signature doesn't match the body.
    let blob = load_blob(&out);
    let truncated = &blob[..blob.len() - 40];
    assert!(truncated.len() > 33);
    assert_eq!(
        host.invoke(session, cmd::LOAD_RECORDING, truncated),
        Err(GpStatus::AccessDenied),
        "a truncated recording must fail signature verification"
    );
}

#[test]
fn malformed_float_buffers_are_rejected() {
    let (s, out) = recorded();
    let (host, session) = service_host(&s);
    host.invoke(session, cmd::LOAD_RECORDING, &load_blob(&out))
        .expect("valid load");
    // Input not a multiple of 4 bytes.
    assert_eq!(
        host.invoke(session, cmd::SET_INPUT, &[1, 2, 3]),
        Err(GpStatus::BadParameters)
    );
    // Weights header too short to carry a slot index.
    assert_eq!(
        host.invoke(session, cmd::SET_WEIGHTS, &[7]),
        Err(GpStatus::BadParameters)
    );
    // Weight payload not a multiple of 4 bytes.
    let mut p = 0u32.to_le_bytes().to_vec();
    p.extend_from_slice(&[1, 2, 3]);
    assert_eq!(
        host.invoke(session, cmd::SET_WEIGHTS, &p),
        Err(GpStatus::BadParameters)
    );
    // Slot index out of range.
    let p = u32::MAX.to_le_bytes().to_vec();
    assert_eq!(
        host.invoke(session, cmd::SET_WEIGHTS, &p),
        Err(GpStatus::BadParameters)
    );
}

#[test]
fn staging_before_load_is_rejected() {
    let (s, _out) = recorded();
    let (host, session) = service_host(&s);
    let input_bytes: Vec<u8> = test_input(&grt_ml::zoo::mnist(), 0)
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    // SET_INPUT with no recording staged.
    assert_eq!(
        host.invoke(session, cmd::SET_INPUT, &input_bytes),
        Err(GpStatus::BadParameters)
    );
    // SET_WEIGHTS with no recording staged (weight table is empty).
    let p = 0u32.to_le_bytes().to_vec();
    assert_eq!(
        host.invoke(session, cmd::SET_WEIGHTS, &p),
        Err(GpStatus::BadParameters)
    );
}

#[test]
fn run_requires_full_staging_in_order() {
    let (s, out) = recorded();
    let (host, session) = service_host(&s);
    // RUN before anything.
    assert_eq!(
        host.invoke(session, cmd::RUN, &[]),
        Err(GpStatus::BadParameters)
    );
    // RUN after load but before input.
    host.invoke(session, cmd::LOAD_RECORDING, &load_blob(&out))
        .expect("valid load");
    assert_eq!(
        host.invoke(session, cmd::RUN, &[]),
        Err(GpStatus::BadParameters)
    );
    // RUN after load + input but with weights unstaged.
    let input_bytes: Vec<u8> = test_input(&grt_ml::zoo::mnist(), 1)
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    host.invoke(session, cmd::SET_INPUT, &input_bytes)
        .expect("valid input");
    assert_eq!(
        host.invoke(session, cmd::RUN, &[]),
        Err(GpStatus::BadParameters)
    );
}

#[test]
fn failed_invocations_do_not_poison_the_session() {
    let (s, out) = recorded();
    let (host, session) = service_host(&s);
    // A barrage of garbage first...
    let _ = host.invoke(session, 99, &[0xFF; 8]);
    let _ = host.invoke(session, cmd::LOAD_RECORDING, &[0u8; 8]);
    let _ = host.invoke(session, cmd::SET_INPUT, &[1, 2, 3]);
    let _ = host.invoke(session, cmd::RUN, &[]);
    // ...then the legitimate protocol still works end to end.
    use grt_core::replay::workload_weights;
    let spec = grt_ml::zoo::mnist();
    let n = host
        .invoke(session, cmd::LOAD_RECORDING, &load_blob(&out))
        .expect("valid load after garbage");
    let weights = workload_weights(&spec);
    assert_eq!(
        u32::from_le_bytes([n[0], n[1], n[2], n[3]]) as usize,
        weights.len()
    );
    let input_bytes: Vec<u8> = test_input(&spec, 2)
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    host.invoke(session, cmd::SET_INPUT, &input_bytes)
        .expect("input stages");
    for (i, w) in weights.iter().enumerate() {
        let mut p = (i as u32).to_le_bytes().to_vec();
        p.extend(w.iter().flat_map(|v| v.to_le_bytes()));
        host.invoke(session, cmd::SET_WEIGHTS, &p).expect("weights");
    }
    let raw = host.invoke(session, cmd::RUN, &[]).expect("replay runs");
    assert!(!raw.is_empty());
}
