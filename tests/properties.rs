//! Property-based tests over the reproduction's core data structures and
//! invariants (proptest).

use grt_compress::{compress, decompress, DeltaCodec};
use grt_crypto::{hmac_sha256, ChaCha20, SecureChannel, Sha256};
use grt_driver::{PollCond, RegVal, SymSlot};
use grt_gpu::job::{JobDescriptor, JobStatus, DESC_SIZE};
use grt_gpu::mmu::{decode_pte, encode_pte, PteFlags};
use grt_gpu::shader::{ConvParams, ShaderOp};
use proptest::prelude::*;

proptest! {
    /// The range coder is lossless for arbitrary byte strings.
    #[test]
    fn range_coder_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = compress(&data);
        prop_assert_eq!(decompress(&packed).unwrap(), data);
    }

    /// The delta codec reconstructs `new` from `old` for arbitrary pairs
    /// of arbitrary lengths.
    #[test]
    fn delta_codec_round_trips(
        old in proptest::collection::vec(any::<u8>(), 0..2048),
        new in proptest::collection::vec(any::<u8>(), 0..2048),
        page_shift in 4usize..10,
    ) {
        let codec = DeltaCodec::new(1 << page_shift);
        let delta = codec.encode(&old, &new);
        prop_assert_eq!(codec.decode(&old, &delta).unwrap(), new);
    }

    /// Incremental SHA-256 equals one-shot regardless of chunking.
    #[test]
    fn sha256_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        cuts in proptest::collection::vec(0usize..1024, 0..6),
    ) {
        let mut h = Sha256::new();
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// HMAC differs whenever key or message differ (no trivial collisions
    /// in the tested domain).
    #[test]
    fn hmac_key_separation(key in any::<[u8; 16]>(), msg in any::<[u8; 16]>()) {
        let mut key2 = key;
        key2[0] ^= 1;
        prop_assert_ne!(hmac_sha256(&key, &msg), hmac_sha256(&key2, &msg));
    }

    /// ChaCha20 decrypts what it encrypts for arbitrary payloads.
    #[test]
    fn chacha_round_trips(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        mut data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let orig = data.clone();
        ChaCha20::new(&key, &nonce).apply(&mut data);
        ChaCha20::new(&key, &nonce).apply(&mut data);
        prop_assert_eq!(data, orig);
    }

    /// Sealed channel messages round-trip and never leak the plaintext
    /// verbatim (for plaintexts long enough to not appear by chance).
    #[test]
    fn secure_channel_round_trips(data in proptest::collection::vec(any::<u8>(), 16..256)) {
        let mut a = SecureChannel::from_secret(b"k");
        let mut b = SecureChannel::from_secret(b"k");
        let wire = a.seal(&data);
        prop_assert!(!wire.windows(data.len()).any(|w| w == &data[..]) || data.iter().all(|&x| x == data[0]));
        prop_assert_eq!(b.open(&wire).unwrap(), data);
    }

    /// Symbolic RegVal expressions evaluate exactly like direct u32
    /// arithmetic once their symbol is bound.
    #[test]
    fn symbolic_regval_matches_concrete(
        seed in any::<u32>(),
        and_m in any::<u32>(),
        or_m in any::<u32>(),
        xor_m in any::<u32>(),
        shl in 0u32..32,
        shr in 0u32..32,
    ) {
        let slot = SymSlot::new(1);
        let sym = ((((RegVal::symbolic(slot.clone()) & and_m) | or_m) ^ xor_m)
            .shl(shl))
            .shr(shr)
            .not();
        prop_assert!(sym.is_symbolic());
        slot.bind(seed);
        let expected = !((((seed & and_m) | or_m) ^ xor_m).wrapping_shl(shl)).wrapping_shr(shr);
        prop_assert_eq!(sym.eval(), Some(expected));
    }

    /// PTE encode/decode round-trips for every quirk and flag combination,
    /// and decoding under a flag-region-different quirk never yields the
    /// same permissions.
    #[test]
    fn pte_round_trip_and_quirk_separation(
        pa_page in 0u64..0x1_0000,
        quirk in any::<u8>(),
        read in any::<bool>(),
        write in any::<bool>(),
        execute in any::<bool>(),
    ) {
        let pa = pa_page << 12;
        let flags = PteFlags { read, write, execute };
        let e = encode_pte(pa, flags, quirk);
        let (pa2, f2) = decode_pte(e, quirk).unwrap();
        prop_assert_eq!(pa2, pa);
        prop_assert_eq!(f2, flags);
        // Flipping a permission-region quirk bit changes the decode.
        let wrong = quirk ^ 0x01;
        if let Some((_, f3)) = decode_pte(e, wrong) { prop_assert_ne!(f3, flags) }
    }

    /// Job descriptors round-trip through their wire format.
    #[test]
    fn job_descriptor_round_trips(
        shader_va in any::<u64>(),
        n_instrs in any::<u32>(),
        cost_us in any::<u32>(),
        next_va in any::<u64>(),
        status_w in 0u32..3,
    ) {
        let d = JobDescriptor {
            shader_va,
            n_instrs,
            cost_us,
            next_va,
            status: JobStatus::from_word(status_w),
        };
        let enc: [u8; DESC_SIZE] = d.encode();
        prop_assert_eq!(JobDescriptor::decode(&enc), Some(d));
    }

    /// Shader instructions round-trip through the 64-byte records.
    #[test]
    fn shader_op_round_trips(
        vas in any::<[u32; 4]>(),
        in_c in 1u32..64,
        hw in 1u32..64,
        out_c in 1u32..64,
        k in 1u32..8,
        stride in 1u32..4,
        pad in 0u32..4,
        tiles in 1u32..32,
    ) {
        let op = ShaderOp::Conv2d {
            in_va: vas[0] as u64,
            w_va: vas[1] as u64,
            b_va: vas[2] as u64,
            out_va: vas[3] as u64,
            p: ConvParams { in_c, in_h: hw, in_w: hw, out_c, k, stride, pad },
            tiles,
        };
        prop_assert_eq!(ShaderOp::decode(&op.encode()), Some(op));
    }

    /// Poll conditions partition the value space consistently.
    #[test]
    fn poll_cond_partition(raw in any::<u32>(), mask in any::<u32>()) {
        let zero = PollCond::MaskedZero.satisfied(raw, mask);
        let nonzero = PollCond::MaskedNonZero.satisfied(raw, mask);
        prop_assert!(zero != nonzero);
        prop_assert_eq!(PollCond::MaskedEq(raw & mask).satisfied(raw, mask), true);
    }

    /// Recording byte format round-trips arbitrary event mixes.
    #[test]
    fn recording_format_round_trips(
        offsets in proptest::collection::vec(any::<u32>(), 1..40),
        deltas in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..4),
    ) {
        use grt_core::recording::{DataSlot, Event, Recording};
        let mut events = Vec::new();
        for (i, off) in offsets.iter().enumerate() {
            if i % 3 == 0 {
                events.push(Event::RegWrite { offset: *off, value: off.wrapping_mul(3) });
            } else {
                events.push(Event::RegRead { offset: *off, value: !off, verify: i % 2 == 0 });
            }
        }
        for (i, d) in deltas.into_iter().enumerate() {
            events.push(Event::LoadMemDelta { pa: i as u64 * 4096, len: 4096, delta: d });
        }
        let rec = Recording {
            workload: "prop".into(),
            gpu_id: 7,
            input: DataSlot { pa: 1, len_elems: 2 },
            output: DataSlot { pa: 3, len_elems: 4 },
            weights: vec![DataSlot { pa: 5, len_elems: 6 }],
            events,
        };
        prop_assert_eq!(Recording::from_bytes(&rec.to_bytes()), Some(rec));
    }
}

// ---------------------------------------------------------------------
// Stateful properties: MMU mappings and memory-sync convergence.
// ---------------------------------------------------------------------

proptest! {
    /// Arbitrary sets of page mappings translate exactly, enumerate
    /// exactly, and leave unmapped neighbours faulting.
    #[test]
    fn mmu_mappings_are_exact(
        pages in proptest::collection::btree_set(0u64..512, 1..24),
        quirk in any::<u8>(),
    ) {
        use grt_gpu::mem::Memory;
        use grt_gpu::mmu::{map_page, AccessKind, PteFlags, Walker};
        use grt_gpu::PAGE_SIZE;

        let mut mem = Memory::new(8 << 20);
        let mut next = 1u64 << 20;
        let root = next;
        next += PAGE_SIZE as u64;
        let mut alloc = || { let pa = next; next += PAGE_SIZE as u64; pa };
        let va_base = 0x4000_0000u64;
        for &p in &pages {
            map_page(
                &mut mem,
                root,
                va_base + p * PAGE_SIZE as u64,
                0x10_0000 + p * PAGE_SIZE as u64,
                PteFlags::rw(),
                quirk,
                &mut alloc,
            )
            .unwrap();
        }
        let walker = Walker { root_pa: root, quirk };
        for &p in &pages {
            let va = va_base + p * PAGE_SIZE as u64 + 17;
            let pa = walker.translate(&mem, va, AccessKind::Read).unwrap();
            prop_assert_eq!(pa, 0x10_0000 + p * PAGE_SIZE as u64 + 17);
        }
        // A page just outside the mapped set faults.
        let unmapped = (0..513u64).find(|p| !pages.contains(p)).unwrap();
        prop_assert!(walker
            .translate(&mem, va_base + unmapped * PAGE_SIZE as u64, AccessKind::Read)
            .is_err());
        // Enumeration returns exactly the mapped set.
        let mapped: std::collections::BTreeSet<u64> = walker
            .mapped_pages(&mem)
            .into_iter()
            .map(|(va, _, _)| (va - va_base) / PAGE_SIZE as u64)
            .collect();
        prop_assert_eq!(mapped, pages);
    }

    /// Memory-sync convergence: after arbitrary cloud-side mutations of
    /// metastate followed by a down-sync, the client's metastate equals
    /// the cloud's; after arbitrary GPU-side mutations and an up-sync,
    /// the cloud's equals the client's. Repeatedly.
    #[test]
    fn memsync_converges_under_arbitrary_mutation(
        rounds in proptest::collection::vec(
            (proptest::collection::vec((0usize..8192, any::<u8>()), 0..16),
             proptest::collection::vec((0usize..4096, any::<u8>()), 0..8)),
            1..5,
        ),
    ) {
        use grt_core::client::GpuShim;
        use grt_core::memsync::{MemSync, SyncMode};
        use grt_driver::{Region, RegionTable, Usage};
        use grt_gpu::mmu::PteFlags;
        use grt_gpu::{Gpu, GpuSku, Memory, PAGE_SIZE};
        use grt_sim::{Clock, Stats};
        use grt_tee::{SecureMonitor, Tzasc};
        use std::cell::RefCell;
        use std::rc::Rc;

        let stats = Stats::new();
        let mut sync = MemSync::new(SyncMode::MetaOnly, &stats);
        sync.validation_traps = false; // Mutations here are the test driver, not the stack.
        let mut cloud = Memory::new(1 << 20);
        let mut regions = RegionTable::new();
        regions.insert(Region {
            va: 0x1000,
            pa: 0x4000,
            pages: 2,
            gpu_flags: PteFlags::rx(),
            usage: Usage::Shader,
            nominal_bytes: 2 * PAGE_SIZE as u64,
        });
        regions.insert(Region {
            va: 0x3000,
            pa: 0x8000,
            pages: 1,
            gpu_flags: PteFlags::rw(),
            usage: Usage::JobDescriptors,
            nominal_bytes: PAGE_SIZE as u64,
        });
        let clock = Clock::new();
        let client_mem = Rc::new(RefCell::new(Memory::new(1 << 20)));
        let gpu = Rc::new(RefCell::new(Gpu::new(GpuSku::mali_g71_mp8(), &clock, &client_mem)));
        let tzasc = Rc::new(Tzasc::new());
        let monitor = SecureMonitor::new(&clock);
        let mut shim = GpuShim::new(&clock, &gpu, &client_mem, &tzasc, &monitor, b"s");

        for (cloud_writes, gpu_writes) in rounds {
            // Cloud mutates its metastate (shader region), then down-syncs.
            for (off, val) in cloud_writes {
                cloud.restore_range(0x4000 + off as u64, &[val]);
            }
            sync.sync_down(&mut cloud, &regions, &mut shim, 0);
            prop_assert_eq!(
                shim.mem().borrow().dump_range(0x4000, 2 * PAGE_SIZE),
                cloud.dump_range(0x4000, 2 * PAGE_SIZE)
            );
            // GPU mutates the descriptor region, then up-syncs.
            for (off, val) in gpu_writes {
                shim.mem().borrow_mut().restore_range(0x8000 + off as u64, &[val]);
            }
            sync.sync_up(&mut shim, &regions, &mut cloud, 0);
            prop_assert_eq!(
                cloud.dump_range(0x8000, PAGE_SIZE),
                shim.mem().borrow().dump_range(0x8000, PAGE_SIZE)
            );
        }
    }
}
