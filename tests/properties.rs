//! Property-based tests over the reproduction's core data structures and
//! invariants.
//!
//! Cases are generated from the in-tree deterministic [`grt_sim::Rng`]
//! rather than proptest: the workspace must build and test with zero
//! network access, so no external dev-dependencies are allowed. Every
//! property runs a fixed number of seeded random cases; failures print the
//! case seed so a run can be reproduced exactly.

use grt_compress::{compress, decompress, DeltaCodec};
use grt_crypto::{hmac_sha256, ChaCha20, SecureChannel, Sha256};
use grt_driver::{PollCond, RegVal, SymSlot};
use grt_gpu::job::{JobDescriptor, JobStatus, DESC_SIZE};
use grt_gpu::mmu::{decode_pte, encode_pte, PteFlags};
use grt_gpu::shader::{ConvParams, ShaderOp};
use grt_sim::Rng;

/// Runs `n` independent cases of a property, each with its own
/// reproducibly-derived generator.
fn cases(n: u64, base_seed: u64, mut property: impl FnMut(&mut Rng)) {
    for case in 0..n {
        let seed = base_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = Rng::new(seed);
        property(&mut rng);
    }
}

fn rand_bytes(rng: &mut Rng, min: usize, max: usize) -> Vec<u8> {
    let len = min + rng.gen_range((max - min + 1) as u64) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn rand_array<const N: usize>(rng: &mut Rng) -> [u8; N] {
    let mut a = [0u8; N];
    rng.fill_bytes(&mut a);
    a
}

/// The range coder is lossless for arbitrary byte strings.
#[test]
fn range_coder_round_trips() {
    cases(96, 0xC0DE_0001, |rng| {
        let data = rand_bytes(rng, 0, 4095);
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
    });
}

/// The delta codec reconstructs `new` from `old` for arbitrary pairs of
/// arbitrary lengths.
#[test]
fn delta_codec_round_trips() {
    cases(96, 0xC0DE_0002, |rng| {
        let old = rand_bytes(rng, 0, 2047);
        let new = rand_bytes(rng, 0, 2047);
        let page_shift = 4 + rng.gen_range(6) as usize;
        let codec = DeltaCodec::new(1 << page_shift);
        let delta = codec.encode(&old, &new);
        assert_eq!(codec.decode(&old, &delta).unwrap(), new);
    });
}

/// Incremental SHA-256 equals one-shot regardless of chunking.
#[test]
fn sha256_chunking_invariant() {
    cases(128, 0xC0DE_0003, |rng| {
        let data = rand_bytes(rng, 0, 1023);
        let n_cuts = rng.gen_range(6) as usize;
        let mut cuts: Vec<usize> = (0..n_cuts)
            .map(|_| rng.gen_range(data.len() as u64 + 1) as usize)
            .collect();
        cuts.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        assert_eq!(h.finalize(), Sha256::digest(&data));
    });
}

/// HMAC differs whenever the key differs (no trivial collisions in the
/// tested domain).
#[test]
fn hmac_key_separation() {
    cases(128, 0xC0DE_0004, |rng| {
        let key: [u8; 16] = rand_array(rng);
        let msg: [u8; 16] = rand_array(rng);
        let mut key2 = key;
        key2[0] ^= 1;
        assert_ne!(hmac_sha256(&key, &msg), hmac_sha256(&key2, &msg));
    });
}

/// ChaCha20 decrypts what it encrypts for arbitrary payloads.
#[test]
fn chacha_round_trips() {
    cases(128, 0xC0DE_0005, |rng| {
        let key: [u8; 32] = rand_array(rng);
        let nonce: [u8; 12] = rand_array(rng);
        let mut data = rand_bytes(rng, 0, 511);
        let orig = data.clone();
        ChaCha20::new(&key, &nonce).apply(&mut data);
        ChaCha20::new(&key, &nonce).apply(&mut data);
        assert_eq!(data, orig);
    });
}

/// Sealed channel messages round-trip and never leak the plaintext
/// verbatim (for plaintexts long enough to not appear by chance).
#[test]
fn secure_channel_round_trips() {
    cases(96, 0xC0DE_0006, |rng| {
        let data = rand_bytes(rng, 16, 256);
        let mut a = SecureChannel::from_secret(b"k");
        let mut b = SecureChannel::from_secret(b"k");
        let wire = a.seal(&data);
        assert!(
            !wire.windows(data.len()).any(|w| w == &data[..]) || data.iter().all(|&x| x == data[0])
        );
        assert_eq!(b.open(&wire).unwrap(), data);
    });
}

/// Symbolic RegVal expressions evaluate exactly like direct u32
/// arithmetic once their symbol is bound.
#[test]
fn symbolic_regval_matches_concrete() {
    cases(256, 0xC0DE_0007, |rng| {
        let seed = rng.next_u32();
        let and_m = rng.next_u32();
        let or_m = rng.next_u32();
        let xor_m = rng.next_u32();
        let shl = rng.gen_range(32) as u32;
        let shr = rng.gen_range(32) as u32;
        let slot = SymSlot::new(1);
        let sym = ((((RegVal::symbolic(slot.clone()) & and_m) | or_m) ^ xor_m).shl(shl))
            .shr(shr)
            .not();
        assert!(sym.is_symbolic());
        slot.bind(seed);
        let expected = !((((seed & and_m) | or_m) ^ xor_m).wrapping_shl(shl)).wrapping_shr(shr);
        assert_eq!(sym.eval(), Some(expected));
    });
}

/// PTE encode/decode round-trips for every quirk and flag combination,
/// and decoding under a flag-region-different quirk never yields the same
/// permissions.
#[test]
fn pte_round_trip_and_quirk_separation() {
    cases(256, 0xC0DE_0008, |rng| {
        let pa = rng.gen_range(0x1_0000) << 12;
        let quirk = rng.next_u32() as u8;
        let flags = PteFlags {
            read: rng.chance(0.5),
            write: rng.chance(0.5),
            execute: rng.chance(0.5),
        };
        let e = encode_pte(pa, flags, quirk);
        let (pa2, f2) = decode_pte(e, quirk).unwrap();
        assert_eq!(pa2, pa);
        assert_eq!(f2, flags);
        // Flipping a permission-region quirk bit changes the decode.
        let wrong = quirk ^ 0x01;
        if let Some((_, f3)) = decode_pte(e, wrong) {
            assert_ne!(f3, flags);
        }
    });
}

/// Job descriptors round-trip through their wire format.
#[test]
fn job_descriptor_round_trips() {
    cases(256, 0xC0DE_0009, |rng| {
        let d = JobDescriptor {
            shader_va: rng.next_u64(),
            n_instrs: rng.next_u32(),
            cost_us: rng.next_u32(),
            next_va: rng.next_u64(),
            status: JobStatus::from_word(rng.gen_range(3) as u32),
        };
        let enc: [u8; DESC_SIZE] = d.encode();
        assert_eq!(JobDescriptor::decode(&enc), Some(d));
    });
}

/// Shader instructions round-trip through the 64-byte records.
#[test]
fn shader_op_round_trips() {
    cases(256, 0xC0DE_000A, |rng| {
        let op = ShaderOp::Conv2d {
            in_va: rng.next_u32() as u64,
            w_va: rng.next_u32() as u64,
            b_va: rng.next_u32() as u64,
            out_va: rng.next_u32() as u64,
            p: ConvParams {
                in_c: 1 + rng.gen_range(63) as u32,
                in_h: 1 + rng.gen_range(63) as u32,
                in_w: 1 + rng.gen_range(63) as u32,
                out_c: 1 + rng.gen_range(63) as u32,
                k: 1 + rng.gen_range(7) as u32,
                stride: 1 + rng.gen_range(3) as u32,
                pad: rng.gen_range(4) as u32,
            },
            tiles: 1 + rng.gen_range(31) as u32,
        };
        assert_eq!(ShaderOp::decode(&op.encode()), Some(op));
    });
}

/// Poll conditions partition the value space consistently.
#[test]
fn poll_cond_partition() {
    cases(512, 0xC0DE_000B, |rng| {
        let raw = rng.next_u32();
        let mask = rng.next_u32();
        let zero = PollCond::MaskedZero.satisfied(raw, mask);
        let nonzero = PollCond::MaskedNonZero.satisfied(raw, mask);
        assert!(zero != nonzero);
        assert!(PollCond::MaskedEq(raw & mask).satisfied(raw, mask));
    });
}

/// Recording byte format round-trips arbitrary event mixes.
#[test]
fn recording_format_round_trips() {
    use grt_core::recording::{DataSlot, Event, Recording};
    cases(64, 0xC0DE_000C, |rng| {
        let n_offsets = 1 + rng.gen_range(39) as usize;
        let mut events = Vec::new();
        for i in 0..n_offsets {
            let off = rng.next_u32();
            if i % 3 == 0 {
                events.push(Event::RegWrite {
                    offset: off,
                    value: off.wrapping_mul(3),
                });
            } else {
                events.push(Event::RegRead {
                    offset: off,
                    value: !off,
                    verify: i % 2 == 0,
                });
            }
        }
        for i in 0..rng.gen_range(4) as usize {
            events.push(Event::LoadMemDelta {
                pa: i as u64 * 4096,
                len: 4096,
                delta: rand_bytes(rng, 0, 63),
            });
        }
        let rec = Recording {
            workload: "prop".into(),
            gpu_id: 7,
            input: DataSlot {
                pa: 1,
                len_elems: 2,
            },
            output: DataSlot {
                pa: 3,
                len_elems: 4,
            },
            weights: vec![DataSlot {
                pa: 5,
                len_elems: 6,
            }],
            events,
        };
        assert_eq!(Recording::from_bytes(&rec.to_bytes()), Some(rec));
    });
}

/// Faults cost time, never bytes: for any eventually-healing fault
/// schedule (every generated partition, loss burst, and RTT spike window
/// closes), the record tunnel's retries, reorders, and checkpoint
/// resumes leave the produced recording byte-identical to a zero-fault
/// recording of the same network.
#[test]
fn healing_faults_never_change_recording_bytes() {
    use grt_core::session::{RecordSession, RecorderMode};
    use grt_gpu::GpuSku;
    use grt_ml::{LayerOp, LayerSpec, NetworkSpec};
    use grt_net::NetConditions;
    use grt_sim::{FaultPlan, FaultPlanConfig, SimTime};
    use std::rc::Rc;

    let spec = NetworkSpec {
        name: "PROP-TINY",
        input_len: 16,
        output_len: 10,
        layers: vec![
            LayerSpec {
                name: "fc",
                op: LayerOp::Fc {
                    in_dim: 16,
                    out_dim: 10,
                    relu: false,
                },
                splits: 1,
                setup_jobs: 1,
                nominal_macs: 0,
                nominal_data_bytes: 0,
                save_skip: false,
            },
            LayerSpec {
                name: "sm",
                op: LayerOp::Softmax { len: 10 },
                splits: 1,
                setup_jobs: 0,
                nominal_macs: 0,
                nominal_data_bytes: 0,
                save_skip: false,
            },
        ],
    };
    let record = |plan: Option<Rc<FaultPlan>>| {
        let mut s = RecordSession::new(
            GpuSku::mali_g71_mp8(),
            NetConditions::wifi(),
            RecorderMode::OursMDS,
        );
        if let Some(p) = &plan {
            s.attach_faults(p);
        }
        let out = s.record(&spec).expect("record survives healing faults");
        (out.recording.bytes, out.link_retries)
    };
    let (baseline, _) = record(None);
    // The fault window must overlap the record run for the property to
    // be non-vacuous; the tiny network records in under two virtual
    // seconds, so a two-second horizon covers it end to end.
    let fault_cfg = FaultPlanConfig {
        horizon: SimTime::from_secs(2),
        devices: 1,
        ..FaultPlanConfig::default()
    };
    let mut total_retries = 0u64;
    cases(12, 0xC0DE_000F, |rng| {
        let plan = Rc::new(FaultPlan::generate(rng.next_u64(), &fault_cfg));
        let (bytes, retries) = record(Some(plan));
        total_retries += retries;
        assert_eq!(bytes, baseline, "a healed fault changed recording bytes");
    });
    // At least some schedules must actually have engaged the retry
    // ladder, or the property was tested against a no-op.
    assert!(total_retries > 0, "no generated schedule caused a retry");
}

// ---------------------------------------------------------------------
// Stateful properties: MMU mappings and memory-sync convergence.
// ---------------------------------------------------------------------

/// Arbitrary sets of page mappings translate exactly, enumerate exactly,
/// and leave unmapped neighbours faulting.
#[test]
fn mmu_mappings_are_exact() {
    use grt_gpu::mem::Memory;
    use grt_gpu::mmu::{map_page, AccessKind, PteFlags, Walker};
    use grt_gpu::PAGE_SIZE;
    use std::collections::BTreeSet;

    cases(24, 0xC0DE_000D, |rng| {
        let quirk = rng.next_u32() as u8;
        let n_pages = 1 + rng.gen_range(23) as usize;
        let mut pages = BTreeSet::new();
        while pages.len() < n_pages {
            pages.insert(rng.gen_range(512));
        }

        let mut mem = Memory::new(8 << 20);
        let mut next = 1u64 << 20;
        let root = next;
        next += PAGE_SIZE as u64;
        let mut alloc = || {
            let pa = next;
            next += PAGE_SIZE as u64;
            pa
        };
        let va_base = 0x4000_0000u64;
        for &p in &pages {
            map_page(
                &mut mem,
                root,
                va_base + p * PAGE_SIZE as u64,
                0x10_0000 + p * PAGE_SIZE as u64,
                PteFlags::rw(),
                quirk,
                &mut alloc,
            )
            .unwrap();
        }
        let walker = Walker {
            root_pa: root,
            quirk,
            asn: 0,
        };
        for &p in &pages {
            let va = va_base + p * PAGE_SIZE as u64 + 17;
            let pa = walker.translate(&mem, va, AccessKind::Read).unwrap();
            assert_eq!(pa, 0x10_0000 + p * PAGE_SIZE as u64 + 17);
        }
        // A page just outside the mapped set faults.
        let unmapped = (0..513u64).find(|p| !pages.contains(p)).unwrap();
        assert!(walker
            .translate(
                &mem,
                va_base + unmapped * PAGE_SIZE as u64,
                AccessKind::Read
            )
            .is_err());
        // Enumeration returns exactly the mapped set.
        let mapped: BTreeSet<u64> = walker
            .mapped_pages(&mem)
            .into_iter()
            .map(|(va, _, _)| (va - va_base) / PAGE_SIZE as u64)
            .collect();
        assert_eq!(mapped, pages);
    });
}

/// Memory-sync convergence: after arbitrary cloud-side mutations of
/// metastate followed by a down-sync, the client's metastate equals the
/// cloud's; after arbitrary GPU-side mutations and an up-sync, the
/// cloud's equals the client's. Repeatedly.
#[test]
fn memsync_converges_under_arbitrary_mutation() {
    use grt_core::client::GpuShim;
    use grt_core::memsync::{MemSync, SyncMode};
    use grt_driver::{Region, RegionTable, Usage};
    use grt_gpu::mmu::PteFlags;
    use grt_gpu::{Gpu, GpuSku, Memory, PAGE_SIZE};
    use grt_sim::{Clock, Stats};
    use grt_tee::{SecureMonitor, Tzasc};
    use std::cell::RefCell;
    use std::rc::Rc;

    cases(8, 0xC0DE_000E, |rng| {
        let stats = Stats::new();
        let mut sync = MemSync::new(SyncMode::MetaOnly, &stats);
        sync.validation_traps = false; // Mutations here are the test driver, not the stack.
        let mut cloud = Memory::new(1 << 20);
        let mut regions = RegionTable::new();
        regions.insert(Region {
            va: 0x1000,
            pa: 0x4000,
            pages: 2,
            gpu_flags: PteFlags::rx(),
            usage: Usage::Shader,
            nominal_bytes: 2 * PAGE_SIZE as u64,
        });
        regions.insert(Region {
            va: 0x3000,
            pa: 0x8000,
            pages: 1,
            gpu_flags: PteFlags::rw(),
            usage: Usage::JobDescriptors,
            nominal_bytes: PAGE_SIZE as u64,
        });
        let clock = Clock::new();
        let client_mem = Rc::new(RefCell::new(Memory::new(1 << 20)));
        let gpu = Rc::new(RefCell::new(Gpu::new(
            GpuSku::mali_g71_mp8(),
            &clock,
            &client_mem,
        )));
        let tzasc = Rc::new(Tzasc::new());
        let monitor = SecureMonitor::new(&clock);
        let mut shim = GpuShim::new(&clock, &gpu, &client_mem, &tzasc, &monitor, b"s");

        let rounds = 1 + rng.gen_range(4) as usize;
        for _ in 0..rounds {
            // Cloud mutates its metastate (shader region), then down-syncs.
            for _ in 0..rng.gen_range(16) {
                let off = rng.gen_range(8192);
                cloud.restore_range(0x4000 + off, &[rng.next_u32() as u8]);
            }
            sync.sync_down(&mut cloud, &regions, &mut shim, 0).unwrap();
            assert_eq!(
                shim.mem().borrow().dump_range(0x4000, 2 * PAGE_SIZE),
                cloud.dump_range(0x4000, 2 * PAGE_SIZE)
            );
            // GPU mutates the descriptor region, then up-syncs.
            for _ in 0..rng.gen_range(8) {
                let off = rng.gen_range(4096);
                shim.mem()
                    .borrow_mut()
                    .restore_range(0x8000 + off, &[rng.next_u32() as u8]);
            }
            sync.sync_up(&mut shim, &regions, &mut cloud, 0);
            assert_eq!(
                cloud.dump_range(0x8000, PAGE_SIZE),
                shim.mem().borrow().dump_range(0x8000, PAGE_SIZE)
            );
        }
    });
}

/// The compiled replay path is event-for-event identical to the
/// interpreted path: for every zoo network and arbitrary inputs, both
/// paths produce bit-identical outputs, and the compiled path's event
/// count falls short of the interpreted one by exactly the dialog-window
/// steps fusion elided (DESIGN.md §9, §15 — compilation is
/// semantics-preserving; fusion only removes work).
#[test]
fn compiled_replay_equals_interpreted_on_all_networks() {
    use grt_core::replay::{workload_weights, Replayer};
    use grt_core::session::{RecordSession, RecorderMode};
    use grt_ml::reference::test_input;

    for spec in grt_ml::zoo::all_benchmarks() {
        let mut s = RecordSession::new(
            grt_gpu::GpuSku::mali_g71_mp8(),
            grt_net::NetConditions::wifi(),
            RecorderMode::OursMDS,
        );
        let out = s.record(&spec).expect("record");
        let key = s.recording_key();
        let mut replayer = Replayer::new(&s.client, std::rc::Rc::new(grt_lint::Linter::new()));
        let weights = workload_weights(&spec);
        let compiled = replayer
            .compile_signed(&out.recording, &key)
            .expect("vetted recording compiles");
        cases(3, 0xC0DE_0011 ^ spec.name.len() as u64, |rng| {
            let input = test_input(&spec, rng.next_u64());
            let (interp, _) = replayer
                .replay(&out.recording, &key, &input, &weights)
                .unwrap();
            let interp_events = replayer.last_profile().events;
            let (fast, _) = replayer
                .replay_compiled(&compiled, &input, &weights)
                .unwrap();
            assert_eq!(
                interp.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{}: outputs must be bit-identical",
                spec.name
            );
            // Fusion (DESIGN.md §15) elides whole dialog windows from the
            // compiled path; the exact delta is pinned by tests/fusion.rs.
            let fast_profile = replayer.last_profile();
            assert!(
                fast_profile.events <= interp_events,
                "{}: compiled path must not add events ({} > {})",
                spec.name,
                fast_profile.events,
                interp_events
            );
            assert_eq!(
                interp_events - fast_profile.events,
                fast_profile.fusion.steps_elided,
                "{}: event delta must equal elided steps",
                spec.name
            );
        });
    }
}
