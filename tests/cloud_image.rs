//! §6 cloud VM image: one image, many drivers, selected per client.

use grt_core::cloud::CloudVmImage;
use grt_core::replay::{workload_weights, Replayer};
use grt_core::session::{RecordSession, RecorderMode};
use grt_gpu::GpuSku;
use grt_ml::reference::{test_input, ReferenceNet};
use grt_net::NetConditions;

/// The standard image serves clients of every cataloged SKU end to end —
/// including the G72/G76 whose PTE quirks differ from the G71's.
#[test]
fn one_image_serves_every_sku_end_to_end() {
    let spec = grt_ml::zoo::mnist();
    let reference = ReferenceNet::new(spec.clone());
    for sku in [
        GpuSku::mali_g71_mp8(),
        GpuSku::mali_g71_mp4(),
        GpuSku::mali_g72_mp12(),
        GpuSku::mali_g76_mp10(),
    ] {
        let name = sku.name;
        let mut s = RecordSession::with_image(
            sku,
            NetConditions::wifi(),
            RecorderMode::OursMDS,
            RecorderMode::OursMDS.config(),
            CloudVmImage::standard(),
        )
        .expect("image supports the catalog");
        let out = s.record(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        let key = s.recording_key();
        let mut replayer = Replayer::new(&s.client, std::rc::Rc::new(grt_lint::Linter::new()));
        let input = test_input(&spec, 13);
        let weights = workload_weights(&spec);
        let (gpu_out, _) = replayer
            .replay(&out.recording, &key, &input, &weights)
            .unwrap_or_else(|e| panic!("{name}: replay: {e}"));
        let cpu_out = reference.infer(&input);
        for (a, b) in gpu_out.iter().zip(&cpu_out) {
            assert!((a - b).abs() < 1e-3, "{name} diverged");
        }
    }
}

/// An image without the client's devicetree refuses the session before
/// any GPU access happens.
#[test]
fn image_without_devicetree_refuses_client() {
    let image = CloudVmImage::with_devicetrees(vec![GpuSku::mali_g71_mp8()]);
    let err = RecordSession::with_image(
        GpuSku::mali_g76_mp10(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
        RecorderMode::OursMDS.config(),
        image,
    )
    .expect_err("must refuse");
    assert_eq!(err.gpu_id, GpuSku::mali_g76_mp10().gpu_id);
}

/// Devicetree selection drives real behavioural differences: recordings
/// made through the same image for different SKUs are not interchangeable.
#[test]
fn image_recordings_remain_sku_bound() {
    let spec = grt_ml::zoo::mnist();
    let mut g72 = RecordSession::new(
        GpuSku::mali_g72_mp12(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let out = g72.record(&spec).expect("record");
    let key = g72.recording_key();
    // Replaying the G72 recording on a G76 client fails the SKU gate.
    let clock = grt_sim::Clock::new();
    let stats = grt_sim::Stats::new();
    let g76 = grt_core::session::ClientDevice::new(GpuSku::mali_g76_mp10(), &clock, &stats, b"x");
    let mut replayer = Replayer::new(&g76, std::rc::Rc::new(grt_lint::Linter::new()));
    let err = replayer
        .replay(
            &out.recording,
            &key,
            &test_input(&spec, 0),
            &workload_weights(&spec),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        grt_core::replay::ReplayError::WrongSku { .. }
    ));
}

/// The VM measurement covers the devicetree set, so a client attesting
/// against the standard image detects a stripped-down (or augmented) one.
#[test]
fn measurement_detects_devicetree_tampering() {
    let standard = CloudVmImage::standard().measurement();
    let stripped = CloudVmImage::with_devicetrees(vec![GpuSku::mali_g71_mp8()]).measurement();
    assert_ne!(standard, stripped);
    let report = grt_crypto::AttestationReport::generate(b"prov", stripped, [1u8; 16]);
    assert!(!report.verify(b"prov", &standard, &[1u8; 16]));
}
