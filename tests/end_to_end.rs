//! End-to-end integration: the full GR-T pipeline across crates.
//!
//! Each test exercises cloud recording over a shaped link, signed
//! recording download, and in-TEE replay with real data — asserting the
//! replayed GPU computation equals the CPU reference.

use grt_core::replay::{workload_weights, Replayer};
use grt_core::session::{RecordSession, RecorderMode};
use grt_gpu::GpuSku;
use grt_ml::reference::{test_input, ReferenceNet};
use grt_ml::NetworkSpec;
use grt_net::NetConditions;

fn close(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() < 1e-3 * (1.0 + x.abs().max(y.abs())))
}

fn record_and_replay(spec: &NetworkSpec, mode: RecorderMode, conditions: NetConditions) {
    let mut session = RecordSession::new(GpuSku::mali_g71_mp8(), conditions, mode);
    let out = session.record(spec).expect("record");
    let key = session.recording_key();
    let mut replayer = Replayer::new(&session.client, std::rc::Rc::new(grt_lint::Linter::new()));
    let input = test_input(spec, 77);
    let weights = workload_weights(spec);
    let (gpu_out, delay) = replayer
        .replay(&out.recording, &key, &input, &weights)
        .expect("replay");
    let cpu_out = ReferenceNet::new(spec.clone()).infer(&input);
    assert!(
        close(&gpu_out, &cpu_out),
        "{} ({mode:?}): replay output diverges",
        spec.name
    );
    assert!(delay > grt_sim::SimTime::ZERO);
}

#[test]
fn mnist_all_recorder_modes_round_trip() {
    for mode in RecorderMode::ALL {
        record_and_replay(&grt_ml::zoo::mnist(), mode, NetConditions::wifi());
    }
}

#[test]
fn mnist_over_cellular() {
    record_and_replay(
        &grt_ml::zoo::mnist(),
        RecorderMode::OursMDS,
        NetConditions::cellular(),
    );
}

#[test]
fn squeezenet_full_pipeline() {
    record_and_replay(
        &grt_ml::zoo::squeezenet(),
        RecorderMode::OursMDS,
        NetConditions::wifi(),
    );
}

#[test]
fn resnet_skip_connections_survive_replay() {
    record_and_replay(
        &grt_ml::zoo::resnet12(),
        RecorderMode::OursMDS,
        NetConditions::wifi(),
    );
}

#[test]
fn alexnet_full_pipeline() {
    record_and_replay(
        &grt_ml::zoo::alexnet(),
        RecorderMode::OursMDS,
        NetConditions::wifi(),
    );
}

#[test]
fn one_recording_serves_many_inferences() {
    let spec = grt_ml::zoo::mnist();
    let mut session = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let out = session.record(&spec).expect("record");
    let key = session.recording_key();
    let mut replayer = Replayer::new(&session.client, std::rc::Rc::new(grt_lint::Linter::new()));
    let weights = workload_weights(&spec);
    let reference = ReferenceNet::new(spec.clone());
    for variant in 0..4 {
        let input = test_input(&spec, variant);
        let (gpu_out, _) = replayer
            .replay(&out.recording, &key, &input, &weights)
            .expect("replay");
        assert!(
            close(&gpu_out, &reference.infer(&input)),
            "variant {variant}"
        );
    }
}

#[test]
fn recording_survives_serialization_round_trip() {
    let spec = grt_ml::zoo::mnist();
    let mut session = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let out = session.record(&spec).expect("record");
    let key = session.recording_key();
    // Parse, re-serialize, re-sign: the replayer accepts the round trip.
    let rec = out.recording.verify_and_parse(&key).expect("parse");
    let rec2 = grt_core::recording::Recording::from_bytes(&rec.to_bytes()).expect("reparse");
    assert_eq!(rec, rec2);
    let resigned = grt_core::recording::SignedRecording::sign(&rec2, &key);
    let mut replayer = Replayer::new(&session.client, std::rc::Rc::new(grt_lint::Linter::new()));
    let input = test_input(&spec, 9);
    let weights = workload_weights(&spec);
    let (gpu_out, _) = replayer
        .replay(&resigned, &key, &input, &weights)
        .expect("replay reserialized recording");
    assert!(close(
        &gpu_out,
        &ReferenceNet::new(spec.clone()).infer(&input)
    ));
}

#[test]
fn warm_history_reduces_round_trips_without_breaking_replay() {
    let spec = grt_ml::zoo::mnist();
    let mut session = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let cold = session.record(&spec).expect("cold record");
    let warm = session.record(&spec).expect("warm record");
    assert!(
        warm.blocking_rtts < cold.blocking_rtts,
        "warm {} !< cold {}",
        warm.blocking_rtts,
        cold.blocking_rtts
    );
    // The warm recording is still self-contained.
    let key = session.recording_key();
    let mut replayer = Replayer::new(&session.client, std::rc::Rc::new(grt_lint::Linter::new()));
    let input = test_input(&spec, 3);
    let weights = workload_weights(&spec);
    let (gpu_out, _) = replayer
        .replay(&warm.recording, &key, &input, &weights)
        .expect("warm recording replays");
    assert!(close(
        &gpu_out,
        &ReferenceNet::new(spec.clone()).infer(&input)
    ));
}

#[test]
fn per_sku_recordings_differ() {
    let spec = grt_ml::zoo::mnist();
    let mut a = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let mut b = RecordSession::new(
        GpuSku::mali_g71_mp4(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let ra = a.record(&spec).expect("record mp8");
    let rb = b.record(&spec).expect("record mp4");
    let ka = a.recording_key();
    let kb = b.recording_key();
    let rec_a = ra.recording.verify_and_parse(&ka).unwrap();
    let rec_b = rb.recording.verify_and_parse(&kb).unwrap();
    assert_ne!(rec_a.gpu_id, rec_b.gpu_id);
    assert_ne!(
        rec_a.events, rec_b.events,
        "JIT output must be SKU-specific"
    );
}

#[test]
fn recording_persists_through_sealed_storage() {
    use grt_core::recording::SignedRecording;
    use grt_tee::SecureStorage;
    let spec = grt_ml::zoo::mnist();
    let mut session = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let out = session.record(&spec).expect("record");

    // The TEE seals the recording into untrusted flash (OP-TEE style).
    let storage = SecureStorage::new(b"device-huk-0042");
    storage.store("grt/recording/MNIST", &out.recording.to_file_bytes());

    // "Reboot": load from flash, unseal, verify, replay.
    let raw = storage.load("grt/recording/MNIST").expect("unseal");
    let restored = SignedRecording::from_file_bytes(&raw).expect("container");
    let key = session.recording_key();
    let mut replayer = Replayer::new(&session.client, std::rc::Rc::new(grt_lint::Linter::new()));
    let input = test_input(&spec, 2);
    let weights = workload_weights(&spec);
    let (gpu_out, _) = replayer
        .replay(&restored, &key, &input, &weights)
        .expect("replay from sealed storage");
    let cpu_out = ReferenceNet::new(spec.clone()).infer(&input);
    assert!(close(&gpu_out, &cpu_out));

    // A normal-world adversary flipping bits in flash is caught at unseal.
    let mut blob = storage.raw_blob("grt/recording/MNIST").unwrap();
    blob[100] ^= 1;
    storage.tamper_blob("grt/recording/MNIST", blob);
    assert!(storage.load("grt/recording/MNIST").is_err());
}

#[test]
fn one_session_records_multiple_workloads() {
    // §3.3: each record run is per client, per workload — but one cloud VM
    // (one session) serves the same client for several workloads in turn.
    let mut session = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let key = session.recording_key();
    let specs = [grt_ml::zoo::mnist(), grt_ml::zoo::squeezenet()];
    let mut recordings = Vec::new();
    for spec in &specs {
        recordings.push(session.record(spec).expect("record"));
    }
    // Both recordings replay correctly on the same client afterwards.
    let mut replayer = Replayer::new(&session.client, std::rc::Rc::new(grt_lint::Linter::new()));
    for (spec, out) in specs.iter().zip(&recordings) {
        let input = test_input(spec, 31);
        let weights = workload_weights(spec);
        let (gpu_out, _) = replayer
            .replay(&out.recording, &key, &input, &weights)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let cpu_out = ReferenceNet::new(spec.clone()).infer(&input);
        assert!(close(&gpu_out, &cpu_out), "{}", spec.name);
    }
    // History carried across workloads (the §7.3 methodology) keeps the
    // second workload's recording cheap despite being first-contact.
    assert!(recordings[1].blocking_rtts < 2 * recordings[1].net.total_jobs() as u64 + 600);
}

#[test]
fn naive_forwarding_violates_stack_timing_assumptions() {
    // §3.3: under naive per-access forwarding the GPU stack "constantly
    // throws exceptions" because job-completion latencies blow past its
    // watchdogs; GR-T's optimized recording stays within them.
    let spec = grt_ml::zoo::mnist();
    let mut naive = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::cellular(),
        RecorderMode::Naive,
    );
    naive.record(&spec).expect("record");
    assert!(
        naive.stats.get("driver.watchdog_violations") > 0,
        "naive cellular recording must trip the job watchdog"
    );
    let mut ours = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::cellular(),
        RecorderMode::OursMDS,
    );
    ours.record(&spec).expect("warm-up");
    let before = ours.stats.get("driver.watchdog_violations");
    ours.record(&spec).expect("record");
    assert_eq!(
        ours.stats.get("driver.watchdog_violations"),
        before,
        "full GR-T stays within the stack's timing assumptions"
    );
}
