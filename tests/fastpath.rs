//! Execution fast-path pinning: the TLB + page-run + blocked-kernel engine
//! must be bit-identical to the reference scalar kernels on every geometry
//! the model zoo uses (plus randomized ones), and TLB invalidation must
//! make page-table rewrites — whether by the driver, memsync's sync-down,
//! or a rollback restore — immediately visible to the next job.

use grt_gpu::mem::Accessor;
use grt_gpu::mmu::{map_page, Tlb, Walker};
use grt_gpu::regs::{gpu_control as gc, job_control as jc, mmu_control as mc};
use grt_gpu::shader::{execute_program, reference, ExecScratch};
use grt_gpu::{ConvParams, Gpu, GpuSku, JobDescriptor, JobStatus, Memory, PoolKind, ShaderOp};
use grt_gpu::{IrqLine, PAGE_SIZE};
use grt_sim::{Clock, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Deterministic pseudo-random f32 stream in roughly [-2, 2).
fn lcg(seed: u64) -> impl FnMut() -> f32 {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 40) as f32 / (1 << 22) as f32) - 2.0
    }
}

fn fill(n: usize, rng: &mut impl FnMut() -> f32) -> Vec<f32> {
    (0..n).map(|_| rng()).collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

const TILES: u32 = 8;

/// A walker/TLB rig over identity-mapped memory — the shader engine
/// without the device around it.
struct KernelRig {
    mem: Memory,
    walker: Walker,
    tlb: Tlb,
    scratch: ExecScratch,
}

const ARENA: u64 = 0x10_0000; // 1 MiB VA==PA arena start.
const ARENA_PAGES: u64 = 1024; // 4 MiB.
const IN_VA: u64 = ARENA;
const W_VA: u64 = ARENA + (1 << 20);
const B_VA: u64 = ARENA + (2 << 20);
const OUT_VA: u64 = ARENA + (3 << 20);
const SHADER_VA: u64 = ARENA + (3 << 20) + (1 << 19);

impl KernelRig {
    fn new() -> KernelRig {
        let mut mem = Memory::new(32 << 20);
        let root = 16 << 20;
        let mut next = root + PAGE_SIZE as u64;
        let mut alloc = || {
            let pa = next;
            next += PAGE_SIZE as u64;
            pa
        };
        for i in 0..ARENA_PAGES {
            let addr = ARENA + i * PAGE_SIZE as u64;
            map_page(
                &mut mem,
                root,
                addr,
                addr,
                grt_gpu::PteFlags::rwx(),
                0,
                &mut alloc,
            )
            .unwrap();
        }
        KernelRig {
            mem,
            walker: Walker {
                root_pa: root,
                quirk: 0,
                asn: 0,
            },
            tlb: Tlb::new(),
            scratch: ExecScratch::default(),
        }
    }

    fn write_f32s(&mut self, va: u64, vals: &[f32]) {
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.mem.write(va, &bytes, Accessor::Cpu).unwrap();
    }

    fn read_f32s(&self, va: u64, n: usize) -> Vec<f32> {
        self.mem
            .dump_range(va, n * 4)
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Runs a one-op program through the fast-path engine, exactly as a
    /// job would: fresh TLB (descriptor-boundary flush), bulk fetch,
    /// blocked kernels.
    fn exec(&mut self, op: &ShaderOp) {
        self.tlb.invalidate_all();
        self.mem
            .write(SHADER_VA, &op.encode(), Accessor::Cpu)
            .unwrap();
        execute_program(
            &mut self.mem,
            &self.walker,
            &mut self.tlb,
            &mut self.scratch,
            SHADER_VA,
            1,
            TILES,
            None,
        )
        .unwrap();
    }
}

/// Runs a conv through the engine and bit-compares to the scalar oracle.
fn check_conv(r: &mut KernelRig, p: &ConvParams, rng: &mut impl FnMut() -> f32) {
    let input = fill((p.in_c * p.in_h * p.in_w) as usize, rng);
    let weights = fill((p.out_c * p.in_c * p.k * p.k) as usize, rng);
    let bias = fill(p.out_c as usize, rng);
    r.write_f32s(IN_VA, &input);
    r.write_f32s(W_VA, &weights);
    r.write_f32s(B_VA, &bias);
    r.exec(&ShaderOp::Conv2d {
        in_va: IN_VA,
        w_va: W_VA,
        b_va: B_VA,
        out_va: OUT_VA,
        p: *p,
        tiles: TILES,
    });
    let want = reference::conv2d(&input, &weights, &bias, p);
    let got = r.read_f32s(OUT_VA, want.len());
    assert_eq!(bits(&got), bits(&want), "conv {p:?}");
}

fn check_matmul(
    r: &mut KernelRig,
    (m, k, n): (usize, usize, usize),
    with_bias: bool,
    rng: &mut impl FnMut() -> f32,
) {
    let a = fill(m * k, rng);
    let b = fill(k * n, rng);
    let bias = if with_bias {
        fill(n, rng)
    } else {
        vec![0.0; n]
    };
    r.write_f32s(IN_VA, &a);
    r.write_f32s(W_VA, &b);
    r.write_f32s(B_VA, &bias);
    r.exec(&ShaderOp::MatMul {
        a_va: IN_VA,
        b_va: W_VA,
        bias_va: if with_bias { B_VA } else { 0 },
        out_va: OUT_VA,
        m: m as u32,
        k: k as u32,
        n: n as u32,
        tiles: TILES,
    });
    let want = reference::matmul(&a, &b, &bias, m, k, n);
    let got = r.read_f32s(OUT_VA, want.len());
    assert_eq!(
        bits(&got),
        bits(&want),
        "matmul {m}x{k}x{n} bias={with_bias}"
    );
}

fn check_pool(
    r: &mut KernelRig,
    kind: PoolKind,
    (c, h, w, k, stride): (usize, usize, usize, usize, usize),
    rng: &mut impl FnMut() -> f32,
) {
    let input = fill(c * h * w, rng);
    r.write_f32s(IN_VA, &input);
    r.exec(&ShaderOp::Pool {
        in_va: IN_VA,
        out_va: OUT_VA,
        kind,
        c: c as u32,
        h: h as u32,
        w: w as u32,
        k: k as u32,
        stride: stride as u32,
    });
    let want = reference::pool(&input, kind, c, h, w, k, stride);
    let got = r.read_f32s(OUT_VA, want.len());
    assert_eq!(
        bits(&got),
        bits(&want),
        "pool {kind:?} {c}x{h}x{w} k{k} s{stride}"
    );
}

fn check_elementwise(r: &mut KernelRig, len: usize, rng: &mut impl FnMut() -> f32) {
    let x = fill(len, rng);
    let y = fill(len, rng);
    r.write_f32s(IN_VA, &x);
    r.write_f32s(W_VA, &y);
    r.exec(&ShaderOp::Relu {
        in_va: IN_VA,
        out_va: OUT_VA,
        len: len as u32,
    });
    assert_eq!(
        bits(&r.read_f32s(OUT_VA, len)),
        bits(&reference::relu(&x)),
        "relu len {len}"
    );
    r.exec(&ShaderOp::Add {
        a_va: IN_VA,
        b_va: W_VA,
        out_va: OUT_VA,
        len: len as u32,
    });
    assert_eq!(
        bits(&r.read_f32s(OUT_VA, len)),
        bits(&reference::add(&x, &y)),
        "add len {len}"
    );
    r.exec(&ShaderOp::Softmax {
        in_va: IN_VA,
        out_va: OUT_VA,
        len: len as u32,
    });
    assert_eq!(
        bits(&r.read_f32s(OUT_VA, len)),
        bits(&reference::softmax(&x)),
        "softmax len {len}"
    );
}

/// Every layer geometry in all six zoo networks, executed through the
/// fast path and bit-compared against the scalar reference kernels.
#[test]
fn fast_kernels_bit_identical_across_zoo_layer_geometries() {
    let mut r = KernelRig::new();
    for spec in grt_ml::zoo::all_benchmarks() {
        let mut rng = lcg(spec.layers.len() as u64 + spec.name.len() as u64);
        for layer in &spec.layers {
            match &layer.op {
                grt_ml::LayerOp::Conv { p, relu } => {
                    check_conv(&mut r, p, &mut rng);
                    if *relu {
                        let out_len = (p.out_c * p.out_h() * p.out_w()) as usize;
                        check_elementwise(&mut r, out_len.clamp(1, 4096), &mut rng);
                    }
                }
                grt_ml::LayerOp::Fc {
                    in_dim, out_dim, ..
                } => {
                    check_matmul(
                        &mut r,
                        (1, *in_dim as usize, *out_dim as usize),
                        true,
                        &mut rng,
                    );
                }
                grt_ml::LayerOp::Pool {
                    kind,
                    c,
                    h,
                    w,
                    k,
                    stride,
                } => {
                    check_pool(
                        &mut r,
                        *kind,
                        (
                            *c as usize,
                            *h as usize,
                            *w as usize,
                            *k as usize,
                            *stride as usize,
                        ),
                        &mut rng,
                    );
                }
                grt_ml::LayerOp::Add { len } => {
                    check_elementwise(&mut r, (*len as usize).min(8192), &mut rng);
                }
                grt_ml::LayerOp::Softmax { len } => {
                    check_elementwise(&mut r, *len as usize, &mut rng);
                }
            }
        }
    }
}

/// Randomized shapes, strides, and paddings beyond what the zoo uses.
#[test]
fn fast_kernels_bit_identical_on_randomized_geometries() {
    let mut r = KernelRig::new();
    let mut rng = lcg(0xFA57_FA57);
    let mut istate: u64 = 0xD1CE_D1CE;
    let mut pick = move |lo: usize, hi: usize| {
        istate = istate
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lo + (istate >> 33) as usize % (hi - lo + 1)
    };
    for case in 0..24 {
        let k = pick(1, 5);
        let p = ConvParams {
            in_c: pick(1, 4) as u32,
            in_h: pick(k, k + 9) as u32,
            in_w: pick(k, k + 9) as u32,
            out_c: pick(1, 5) as u32,
            k: k as u32,
            stride: pick(1, 3) as u32,
            pad: pick(0, 2) as u32,
        };
        check_conv(&mut r, &p, &mut rng);
        check_matmul(
            &mut r,
            (pick(1, 9), pick(1, 40), pick(1, 17)),
            case % 2 == 0,
            &mut rng,
        );
        let pk = pick(1, 3);
        let ph = pick(pk, pk + 6);
        let pw = pick(pk, pk + 6);
        let kind = if case % 2 == 0 {
            PoolKind::Max
        } else {
            PoolKind::Avg
        };
        check_pool(
            &mut r,
            kind,
            (pick(1, 3), ph, pw, pk, pick(1, pk)),
            &mut rng,
        );
        check_elementwise(&mut r, pick(1, 300), &mut rng);
    }
}

/// A full device with one mapped arena, for TLB-coherence tests that
/// exercise the real job path (descriptor fetch, AS latching, IRQs).
struct DeviceRig {
    clock: Rc<Clock>,
    mem: Rc<RefCell<Memory>>,
    gpu: Gpu,
    root: u64,
    next_table: u64,
}

const DESC_VA: u64 = 0x10000;
const PROG_VA: u64 = 0x11000;
const SRC_VA: u64 = 0x12000;
const DST_VA: u64 = 0x13000;
const PA_A: u64 = 0x40000;
const PA_B: u64 = 0x41000;

impl DeviceRig {
    fn new() -> DeviceRig {
        let clock = Clock::new();
        let mem = Rc::new(RefCell::new(Memory::new(4 << 20)));
        let gpu = Gpu::new(GpuSku::mali_g71_mp8(), &clock, &mem);
        let mut r = DeviceRig {
            clock,
            mem,
            gpu,
            root: 1 << 20,
            next_table: (1 << 20) + PAGE_SIZE as u64,
        };
        {
            let mut m = r.mem.borrow_mut();
            let root = r.root;
            let next = &mut r.next_table;
            let mut alloc = || {
                let pa = *next;
                *next += PAGE_SIZE as u64;
                pa
            };
            // Identity-map descriptor, program, and dst pages; map SRC_VA
            // to PA_A initially.
            for va in [DESC_VA, PROG_VA, DST_VA] {
                map_page(
                    &mut m,
                    root,
                    va,
                    va,
                    grt_gpu::PteFlags::rwx(),
                    0,
                    &mut alloc,
                )
                .unwrap();
            }
            map_page(
                &mut m,
                root,
                SRC_VA,
                PA_A,
                grt_gpu::PteFlags::rwx(),
                0,
                &mut alloc,
            )
            .unwrap();
            // Program: copy 4 floats SRC -> DST.
            let prog = ShaderOp::Copy {
                src_va: SRC_VA,
                dst_va: DST_VA,
                len: 4,
            }
            .encode();
            m.write(PROG_VA, &prog, Accessor::Cpu).unwrap();
            let desc = JobDescriptor {
                shader_va: PROG_VA,
                n_instrs: 1,
                cost_us: 100,
                next_va: 0,
                status: JobStatus::Pending,
            };
            m.write(DESC_VA, &desc.encode(), Accessor::Cpu).unwrap();
            // Distinct payloads in the two physical pages.
            for (pa, base) in [(PA_A, 1.0f32), (PA_B, 9.0f32)] {
                let bytes: Vec<u8> = (0..4)
                    .flat_map(|i| (base + i as f32).to_le_bytes())
                    .collect();
                m.write(pa, &bytes, Accessor::Cpu).unwrap();
            }
        }
        // Latch AS 0 and power up.
        r.gpu
            .write_reg(mc::as_base(0) + mc::AS_TRANSTAB_LO, r.root as u32);
        r.gpu
            .write_reg(mc::as_base(0) + mc::AS_TRANSTAB_HI, (r.root >> 32) as u32);
        r.gpu
            .write_reg(mc::as_base(0) + mc::AS_COMMAND, mc::AS_CMD_UPDATE);
        r.gpu.write_reg(gc::L2_PWRON_LO, 0x3);
        r.gpu.write_reg(gc::SHADER_PWRON_LO, 0xFF);
        r.gpu.write_reg(gc::TILER_PWRON_LO, 0x1);
        r.clock.advance(SimTime::from_millis(1));
        r
    }

    /// Submits the prepared job and waits for completion; returns the four
    /// copied floats.
    fn run_job(&mut self) -> Vec<f32> {
        self.gpu.write_reg(jc::JOB_IRQ_MASK, !0);
        self.gpu
            .write_reg(jc::slot_base(0) + jc::JS_HEAD_LO, DESC_VA as u32);
        self.gpu.write_reg(jc::slot_base(0) + jc::JS_HEAD_HI, 0);
        self.gpu.write_reg(jc::slot_base(0) + jc::JS_CONFIG, 0);
        self.gpu
            .write_reg(jc::slot_base(0) + jc::JS_COMMAND, jc::JS_CMD_START);
        let at = self.gpu.next_irq_at(IrqLine::Job).expect("job completes");
        self.clock.advance_to(at);
        assert_eq!(
            self.gpu.read_reg(jc::slot_base(0) + jc::JS_STATUS),
            jc::JS_STATUS_DONE
        );
        self.gpu.write_reg(jc::JOB_IRQ_CLEAR, !0);
        let m = self.mem.borrow();
        m.dump_range(DST_VA, 16)
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Remaps SRC_VA's leaf PTE to `pa` by rewriting the page tables in
    /// shared memory (what the driver, memsync, and rollback all do).
    fn remap_src(&mut self, pa: u64) {
        let mut m = self.mem.borrow_mut();
        let root = self.root;
        let next = &mut self.next_table;
        let mut alloc = || {
            let pa = *next;
            *next += PAGE_SIZE as u64;
            pa
        };
        map_page(
            &mut m,
            root,
            SRC_VA,
            pa,
            grt_gpu::PteFlags::rwx(),
            0,
            &mut alloc,
        )
        .unwrap();
    }
}

/// Static layer-name pool for randomized specs (`LayerSpec::name` is
/// `&'static str`).
const RAND_LAYER_NAMES: [&str; 12] = [
    "rl0", "rl1", "rl2", "rl3", "rl4", "rl5", "rl6", "rl7", "rl8", "rl9", "rl10", "rl11",
];

/// Builds a random but shape-consistent network: a conv/pool chain over a
/// square feature map, flattened into an FC head and a softmax. Every
/// layer's input length equals the previous layer's output length, so the
/// recorder, the lifter, and both replay paths all see a well-formed
/// workload — the randomness is in geometry, splits, and setup jobs.
fn random_spec(seed: u64) -> grt_ml::NetworkSpec {
    use grt_ml::{LayerOp, LayerSpec, NetworkSpec};
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut pick = move |lo: u32, hi: u32| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lo + (state >> 33) as u32 % (hi - lo + 1)
    };
    let mut c = pick(1, 3);
    let mut h = pick(8, 14);
    let input_len = c * h * h;
    let mut layers = Vec::new();
    let name = |layers: &Vec<LayerSpec>| RAND_LAYER_NAMES[layers.len()];
    for _ in 0..pick(1, 3) {
        let k = pick(1, 3).min(h);
        let pad = pick(0, 1);
        let out_c = pick(1, 6);
        let p = ConvParams {
            in_c: c,
            in_h: h,
            in_w: h,
            out_c,
            k,
            stride: 1,
            pad,
        };
        let op = LayerOp::Conv {
            p,
            relu: pick(0, 1) == 1,
        };
        let macs = op.actual_macs();
        layers.push(LayerSpec {
            name: name(&layers),
            op,
            splits: pick(1, 3),
            setup_jobs: pick(0, 2),
            nominal_macs: macs * 50,
            nominal_data_bytes: 10_000,
            save_skip: false,
        });
        c = out_c;
        h = p.out_h();
        if h >= 2 && pick(0, 1) == 1 {
            let kind = if pick(0, 1) == 1 {
                PoolKind::Max
            } else {
                PoolKind::Avg
            };
            let op = LayerOp::Pool {
                kind,
                c,
                h,
                w: h,
                k: 2,
                stride: 2,
            };
            let macs = op.actual_macs();
            layers.push(LayerSpec {
                name: name(&layers),
                op,
                splits: 1,
                setup_jobs: pick(0, 1),
                nominal_macs: macs * 50,
                nominal_data_bytes: 10_000,
                save_skip: false,
            });
            h = (h - 2) / 2 + 1;
        }
    }
    let out_dim = pick(2, 10);
    let fc = LayerOp::Fc {
        in_dim: c * h * h,
        out_dim,
        relu: pick(0, 1) == 1,
    };
    let fc_macs = fc.actual_macs();
    layers.push(LayerSpec {
        name: name(&layers),
        op: fc,
        splits: pick(1, 2),
        setup_jobs: pick(0, 1),
        nominal_macs: fc_macs * 50,
        nominal_data_bytes: 10_000,
        save_skip: false,
    });
    layers.push(LayerSpec {
        name: name(&layers),
        op: LayerOp::Softmax { len: out_dim },
        splits: 1,
        setup_jobs: 0,
        nominal_macs: out_dim as u64 * 4,
        nominal_data_bytes: 1_000,
        save_skip: false,
    });
    NetworkSpec {
        name: "RandomNet",
        input_len,
        output_len: out_dim,
        layers,
    }
}

/// Property: lowering a recording through the semantics IR
/// (`lift_recording` → `compile_from_ir`) yields a `CompiledRecording`
/// whose replay is bit-identical to interpreting the recording event by
/// event — on every zoo network and on randomized shape-consistent
/// networks the zoo never exercises. This pins the tentpole invariant
/// that the IR is a faithful semantics carrier: the same lift that
/// grt-lint proves R1–R9 over is the one the fast path executes.
#[test]
fn ir_lowered_compiled_replay_bit_identical_to_interpreted() {
    use grt_core::replay::{workload_weights, Replayer, REPLAY_POLL_ITER_CAP};
    use grt_core::session::{RecordSession, RecorderMode};
    use grt_ml::reference::test_input;

    let mut specs = grt_ml::zoo::all_benchmarks();
    for i in 0..6u64 {
        specs.push(random_spec(0x1A5C_0FFE ^ (i * 0x9E37)));
    }
    for (i, spec) in specs.iter().enumerate() {
        let sku = GpuSku::mali_g71_mp8();
        let quirk = sku.pte_quirk;
        let mut s = RecordSession::new(sku, grt_net::NetConditions::wifi(), RecorderMode::OursMDS);
        let out = s.record(spec).expect("record");
        let key = s.recording_key();
        let rec = out
            .recording
            .verify_and_parse(&key)
            .expect("recording verifies");
        // The explicit tentpole path: lift once, lower the lift.
        let ir = grt_core::ir::lift_recording(&rec, quirk);
        let compiled = grt_core::compiled::compile_from_ir(&rec, ir, REPLAY_POLL_ITER_CAP)
            .expect("well-formed recording lowers");
        let weights = workload_weights(spec);
        let mut replayer = Replayer::new(&s.client, Rc::new(grt_lint::Linter::new()));
        for round in 0..3u64 {
            let input = test_input(spec, (i as u64) << 8 | round);
            let (interp, _) = replayer
                .replay(&out.recording, &key, &input, &weights)
                .expect("interpreted replay");
            let (fast, _) = replayer
                .replay_compiled(&compiled, &input, &weights)
                .expect("compiled replay");
            assert_eq!(
                bits(&interp),
                bits(&fast),
                "{} (case {i}, round {round}): IR-lowered replay diverged",
                spec.name
            );
        }
    }
}

/// A page-table rewrite between two jobs is visible to the second job
/// even without an AS command: the descriptor-boundary TLB flush forbids
/// stale translations from the first job's walk.
#[test]
fn page_table_rewrite_between_jobs_is_visible() {
    let mut r = DeviceRig::new();
    assert_eq!(r.run_job(), vec![1.0, 2.0, 3.0, 4.0]);
    r.remap_src(PA_B);
    assert_eq!(r.run_job(), vec![9.0, 10.0, 11.0, 12.0]);
}

/// The same rewrite followed by the driver's AS_CMD_UPDATE (the path
/// memsync's sync-down takes after restoring table pages): the explicit
/// TLB-maintenance hook also invalidates, and the flush counter moves.
#[test]
fn as_command_invalidates_cached_translations() {
    let mut r = DeviceRig::new();
    assert_eq!(r.run_job(), vec![1.0, 2.0, 3.0, 4.0]);
    r.remap_src(PA_B);
    let flushes_before = r.gpu.exec_stats().tlb.flushes;
    r.gpu
        .write_reg(mc::as_base(0) + mc::AS_COMMAND, mc::AS_CMD_UPDATE);
    assert!(r.gpu.exec_stats().tlb.flushes > flushes_before);
    assert_eq!(r.run_job(), vec![9.0, 10.0, 11.0, 12.0]);
}

/// Models memsync's sync-down: bulk-restore previously captured memory
/// (page tables included) underneath the GPU between jobs, then run. The
/// job must translate through the restored tables, not cached entries.
#[test]
fn memsync_style_restore_cannot_leave_stale_translations() {
    let mut r = DeviceRig::new();
    // Snapshot the world while SRC_VA -> PA_A.
    let snapshot = r.mem.borrow().dump_range(0, 4 << 20);
    assert_eq!(r.run_job(), vec![1.0, 2.0, 3.0, 4.0]);
    // Diverge: remap to PA_B and run, warming the TLB on the new tables.
    r.remap_src(PA_B);
    assert_eq!(r.run_job(), vec![9.0, 10.0, 11.0, 12.0]);
    // Sync-down: restore the snapshot wholesale (tables revert to PA_A).
    r.mem.borrow_mut().restore_range(0, &snapshot);
    assert_eq!(r.run_job(), vec![1.0, 2.0, 3.0, 4.0]);
}

/// Models drivershim's rollback: restore a `(memory, Gpu)` checkpoint —
/// the cloned Gpu carries whatever TLB state it had — and re-run. The
/// replayed job must be bit-identical to the original run.
#[test]
fn rollback_style_gpu_restore_replays_bit_identical() {
    let mut r = DeviceRig::new();
    let ckpt_mem = r.mem.borrow().dump_range(0, 4 << 20);
    let ckpt_gpu = r.gpu.clone();
    let first = r.run_job();
    assert_eq!(first, vec![1.0, 2.0, 3.0, 4.0]);
    // The failed attempt rewrites mappings and runs again.
    r.remap_src(PA_B);
    assert_eq!(r.run_job(), vec![9.0, 10.0, 11.0, 12.0]);
    // Rollback both parties, exactly as ShimCheckpoint restore does.
    r.mem.borrow_mut().restore_range(0, &ckpt_mem);
    r.gpu = ckpt_gpu;
    let retried = r.run_job();
    assert_eq!(bits(&retried), bits(&first));
}
