//! Security-property integration tests (§7.1's threat model).
//!
//! Two adversaries: a local privileged adversary controlling the client
//! OS, and a network adversary on the cloud/client path. Each test pins
//! one claim of the paper's security analysis.

use grt_core::client::{GPU_MMIO_BASE, GPU_MMIO_LEN};
use grt_core::replay::{workload_weights, Replayer};
use grt_core::session::{RecordSession, RecorderMode};
use grt_crypto::{AttestationReport, KeyPair, SecureChannel};
use grt_gpu::GpuSku;
use grt_ml::reference::test_input;
use grt_net::NetConditions;
use grt_tee::{AccessDecision, World};

fn session() -> RecordSession {
    RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    )
}

/// §7.1 integrity: "GPUShim locks the GPU MMIO region during recording,
/// preventing any local adversary from tampering with GPU registers".
#[test]
fn local_adversary_cannot_touch_gpu_mmio_while_locked() {
    let s = session();
    s.client.shim.borrow_mut().lock_gpu();
    for probe_offset in [0x0u64, 0x30, 0x1820, 0x3FFF] {
        let d = s
            .client
            .tzasc
            .check(World::Normal, GPU_MMIO_BASE + probe_offset);
        assert!(
            matches!(
                d,
                AccessDecision::Denied {
                    attempted_by: World::Normal
                }
            ),
            "offset {probe_offset:#x}: {d:?}"
        );
    }
    // Denials are recorded evidence.
    assert_eq!(s.client.tzasc.denials().len(), 4);
    s.client.shim.borrow_mut().unlock_gpu();
    assert_eq!(
        s.client.tzasc.check(World::Normal, GPU_MMIO_BASE),
        AccessDecision::Allowed
    );
    let _ = GPU_MMIO_LEN;
}

/// §6: GPU interrupts are routed to the TEE during recording.
#[test]
fn gpu_irqs_route_to_secure_world_while_locked() {
    let s = session();
    s.client.shim.borrow_mut().lock_gpu();
    for irq in grt_core::client::GPU_IRQ_IDS {
        assert_eq!(s.client.monitor.irq_target(irq), World::Secure);
    }
    s.client.shim.borrow_mut().unlock_gpu();
    for irq in grt_core::client::GPU_IRQ_IDS {
        assert_eq!(s.client.monitor.irq_target(irq), World::Normal);
    }
}

/// §7.1 confidentiality: input independence means weights and inputs never
/// leave the TEE — the client's weight slots stay zero-filled after a
/// whole record run and the recording itself contains no weight bytes.
#[test]
fn model_parameters_never_reach_cloud_or_recording() {
    let spec = grt_ml::zoo::mnist();
    let mut s = session();
    let out = s.record(&spec).expect("record");
    let key = s.recording_key();
    let rec = out.recording.verify_and_parse(&key).expect("parse");
    // Client weight slots all-zero after the dry run.
    let mem = s.client.mem.borrow();
    for slot in &rec.weights {
        let bytes = mem.dump_range(slot.pa, slot.len_elems as usize * 4);
        assert!(bytes.iter().all(|&b| b == 0));
    }
    drop(mem);
    // Cloud-side weight buffers are also zero (dry compile).
    let cloud = s.cloud_mem();
    let cloud = cloud.borrow();
    for slot in &rec.weights {
        let bytes = cloud.dump_range(slot.pa, slot.len_elems as usize * 4);
        assert!(bytes.iter().all(|&b| b == 0), "weights reached the cloud");
    }
    // And the real weights appear nowhere in the recording bytes.
    let real = workload_weights(&spec);
    let first_weight_bytes: Vec<u8> = real[0][..8].iter().flat_map(|v| v.to_le_bytes()).collect();
    assert!(!out
        .recording
        .bytes
        .windows(first_weight_bytes.len())
        .any(|w| w == first_weight_bytes));
}

/// §3.2: the replayer only accepts recordings signed by the cloud.
#[test]
fn replayer_rejects_unsigned_and_resigned_recordings() {
    let spec = grt_ml::zoo::mnist();
    let mut s = session();
    let out = s.record(&spec).expect("record");
    let key = s.recording_key();
    let input = test_input(&spec, 0);
    let weights = workload_weights(&spec);
    let mut replayer = Replayer::new(&s.client, std::rc::Rc::new(grt_lint::Linter::new()));

    // Bit-flip anywhere in the body.
    for pos in [0usize, 100, out.recording.bytes.len() - 1] {
        let mut evil = out.recording.clone();
        evil.bytes[pos] ^= 1;
        assert!(
            replayer.replay(&evil, &key, &input, &weights).is_err(),
            "flip at {pos} accepted"
        );
    }
    // Signature from a key the TEE does not trust.
    let rec = out.recording.verify_and_parse(&key).unwrap();
    let rogue = KeyPair::derive(b"rogue", "recording");
    let forged = grt_core::recording::SignedRecording::sign(&rec, &rogue);
    assert!(replayer.replay(&forged, &key, &input, &weights).is_err());
}

/// Network adversary: replaying a captured channel message is detected.
#[test]
fn channel_replay_and_tampering_detected() {
    let mut cloud = SecureChannel::from_secret(b"hs");
    let mut tee = SecureChannel::from_secret(b"hs");
    let wire = cloud.seal(b"commit #1");
    assert!(tee.open(&wire).is_ok());
    // Captured and replayed.
    assert!(tee.open(&wire).is_err());
    // Tampered in flight.
    let mut wire2 = cloud.seal(b"commit #2");
    wire2[9] ^= 0x40;
    assert!(tee.open(&wire2).is_err());
}

/// A VM that cannot attest is refused before any GPU access.
#[test]
fn forged_attestation_is_refused() {
    let secret = b"provisioning";
    let good = grt_crypto::Sha256::digest(b"expected-vm");
    let nonce = [9u8; 16];
    // Right measurement, wrong secret (rogue cloud).
    let report = AttestationReport::generate(b"rogue", good, nonce);
    assert!(!report.verify(secret, &good, &nonce));
    // Wrong measurement (backdoored image), right secret.
    let bad = grt_crypto::Sha256::digest(b"backdoored-vm");
    let report = AttestationReport::generate(secret, bad, nonce);
    assert!(!report.verify(secret, &good, &nonce));
}

/// §5 continuous validation: a spurious cloud-CPU access to shipped
/// metastate during the GPU's window traps instead of racing.
#[test]
fn continuous_validation_traps_spurious_cloud_access() {
    let spec = grt_ml::zoo::mnist();
    let mut s = session();
    let out = s.record(&spec).expect("record");
    // During the run, every down-sync unmaps the shipped metastate from
    // the cloud CPU and every up-sync closes the idle GPU's window (the
    // memsync unit tests pin the trap mechanics). A whole record run
    // completing means no spurious access fired through a closed window.
    assert!(out.blocking_rtts > 0);
    // And the cloud CPU can read metastate again now (windows reopened).
    let cloud = s.cloud_mem();
    let regions = s.driver.regions();
    let regions = regions.borrow();
    let meta = regions.metastate().next().expect("metastate exists");
    assert!(cloud
        .borrow()
        .read_u32(meta.pa, grt_gpu::mem::Accessor::Cpu)
        .is_ok());
}

/// §3.1: the cloud never reuses recordings across clients — two sessions
/// (even with the same SKU) produce independently signed recordings under
/// different session keys.
#[test]
fn recordings_are_not_transferable_across_sessions() {
    let spec = grt_ml::zoo::mnist();
    let mut s1 = session();
    let out1 = s1.record(&spec).expect("record 1");
    // A second client session with its own handshake secret.
    let mut s2 = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let _out2 = s2.record(&spec).expect("record 2");
    // Session 2's TEE must reject session 1's recording if the keys were
    // provisioned differently (here keys derive from the same demo secret,
    // so instead verify the signature binds to the bytes: a swap of bodies
    // fails).
    let k1 = s1.recording_key();
    let rec1 = out1.recording.verify_and_parse(&k1);
    assert!(rec1.is_some());
    let mut crossed = out1.recording.clone();
    crossed.bytes[40] ^= 0xFF;
    assert!(crossed.verify_and_parse(&k1).is_none());
}
