//! Integration tests of the serving subsystem (`grt-serve`): fleet
//! invariants, admission accounting, affinity batching, registry warm-up
//! economics, and the differential harness pinning the event-indexed
//! scheduler to the legacy full-sweep oracle, end-to-end through the
//! real GP replay protocol.

use grt_gpu::GpuSku;
use grt_serve::{
    generate_trace, Fleet, FleetConfig, RecordingRegistry, Request, SchedulerKind, ServiceMode,
    TraceConfig,
};
use grt_sim::{FaultPlan, FaultPlanConfig, Rng, SimTime};
use std::rc::Rc;

fn mnist_fleet(skus: Vec<GpuSku>, queue_capacity: usize) -> Fleet {
    let cfg = FleetConfig {
        queue_capacity,
        ..FleetConfig::new(skus)
    };
    Fleet::new(vec![grt_ml::zoo::mnist()], cfg)
}

/// The paper's replayer assumes the GPU job queue holds at most one job;
/// the fleet must never start a replay on a device that is already
/// serving one, even under heavy contention.
#[test]
fn job_queue_length_one_invariant() {
    let mut fleet = mnist_fleet(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp4()], 128);
    // Arrivals far faster than service: every device is saturated.
    let cfg = TraceConfig {
        mean_interarrival: SimTime::from_micros(200),
        ..TraceConfig::new(60, 11)
    };
    let report = fleet.run(&generate_trace(1, &cfg));
    assert_eq!(report.completed, 60);
    assert_eq!(
        report.max_inflight, 1,
        "a device ran two replays concurrently"
    );
}

/// Every submitted request is accounted for exactly once: completed,
/// rejected, timed out, or failed — never silently dropped.
#[test]
fn admission_accounting_is_conserved() {
    // Tiny queues + a burst during the multi-second cold start force
    // both rejections and completions.
    let mut fleet = mnist_fleet(vec![GpuSku::mali_g71_mp8()], 4);
    let cfg = TraceConfig {
        mean_interarrival: SimTime::from_millis(5),
        timeout: SimTime::from_secs(2),
        ..TraceConfig::new(80, 7)
    };
    let report = fleet.run(&generate_trace(1, &cfg));
    assert_eq!(
        report.completed + report.rejected + report.timed_out + report.failed,
        report.submitted,
        "requests leaked: {report:?}"
    );
    assert!(report.rejected > 0, "expected backpressure under burst");
    assert!(
        report.timed_out > 0,
        "expected queue timeouts with a 2s deadline behind a cold start"
    );
}

/// Same-model affinity amortizes staging: many requests, few
/// `LOAD_RECORDING`s.
#[test]
fn affinity_batching_amortizes_loads() {
    let mut fleet = mnist_fleet(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp8()], 64);
    let report = fleet.run(&generate_trace(1, &TraceConfig::new(40, 3)));
    assert_eq!(report.completed, 40);
    let total_loads: u64 = report.per_device.iter().map(|d| d.loads).sum();
    // One model: each device stages it at most once, ever.
    assert!(
        total_loads <= 2,
        "staging not amortized: {total_loads} loads for 40 requests"
    );
}

/// A warmed registry makes a rerun strictly cheaper: fewer cold starts
/// and no record time.
#[test]
fn warm_registry_beats_cold() {
    let models = vec![grt_ml::zoo::mnist(), grt_ml::zoo::alexnet()];
    let cfg = FleetConfig {
        queue_capacity: 64,
        ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g72_mp12()])
    };
    let trace = generate_trace(models.len(), &TraceConfig::new(30, 9));

    let mut cold_fleet = Fleet::new(models.clone(), cfg.clone());
    let cold = cold_fleet.run(&trace);
    assert!(cold.cold_starts > 0, "fresh registry must record");

    let mut registry = cold_fleet.into_registry();
    registry.reset_stats();
    let mut warm_fleet = Fleet::with_registry(models, cfg, registry);
    let warm = warm_fleet.run(&trace);

    assert!(
        warm.cold_starts < cold.cold_starts,
        "warm run must save cold starts ({} vs {})",
        warm.cold_starts,
        cold.cold_starts
    );
    assert_eq!(warm.cold_starts, 0);
    assert!(warm.record_time.is_zero());
    assert!(warm.total.p99 < cold.total.p99);
    // Note: output digests are completion-order-sensitive, and cold-start
    // delays reshuffle scheduling, so cold and warm digests may differ
    // even though per-request outputs match. Run-to-run bit-identity is
    // asserted in tests/determinism.rs instead.
}

// ---------------------------------------------------------------------
// Differential harness: the event-indexed scheduler against the legacy
// full-sweep oracle. The two drivers share the candidate rule and all
// request-processing code, so any divergence is an event-ordering bug;
// these tests pin byte-identical reports AND identical metrics state
// across nominal traces, warm/cold registries, and randomized fleets.
// ---------------------------------------------------------------------

/// Runs `trace` through both scheduler kinds over otherwise-identical
/// fleets and asserts the full `ServeReport` JSON and the complete
/// `MetricsCollector` state (sketches, capped logs, counters, digests)
/// are identical.
fn assert_schedulers_agree(
    label: &str,
    models: &[grt_ml::NetworkSpec],
    cfg: &FleetConfig,
    trace: &[Request],
    registry: Option<&RecordingRegistry>,
) {
    let mut runs = Vec::new();
    for kind in [SchedulerKind::LegacySweep, SchedulerKind::EventIndexed] {
        let cfg = cfg.clone().with_scheduler(kind);
        let mut fleet = match registry {
            Some(r) => Fleet::with_registry(models.to_vec(), cfg, r.clone()),
            None => Fleet::new(models.to_vec(), cfg),
        };
        let (report, metrics) = fleet.run_detailed(trace);
        runs.push((report.to_json(), metrics));
    }
    assert_eq!(
        runs[0].0, runs[1].0,
        "[{label}] sweep and event-indexed reports diverge"
    );
    assert_eq!(
        runs[0].1, runs[1].1,
        "[{label}] sweep and event-indexed metrics diverge"
    );
}

/// The two-layer CHAOS-TINY network: one replay costs wall-milliseconds,
/// so the randomized differential sweep stays affordable while the fleet
/// machinery under test is identical to the full-size models'.
fn tiny_spec() -> grt_ml::NetworkSpec {
    use grt_ml::{LayerOp, LayerSpec, NetworkSpec};
    NetworkSpec {
        name: "DIFF-TINY",
        input_len: 16,
        output_len: 10,
        layers: vec![
            LayerSpec {
                name: "fc",
                op: LayerOp::Fc {
                    in_dim: 16,
                    out_dim: 10,
                    relu: false,
                },
                splits: 1,
                setup_jobs: 1,
                nominal_macs: 0,
                nominal_data_bytes: 0,
                save_skip: false,
            },
            LayerSpec {
                name: "sm",
                op: LayerOp::Softmax { len: 10 },
                splits: 1,
                setup_jobs: 0,
                nominal_macs: 0,
                nominal_data_bytes: 0,
                save_skip: false,
            },
        ],
    }
}

/// The four modeled Mali SKUs, indexable for randomized fleet mixes.
fn sku_pool() -> Vec<GpuSku> {
    vec![
        GpuSku::mali_g71_mp8(),
        GpuSku::mali_g72_mp12(),
        GpuSku::mali_g71_mp4(),
        GpuSku::mali_g76_mp10(),
    ]
}

/// Both schedulers agree on the nominal traces the rest of this suite
/// exercises: a saturated fleet, a bursty overload with rejections and
/// timeouts, and a two-model mix over a cold and then a warmed registry.
#[test]
fn schedulers_agree_on_nominal_traces() {
    // Saturated single-model fleet (the queue-length-1 workload).
    let cfg = FleetConfig {
        queue_capacity: 128,
        ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp4()])
    };
    let trace = generate_trace(
        1,
        &TraceConfig {
            mean_interarrival: SimTime::from_micros(200),
            ..TraceConfig::new(40, 11)
        },
    );
    assert_schedulers_agree("saturated", &[grt_ml::zoo::mnist()], &cfg, &trace, None);

    // Bursty overload: rejections and deadline timeouts on both sides.
    let cfg = FleetConfig {
        queue_capacity: 4,
        ..FleetConfig::new(vec![GpuSku::mali_g71_mp8()])
    };
    let trace = generate_trace(
        1,
        &TraceConfig {
            mean_interarrival: SimTime::from_millis(5),
            timeout: SimTime::from_secs(2),
            ..TraceConfig::new(50, 7)
        },
    );
    assert_schedulers_agree("burst", &[grt_ml::zoo::mnist()], &cfg, &trace, None);

    // Two models over two SKUs, cold registry then a warmed clone.
    let models = vec![grt_ml::zoo::mnist(), grt_ml::zoo::alexnet()];
    let cfg = FleetConfig {
        queue_capacity: 64,
        ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g72_mp12()])
    };
    let trace = generate_trace(models.len(), &TraceConfig::new(24, 9));
    assert_schedulers_agree("two-model cold", &models, &cfg, &trace, None);

    let mut warmer = Fleet::new(models.clone(), cfg.clone());
    warmer.run(&trace);
    let mut warmed = warmer.into_registry();
    warmed.reset_stats();
    assert_schedulers_agree("two-model warm", &models, &cfg, &trace, Some(&warmed));
}

/// Fifty seeded random fleet configurations — mixed SKU fleets, queue
/// depths, affinity slack, service modes, fault plans, cold and warmed
/// registries — all produce byte-identical reports from both schedulers.
/// Any seed that fails reproduces exactly from its printed label.
#[test]
fn schedulers_agree_on_random_configs() {
    let spec = tiny_spec();
    let models = vec![spec.clone()];
    let pool = sku_pool();

    // One warmed registry covering every SKU; cloned per case per side so
    // cold-start records never repeat for warm cases.
    let mut warmed = RecordingRegistry::new(grt_serve::RegistryConfig::new(8));
    for sku in &pool {
        warmed.warm(&spec, sku).expect("fault-free warm-up record");
    }
    warmed.reset_stats();

    for seed in 0..50u64 {
        let mut rng = Rng::new(0xD1FF_0000 + seed);
        let cold_case = seed % 8 == 0;
        // Cold cases pay real on-demand records on both sides; keep those
        // fleets single-SKU so the sweep stays affordable.
        let devices = if cold_case {
            1 + (rng.next_u64() % 2) as usize
        } else {
            1 + (rng.next_u64() % 5) as usize
        };
        let skus: Vec<GpuSku> = (0..devices)
            .map(|_| {
                if cold_case {
                    pool[0].clone()
                } else {
                    pool[(rng.next_u64() % pool.len() as u64) as usize].clone()
                }
            })
            .collect();
        let mut cfg = FleetConfig {
            queue_capacity: (rng.next_u64() % 8) as usize,
            affinity_slack: (rng.next_u64() % 3) as usize,
            ..FleetConfig::new(skus)
        };
        if rng.chance(0.5) {
            cfg = cfg.with_service_mode(ServiceMode::Profiled);
        }
        if rng.chance(0.6) {
            let plan = FaultPlan::generate(
                seed,
                &FaultPlanConfig {
                    horizon: SimTime::from_secs(3),
                    devices,
                    ..FaultPlanConfig::default()
                },
            );
            cfg = cfg.with_faults(Rc::new(plan));
        }
        let trace = generate_trace(
            models.len(),
            &TraceConfig {
                mean_interarrival: SimTime::from_millis(1 + rng.next_u64() % 40),
                timeout: if rng.chance(0.3) {
                    SimTime::from_secs(1)
                } else {
                    SimTime::from_secs(30)
                },
                ..TraceConfig::new(3 + (rng.next_u64() % 6) as usize, seed)
            },
        );
        let label = format!(
            "seed {seed}: {devices} devices, q{}, slack {}, {:?}, {}, {} requests",
            cfg.queue_capacity,
            cfg.affinity_slack,
            cfg.service,
            if cfg.faults.is_some() {
                "faulted"
            } else {
                "fault-free"
            },
            trace.len()
        );
        let registry = if cold_case { None } else { Some(&warmed) };
        assert_schedulers_agree(&label, &models, &cfg, &trace, registry);
    }
}

/// Satellite regression: an eviction landing **exactly** at another
/// pending event's due tick. Three overlapping crashes on device 0 —
/// each landing exactly at the previous crash's restart transition, so
/// the failure streak never resets and the third crash evicts — while
/// hand-placed arrivals put a serve event on the healthy device due at
/// the very same instants. The indexed scheduler's heap holds entries
/// for those ticks when the eviction's failover rewrites the queues; a
/// stale entry served after the rewrite would diverge from the
/// full-sweep oracle. Both drivers must stay byte-identical, and the
/// trace must actually exercise the eviction.
#[test]
fn schedulers_agree_when_eviction_lands_on_a_due_tick() {
    let plan = Rc::new(
        FaultPlan::new()
            .with_crash(0, SimTime::from_millis(100), SimTime::from_millis(10))
            .with_crash(0, SimTime::from_millis(110), SimTime::from_millis(10))
            .with_crash(0, SimTime::from_millis(120), SimTime::from_millis(10)),
    );
    let cfg = FleetConfig {
        queue_capacity: 64,
        ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp8()])
    }
    .with_faults(plan);
    // A steady stream keeps both queues non-empty across the crash
    // window, and the pinned arrivals at 100/110/120 ms coincide exactly
    // with the crash / restart / eviction ticks.
    let mut trace: Vec<Request> = (0..30)
        .map(|i| Request {
            id: i,
            model: 0,
            arrival: SimTime::from_millis(8 * i),
            deadline: SimTime::from_millis(8 * i) + SimTime::from_secs(30),
        })
        .collect();
    for (k, at_ms) in [100u64, 110, 120].into_iter().enumerate() {
        trace.push(Request {
            id: 1000 + k as u64,
            model: 0,
            arrival: SimTime::from_millis(at_ms),
            deadline: SimTime::from_millis(at_ms) + SimTime::from_secs(30),
        });
    }
    trace.sort_by_key(|r| (r.arrival, r.id));
    for (i, r) in trace.iter_mut().enumerate() {
        r.id = i as u64; // keep ids unique and arrival-ordered
    }

    assert_schedulers_agree(
        "eviction-on-due-tick",
        &[grt_ml::zoo::mnist()],
        &cfg,
        &trace,
        None,
    );

    // The scenario must genuinely hit the path under test: the third
    // same-tick crash evicts and its failover displaces queued work.
    let mut fleet = Fleet::new(
        vec![grt_ml::zoo::mnist()],
        cfg.clone().with_scheduler(SchedulerKind::EventIndexed),
    );
    let report = fleet.run(&trace);
    assert_eq!(report.crashes, 3, "all three pinned crashes processed");
    assert_eq!(report.evictions, 1, "third consecutive crash evicts");
    assert!(report.failovers > 0, "eviction failover displaces work");
    assert_eq!(
        report.completed + report.rejected + report.timed_out + report.failed,
        report.submitted
    );
}

/// 200-device chaos soak at the event-indexed scheduler: a generated
/// fault schedule plus a pinned rapid triple crash on device 0 (three
/// consecutive failures with no success in between, forcing an eviction
/// and queue failover). The run must keep every invariant and be
/// bit-identical when repeated.
#[test]
fn event_indexed_chaos_soak_200_devices() {
    let spec = tiny_spec();
    let pool = sku_pool();
    let skus: Vec<GpuSku> = (0..200).map(|i| pool[i % pool.len()].clone()).collect();
    let plan = Rc::new(
        FaultPlan::generate(
            0xC4A0_5E20,
            &FaultPlanConfig {
                horizon: SimTime::from_secs(5),
                devices: skus.len(),
                ..FaultPlanConfig::default()
            },
        )
        // Overlapping crashes: the second and third land while device 0
        // is already down, so no success can reset the failure streak.
        .with_crash(0, SimTime::from_millis(500), SimTime::from_millis(200))
        .with_crash(0, SimTime::from_millis(520), SimTime::from_millis(200))
        .with_crash(0, SimTime::from_millis(540), SimTime::from_millis(200)),
    );
    let cfg = FleetConfig {
        queue_capacity: 4,
        ..FleetConfig::new(skus)
    }
    .with_scheduler(SchedulerKind::EventIndexed)
    .with_service_mode(ServiceMode::Profiled)
    .with_faults(plan);
    let trace = generate_trace(
        1,
        &TraceConfig {
            mean_interarrival: SimTime::from_millis(2),
            ..TraceConfig::new(600, 17)
        },
    );

    let run = |label: &str| {
        let mut fleet = Fleet::new(vec![spec.clone()], cfg.clone());
        let (report, metrics) = fleet.run_detailed(&trace);
        assert!(
            report.max_inflight <= 1,
            "[{label}] queue-length-1 violated"
        );
        assert_eq!(
            report.completed + report.rejected + report.timed_out + report.failed,
            report.submitted,
            "[{label}] requests leaked"
        );
        assert!(report.crashes > 0, "[{label}] no crash was processed");
        assert!(
            report.evictions > 0,
            "[{label}] the pinned triple crash must evict device 0"
        );
        assert!(
            report.failovers > 0,
            "[{label}] crashes must force failovers"
        );
        assert_eq!(
            report.receipts_issued, report.completed,
            "[{label}] every completed serve issues exactly one receipt"
        );
        assert_eq!(
            report.receipts_verified, report.receipts_issued,
            "[{label}] every issued receipt verifies"
        );
        (report.to_json(), metrics)
    };
    let (json_a, metrics_a) = run("soak A");
    let (json_b, metrics_b) = run("soak B");
    assert_eq!(json_a, json_b, "chaos soak is not deterministic");
    assert_eq!(metrics_a, metrics_b, "chaos metrics are not deterministic");
}

/// The metrics collector's footprint is a function of its configuration,
/// not of how many requests flow through it: once the capped event logs
/// saturate, serving 4x the traffic leaves `approx_bytes()` unchanged.
#[test]
fn metrics_memory_is_bounded_by_log_cap() {
    // Zero-capacity queues reject everything instantly, so this measures
    // pure metrics behavior without any replay cost.
    let footprint = |requests: usize| {
        let cfg = FleetConfig {
            queue_capacity: 0,
            ..FleetConfig::new(vec![GpuSku::mali_g71_mp8()])
        }
        .with_event_log_cap(64);
        let mut fleet = Fleet::new(vec![grt_ml::zoo::mnist()], cfg);
        let trace = generate_trace(1, &TraceConfig::new(requests, 5));
        let (report, metrics) = fleet.run_detailed(&trace);
        assert_eq!(report.rejected, requests as u64);
        assert_eq!(metrics.rejections.len(), 64, "log must cap at 64 entries");
        metrics.approx_bytes()
    };
    let small = footprint(100);
    let large = footprint(400);
    assert_eq!(
        small, large,
        "metrics footprint must not grow with request count"
    );
    assert!(small < 256 * 1024, "footprint unexpectedly large: {small}");
}

/// Rejections carry a positive retry-after hint (the backpressure signal
/// a real client would use to pace resubmission).
#[test]
fn rejections_carry_retry_hints() {
    // Zero-capacity queues: every request is rejected, nothing serves.
    let mut fleet = mnist_fleet(vec![GpuSku::mali_g71_mp8()], 0);
    let (report, events) = fleet.run_detailed(&generate_trace(1, &TraceConfig::new(10, 5)));
    assert_eq!(report.completed, 0);
    assert_eq!(report.rejected, 10);
    assert_eq!(report.submitted, 10);
    assert_eq!(events.rejections.len(), 10);
    for r in &events.rejections {
        assert!(
            !r.retry_after.is_zero(),
            "rejection of request {} has no retry hint",
            r.id
        );
    }
}

/// Batched serving (DESIGN.md §14): with `max_batch > 1` a saturated
/// same-model queue is served in multi-request `RUN_BATCH` intervals.
/// Batching is an amortization, not a semantic change: the same requests
/// complete, the replay-output digest is byte-identical to the scalar
/// fleet's (same outputs in the same completion order on one device),
/// and the one receipt per interval verifies against every input lane.
#[test]
fn batched_serving_matches_scalar_outputs() {
    let trace = generate_trace(
        1,
        &TraceConfig {
            mean_interarrival: SimTime::from_micros(200),
            ..TraceConfig::new(40, 11)
        },
    );
    let run = |max_batch: usize| {
        let cfg = FleetConfig {
            queue_capacity: 128,
            ..FleetConfig::new(vec![GpuSku::mali_g71_mp8()])
        }
        .with_max_batch(max_batch);
        let mut fleet = Fleet::new(vec![grt_ml::zoo::mnist()], cfg);
        fleet.run(&trace)
    };
    let scalar = run(1);
    let batched = run(8);
    assert_eq!(scalar.completed, 40);
    assert_eq!(batched.completed, 40);
    // max_batch = 1 keeps the batching section all-zero/one.
    assert_eq!((scalar.batches, scalar.batched_requests), (0, 0));
    assert_eq!(scalar.max_batch_served, 1);
    assert!(
        batched.batches > 0,
        "a saturated single-model queue must form real batches"
    );
    assert!((2..=8).contains(&batched.max_batch_served));
    assert_eq!(
        batched.output_digest, scalar.output_digest,
        "batching must not change any replay output or the completion order"
    );
    // One receipt per service interval, every one verified.
    assert_eq!(
        batched.receipts_issued + batched.batched_requests - batched.batches,
        batched.completed
    );
    assert_eq!(batched.receipts_verified, batched.receipts_issued);
    assert!(batched.receipts_rejected.is_empty());
    // Fewer, amortized intervals for the same work: batching never loses.
    assert!(
        batched.makespan <= scalar.makespan,
        "batched makespan {:?} worse than scalar {:?}",
        batched.makespan,
        scalar.makespan
    );
}

/// Profiled service batches too: warm `(model, SKU, B)` intervals are
/// measured once on a probe and reused, with the same accounting
/// invariants as real-replay batching.
#[test]
fn batched_serving_in_profiled_mode() {
    let cfg = FleetConfig {
        queue_capacity: 128,
        ..FleetConfig::new(vec![GpuSku::mali_g71_mp8()])
    }
    .with_service_mode(ServiceMode::Profiled)
    .with_max_batch(4);
    let trace = generate_trace(
        1,
        &TraceConfig {
            mean_interarrival: SimTime::from_micros(200),
            ..TraceConfig::new(30, 13)
        },
    );
    let mut fleet = Fleet::new(vec![grt_ml::zoo::mnist()], cfg);
    let report = fleet.run(&trace);
    assert_eq!(report.completed, 30);
    assert!(report.batches > 0, "profiled fleet must batch under load");
    assert!(report.max_batch_served <= 4);
    assert_eq!(
        report.receipts_issued + report.batched_requests - report.batches,
        report.completed
    );
    assert_eq!(report.receipts_verified, report.receipts_issued);
    assert_eq!(report.max_inflight, 1);
}

/// The event-indexed scheduler and the legacy sweep stay byte-identical
/// with batching enabled — batch formation happens in the shared
/// `process_serve`, so the differential oracle covers it by construction,
/// and this pins that.
#[test]
fn schedulers_agree_with_batching() {
    let cfg = FleetConfig {
        queue_capacity: 128,
        ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp4()])
    }
    .with_max_batch(4);
    let trace = generate_trace(
        1,
        &TraceConfig {
            mean_interarrival: SimTime::from_micros(200),
            ..TraceConfig::new(40, 11)
        },
    );
    assert_schedulers_agree("batched", &[grt_ml::zoo::mnist()], &cfg, &trace, None);
}
