//! Integration tests of the serving subsystem (`grt-serve`): fleet
//! invariants, admission accounting, affinity batching, and registry
//! warm-up economics, end-to-end through the real GP replay protocol.

use grt_gpu::GpuSku;
use grt_serve::{generate_trace, Fleet, FleetConfig, TraceConfig};
use grt_sim::SimTime;

fn mnist_fleet(skus: Vec<GpuSku>, queue_capacity: usize) -> Fleet {
    let cfg = FleetConfig {
        queue_capacity,
        ..FleetConfig::new(skus)
    };
    Fleet::new(vec![grt_ml::zoo::mnist()], cfg)
}

/// The paper's replayer assumes the GPU job queue holds at most one job;
/// the fleet must never start a replay on a device that is already
/// serving one, even under heavy contention.
#[test]
fn job_queue_length_one_invariant() {
    let mut fleet = mnist_fleet(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp4()], 128);
    // Arrivals far faster than service: every device is saturated.
    let cfg = TraceConfig {
        mean_interarrival: SimTime::from_micros(200),
        ..TraceConfig::new(60, 11)
    };
    let report = fleet.run(&generate_trace(1, &cfg));
    assert_eq!(report.completed, 60);
    assert_eq!(
        report.max_inflight, 1,
        "a device ran two replays concurrently"
    );
}

/// Every submitted request is accounted for exactly once: completed,
/// rejected, timed out, or failed — never silently dropped.
#[test]
fn admission_accounting_is_conserved() {
    // Tiny queues + a burst during the multi-second cold start force
    // both rejections and completions.
    let mut fleet = mnist_fleet(vec![GpuSku::mali_g71_mp8()], 4);
    let cfg = TraceConfig {
        mean_interarrival: SimTime::from_millis(5),
        timeout: SimTime::from_secs(2),
        ..TraceConfig::new(80, 7)
    };
    let report = fleet.run(&generate_trace(1, &cfg));
    assert_eq!(
        report.completed + report.rejected + report.timed_out + report.failed,
        report.submitted,
        "requests leaked: {report:?}"
    );
    assert!(report.rejected > 0, "expected backpressure under burst");
    assert!(
        report.timed_out > 0,
        "expected queue timeouts with a 2s deadline behind a cold start"
    );
}

/// Same-model affinity amortizes staging: many requests, few
/// `LOAD_RECORDING`s.
#[test]
fn affinity_batching_amortizes_loads() {
    let mut fleet = mnist_fleet(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp8()], 64);
    let report = fleet.run(&generate_trace(1, &TraceConfig::new(40, 3)));
    assert_eq!(report.completed, 40);
    let total_loads: u64 = report.per_device.iter().map(|d| d.loads).sum();
    // One model: each device stages it at most once, ever.
    assert!(
        total_loads <= 2,
        "staging not amortized: {total_loads} loads for 40 requests"
    );
}

/// A warmed registry makes a rerun strictly cheaper: fewer cold starts
/// and no record time.
#[test]
fn warm_registry_beats_cold() {
    let models = vec![grt_ml::zoo::mnist(), grt_ml::zoo::alexnet()];
    let cfg = FleetConfig {
        queue_capacity: 64,
        ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g72_mp12()])
    };
    let trace = generate_trace(models.len(), &TraceConfig::new(30, 9));

    let mut cold_fleet = Fleet::new(models.clone(), cfg.clone());
    let cold = cold_fleet.run(&trace);
    assert!(cold.cold_starts > 0, "fresh registry must record");

    let mut registry = cold_fleet.into_registry();
    registry.reset_stats();
    let mut warm_fleet = Fleet::with_registry(models, cfg, registry);
    let warm = warm_fleet.run(&trace);

    assert!(
        warm.cold_starts < cold.cold_starts,
        "warm run must save cold starts ({} vs {})",
        warm.cold_starts,
        cold.cold_starts
    );
    assert_eq!(warm.cold_starts, 0);
    assert!(warm.record_time.is_zero());
    assert!(warm.total.p99 < cold.total.p99);
    // Note: output digests are completion-order-sensitive, and cold-start
    // delays reshuffle scheduling, so cold and warm digests may differ
    // even though per-request outputs match. Run-to-run bit-identity is
    // asserted in tests/determinism.rs instead.
}

/// Rejections carry a positive retry-after hint (the backpressure signal
/// a real client would use to pace resubmission).
#[test]
fn rejections_carry_retry_hints() {
    // Zero-capacity queues: every request is rejected, nothing serves.
    let mut fleet = mnist_fleet(vec![GpuSku::mali_g71_mp8()], 0);
    let (report, events) = fleet.run_detailed(&generate_trace(1, &TraceConfig::new(10, 5)));
    assert_eq!(report.completed, 0);
    assert_eq!(report.rejected, 10);
    assert_eq!(report.submitted, 10);
    assert_eq!(events.rejections.len(), 10);
    for r in &events.rejections {
        assert!(
            !r.retry_after.is_zero(),
            "rejection of request {} has no retry hint",
            r.id
        );
    }
}
