//! Determinism invariants (§2.3): record runs are bit-for-bit
//! reproducible, and replay is deterministic.

use grt_core::session::{RecordSession, RecorderMode};
use grt_gpu::GpuSku;
use grt_net::NetConditions;

fn record_bytes(mode: RecorderMode) -> Vec<u8> {
    let mut s = RecordSession::new(GpuSku::mali_g71_mp8(), NetConditions::wifi(), mode);
    s.record(&grt_ml::zoo::mnist())
        .expect("record")
        .recording
        .bytes
}

/// Two independent sessions produce byte-identical recordings: the whole
/// stack — driver, JIT, shims, sync, compression — is deterministic.
#[test]
fn independent_sessions_produce_identical_recordings() {
    assert_eq!(
        record_bytes(RecorderMode::OursMDS),
        record_bytes(RecorderMode::OursMDS)
    );
}

/// All four recorder builds capture the *same* interaction semantics:
/// the event logs (ignoring sync-batching differences in LoadMemDelta
/// granularity) drive identical replayed computations.
#[test]
fn all_modes_produce_equivalent_recordings() {
    use grt_core::replay::{workload_weights, Replayer};
    use grt_ml::reference::{test_input, ReferenceNet};
    let spec = grt_ml::zoo::mnist();
    let input = test_input(&spec, 21);
    let weights = workload_weights(&spec);
    let reference = ReferenceNet::new(spec.clone()).infer(&input);
    for mode in RecorderMode::ALL {
        let mut s = RecordSession::new(GpuSku::mali_g71_mp8(), NetConditions::wifi(), mode);
        let out = s.record(&spec).expect("record");
        let key = s.recording_key();
        let mut r = Replayer::new(&s.client, std::rc::Rc::new(grt_lint::Linter::new()));
        let (gpu_out, _) = r
            .replay(&out.recording, &key, &input, &weights)
            .expect("replay");
        for (a, b) in gpu_out.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-3, "{mode:?} diverged");
        }
    }
}

/// Replaying the same recording with the same input twice gives identical
/// outputs and identical virtual delays.
#[test]
fn replay_is_deterministic() {
    use grt_core::replay::{workload_weights, Replayer};
    use grt_ml::reference::test_input;
    let spec = grt_ml::zoo::mnist();
    let mut s = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let out = s.record(&spec).expect("record");
    let key = s.recording_key();
    let mut r = Replayer::new(&s.client, std::rc::Rc::new(grt_lint::Linter::new()));
    let input = test_input(&spec, 5);
    let weights = workload_weights(&spec);
    let (o1, d1) = r.replay(&out.recording, &key, &input, &weights).unwrap();
    let (o2, d2) = r.replay(&out.recording, &key, &input, &weights).unwrap();
    assert_eq!(o1, o2);
    assert_eq!(d1, d2);
}

/// The virtual-time accounting itself is deterministic: two identical
/// sessions report identical delays, RTT counts, and sync bytes.
#[test]
fn experiment_metrics_are_reproducible() {
    let run = || {
        let mut s = RecordSession::new(
            GpuSku::mali_g71_mp8(),
            NetConditions::cellular(),
            RecorderMode::OursMD,
        );
        let out = s.record(&grt_ml::zoo::mnist()).expect("record");
        (out.delay, out.blocking_rtts, out.sync_bytes)
    };
    assert_eq!(run(), run());
}

/// An entire serving simulation is deterministic: two fleets built from
/// the same seed, trace, and SKU mix produce bit-identical metrics JSON —
/// every latency percentile, counter, and the replay-output digest.
#[test]
fn serve_simulation_is_bit_identical() {
    use grt_serve::{generate_trace, Fleet, FleetConfig, TraceConfig};

    let run = || {
        let models = vec![grt_ml::zoo::mnist(), grt_ml::zoo::alexnet()];
        let cfg = FleetConfig {
            queue_capacity: 64,
            ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp4()])
        };
        let trace = generate_trace(models.len(), &TraceConfig::new(40, 17));
        let mut fleet = Fleet::new(models, cfg);
        fleet.run(&trace).to_json()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "serve reports diverged between identical runs");
    // The digest line proves replay outputs (not just timings) matched.
    assert!(a.contains("output_digest"));
}

/// A *faulted* serving simulation is just as deterministic: the same
/// seed and the same fault plan produce a bit-identical metrics JSON and
/// an identical failover decision log — same requests moved between the
/// same devices at the same virtual instants.
#[test]
fn faulted_serve_simulation_is_bit_identical() {
    use grt_serve::{generate_trace, Fleet, FleetConfig, TraceConfig};
    use grt_sim::{FaultPlan, FaultPlanConfig, SimTime};
    use std::rc::Rc;

    let run = || {
        // A generated schedule for variety, plus one pinned crash inside
        // device 0's multi-second cold start so failovers are guaranteed.
        let plan = Rc::new(
            FaultPlan::generate(
                0xC4A05,
                &FaultPlanConfig {
                    horizon: SimTime::from_secs(10),
                    devices: 2,
                    ..FaultPlanConfig::default()
                },
            )
            .with_crash(0, SimTime::from_secs(1), SimTime::from_millis(500)),
        );
        let cfg = FleetConfig {
            queue_capacity: 64,
            ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp8()])
        }
        .with_faults(plan);
        let trace = generate_trace(1, &TraceConfig::new(12, 17));
        let mut fleet = Fleet::new(vec![grt_ml::zoo::mnist()], cfg);
        let (report, events) = fleet.run_detailed(&trace);
        (report.to_json(), events.failovers)
    };
    let (json_a, failovers_a) = run();
    let (json_b, failovers_b) = run();
    assert_eq!(json_a, json_b, "faulted serve reports diverged");
    assert_eq!(failovers_a, failovers_b, "failover decisions diverged");
    assert!(
        !failovers_a.is_empty(),
        "the pinned crash must force at least one failover"
    );
    assert!(json_a.contains("\"fault_tolerance\""));
}
