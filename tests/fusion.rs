//! Superinstruction fusion oracle (DESIGN.md §15): fusion is a lowering
//! decision that must be *invisible* in the bytes.
//!
//! - Fused compiled replay must be bitwise identical to the unfused
//!   compiled lowering and to the interpreted path, across every zoo
//!   network and randomized shape-consistent networks.
//! - Fused batched replay must stay lane-for-lane identical to sequential
//!   fused scalar replays.
//! - Fusion must actually fire on the conv nets (the perf win is load-
//!   bearing: ISSUE 10 gates ≥1.15× on ResNet12/VGG16), and the virtual-
//!   time model must show the warm replay getting faster, not just the op
//!   count shrinking.

use grt_core::compiled::{compile_unfused, CompiledRecording};
use grt_core::replay::{workload_weights, Replayer, REPLAY_POLL_ITER_CAP};
use grt_core::session::{RecordOutcome, RecordSession, RecorderMode};
use grt_ml::reference::test_input;
use grt_ml::NetworkSpec;
use std::rc::Rc;

fn zoo(name: &str) -> NetworkSpec {
    grt_ml::zoo::all_benchmarks()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap()
}

/// Static layer-name pool for randomized specs (`LayerSpec::name` is
/// `&'static str`).
const RAND_LAYER_NAMES: [&str; 12] = [
    "fz0", "fz1", "fz2", "fz3", "fz4", "fz5", "fz6", "fz7", "fz8", "fz9", "fz10", "fz11",
];

/// Random but shape-consistent conv/pool/FC network (same scheme as the
/// fastpath suite): the randomness is in geometry, splits, and setup
/// jobs, which is exactly what perturbs the fusion pass's job stream.
fn random_spec(seed: u64) -> NetworkSpec {
    use grt_gpu::{ConvParams, PoolKind};
    use grt_ml::{LayerOp, LayerSpec};
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut pick = move |lo: u32, hi: u32| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lo + (state >> 33) as u32 % (hi - lo + 1)
    };
    let mut c = pick(1, 3);
    let mut h = pick(8, 14);
    let input_len = c * h * h;
    let mut layers: Vec<LayerSpec> = Vec::new();
    for _ in 0..pick(1, 3) {
        let k = pick(1, 3).min(h);
        let p = ConvParams {
            in_c: c,
            in_h: h,
            in_w: h,
            out_c: pick(1, 6),
            k,
            stride: 1,
            pad: pick(0, 1),
        };
        let op = LayerOp::Conv {
            p,
            relu: pick(0, 1) == 1,
        };
        let macs = op.actual_macs();
        layers.push(LayerSpec {
            name: RAND_LAYER_NAMES[layers.len()],
            op,
            splits: pick(1, 3),
            setup_jobs: pick(0, 2),
            nominal_macs: macs * 50,
            nominal_data_bytes: 10_000,
            save_skip: false,
        });
        c = p.out_c;
        h = p.out_h();
        if h >= 2 && pick(0, 1) == 1 {
            let kind = if pick(0, 1) == 1 {
                PoolKind::Max
            } else {
                PoolKind::Avg
            };
            let op = LayerOp::Pool {
                kind,
                c,
                h,
                w: h,
                k: 2,
                stride: 2,
            };
            let macs = op.actual_macs();
            layers.push(LayerSpec {
                name: RAND_LAYER_NAMES[layers.len()],
                op,
                splits: 1,
                setup_jobs: pick(0, 1),
                nominal_macs: macs * 50,
                nominal_data_bytes: 10_000,
                save_skip: false,
            });
            h = (h - 2) / 2 + 1;
        }
    }
    let out_dim = pick(2, 10);
    let fc = LayerOp::Fc {
        in_dim: c * h * h,
        out_dim,
        relu: pick(0, 1) == 1,
    };
    let fc_macs = fc.actual_macs();
    layers.push(LayerSpec {
        name: RAND_LAYER_NAMES[layers.len()],
        op: fc,
        splits: pick(1, 2),
        setup_jobs: pick(0, 1),
        nominal_macs: fc_macs * 50,
        nominal_data_bytes: 10_000,
        save_skip: false,
    });
    layers.push(LayerSpec {
        name: RAND_LAYER_NAMES[layers.len()],
        op: LayerOp::Softmax { len: out_dim },
        splits: 1,
        setup_jobs: 0,
        nominal_macs: out_dim as u64 * 4,
        nominal_data_bytes: 1_000,
        save_skip: false,
    });
    NetworkSpec {
        name: "FusionRandomNet",
        input_len,
        output_len: out_dim,
        layers,
    }
}

fn rig(spec: &NetworkSpec) -> (RecordSession, RecordOutcome) {
    let mut s = RecordSession::new(
        grt_gpu::GpuSku::mali_g71_mp8(),
        grt_net::NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let out = s.record(spec).expect("record");
    (s, out)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn unfused_of(s: &RecordSession, out: &RecordOutcome) -> CompiledRecording {
    let rec = out.recording.verify_and_parse(&s.recording_key()).unwrap();
    compile_unfused(&rec, grt_gpu::PAGE_SIZE, REPLAY_POLL_ITER_CAP).unwrap()
}

/// Fused output bits equal the unfused compiled lowering *and* the
/// interpreted path on every zoo network, and fused warm replay is
/// virtual-time faster wherever chains formed.
#[test]
fn fused_replay_is_bitwise_identical_across_the_zoo() {
    for spec in grt_ml::zoo::all_benchmarks() {
        let (s, out) = rig(&spec);
        let key = s.recording_key();
        let mut replayer = Replayer::new(&s.client, Rc::new(grt_lint::Linter::new()));
        let weights = workload_weights(&spec);
        let fused = replayer.compile_signed(&out.recording, &key).unwrap();
        let unfused = unfused_of(&s, &out);
        assert!(unfused.fusion_plan().is_empty(), "{}", spec.name);

        for variant in [0x21u64, 0x5E] {
            let input = test_input(&spec, variant);
            let (base, base_t) = replayer
                .replay_compiled(&unfused, &input, &weights)
                .unwrap();
            let base_events = replayer.last_profile().events;
            let (interp, _) = replayer
                .replay(&out.recording, &key, &input, &weights)
                .unwrap();
            let (fast, fast_t) = replayer.replay_compiled(&fused, &input, &weights).unwrap();
            let profile = replayer.last_profile();

            assert_eq!(bits(&base), bits(&fast), "{}: fused vs unfused", spec.name);
            assert_eq!(
                bits(&interp),
                bits(&fast),
                "{}: fused vs interpreted",
                spec.name
            );
            let summary = profile.fusion;
            assert_eq!(summary, fused.fusion_summary(), "{}", spec.name);
            assert_eq!(
                base_events - profile.events,
                summary.steps_elided,
                "{}: elided steps accounting",
                spec.name
            );
            if summary.jobs_elided > 0 {
                assert!(
                    fast_t < base_t,
                    "{}: fused warm replay must be faster ({fast_t:?} vs {base_t:?})",
                    spec.name
                );
            }
        }
    }
}

/// The conv nets the perf gate measures must actually fuse: identity
/// staging copies elide and conv→(add)→relu chains form.
#[test]
fn conv_nets_fuse_nontrivially() {
    for name in ["ResNet12", "VGG16"] {
        let spec = zoo(name);
        let (s, out) = rig(&spec);
        let key = s.recording_key();
        let mut replayer = Replayer::new(&s.client, Rc::new(grt_lint::Linter::new()));
        let fused = replayer.compile_signed(&out.recording, &key).unwrap();
        let summary = fused.fusion_summary();
        assert!(summary.chains_fused > 0, "{name}: no chains fused");
        assert!(summary.copies_elided > 0, "{name}: no copies elided");
        assert!(summary.steps_elided > 0, "{name}");
        assert!(
            fused.kept_ranges().len() as u64 > 1,
            "{name}: kept ranges should be split by elided windows"
        );
    }
}

/// Fused B=8 batched replay is lane-for-lane identical to eight
/// sequential fused scalar replays (fusion composes with PR 9's lanes).
#[test]
fn fused_batched_replay_matches_sequential() {
    for name in ["ResNet12", "MNIST"] {
        let spec = zoo(name);
        let (s, out) = rig(&spec);
        let key = s.recording_key();
        let mut replayer = Replayer::new(&s.client, Rc::new(grt_lint::Linter::new()));
        let weights = workload_weights(&spec);
        let fused = replayer.compile_signed(&out.recording, &key).unwrap();
        let inputs: Vec<Vec<f32>> = (0..8).map(|b| test_input(&spec, 0xF0 + b)).collect();

        let sequential: Vec<Vec<u32>> = inputs
            .iter()
            .map(|input| {
                let (o, _) = replayer.replay_compiled(&fused, input, &weights).unwrap();
                bits(&o)
            })
            .collect();
        let (batched, _) = replayer
            .replay_compiled_batch(&fused, &inputs, &weights)
            .unwrap();
        for (lane, (seq, got)) in sequential.iter().zip(&batched).enumerate() {
            assert_eq!(seq, &bits(got), "{name}: lane {lane}");
        }
    }
}

/// Randomized shape-consistent MLPs: fused and unfused lowerings agree
/// bitwise on nets the zoo never exercises.
#[test]
fn fused_replay_matches_unfused_on_randomized_networks() {
    for seed in 0..4u64 {
        let spec = random_spec(0xF05E_D000 ^ (seed * 0x51DE));
        let (s, out) = rig(&spec);
        let key = s.recording_key();
        let mut replayer = Replayer::new(&s.client, Rc::new(grt_lint::Linter::new()));
        let weights = workload_weights(&spec);
        let fused = replayer.compile_signed(&out.recording, &key).unwrap();
        let unfused = unfused_of(&s, &out);
        let input = test_input(&spec, seed);
        let (base, _) = replayer
            .replay_compiled(&unfused, &input, &weights)
            .unwrap();
        let (fast, _) = replayer.replay_compiled(&fused, &input, &weights).unwrap();
        assert_eq!(bits(&base), bits(&fast), "seed {seed}");
    }
}

/// R7/R9 vetting runs over the *unfused* IR: fusion is invisible to the
/// lint verdict, and the certified R9 budget (worst-case MACs and poll
/// iterations over the recorded dialog) must still bound what a fused
/// replay actually executes — fusion only ever removes work.
#[test]
fn lint_budget_still_bounds_fused_replay() {
    let spec = zoo("ResNet12");
    let (s, out) = rig(&spec);
    let key = s.recording_key();
    let rec = out.recording.verify_and_parse(&key).unwrap();
    let report = grt_lint::Linter::new().lint(&rec, &grt_gpu::GpuSku::mali_g71_mp8(), Some(&spec));
    assert!(report.passed(), "vetting is fusion-independent");
    let budget = report.budget.expect("R9 certifies a budget");

    let mut replayer = Replayer::new(&s.client, Rc::new(grt_lint::Linter::new()));
    let weights = workload_weights(&spec);
    let fused = replayer.compile_signed(&out.recording, &key).unwrap();
    assert!(fused.fusion_summary().chains_fused > 0);
    let input = test_input(&spec, 7);
    replayer.replay_compiled(&fused, &input, &weights).unwrap();
    let exec = replayer.last_profile().exec;
    let executed_macs: u64 = exec.per_kind.iter().map(|k| k.macs).sum();
    assert!(executed_macs > 0);
    assert!(
        executed_macs <= budget.macs,
        "fused replay executed {executed_macs} MACs, budget certifies {}",
        budget.macs
    );
}
