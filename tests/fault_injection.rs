//! Fault-injection integration tests: mispredictions, hardware faults,
//! and client hangs must be detected and surfaced, never silently absorbed.

use grt_core::replay::{workload_weights, Replayer};
use grt_core::session::{RecordSession, RecorderMode};
use grt_gpu::GpuSku;
use grt_ml::reference::{test_input, ReferenceNet};
use grt_net::NetConditions;

fn session() -> RecordSession {
    RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    )
}

/// §7.3: injected mispredictions at many positions are always detected,
/// always recovered from, and never corrupt the produced recording.
#[test]
fn injected_mispredictions_always_detected_and_recovered() {
    let spec = grt_ml::zoo::mnist();
    let weights = workload_weights(&spec);
    let reference = ReferenceNet::new(spec.clone());
    for position in [5u64, 50, 200, 400] {
        let mut s = session();
        s.record(&spec).expect("warm-up");
        let before = s.stats.get("spec.mispredictions");
        s.shim.inject_misprediction_at(position);
        let out = s.record(&spec).expect("run completes despite injection");
        assert!(
            s.stats.get("spec.mispredictions") > before,
            "injection at {position} not detected"
        );
        let key = s.recording_key();
        let mut r = Replayer::new(&s.client, std::rc::Rc::new(grt_lint::Linter::new()));
        let input = test_input(&spec, 1);
        let (gpu_out, _) = r
            .replay(&out.recording, &key, &input, &weights)
            .expect("post-recovery recording replays");
        let cpu_out = reference.infer(&input);
        for (a, b) in gpu_out.iter().zip(&cpu_out) {
            assert!((a - b).abs() < 1e-3, "corrupted recording at {position}");
        }
    }
}

/// Natural record runs never mispredict (the paper saw none in 1,000
/// runs; we assert it over repeated warm runs here).
#[test]
fn no_natural_mispredictions_across_repeated_runs() {
    let spec = grt_ml::zoo::mnist();
    let mut s = session();
    for _ in 0..6 {
        s.record(&spec).expect("record");
    }
    assert_eq!(s.stats.get("spec.mispredictions"), 0);
}

/// A malformed job (bad descriptor) faults cleanly through the whole
/// remote stack rather than wedging it.
#[test]
fn remote_job_fault_is_surfaced() {
    use grt_driver::{DriverError, Usage};
    use grt_gpu::mmu::PteFlags;
    let mut s = session();
    s.driver.probe().expect("probe");
    s.driver.power_up().expect("power");
    let va = s
        .driver
        .alloc_region(1, PteFlags::rw(), Usage::JobDescriptors, None)
        .expect("alloc");
    s.driver
        .copy_to_gpu(va, &[0xEEu8; 64])
        .expect("garbage descriptor");
    s.driver.submit_job(va).expect("submit");
    assert!(s.shim.wait_job_irq_remote());
    match s.driver.handle_job_irq().expect("irq handled") {
        grt_driver::JobIrqOutcome::Failed(code) => {
            assert_ne!(code, 0);
        }
        other => panic!("expected fault, got {other:?}"),
    }
    // The driver is still operational afterwards.
    let err = s.driver.submit_job(0xDEAD_BEEF);
    assert!(!matches!(err, Err(DriverError::NotProbed)));
}

/// Replay interrupt hangs are reported, not spun on forever: a recording
/// whose WaitIrq can never fire (the preceding job-start write removed)
/// errors with IrqHang.
#[test]
fn replay_detects_interrupt_hang() {
    use grt_core::recording::{Event, Recording, SignedRecording};
    let spec = grt_ml::zoo::mnist();
    let mut s = session();
    let out = s.record(&spec).expect("record");
    let key = s.recording_key();
    let mut rec: Recording = out.recording.verify_and_parse(&key).expect("parse");
    // Strip the job-start writes so no job ever runs; the recorded
    // WaitIrq then waits on an interrupt that cannot fire.
    let js_command =
        grt_gpu::regs::job_control::slot_base(0) + grt_gpu::regs::job_control::JS_COMMAND;
    rec.events
        .retain(|e| !matches!(e, Event::RegWrite { offset, .. } if *offset == js_command));
    assert!(rec
        .events
        .iter()
        .any(|e| matches!(e, Event::WaitIrq { .. })));
    let hung = SignedRecording::sign(&rec, &key);
    let mut r = Replayer::new(&s.client, std::rc::Rc::new(grt_core::gate::PermissiveGate));
    let err = r
        .replay(&hung, &key, &test_input(&spec, 0), &workload_weights(&spec))
        .unwrap_err();
    assert_eq!(err, grt_core::replay::ReplayError::IrqHang);
}

/// A corrupted metastate delta inside an otherwise well-signed recording
/// is caught by the decoder (defense in depth below the signature).
#[test]
fn replay_detects_corrupt_delta() {
    use grt_core::recording::{Event, Recording, SignedRecording};
    let spec = grt_ml::zoo::mnist();
    let mut s = session();
    let out = s.record(&spec).expect("record");
    let key = s.recording_key();
    let mut rec: Recording = out.recording.verify_and_parse(&key).expect("parse");
    let mut corrupted = false;
    for e in rec.events.iter_mut() {
        if let Event::LoadMemDelta { delta, .. } = e {
            if delta.len() > 16 {
                delta.truncate(delta.len() / 2);
                corrupted = true;
                break;
            }
        }
    }
    assert!(corrupted, "no delta to corrupt");
    let evil = SignedRecording::sign(&rec, &key);
    let mut r = Replayer::new(&s.client, std::rc::Rc::new(grt_core::gate::PermissiveGate));
    let err = r
        .replay(&evil, &key, &test_input(&spec, 0), &workload_weights(&spec))
        .unwrap_err();
    assert_eq!(err, grt_core::replay::ReplayError::CorruptDelta);
}

/// Robustness fuzz: arbitrary (but correctly signed) event soups must
/// never panic or wedge the replayer — they either replay or fail with a
/// clean error. This is the recording-parser/replayer attack surface a
/// compromised cloud could reach even with valid signatures.
#[test]
fn replayer_survives_arbitrary_signed_recordings() {
    use grt_core::recording::{DataSlot, Event, Recording, SignedRecording};
    use grt_crypto::KeyPair;
    use grt_sim::Rng;
    let clock = grt_sim::Clock::new();
    let stats = grt_sim::Stats::new();
    let device = grt_core::session::ClientDevice::new(GpuSku::mali_g71_mp8(), &clock, &stats, b"x");
    let key = KeyPair::derive(b"fuzz", "recording");
    let mut rng = Rng::new(0xF422);
    for case in 0..40u64 {
        let n_events = rng.gen_range(60) as usize;
        let mut events = Vec::new();
        for _ in 0..n_events {
            events.push(match rng.gen_range(6) {
                0 => Event::RegWrite {
                    offset: rng.next_u32() & 0x3FFF,
                    value: rng.next_u32(),
                },
                1 => Event::RegRead {
                    offset: rng.next_u32() & 0x3FFF,
                    value: rng.next_u32(),
                    verify: false,
                },
                2 => Event::Poll {
                    reg: rng.next_u32() & 0x3FFF,
                    mask: rng.next_u32(),
                    cond: (rng.gen_range(3)) as u8,
                    cmp: rng.next_u32(),
                    // Adversarial iteration budgets must be capped.
                    max_iters: u32::MAX,
                    delay_us: 1,
                },
                3 => Event::WaitIrq {
                    line: rng.gen_range(4) as u8,
                },
                4 => Event::LoadMemDelta {
                    pa: rng.next_u64() & 0xFFF_FFFF,
                    len: rng.next_u32() & 0xFFFF,
                    delta: {
                        let mut d = vec![0u8; rng.gen_range(64) as usize];
                        rng.fill_bytes(&mut d);
                        d
                    },
                },
                _ => Event::BeginLayer {
                    index: rng.next_u32(),
                },
            });
        }
        let rec = Recording {
            workload: format!("fuzz-{case}"),
            gpu_id: GpuSku::mali_g71_mp8().gpu_id,
            input: DataSlot {
                pa: 0x1000,
                len_elems: 4,
            },
            output: DataSlot {
                pa: 0x2000,
                len_elems: 4,
            },
            weights: vec![],
            events,
        };
        let signed = SignedRecording::sign(&rec, &key);
        let mut replayer = Replayer::new(&device, std::rc::Rc::new(grt_core::gate::PermissiveGate));
        // Must terminate with Ok or a clean error; panics/hangs fail the test.
        let _ = replayer.replay(&signed, &key, &[0.0; 4], &[]);
    }
}
