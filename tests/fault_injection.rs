//! Fault-injection integration tests: mispredictions, hardware faults,
//! and client hangs must be detected and surfaced, never silently absorbed.

use grt_core::replay::{workload_weights, Replayer};
use grt_core::session::{RecordSession, RecorderMode};
use grt_gpu::GpuSku;
use grt_ml::reference::{test_input, ReferenceNet};
use grt_net::NetConditions;

fn session() -> RecordSession {
    RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    )
}

/// §7.3: injected mispredictions at many positions are always detected,
/// always recovered from, and never corrupt the produced recording.
#[test]
fn injected_mispredictions_always_detected_and_recovered() {
    let spec = grt_ml::zoo::mnist();
    let weights = workload_weights(&spec);
    let reference = ReferenceNet::new(spec.clone());
    for position in [5u64, 50, 200, 400] {
        let mut s = session();
        s.record(&spec).expect("warm-up");
        let before = s.stats.get("spec.mispredictions");
        s.shim.inject_misprediction_at(position);
        let out = s.record(&spec).expect("run completes despite injection");
        assert!(
            s.stats.get("spec.mispredictions") > before,
            "injection at {position} not detected"
        );
        let key = s.recording_key();
        let mut r = Replayer::new(&s.client, std::rc::Rc::new(grt_lint::Linter::new()));
        let input = test_input(&spec, 1);
        let (gpu_out, _) = r
            .replay(&out.recording, &key, &input, &weights)
            .expect("post-recovery recording replays");
        let cpu_out = reference.infer(&input);
        for (a, b) in gpu_out.iter().zip(&cpu_out) {
            assert!((a - b).abs() < 1e-3, "corrupted recording at {position}");
        }
    }
}

/// Natural record runs never mispredict (the paper saw none in 1,000
/// runs; we assert it over repeated warm runs here).
#[test]
fn no_natural_mispredictions_across_repeated_runs() {
    let spec = grt_ml::zoo::mnist();
    let mut s = session();
    for _ in 0..6 {
        s.record(&spec).expect("record");
    }
    assert_eq!(s.stats.get("spec.mispredictions"), 0);
}

/// A malformed job (bad descriptor) faults cleanly through the whole
/// remote stack rather than wedging it.
#[test]
fn remote_job_fault_is_surfaced() {
    use grt_driver::{DriverError, Usage};
    use grt_gpu::mmu::PteFlags;
    let mut s = session();
    s.driver.probe().expect("probe");
    s.driver.power_up().expect("power");
    let va = s
        .driver
        .alloc_region(1, PteFlags::rw(), Usage::JobDescriptors, None)
        .expect("alloc");
    s.driver
        .copy_to_gpu(va, &[0xEEu8; 64])
        .expect("garbage descriptor");
    s.driver.submit_job(va).expect("submit");
    assert!(s.shim.wait_job_irq_remote());
    match s.driver.handle_job_irq().expect("irq handled") {
        grt_driver::JobIrqOutcome::Failed(code) => {
            assert_ne!(code, 0);
        }
        other => panic!("expected fault, got {other:?}"),
    }
    // The driver is still operational afterwards.
    let err = s.driver.submit_job(0xDEAD_BEEF);
    assert!(!matches!(err, Err(DriverError::NotProbed)));
}

/// Replay interrupt hangs are reported, not spun on forever: a recording
/// whose WaitIrq can never fire (the preceding job-start write removed)
/// errors with IrqHang.
#[test]
fn replay_detects_interrupt_hang() {
    use grt_core::recording::{Event, Recording, SignedRecording};
    let spec = grt_ml::zoo::mnist();
    let mut s = session();
    let out = s.record(&spec).expect("record");
    let key = s.recording_key();
    let mut rec: Recording = out.recording.verify_and_parse(&key).expect("parse");
    // Strip the job-start writes so no job ever runs; the recorded
    // WaitIrq then waits on an interrupt that cannot fire.
    let js_command =
        grt_gpu::regs::job_control::slot_base(0) + grt_gpu::regs::job_control::JS_COMMAND;
    rec.events
        .retain(|e| !matches!(e, Event::RegWrite { offset, .. } if *offset == js_command));
    assert!(rec
        .events
        .iter()
        .any(|e| matches!(e, Event::WaitIrq { .. })));
    let hung = SignedRecording::sign(&rec, &key);
    let mut r = Replayer::new(&s.client, std::rc::Rc::new(grt_core::gate::PermissiveGate));
    let err = r
        .replay(&hung, &key, &test_input(&spec, 0), &workload_weights(&spec))
        .unwrap_err();
    assert_eq!(err, grt_core::replay::ReplayError::IrqHang);
}

/// A corrupted metastate delta inside an otherwise well-signed recording
/// is caught by the decoder (defense in depth below the signature).
#[test]
fn replay_detects_corrupt_delta() {
    use grt_core::recording::{Event, Recording, SignedRecording};
    let spec = grt_ml::zoo::mnist();
    let mut s = session();
    let out = s.record(&spec).expect("record");
    let key = s.recording_key();
    let mut rec: Recording = out.recording.verify_and_parse(&key).expect("parse");
    let mut corrupted = false;
    for e in rec.events.iter_mut() {
        if let Event::LoadMemDelta { delta, .. } = e {
            if delta.len() > 16 {
                delta.truncate(delta.len() / 2);
                corrupted = true;
                break;
            }
        }
    }
    assert!(corrupted, "no delta to corrupt");
    let evil = SignedRecording::sign(&rec, &key);
    let mut r = Replayer::new(&s.client, std::rc::Rc::new(grt_core::gate::PermissiveGate));
    let err = r
        .replay(&evil, &key, &test_input(&spec, 0), &workload_weights(&spec))
        .unwrap_err();
    assert_eq!(err, grt_core::replay::ReplayError::CorruptDelta);
}

// ---------------------------------------------------------------------
// Chaos soak: the serving fleet under randomized fault schedules.
// ---------------------------------------------------------------------

/// A two-layer network small enough that one replay costs tens of
/// wall-milliseconds, so hundreds of chaos cases stay affordable. The
/// fleet machinery under test (event ordering, failover, health, record
/// tunnel) is identical regardless of model size.
fn tiny_spec() -> grt_ml::NetworkSpec {
    use grt_ml::{LayerOp, LayerSpec, NetworkSpec};
    NetworkSpec {
        name: "CHAOS-TINY",
        input_len: 16,
        output_len: 10,
        layers: vec![
            LayerSpec {
                name: "fc",
                op: LayerOp::Fc {
                    in_dim: 16,
                    out_dim: 10,
                    relu: false,
                },
                splits: 1,
                setup_jobs: 1,
                nominal_macs: 0,
                nominal_data_bytes: 0,
                save_skip: false,
            },
            LayerSpec {
                name: "sm",
                op: LayerOp::Softmax { len: 10 },
                splits: 1,
                setup_jobs: 0,
                nominal_macs: 0,
                nominal_data_bytes: 0,
                save_skip: false,
            },
        ],
    }
}

/// Runs one chaos case per seed in `seeds` and asserts the fleet
/// invariants hold for every generated fault plan:
///
/// - the run terminates (no hang) in success or typed, accounted error;
/// - job-queue-length-1: no device ever runs two replays concurrently;
/// - admission conservation: completed + rejected + timed out + failed
///   equals submitted, nothing silently dropped;
/// - every planned crash is processed exactly once, and every eviction
///   is eventually matched by a re-admission once the trace drains;
/// - the registry never exceeds capacity and never loses the warmed
///   recording.
///
/// A registry warmed once (fault-free) is threaded through the cases —
/// the serving clock is monotonic, so each case gets a fresh `Fleet` —
/// except every 8th case, which starts cold so the on-demand record runs
/// also happen *under the faulted tunnel* (loss bursts, RTT spikes,
/// partitions exercising the retry ladder and checkpoint resume).
fn chaos_soak(label: &str, seeds: std::ops::Range<u64>) {
    use grt_serve::{
        generate_trace, Fleet, FleetConfig, RecordingRegistry, RegistryConfig, TraceConfig,
    };
    use grt_sim::{FaultPlan, FaultPlanConfig, SimTime};
    use std::rc::Rc;

    const REGISTRY_CAPACITY: usize = 8;
    let spec = tiny_spec();
    let models = vec![spec.clone()];
    let skus = vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp8()];

    // One fault-free warm-up record; afterwards replays dominate cost.
    let mut warm = RecordingRegistry::new(RegistryConfig::new(REGISTRY_CAPACITY));
    warm.warm(&spec, &skus[0])
        .expect("fault-free warm-up record");
    let mut shared: Option<RecordingRegistry> = Some(warm);

    let fault_cfg = FaultPlanConfig {
        horizon: SimTime::from_secs(3),
        devices: skus.len(),
        ..FaultPlanConfig::default()
    };
    let (mut total_completed, mut total_crashes, mut total_failovers) = (0u64, 0u64, 0u64);
    for seed in seeds {
        let plan = Rc::new(FaultPlan::generate(seed, &fault_cfg));
        let planned_crashes = plan
            .crashes()
            .iter()
            .filter(|c| c.device < skus.len())
            .count() as u64;
        let cfg = FleetConfig {
            queue_capacity: 4,
            ..FleetConfig::new(skus.clone())
        }
        .with_faults(Rc::clone(&plan));
        let trace_cfg = TraceConfig {
            mean_interarrival: SimTime::from_millis(30),
            ..TraceConfig::new(4, seed)
        };
        let trace = generate_trace(models.len(), &trace_cfg);

        let cold_case = seed % 8 == 0;
        let mut fleet = if cold_case {
            Fleet::new(models.clone(), cfg)
        } else {
            Fleet::with_registry(
                models.clone(),
                cfg,
                shared.take().expect("shared registry is threaded through"),
            )
        };
        let report = fleet.run(&trace);

        assert!(
            report.max_inflight <= 1,
            "[{label} seed {seed}] queue-length-1 violated: {} concurrent replays",
            report.max_inflight
        );
        assert_eq!(
            report.completed + report.rejected + report.timed_out + report.failed,
            report.submitted,
            "[{label} seed {seed}] requests leaked: {report:?}"
        );
        assert_eq!(
            report.crashes, planned_crashes,
            "[{label} seed {seed}] crash events lost or duplicated"
        );
        assert_eq!(
            report.readmissions, report.evictions,
            "[{label} seed {seed}] an evicted device was never re-admitted"
        );

        let registry = fleet.into_registry();
        assert!(
            registry.len() <= REGISTRY_CAPACITY,
            "[{label} seed {seed}] registry over capacity: {}",
            registry.len()
        );
        if cold_case {
            // The cold registry is discarded; the shared one was untouched.
        } else {
            assert!(
                registry.contains(&spec, &skus[0]),
                "[{label} seed {seed}] warmed recording lost from registry"
            );
            shared = Some(registry);
        }
        total_completed += report.completed;
        total_crashes += report.crashes;
        total_failovers += report.failovers;
    }
    // The soak must actually exercise the machinery, not vacuously pass.
    assert!(total_completed > 0, "[{label}] chaos soak served nothing");
    assert!(total_crashes > 0, "[{label}] no plan generated a crash");
    assert!(
        total_failovers > 0,
        "[{label}] no crash ever forced a failover"
    );
}

// 200 pinned seeds, split four ways so the harness runs them on
// parallel test threads. Every seed is fixed: a failure names the seed
// and reproduces exactly.

/// Chaos soak, seeds 0–49.
#[test]
fn chaos_soak_survives_random_fault_plans_part1() {
    chaos_soak("part1", 0..50);
}

/// Chaos soak, seeds 50–99.
#[test]
fn chaos_soak_survives_random_fault_plans_part2() {
    chaos_soak("part2", 50..100);
}

/// Chaos soak, seeds 100–149.
#[test]
fn chaos_soak_survives_random_fault_plans_part3() {
    chaos_soak("part3", 100..150);
}

/// Chaos soak, seeds 150–199.
#[test]
fn chaos_soak_survives_random_fault_plans_part4() {
    chaos_soak("part4", 150..200);
}

/// Robustness fuzz: arbitrary (but correctly signed) event soups must
/// never panic or wedge the replayer — they either replay or fail with a
/// clean error. This is the recording-parser/replayer attack surface a
/// compromised cloud could reach even with valid signatures.
#[test]
fn replayer_survives_arbitrary_signed_recordings() {
    use grt_core::recording::{DataSlot, Event, Recording, SignedRecording};
    use grt_crypto::KeyPair;
    use grt_sim::Rng;
    let clock = grt_sim::Clock::new();
    let stats = grt_sim::Stats::new();
    let device = grt_core::session::ClientDevice::new(GpuSku::mali_g71_mp8(), &clock, &stats, b"x");
    let key = KeyPair::derive(b"fuzz", "recording");
    let mut rng = Rng::new(0xF422);
    for case in 0..40u64 {
        let n_events = rng.gen_range(60) as usize;
        let mut events = Vec::new();
        for _ in 0..n_events {
            events.push(match rng.gen_range(6) {
                0 => Event::RegWrite {
                    offset: rng.next_u32() & 0x3FFF,
                    value: rng.next_u32(),
                },
                1 => Event::RegRead {
                    offset: rng.next_u32() & 0x3FFF,
                    value: rng.next_u32(),
                    verify: false,
                },
                2 => Event::Poll {
                    reg: rng.next_u32() & 0x3FFF,
                    mask: rng.next_u32(),
                    cond: (rng.gen_range(3)) as u8,
                    cmp: rng.next_u32(),
                    // Adversarial iteration budgets must be capped.
                    max_iters: u32::MAX,
                    delay_us: 1,
                },
                3 => Event::WaitIrq {
                    line: rng.gen_range(4) as u8,
                },
                4 => Event::LoadMemDelta {
                    pa: rng.next_u64() & 0xFFF_FFFF,
                    len: rng.next_u32() & 0xFFFF,
                    delta: {
                        let mut d = vec![0u8; rng.gen_range(64) as usize];
                        rng.fill_bytes(&mut d);
                        d
                    },
                },
                _ => Event::BeginLayer {
                    index: rng.next_u32(),
                },
            });
        }
        let rec = Recording {
            workload: format!("fuzz-{case}"),
            gpu_id: GpuSku::mali_g71_mp8().gpu_id,
            input: DataSlot {
                pa: 0x1000,
                len_elems: 4,
            },
            output: DataSlot {
                pa: 0x2000,
                len_elems: 4,
            },
            weights: vec![],
            events,
        };
        let signed = SignedRecording::sign(&rec, &key);
        let mut replayer = Replayer::new(&device, std::rc::Rc::new(grt_core::gate::PermissiveGate));
        // Must terminate with Ok or a clean error; panics/hangs fail the test.
        let _ = replayer.replay(&signed, &key, &[0.0; 4], &[]);
    }
}
