//! Workload-level integration: every benchmark computes correctly on the
//! native GPU stack across SKUs, and the substrates compose (runtime over
//! driver over GPU over MMU over memory).

use grt_gpu::GpuSku;
use grt_ml::reference::{test_input, ReferenceNet};
use grt_runtime::NativeStack;

fn close(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() < 1e-3 * (1.0 + x.abs().max(y.abs())))
}

/// All six benchmarks match the CPU reference on the native stack.
#[test]
fn all_benchmarks_match_reference_natively() {
    let mut stack = NativeStack::boot(GpuSku::mali_g71_mp8()).expect("boot");
    for spec in grt_ml::zoo::all_benchmarks() {
        let net = stack.compile(&spec).expect("compile");
        let input = test_input(&spec, 0);
        let gpu_out = stack.infer(&net, &input).expect("inference");
        let cpu_out = ReferenceNet::new(spec.clone()).infer(&input);
        assert!(close(&gpu_out, &cpu_out), "{} diverged", spec.name);
    }
}

/// The same hardware-neutral spec runs on every SKU (late binding): the
/// JIT adapts and the computation stays correct.
#[test]
fn late_binding_works_across_skus() {
    let spec = grt_ml::zoo::mnist();
    let input = test_input(&spec, 2);
    let reference = ReferenceNet::new(spec.clone()).infer(&input);
    for sku in [
        GpuSku::mali_g71_mp8(),
        GpuSku::mali_g71_mp4(),
        GpuSku::mali_g72_mp12(),
        GpuSku::mali_g76_mp10(),
    ] {
        let name = sku.name;
        let mut stack = NativeStack::boot(sku).expect("boot");
        let net = stack.compile(&spec).expect("compile");
        let gpu_out = stack.infer(&net, &input).expect("inference");
        assert!(close(&gpu_out, &reference), "{name} diverged");
    }
}

/// Faster SKUs finish sooner under the virtual cost model.
#[test]
fn job_timing_scales_with_sku_throughput() {
    let spec = grt_ml::zoo::alexnet();
    let input = test_input(&spec, 0);
    let mut delays = Vec::new();
    for sku in [GpuSku::mali_g71_mp4(), GpuSku::mali_g71_mp8()] {
        let mut stack = NativeStack::boot(sku).expect("boot");
        let net = stack.compile(&spec).expect("compile");
        let (_, delay) = stack.infer_timed(&net, &input).expect("inference");
        delays.push(delay);
    }
    assert!(
        delays[0] > delays[1],
        "MP4 must be slower than MP8: {delays:?}"
    );
}

/// Table 2's shape natively: job counts and per-network compute ordering.
#[test]
fn native_delay_ordering_matches_network_sizes() {
    let mut stack = NativeStack::boot(GpuSku::mali_g71_mp8()).expect("boot");
    let mut delays = std::collections::BTreeMap::new();
    for spec in grt_ml::zoo::all_benchmarks() {
        let net = stack.compile(&spec).expect("compile");
        let input = test_input(&spec, 0);
        let (_, d) = stack.infer_timed(&net, &input).expect("run");
        delays.insert(spec.name, d);
    }
    assert!(delays["MNIST"] < delays["AlexNet"]);
    assert!(delays["AlexNet"] < delays["ResNet12"]);
    assert!(delays["MobileNet"] < delays["VGG16"]);
    // The two compute-heavy networks still dominate, as in Table 2. The
    // execution fast path (software TLB + page-run bulk access) compresses
    // shader time across the board, and bulk copies are now charged per
    // translated run rather than per element (DESIGN.md §10) — which hits
    // the copy-heavy giants (VGG16's wide layers, ResNet12's skip buffers)
    // hardest — so the gap is narrower still than the old walk-per-access
    // engine's 3×; ordering, not magnitude, is the modeled claim.
    assert!(delays["VGG16"] > delays["SqueezeNet"].mul_f64(1.1));
    assert!(delays["ResNet12"] > delays["MobileNet"].mul_f64(1.1));
}

/// The GPU's performance counters cross-check the executed computation:
/// after one inference, sampled MACs equal the network's actual MAC count
/// and the job counter equals the job total.
#[test]
fn perf_counters_account_for_inference() {
    let spec = grt_ml::zoo::mnist();
    let mut stack = NativeStack::boot(GpuSku::mali_g71_mp8()).expect("boot");
    let net = stack.compile(&spec).expect("compile");
    stack.driver.prfcnt_clear();
    let input = test_input(&spec, 0);
    stack.infer(&net, &input).expect("inference");
    let sample = stack.driver.prfcnt_dump().expect("sample");
    assert_eq!(sample.jobs, spec.total_jobs());
    // Actual (validation-scale) MACs executed by the shader interpreter:
    // every layer's ops plus the housekeeping copies.
    assert!(sample.macs > spec.layers.iter().map(|l| l.op.actual_macs()).sum::<u64>());
    assert!(sample.cycles > 0);
}
