//! Remote debugging with record/replay (§3.1 "Broader applicability").
//!
//! A vendor receives field reports that some devices misbehave. With GR-T
//! recordings in hand, support can (a) diff two devices' record runs and
//! (b) audit a suspect device by replaying the recorded stimuli and
//! collecting every divergent hardware response — without shipping the
//! device anywhere.
//!
//! Run: `cargo run --release --example remote_debug`

use grt_core::debug::{audit_replay, diff_recordings, Divergence};
use grt_core::session::{ClientDevice, RecordSession, RecorderMode};
use grt_gpu::GpuSku;
use grt_net::NetConditions;
use grt_sim::{Clock, Stats};

fn record(sku: GpuSku) -> grt_core::recording::Recording {
    let mut s = RecordSession::new(sku, NetConditions::wifi(), RecorderMode::OursMDS);
    let out = s.record(&grt_ml::zoo::mnist()).expect("record");
    out.recording
        .verify_and_parse(&s.recording_key())
        .expect("parse")
}

fn main() {
    println!("== remote debugging with GR-T recordings ==\n");

    // 1. Two healthy devices of the same SKU produce identical logs.
    let reference = record(GpuSku::mali_g71_mp8());
    let healthy = record(GpuSku::mali_g71_mp8());
    let diffs = diff_recordings(&reference, &healthy);
    println!(
        "healthy vs healthy (same SKU): {} divergences over {} events",
        diffs.len(),
        reference.events.len()
    );
    assert!(diffs.is_empty());

    // 2. A mis-flashed device (wrong SKU) is pinpointed at first contact.
    let misflashed = record(GpuSku::mali_g71_mp4());
    let diffs = diff_recordings(&reference, &misflashed);
    println!(
        "healthy vs mis-flashed MP4: {} divergences; first:",
        diffs.len()
    );
    if let Some(d) = diffs.first() {
        println!("  {d:?}");
    }
    assert!(!diffs.is_empty());

    // 3. Audit a field unit with two dead shader cores: replay the
    //    recorded stimuli on it and collect the divergent responses.
    let sick = GpuSku {
        shader_cores: 6,
        ..GpuSku::mali_g71_mp8()
    };
    let clock = Clock::new();
    let stats = Stats::new();
    let device = ClientDevice::new(sick, &clock, &stats, b"support-session");
    let report = audit_replay(&device, &reference);
    println!("\naudit of a unit with 2 dead shader cores:");
    let mut shown = 0;
    for d in &report {
        if let Divergence::ReadValue {
            offset,
            expected,
            got,
            ..
        } = d
        {
            if shown < 5 {
                println!("  reg {offset:#06x}: recorded {expected:#x}, device says {got:#x}");
                shown += 1;
            }
        }
    }
    println!(
        "  {} divergent responses total -> support files a hardware RMA",
        report.len()
    );
    assert!(!report.is_empty());

    // 4. The same audit on a healthy unit is clean.
    let clock = Clock::new();
    let stats = Stats::new();
    let good = ClientDevice::new(GpuSku::mali_g71_mp8(), &clock, &stats, b"support-session");
    let report = audit_replay(&good, &reference);
    println!("\naudit of a healthy unit: {} divergences", report.len());
    assert!(report.is_empty());
}
