//! Quickstart: record an MNIST workload through the cloud, then replay it
//! inside the client TEE with real input — the paper's whole workflow in
//! ~50 lines.
//!
//! Run: `cargo run --release --example quickstart`

use grt_core::replay::{workload_weights, Replayer};
use grt_core::session::{RecordSession, RecorderMode};
use grt_gpu::GpuSku;
use grt_ml::reference::{test_input, ReferenceNet};
use grt_net::NetConditions;

fn main() {
    // 1. The developer ships a hardware-neutral network spec (late
    //    binding, §2.4); the client device has a Mali-G71 MP8.
    let spec = grt_ml::zoo::mnist();
    println!("workload: {} ({} GPU jobs)", spec.name, spec.total_jobs());

    // 2. First execution: the client TEE asks the cloud to dry-run the
    //    workload over WiFi. The cloud runs the GPU stack; the client's
    //    GPU does the hardware's part; no input or weights leave the TEE.
    let mut session = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    let outcome = session.record(&spec).expect("record run");
    println!(
        "recorded in {:.1}s over {} blocking round trips ({} KB recording)",
        outcome.delay.as_secs_f64(),
        outcome.blocking_rtts,
        outcome.recording.bytes.len() / 1024,
    );

    // 3. Every later execution replays inside the TEE: verify the cloud's
    //    signature, inject the app's real input and model parameters, and
    //    drive the GPU straight from the log — no GPU stack, no cloud.
    let key = session.recording_key();
    let mut replayer = Replayer::new(&session.client, std::rc::Rc::new(grt_lint::Linter::new()));
    let input = test_input(&spec, 1);
    let weights = workload_weights(&spec);
    let (output, delay) = replayer
        .replay(&outcome.recording, &key, &input, &weights)
        .expect("replay");
    println!("replayed in {:.1} ms", delay.as_millis_f64());

    // 4. The replayed computation is the real computation.
    let reference = ReferenceNet::new(spec).infer(&input);
    let class = output
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    let ref_class = reference
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    println!(
        "predicted class {class} (CPU reference agrees: {})",
        class == ref_class
    );
    assert_eq!(class, ref_class);
    let max_err = output
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max |GPU - reference| = {max_err:.2e}");
}
