//! Secure inference service: the full deployment story.
//!
//! An app records once per workload, then serves many inferences from
//! inside the TEE while the normal world is actively hostile: this example
//! demonstrates the §7.1 security properties end to end —
//!
//! - the GPU MMIO region is locked against the normal world during record
//!   and replay;
//! - model weights and inputs never appear in the cloud-bound traffic;
//! - tampered or wrongly signed recordings are rejected;
//! - replay results equal the insecure native stack's results.
//!
//! Run: `cargo run --release --example secure_inference`

use grt_core::recording::SignedRecording;
use grt_core::replay::{workload_weights, Replayer};
use grt_core::session::{RecordSession, RecorderMode};
use grt_crypto::KeyPair;
use grt_gpu::GpuSku;
use grt_ml::reference::test_input;
use grt_net::NetConditions;
use grt_runtime::NativeStack;
use grt_tee::{AccessDecision, World};

fn main() {
    let spec = grt_ml::zoo::squeezenet();
    println!("== secure inference service for {} ==", spec.name);

    // Record phase (once per workload, §3.1).
    let mut session = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::cellular(),
        RecorderMode::OursMDS,
    );
    let outcome = session.record(&spec).expect("record");
    println!(
        "recorded over cellular in {:.1}s; {} sync bytes of metastate",
        outcome.delay.as_secs_f64(),
        outcome.sync_bytes
    );

    // Adversary check 1: during record the TZASC denied nothing because
    // nothing probed; probe now while the TEE holds the GPU for replay.
    let key = session.recording_key();
    let mut replayer = Replayer::new(&session.client, std::rc::Rc::new(grt_lint::Linter::new()));
    let weights = workload_weights(&spec);

    // Serve a batch of inferences from inside the TEE.
    let mut served = 0;
    for variant in 0..5u64 {
        let input = test_input(&spec, variant);
        let (out, delay) = replayer
            .replay(&outcome.recording, &key, &input, &weights)
            .expect("replay");
        let class = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        println!(
            "  inference #{variant}: class {class} in {:.1} ms",
            delay.as_millis_f64()
        );
        served += 1;
    }
    assert_eq!(served, 5);

    // Adversary check 2: a normal-world access to GPU MMIO while the TEE
    // holds it must be denied. (Claim it as the replayer would.)
    session.client.tzasc.claim(
        grt_core::client::GPU_MMIO_BASE,
        grt_core::client::GPU_MMIO_LEN,
        World::Secure,
    );
    let probe = session
        .client
        .tzasc
        .check(World::Normal, grt_core::client::GPU_MMIO_BASE + 0x30);
    println!("normal-world MMIO probe while TEE holds GPU: {probe:?}");
    assert!(matches!(probe, AccessDecision::Denied { .. }));
    session.client.tzasc.release(
        grt_core::client::GPU_MMIO_BASE,
        grt_core::client::GPU_MMIO_LEN,
    );

    // Adversary check 3: a recording tampered in flight is rejected.
    let mut evil = SignedRecording {
        bytes: outcome.recording.bytes.clone(),
        signature: outcome.recording.signature.clone(),
    };
    let n = evil.bytes.len();
    evil.bytes[n - 10] ^= 0x80;
    let rejected = replayer
        .replay(&evil, &key, &test_input(&spec, 9), &weights)
        .is_err();
    println!("tampered recording rejected: {rejected}");
    assert!(rejected);

    // Adversary check 4: a recording signed by a rogue "cloud" is rejected.
    let rogue_key = KeyPair::derive(b"rogue-cloud", "recording");
    let rec = outcome
        .recording
        .verify_and_parse(&key)
        .expect("genuine recording parses");
    let forged = SignedRecording::sign(&rec, &rogue_key);
    let rejected = replayer
        .replay(&forged, &key, &test_input(&spec, 9), &weights)
        .is_err();
    println!("rogue-signed recording rejected: {rejected}");
    assert!(rejected);

    // Ground truth: the insecure native stack computes the same outputs.
    let mut native = NativeStack::boot(GpuSku::mali_g71_mp8()).expect("native boot");
    let net = native.compile(&spec).expect("compile");
    let input = test_input(&spec, 3);
    let native_out = native.infer(&net, &input).expect("native inference");
    let (tee_out, _) = replayer
        .replay(&outcome.recording, &key, &input, &weights)
        .expect("replay");
    let max_err = native_out
        .iter()
        .zip(&tee_out)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max |native - TEE replay| = {max_err:.2e}");
    assert!(max_err < 1e-4);
    println!("== all security and correctness checks passed ==");
}
