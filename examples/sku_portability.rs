//! SKU specificity: why recordings cannot be shared across GPU models, and
//! why the cloud must record against the client's own GPU (§2.4, Figure 3).
//!
//! The same hardware-neutral workload is recorded per-SKU; replaying a
//! Mali-G71 MP8 recording on an MP4 (different shader-core count) or a G72
//! (different page-table format) fails — first at the SKU gate, and, if
//! that were bypassed, at the hardware itself.
//!
//! Run: `cargo run --release --example sku_portability`

use grt_core::replay::{workload_weights, ReplayError, Replayer};
use grt_core::session::{ClientDevice, RecordSession, RecorderMode};
use grt_gpu::GpuSku;
use grt_ml::reference::test_input;
use grt_net::NetConditions;
use grt_sim::{Clock, Stats};

fn main() {
    let spec = grt_ml::zoo::mnist();
    let skus = [
        GpuSku::mali_g71_mp8(),
        GpuSku::mali_g71_mp4(),
        GpuSku::mali_g72_mp12(),
        GpuSku::mali_g76_mp10(),
    ];

    println!(
        "recording {} once per SKU (the cloud JIT tiles per device):",
        spec.name
    );
    let mut recordings = Vec::new();
    for sku in &skus {
        let mut session =
            RecordSession::new(sku.clone(), NetConditions::wifi(), RecorderMode::OursMDS);
        let outcome = session.record(&spec).expect("record");
        println!(
            "  {:<14} gpu_id={:#010x}  recording={} KB",
            sku.name,
            sku.gpu_id,
            outcome.recording.bytes.len() / 1024
        );
        recordings.push((session, outcome));
    }

    // Matching SKU: replay works and computes correctly.
    let input = test_input(&spec, 2);
    let weights = workload_weights(&spec);
    let (session, outcome) = &recordings[0];
    let key = session.recording_key();
    let mut replayer = Replayer::new(&session.client, std::rc::Rc::new(grt_lint::Linter::new()));
    let (out, _) = replayer
        .replay(&outcome.recording, &key, &input, &weights)
        .expect("matching SKU replays fine");
    println!(
        "\nG71-MP8 recording on G71-MP8: OK (top logit {:.3})",
        out.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    );

    // Mismatched SKUs: the replayer's SKU gate rejects them.
    for wrong in [GpuSku::mali_g71_mp4(), GpuSku::mali_g72_mp12()] {
        let clock = Clock::new();
        let stats = Stats::new();
        let device = ClientDevice::new(wrong.clone(), &clock, &stats, b"s");
        let mut r = Replayer::new(&device, std::rc::Rc::new(grt_lint::Linter::new()));
        match r.replay(&outcome.recording, &key, &input, &weights) {
            Err(ReplayError::WrongSku { recorded, present }) => println!(
                "G71-MP8 recording on {}: rejected (recorded {recorded:#x}, present {present:#x})",
                wrong.name
            ),
            other => panic!("expected WrongSku, got {other:?}"),
        }
    }

    // Even with the gate bypassed, the hardware itself rejects foreign
    // kernels: the MP8-tiled shaders fault on 4 cores.
    println!("\nbypassing the SKU gate (what a naive port would do):");
    let clock = Clock::new();
    let stats = Stats::new();
    let device = ClientDevice::new(GpuSku::mali_g71_mp4(), &clock, &stats, b"s");
    let mut r = Replayer::new(&device, std::rc::Rc::new(grt_lint::Linter::new()));
    let rec = outcome.recording.verify_and_parse(&key).expect("parse");
    let mut forged = rec.clone();
    forged.gpu_id = GpuSku::mali_g71_mp4().gpu_id; // Lie about the SKU.
    let resigned = grt_core::recording::SignedRecording::sign(&forged, &key);
    let result = r.replay(&resigned, &key, &input, &weights);
    match &result {
        Ok((out, _)) => {
            // The run "completes" but the tiled kernels faulted: output is
            // garbage (all zeros — jobs never produced results).
            let sum: f32 = out.iter().map(|v| v.abs()).sum();
            println!("  replay returned but computed nothing (|out| = {sum})");
            assert!(sum < 1e-6);
        }
        Err(e) => println!("  replay failed at the hardware: {e}"),
    }
    println!("\nconclusion: per-SKU recording is unavoidable; GR-T makes it");
    println!("practical by letting the cloud record against the client's GPU.");
}
