//! Misprediction detection and rollback (§4.2, §7.3).
//!
//! GR-T speculates on register-read outcomes; a wrong prediction must be
//! detected and both parties rolled back via replay of the interaction
//! log. This example injects faults at several points of a record run and
//! shows that (a) every injection is detected, (b) the run still completes
//! and produces a valid recording, and (c) the rollback cost matches the
//! paper's seconds-range worst case.
//!
//! Run: `cargo run --release --example misprediction_recovery`

use grt_core::replay::{workload_weights, Replayer};
use grt_core::session::{RecordSession, RecorderMode};
use grt_gpu::GpuSku;
use grt_ml::reference::{test_input, ReferenceNet};
use grt_net::NetConditions;

fn main() {
    let spec = grt_ml::zoo::mnist();

    // Baseline: a clean warm record run.
    let mut session = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::wifi(),
        RecorderMode::OursMDS,
    );
    session.record(&spec).expect("warm-up");
    let clean = session.record(&spec).expect("clean run");
    println!(
        "clean record run: {:.2}s, {} commits, {} mispredictions",
        clean.delay.as_secs_f64(),
        session.shim.commit_count(),
        session.stats.get("spec.mispredictions"),
    );
    assert_eq!(session.stats.get("spec.mispredictions"), 0);

    // Inject at several positions (early, middle, late).
    let commits_per_run = session.shim.commit_count() / 2;
    for (label, at) in [
        ("early ", commits_per_run / 10),
        ("middle", commits_per_run / 2),
        ("late  ", commits_per_run - 2),
    ] {
        let mut s = RecordSession::new(
            GpuSku::mali_g71_mp8(),
            NetConditions::wifi(),
            RecorderMode::OursMDS,
        );
        s.record(&spec).expect("warm-up");
        let before = s.stats.get("spec.mispredictions");
        s.shim.inject_misprediction_at(at);
        let faulted = s.record(&spec).expect("run recovers and completes");
        let detected = s.stats.get("spec.mispredictions") - before;
        let overhead = faulted.delay.as_secs_f64() - clean.delay.as_secs_f64();
        println!(
            "injected {label} (commit ~{at}): detected={detected}, run {:.2}s (+{overhead:.2}s rollback)",
            faulted.delay.as_secs_f64()
        );
        assert!(detected >= 1, "injection must be detected");

        // The recording produced after recovery still replays correctly.
        let key = s.recording_key();
        let mut replayer = Replayer::new(&s.client, std::rc::Rc::new(grt_lint::Linter::new()));
        let input = test_input(&spec, 4);
        let weights = workload_weights(&spec);
        let (out, _) = replayer
            .replay(&faulted.recording, &key, &input, &weights)
            .expect("post-recovery recording replays");
        let reference = ReferenceNet::new(spec.clone()).infer(&input);
        let max_err = out
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-3, "max_err={max_err}");
        println!("          post-recovery recording verified (max err {max_err:.2e})");
    }
    println!("\nmisprediction incurs a performance penalty but never corrupts");
    println!("the recording — exactly the §4.2 correctness argument.");
}
