//! Network-condition sweep: how recording delay scales with RTT and
//! bandwidth for the Naive recorder vs full GR-T.
//!
//! The paper evaluates two points (WiFi, cellular); this sweep shows the
//! whole curve: Naive scales linearly with RTT (thousands of blocking
//! round trips), GR-T stays nearly flat because almost all commits are
//! asynchronous.
//!
//! Run: `cargo run --release --example network_sweep`

use grt_core::session::{RecordSession, RecorderMode};
use grt_gpu::GpuSku;
use grt_net::NetConditions;
use grt_sim::SimTime;

fn run(mode: RecorderMode, rtt_ms: u64, bw_mbps: u64, spec: &grt_ml::NetworkSpec) -> f64 {
    let mut s = RecordSession::new(
        GpuSku::mali_g71_mp8(),
        NetConditions::custom(SimTime::from_millis(rtt_ms), bw_mbps * 1_000_000),
        mode,
    );
    s.record(spec).expect("warm-up");
    s.record(spec).expect("record").delay.as_secs_f64()
}

fn main() {
    let spec = grt_ml::zoo::alexnet();
    println!("== AlexNet recording delay vs RTT (80 Mbps) ==");
    println!(
        "{:>8} {:>12} {:>12} {:>8}",
        "RTT", "Naive", "OursMDS", "ratio"
    );
    for rtt in [5u64, 10, 20, 50, 100, 200] {
        let naive = run(RecorderMode::Naive, rtt, 80, &spec);
        let ours = run(RecorderMode::OursMDS, rtt, 80, &spec);
        println!(
            "{:>6}ms {:>11.1}s {:>11.1}s {:>7.1}x",
            rtt,
            naive,
            ours,
            naive / ours
        );
    }

    println!();
    println!("== AlexNet recording delay vs bandwidth (20 ms RTT) ==");
    println!("{:>8} {:>12} {:>12}", "BW", "Naive", "OursMDS");
    for bw in [10u64, 20, 40, 80, 160] {
        let naive = run(RecorderMode::Naive, 20, bw, &spec);
        let ours = run(RecorderMode::OursMDS, 20, bw, &spec);
        println!("{:>4}Mbps {:>11.1}s {:>11.1}s", bw, naive, ours);
    }
    println!();
    println!("Naive is RTT-bound (per-access round trips) and, at low");
    println!("bandwidth, also data-bound (full-memory sync); GR-T's curve is");
    println!("flat until RTT dominates even its residual synchronous commits.");

    // §3.1's stated limitation: "the poor network condition can slow down
    // the entire recording process" — quantify it with NetEm-style jitter
    // and loss on the cellular profile.
    println!();
    println!("== MNIST recording under degraded cellular conditions ==");
    println!(
        "{:>22} {:>12} {:>14}",
        "condition", "OursMDS", "retransmits"
    );
    let mnist = grt_ml::zoo::mnist();
    let cases = [
        ("clean", NetConditions::cellular()),
        ("20% jitter", NetConditions::cellular().with_jitter(0.2)),
        ("2% loss", NetConditions::cellular().with_loss(0.02)),
        (
            "20% jitter + 5% loss",
            NetConditions::cellular().with_jitter(0.2).with_loss(0.05),
        ),
    ];
    for (label, conditions) in cases {
        let mut s = RecordSession::new(
            grt_gpu::GpuSku::mali_g71_mp8(),
            conditions,
            RecorderMode::OursMDS,
        );
        s.record(&mnist).expect("warm-up");
        s.stats.reset();
        let out = s.record(&mnist).expect("record");
        println!(
            "{:>22} {:>11.1}s {:>14}",
            label,
            out.delay.as_secs_f64(),
            s.stats.get("net.retransmissions"),
        );
    }
    println!();
    println!("recording degrades gracefully: lost messages retransmit after a");
    println!("timeout and the run still completes — the paper's availability");
    println!("caveat (§7.1), not a correctness issue.");
}
