//! GR-T umbrella crate: re-exports the whole workspace behind one name.
//!
//! This is the crate downstream users depend on; the individual `grt-*`
//! crates remain importable for finer-grained use. See the README for the
//! architecture map and the `examples/` directory for runnable tours.

pub use grt_compress as compress;
pub use grt_core as core;
pub use grt_crypto as crypto;
pub use grt_driver as driver;
pub use grt_gpu as gpu;
pub use grt_ml as ml;
pub use grt_net as net;
pub use grt_runtime as runtime;
pub use grt_sim as sim;
pub use grt_tee as tee;
