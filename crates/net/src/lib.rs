//! Network channel model between the cloud VM and the client TEE.
//!
//! The paper evaluates GR-T under NetEm-shaped conditions (§7.2): a
//! WiFi-like link (20 ms RTT, 80 Mbps) and a cellular-like link (50 ms RTT,
//! 40 Mbps). This crate models a [`Link`] on the shared virtual clock:
//!
//! - a **blocking round trip** advances the clock by RTT plus serialization
//!   time for both directions (this is what a synchronous register-access
//!   commit costs);
//! - an **asynchronous send** computes when the message would complete
//!   *without* advancing the clock — the caller joins on the returned
//!   completion time later (this is how speculative commits hide their RTT);
//! - every message is accounted (count, bytes up/down, blocking RTTs) into a
//!   shared [`grt_sim::Stats`], which is exactly the data behind Table 1;
//! - optionally, radio energy is charged to a [`grt_sim::EnergyMeter`]
//!   (Figure 9).

use grt_sim::{Clock, EnergyMeter, Rail, SimTime, Stats};
use std::cell::RefCell;
use std::rc::Rc;

/// Shaped network conditions, NetEm-style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConditions {
    /// Round-trip time (propagation both ways, excluding serialization).
    pub rtt: SimTime,
    /// Link bandwidth in bits per second (applies to each direction).
    pub bandwidth_bps: u64,
    /// Uniform RTT jitter as a fraction of `rtt` (0.0 = none). Drawn from
    /// a deterministic per-link stream, like NetEm's `delay ... jitter`.
    pub jitter_frac: f64,
    /// Probability that a message is lost and must be retransmitted after
    /// a one-RTT timeout (NetEm's `loss`).
    pub loss_prob: f64,
}

impl NetConditions {
    /// WiFi-like conditions from §7.2: 20 ms RTT, 80 Mbps.
    pub fn wifi() -> Self {
        NetConditions {
            rtt: SimTime::from_millis(20),
            bandwidth_bps: 80_000_000,
            jitter_frac: 0.0,
            loss_prob: 0.0,
        }
    }

    /// Cellular-like conditions from §7.2: 50 ms RTT, 40 Mbps.
    pub fn cellular() -> Self {
        NetConditions {
            rtt: SimTime::from_millis(50),
            bandwidth_bps: 40_000_000,
            jitter_frac: 0.0,
            loss_prob: 0.0,
        }
    }

    /// A same-machine loopback used by native (non-GR-T) baselines.
    pub fn loopback() -> Self {
        NetConditions {
            rtt: SimTime::from_micros(1),
            bandwidth_bps: 100_000_000_000,
            jitter_frac: 0.0,
            loss_prob: 0.0,
        }
    }

    /// Arbitrary conditions for parameter sweeps.
    pub fn custom(rtt: SimTime, bandwidth_bps: u64) -> Self {
        NetConditions {
            rtt,
            bandwidth_bps,
            jitter_frac: 0.0,
            loss_prob: 0.0,
        }
    }

    /// Adds uniform RTT jitter (fraction of the base RTT).
    pub fn with_jitter(mut self, frac: f64) -> Self {
        self.jitter_frac = frac.max(0.0);
        self
    }

    /// Adds a message-loss probability (retransmit after one RTT timeout).
    pub fn with_loss(mut self, prob: f64) -> Self {
        self.loss_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Serialization time for `bytes` at this link's bandwidth.
    pub fn tx_time(&self, bytes: usize) -> SimTime {
        let bits = bytes as u64 * 8;
        SimTime::from_secs_f64(bits as f64 / self.bandwidth_bps.max(1) as f64)
    }

    /// Human-readable label ("rtt=20ms bw=80Mbps").
    pub fn label(&self) -> String {
        format!(
            "rtt={}ms bw={}Mbps",
            self.rtt.as_millis(),
            self.bandwidth_bps / 1_000_000
        )
    }
}

/// Radio power model for energy accounting (Figure 9).
///
/// Values are representative of the HiKey960's WL1835 WiFi module.
#[derive(Debug, Clone, Copy)]
pub struct RadioPower {
    /// Draw while transmitting, in watts.
    pub tx_watts: f64,
    /// Draw while receiving, in watts.
    pub rx_watts: f64,
    /// Draw while the radio is awake but idle (waiting on a response).
    pub idle_watts: f64,
}

impl Default for RadioPower {
    fn default() -> Self {
        RadioPower {
            tx_watts: 0.9,
            rx_watts: 0.65,
            idle_watts: 0.25,
        }
    }
}

/// A cloud↔client link bound to the shared virtual clock.
///
/// # Examples
///
/// ```
/// use grt_net::{Link, NetConditions};
/// use grt_sim::{Clock, Stats};
///
/// let clock = Clock::new();
/// let stats = Stats::new();
/// let link = Link::new(&clock, &stats, NetConditions::wifi());
/// link.round_trip(200, 200);
/// assert!(clock.now().as_millis() >= 20);
/// assert_eq!(stats.get("net.blocking_rtts"), 1);
/// ```
#[derive(Debug)]
pub struct Link {
    clock: Rc<Clock>,
    stats: Rc<Stats>,
    conditions: RefCell<NetConditions>,
    energy: RefCell<Option<(Rc<EnergyMeter>, RadioPower)>>,
    rng: RefCell<grt_sim::Rng>,
}

impl Link {
    /// Creates a link with the given shaped conditions.
    pub fn new(clock: &Rc<Clock>, stats: &Rc<Stats>, conditions: NetConditions) -> Rc<Link> {
        Rc::new(Link {
            clock: Rc::clone(clock),
            stats: Rc::clone(stats),
            conditions: RefCell::new(conditions),
            energy: RefCell::new(None),
            rng: RefCell::new(grt_sim::Rng::new(0x006e_6574_6c69_6e6b)),
        })
    }

    /// Attaches an energy meter; radio energy is charged per transfer.
    pub fn attach_energy(&self, meter: &Rc<EnergyMeter>, power: RadioPower) {
        *self.energy.borrow_mut() = Some((Rc::clone(meter), power));
    }

    /// Replaces the link conditions (used by the network sweep example).
    pub fn set_conditions(&self, conditions: NetConditions) {
        *self.conditions.borrow_mut() = conditions;
    }

    /// Current link conditions.
    pub fn conditions(&self) -> NetConditions {
        *self.conditions.borrow()
    }

    /// One propagation leg's effective duration: jitter applied, plus any
    /// loss-retransmission timeouts (each lost attempt costs a full RTT).
    fn effective_rtt(&self, c: &NetConditions) -> SimTime {
        let mut rng = self.rng.borrow_mut();
        let mut total = SimTime::ZERO;
        while c.loss_prob > 0.0 && rng.chance(c.loss_prob) {
            // Timeout and retransmit.
            total += c.rtt;
            self.stats.inc("net.retransmissions");
        }
        let jitter = if c.jitter_frac > 0.0 {
            SimTime::from_secs_f64(c.rtt.as_secs_f64() * c.jitter_frac * rng.gen_f64())
        } else {
            SimTime::ZERO
        };
        total + c.rtt + jitter
    }

    fn charge_energy(&self, tx: SimTime, rx: SimTime, idle: SimTime) {
        if let Some((meter, p)) = self.energy.borrow().as_ref() {
            meter.add_energy(
                Rail::Radio,
                p.tx_watts * tx.as_secs_f64()
                    + p.rx_watts * rx.as_secs_f64()
                    + p.idle_watts * idle.as_secs_f64(),
            );
        }
    }

    /// A blocking request/response exchange: the caller cannot make progress
    /// until the response arrives. Advances the clock and returns the elapsed
    /// time.
    ///
    /// This is the cost of a synchronous register-access commit (§4.1) or a
    /// naive per-access forwarding round trip.
    pub fn round_trip(&self, request_bytes: usize, response_bytes: usize) -> SimTime {
        let c = self.conditions();
        let tx = c.tx_time(request_bytes);
        let rx = c.tx_time(response_bytes);
        let total = self.effective_rtt(&c) + tx + rx;
        self.clock.advance(total);
        self.stats.inc("net.blocking_rtts");
        self.stats.inc("net.messages");
        self.stats.add("net.bytes_up", request_bytes as u64);
        self.stats.add("net.bytes_down", response_bytes as u64);
        self.charge_energy(tx, rx, c.rtt);
        total
    }

    /// An asynchronous exchange: computes the absolute virtual time at which
    /// the response would be fully received, **without advancing the clock**.
    ///
    /// Speculative commits (§4.2) use this: the cloud continues executing on
    /// predicted values and joins on the returned completion time only when
    /// forced to (externalization, speculative commit, validation).
    pub fn round_trip_async(&self, request_bytes: usize, response_bytes: usize) -> SimTime {
        let c = self.conditions();
        let tx = c.tx_time(request_bytes);
        let rx = c.tx_time(response_bytes);
        self.stats.inc("net.async_rtts");
        self.stats.inc("net.messages");
        self.stats.add("net.bytes_up", request_bytes as u64);
        self.stats.add("net.bytes_down", response_bytes as u64);
        // Overlapped exchanges do not serialize radio idle time; only the
        // actual transmit/receive energy is charged.
        self.charge_energy(tx, rx, SimTime::ZERO);
        self.clock.now() + self.effective_rtt(&c) + tx + rx
    }

    /// A one-way bulk transfer (memory-dump synchronization, recording
    /// download). Advances the clock by half an RTT plus serialization time.
    pub fn transfer(&self, bytes: usize, direction: Direction) -> SimTime {
        let c = self.conditions();
        let tx = c.tx_time(bytes);
        let total = self.effective_rtt(&c) / 2 + tx;
        self.clock.advance(total);
        self.stats.inc("net.messages");
        // A sync transfer gates forward progress (job start / IRQ
        // forwarding), so it counts toward the blocking round-trip budget.
        self.stats.inc("net.transfers");
        self.stats.inc("net.blocking_rtts");
        match direction {
            Direction::Up => {
                self.stats.add("net.bytes_up", bytes as u64);
                self.charge_energy(tx, SimTime::ZERO, c.rtt / 2);
            }
            Direction::Down => {
                self.stats.add("net.bytes_down", bytes as u64);
                self.charge_energy(SimTime::ZERO, tx, c.rtt / 2);
            }
        }
        total
    }

    /// The shared stats sink (for layered accounting by the session code).
    pub fn stats(&self) -> &Rc<Stats> {
        &self.stats
    }

    /// The shared clock.
    pub fn clock(&self) -> &Rc<Clock> {
        &self.clock
    }
}

/// Direction of a one-way transfer, from the client's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → cloud (e.g. client memory dump, interrupt forward).
    Up,
    /// Cloud → client (e.g. cloud memory dump, recording download).
    Down,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(c: NetConditions) -> (Rc<Clock>, Rc<Stats>, Rc<Link>) {
        let clock = Clock::new();
        let stats = Stats::new();
        let link = Link::new(&clock, &stats, c);
        (clock, stats, link)
    }

    #[test]
    fn blocking_rtt_advances_clock() {
        let (clock, stats, link) = setup(NetConditions::wifi());
        let dt = link.round_trip(0, 0);
        assert_eq!(dt.as_millis(), 20);
        assert_eq!(clock.now().as_millis(), 20);
        assert_eq!(stats.get("net.blocking_rtts"), 1);
    }

    #[test]
    fn serialization_time_added() {
        let (clock, _, link) = setup(NetConditions::custom(SimTime::ZERO, 8_000_000));
        // 1 MB at 8 Mbps = 1 second each way.
        link.round_trip(1_000_000, 1_000_000);
        assert!((clock.now().as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn async_round_trip_does_not_advance_clock() {
        let (clock, stats, link) = setup(NetConditions::wifi());
        let done_at = link.round_trip_async(100, 100);
        assert_eq!(clock.now(), SimTime::ZERO);
        assert!(done_at.as_millis() >= 20);
        assert_eq!(stats.get("net.blocking_rtts"), 0);
        assert_eq!(stats.get("net.async_rtts"), 1);
    }

    #[test]
    fn transfer_counts_direction() {
        let (_, stats, link) = setup(NetConditions::cellular());
        link.transfer(5000, Direction::Up);
        link.transfer(7000, Direction::Down);
        assert_eq!(stats.get("net.bytes_up"), 5000);
        assert_eq!(stats.get("net.bytes_down"), 7000);
    }

    #[test]
    fn cellular_is_slower_than_wifi() {
        let (cw, _, lw) = setup(NetConditions::wifi());
        let (cc, _, lc) = setup(NetConditions::cellular());
        lw.round_trip(400, 400);
        lc.round_trip(400, 400);
        assert!(cc.now() > cw.now());
    }

    #[test]
    fn energy_charged_per_transfer() {
        let (clock, stats, link) =
            setup(NetConditions::custom(SimTime::from_millis(10), 8_000_000));
        let meter = EnergyMeter::new(&clock);
        link.attach_energy(
            &meter,
            RadioPower {
                tx_watts: 1.0,
                rx_watts: 1.0,
                idle_watts: 0.0,
            },
        );
        // 1 MB up at 8 Mbps = 1 s of tx at 1 W = 1 J.
        link.transfer(1_000_000, Direction::Up);
        assert!((meter.energy(Rail::Radio) - 1.0).abs() < 1e-6);
        let _ = stats;
    }

    #[test]
    fn conditions_can_be_swept() {
        let (clock, _, link) = setup(NetConditions::wifi());
        link.set_conditions(NetConditions::custom(SimTime::from_millis(100), 1_000_000));
        link.round_trip(0, 0);
        assert_eq!(clock.now().as_millis(), 100);
        assert_eq!(link.conditions().rtt.as_millis(), 100);
    }

    #[test]
    fn tx_time_math() {
        let c = NetConditions::custom(SimTime::ZERO, 80_000_000);
        // 10 KB at 80 Mbps = 1 ms.
        assert_eq!(c.tx_time(10_000).as_micros(), 1000);
    }
}

#[cfg(test)]
mod degradation_tests {
    use super::*;

    #[test]
    fn jitter_stretches_rtts_but_never_shrinks() {
        let clock = Clock::new();
        let stats = Stats::new();
        let link = Link::new(&clock, &stats, NetConditions::wifi().with_jitter(0.5));
        let mut total = SimTime::ZERO;
        for _ in 0..50 {
            let dt = link.round_trip(0, 0);
            assert!(dt >= SimTime::from_millis(20), "{dt}");
            assert!(dt <= SimTime::from_millis(30), "{dt}");
            total += dt;
        }
        // On average strictly above the base RTT.
        assert!(total > SimTime::from_millis(20 * 50));
    }

    #[test]
    fn loss_triggers_retransmissions() {
        let clock = Clock::new();
        let stats = Stats::new();
        let link = Link::new(&clock, &stats, NetConditions::wifi().with_loss(0.3));
        for _ in 0..200 {
            link.round_trip(0, 0);
        }
        let retx = stats.get("net.retransmissions");
        assert!((20..160).contains(&retx), "retx={retx}");
        // Each retransmission costs a full extra RTT.
        assert!(clock.now() >= SimTime::from_millis(20 * 200) + SimTime::from_millis(20) * retx);
    }

    #[test]
    fn degraded_link_is_deterministic() {
        let run = || {
            let clock = Clock::new();
            let stats = Stats::new();
            let link = Link::new(
                &clock,
                &stats,
                NetConditions::cellular().with_jitter(0.2).with_loss(0.1),
            );
            for i in 0..100 {
                link.round_trip(i, 2 * i);
            }
            clock.now()
        };
        assert_eq!(run(), run());
    }
}
