//! Network channel model between the cloud VM and the client TEE.
//!
//! The paper evaluates GR-T under NetEm-shaped conditions (§7.2): a
//! WiFi-like link (20 ms RTT, 80 Mbps) and a cellular-like link (50 ms RTT,
//! 40 Mbps). This crate models a [`Link`] on the shared virtual clock:
//!
//! - a **blocking round trip** advances the clock by RTT plus serialization
//!   time for both directions (this is what a synchronous register-access
//!   commit costs);
//! - an **asynchronous send** computes when the message would complete
//!   *without* advancing the clock — the caller joins on the returned
//!   completion time later (this is how speculative commits hide their RTT);
//! - every message is accounted (count, bytes up/down, blocking RTTs) into a
//!   shared [`grt_sim::Stats`], which is exactly the data behind Table 1;
//! - optionally, radio energy is charged to a [`grt_sim::EnergyMeter`]
//!   (Figure 9).
//!
//! # Fault tolerance
//!
//! Every logical message carries a **sequence number**; a retransmission
//! reuses its message's sequence number, so the receiver applies each
//! message at most once (duplicates from a lost *response* are deduped and
//! answered from the response cache — see `net.dup_suppressed`). Lost or
//! partitioned sends are retried under a bounded [`RetryPolicy`]
//! (exponential backoff plus deterministic jitter); when the budget is
//! exhausted the operation fails with a typed [`LinkError`] instead of
//! stalling, and the link **latches** the error: subsequent operations
//! fast-fail with zero cost until [`Link::clear_error`], so a session can
//! notice the outage at its next checkpoint without paying a retry ladder
//! per access. Attach a [`grt_sim::FaultPlan`] with [`Link::attach_faults`]
//! to drive loss bursts, RTT spikes, and partitions from a deterministic
//! schedule.
//!
//! # Stats accounting
//!
//! Retransmissions never double-count the Table-1 numbers:
//!
//! - `net.messages`, `net.bytes_up`, `net.bytes_down`, `net.blocking_rtts`
//!   count **logical** messages exactly once, however many attempts each
//!   took;
//! - `net.retransmissions` counts retransmitted attempts and
//!   `net.retx_bytes_up` the request bytes those attempts re-sent;
//! - `net.dup_suppressed` counts retransmits the receiver deduped by
//!   sequence number (the request had been applied; only the response was
//!   lost);
//! - `net.link_failures` counts messages abandoned after the retry budget,
//!   and `net.dropped_while_broken` operations skipped while the error
//!   latch was set.

#![warn(missing_docs)]

use grt_sim::{Clock, EnergyMeter, FaultPlan, Rail, Rng, SimTime, Stats};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Shaped network conditions, NetEm-style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConditions {
    /// Round-trip time (propagation both ways, excluding serialization).
    pub rtt: SimTime,
    /// Link bandwidth in bits per second (applies to each direction).
    pub bandwidth_bps: u64,
    /// Uniform RTT jitter as a fraction of `rtt` (0.0 = none). Drawn from
    /// a deterministic per-link stream, like NetEm's `delay ... jitter`.
    pub jitter_frac: f64,
    /// Probability that a message is lost and must be retransmitted after
    /// a timeout (NetEm's `loss`).
    pub loss_prob: f64,
}

impl NetConditions {
    /// WiFi-like conditions from §7.2: 20 ms RTT, 80 Mbps.
    pub fn wifi() -> Self {
        NetConditions {
            rtt: SimTime::from_millis(20),
            bandwidth_bps: 80_000_000,
            jitter_frac: 0.0,
            loss_prob: 0.0,
        }
    }

    /// Cellular-like conditions from §7.2: 50 ms RTT, 40 Mbps.
    pub fn cellular() -> Self {
        NetConditions {
            rtt: SimTime::from_millis(50),
            bandwidth_bps: 40_000_000,
            jitter_frac: 0.0,
            loss_prob: 0.0,
        }
    }

    /// A same-machine loopback used by native (non-GR-T) baselines.
    pub fn loopback() -> Self {
        NetConditions {
            rtt: SimTime::from_micros(1),
            bandwidth_bps: 100_000_000_000,
            jitter_frac: 0.0,
            loss_prob: 0.0,
        }
    }

    /// Arbitrary conditions for parameter sweeps.
    pub fn custom(rtt: SimTime, bandwidth_bps: u64) -> Self {
        NetConditions {
            rtt,
            bandwidth_bps,
            jitter_frac: 0.0,
            loss_prob: 0.0,
        }
    }

    /// Adds uniform RTT jitter (fraction of the base RTT).
    pub fn with_jitter(mut self, frac: f64) -> Self {
        self.jitter_frac = frac.max(0.0);
        self
    }

    /// Adds a message-loss probability (retransmit after timeout).
    pub fn with_loss(mut self, prob: f64) -> Self {
        self.loss_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Serialization time for `bytes` at this link's bandwidth.
    pub fn tx_time(&self, bytes: usize) -> SimTime {
        let bits = bytes as u64 * 8;
        SimTime::from_secs_f64(bits as f64 / self.bandwidth_bps.max(1) as f64)
    }

    /// Human-readable label ("rtt=20ms bw=80Mbps").
    pub fn label(&self) -> String {
        format!(
            "rtt={}ms bw={}Mbps",
            self.rtt.as_millis(),
            self.bandwidth_bps / 1_000_000
        )
    }
}

/// Radio power model for energy accounting (Figure 9).
///
/// Values are representative of the HiKey960's WL1835 WiFi module.
#[derive(Debug, Clone, Copy)]
pub struct RadioPower {
    /// Draw while transmitting, in watts.
    pub tx_watts: f64,
    /// Draw while receiving, in watts.
    pub rx_watts: f64,
    /// Draw while the radio is awake but idle (waiting on a response).
    pub idle_watts: f64,
}

impl Default for RadioPower {
    fn default() -> Self {
        RadioPower {
            tx_watts: 0.9,
            rx_watts: 0.65,
            idle_watts: 0.25,
        }
    }
}

/// Why a link operation failed after its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// Every attempt timed out (loss, not a known partition).
    TimedOut {
        /// Send attempts made (the policy's full budget).
        attempts: u32,
    },
    /// The fault plan says the link is partitioned; `healed_at` is the
    /// instant the partition (chain) ends, so a caller can schedule a
    /// checkpoint resume.
    Partitioned {
        /// Virtual time at which the link becomes available again.
        healed_at: SimTime,
    },
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::TimedOut { attempts } => {
                write!(f, "link timed out after {attempts} attempts")
            }
            LinkError::Partitioned { healed_at } => {
                write!(f, "link partitioned (heals at {healed_at})")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Bounded retransmission policy: how hard a link tries before surfacing
/// a [`LinkError`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total send attempts per logical message (first send included).
    pub max_attempts: u32,
    /// Initial retransmission timeout, as a multiple of the base RTT.
    pub rto_rtts: f64,
    /// RTO multiplier applied per retransmission (exponential backoff).
    pub backoff: f64,
    /// Uniform jitter fraction added to each RTO (decorrelates retry
    /// storms; drawn from the link's deterministic fault stream).
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            rto_rtts: 1.5,
            backoff: 2.0,
            jitter_frac: 0.1,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retransmits (fail on first loss).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// How a delivery attempt sequence played out (internal).
struct Schedule {
    /// Total time spent waiting out retransmission timeouts.
    wait: SimTime,
    /// The successful attempt's propagation time (both ways, jittered).
    leg: SimTime,
}

/// A cloud↔client link bound to the shared virtual clock.
///
/// # Examples
///
/// ```
/// use grt_net::{Link, NetConditions};
/// use grt_sim::{Clock, Stats};
///
/// let clock = Clock::new();
/// let stats = Stats::new();
/// let link = Link::new(&clock, &stats, NetConditions::wifi());
/// link.round_trip(200, 200);
/// assert!(clock.now().as_millis() >= 20);
/// assert_eq!(stats.get("net.blocking_rtts"), 1);
/// ```
#[derive(Debug)]
pub struct Link {
    clock: Rc<Clock>,
    stats: Rc<Stats>,
    conditions: RefCell<NetConditions>,
    energy: RefCell<Option<(Rc<EnergyMeter>, RadioPower)>>,
    /// Base-shaping stream (legacy jitter/loss draws). Kept separate from
    /// `fault_rng` so attaching a quiet fault plan leaves zero-fault runs
    /// byte-identical.
    rng: RefCell<Rng>,
    /// Fault-schedule stream: burst-loss draws, RTO jitter, loss-direction
    /// draws.
    fault_rng: RefCell<Rng>,
    faults: RefCell<Option<Rc<FaultPlan>>>,
    policy: Cell<RetryPolicy>,
    /// Sequence number of the next logical message.
    next_seq: Cell<u64>,
    /// Latched failure: set when a retry budget is exhausted; all later
    /// operations fast-fail until cleared.
    error: Cell<Option<LinkError>>,
}

impl Link {
    /// Creates a link with the given shaped conditions.
    pub fn new(clock: &Rc<Clock>, stats: &Rc<Stats>, conditions: NetConditions) -> Rc<Link> {
        Rc::new(Link {
            clock: Rc::clone(clock),
            stats: Rc::clone(stats),
            conditions: RefCell::new(conditions),
            energy: RefCell::new(None),
            rng: RefCell::new(Rng::new(0x006e_6574_6c69_6e6b)),
            fault_rng: RefCell::new(Rng::new(0x00fa_756c_7472_6e67)),
            faults: RefCell::new(None),
            policy: Cell::new(RetryPolicy::default()),
            next_seq: Cell::new(0),
            error: Cell::new(None),
        })
    }

    /// Attaches an energy meter; radio energy is charged per transfer.
    pub fn attach_energy(&self, meter: &Rc<EnergyMeter>, power: RadioPower) {
        *self.energy.borrow_mut() = Some((Rc::clone(meter), power));
    }

    /// Attaches a deterministic fault schedule. Loss bursts, RTT spikes,
    /// and partitions in the plan shape every subsequent operation.
    pub fn attach_faults(&self, plan: &Rc<FaultPlan>) {
        *self.faults.borrow_mut() = Some(Rc::clone(plan));
    }

    /// The attached fault plan, if any.
    pub fn faults(&self) -> Option<Rc<FaultPlan>> {
        self.faults.borrow().clone()
    }

    /// Whether a fault plan is attached.
    pub fn has_faults(&self) -> bool {
        self.faults.borrow().is_some()
    }

    /// Replaces the retransmission policy.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.policy.set(policy);
    }

    /// The current retransmission policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.policy.get()
    }

    /// Replaces the link conditions (used by the network sweep example).
    pub fn set_conditions(&self, conditions: NetConditions) {
        *self.conditions.borrow_mut() = conditions;
    }

    /// Current link conditions.
    pub fn conditions(&self) -> NetConditions {
        *self.conditions.borrow()
    }

    /// The latched link failure, if the retry budget was ever exhausted
    /// and not yet cleared.
    pub fn link_error(&self) -> Option<LinkError> {
        self.error.get()
    }

    /// Clears the latched failure so traffic flows again (a session does
    /// this after waiting out a partition before resuming from its
    /// checkpoint).
    pub fn clear_error(&self) {
        self.error.set(None);
    }

    /// Sequence number of the most recently sent logical message (0 when
    /// nothing was sent yet). Retransmissions reuse their message's
    /// number, which is what makes them idempotent at the receiver.
    pub fn last_seq(&self) -> u64 {
        self.next_seq.get()
    }

    /// Runs the bounded retransmission schedule for one logical message
    /// starting at virtual time `start`, without touching the clock.
    /// Returns the schedule or a typed error; accounts retransmission
    /// stats either way.
    fn schedule(
        &self,
        c: &NetConditions,
        request_bytes: usize,
        start: SimTime,
    ) -> Result<Schedule, LinkError> {
        let policy = self.policy.get();
        let plan = self.faults.borrow().clone();
        let mut vnow = start;
        let mut wait = SimTime::ZERO;
        let mut rto = c.rtt.mul_f64(policy.rto_rtts.max(0.5));
        let max_attempts = policy.max_attempts.max(1);
        for attempt in 1..=max_attempts {
            // Decide this attempt's fate. Partition ⇒ deterministic loss;
            // otherwise draw against the combined loss probability, from
            // the fault stream when a burst is active (so quiet plans
            // leave the base stream untouched).
            let partitioned = plan.as_ref().is_some_and(|p| p.partitioned_at(vnow));
            let lost = if partitioned {
                true
            } else {
                let burst = plan.as_ref().map_or(0.0, |p| p.loss_at(vnow));
                if burst > 0.0 {
                    self.fault_rng.borrow_mut().chance(burst.max(c.loss_prob))
                } else if c.loss_prob > 0.0 {
                    self.rng.borrow_mut().chance(c.loss_prob)
                } else {
                    false
                }
            };
            if !lost {
                let mult = plan.as_ref().map_or(1.0, |p| p.rtt_multiplier_at(vnow));
                let jitter = if c.jitter_frac > 0.0 {
                    c.rtt
                        .mul_f64(c.jitter_frac * self.rng.borrow_mut().gen_f64())
                } else {
                    SimTime::ZERO
                };
                return Ok(Schedule {
                    wait,
                    leg: c.rtt.mul_f64(mult) + jitter,
                });
            }
            // Lost. If the loss was on the response leg, the receiver did
            // apply the request; the retransmit below will be deduped by
            // its sequence number (idempotence).
            if !partitioned && self.fault_rng.borrow_mut().chance(0.5) {
                self.stats.inc("net.dup_suppressed");
            }
            if attempt == max_attempts {
                break;
            }
            // Wait out the (jittered, exponentially backed-off) RTO, then
            // retransmit.
            let rto_jitter = if policy.jitter_frac > 0.0 {
                1.0 + policy.jitter_frac * self.fault_rng.borrow_mut().gen_f64()
            } else {
                1.0
            };
            let this_wait = rto.mul_f64(rto_jitter);
            wait += this_wait;
            vnow += this_wait;
            rto = rto.mul_f64(policy.backoff.max(1.0));
            self.stats.inc("net.retransmissions");
            self.stats.add("net.retx_bytes_up", request_bytes as u64);
        }
        self.stats.inc("net.link_failures");
        let err = match plan.as_ref() {
            Some(p) if p.partitioned_at(vnow) => LinkError::Partitioned {
                healed_at: p.link_available_at(vnow),
            },
            _ => LinkError::TimedOut {
                attempts: max_attempts,
            },
        };
        // The budget-exhaustion wait is real elapsed time; report it via
        // the schedule the callers advance by.
        self.error.set(Some(err));
        self.stats.add("net.failure_wait_ns", wait.as_nanos());
        Err(err)
    }

    fn charge_energy(&self, tx: SimTime, rx: SimTime, idle: SimTime) {
        if let Some((meter, p)) = self.energy.borrow().as_ref() {
            meter.add_energy(
                Rail::Radio,
                p.tx_watts * tx.as_secs_f64()
                    + p.rx_watts * rx.as_secs_f64()
                    + p.idle_watts * idle.as_secs_f64(),
            );
        }
    }

    /// Books the logical-message counters (exactly once per message,
    /// regardless of retransmissions).
    fn account_message(&self, request_bytes: usize, response_bytes: usize) {
        self.next_seq.set(self.next_seq.get() + 1);
        self.stats.inc("net.messages");
        self.stats.add("net.bytes_up", request_bytes as u64);
        self.stats.add("net.bytes_down", response_bytes as u64);
    }

    /// A blocking request/response exchange: the caller cannot make
    /// progress until the response arrives. Advances the clock and
    /// returns the elapsed time; on retry-budget exhaustion the elapsed
    /// timeout ladder still passes, the error latches, and the typed
    /// error is returned.
    ///
    /// This is the cost of a synchronous register-access commit (§4.1) or
    /// a naive per-access forwarding round trip.
    pub fn try_round_trip(
        &self,
        request_bytes: usize,
        response_bytes: usize,
    ) -> Result<SimTime, LinkError> {
        if let Some(e) = self.error.get() {
            self.stats.inc("net.dropped_while_broken");
            return Err(e);
        }
        let c = self.conditions();
        let tx = c.tx_time(request_bytes);
        let rx = c.tx_time(response_bytes);
        self.account_message(request_bytes, response_bytes);
        self.stats.inc("net.blocking_rtts");
        match self.schedule(&c, request_bytes, self.clock.now()) {
            Ok(s) => {
                let total = s.wait + s.leg + tx + rx;
                self.clock.advance(total);
                self.charge_energy(tx, rx, s.wait + c.rtt);
                Ok(total)
            }
            Err(e) => {
                // The failed ladder's timeouts still elapsed.
                let ladder = self.ladder_time(&c);
                self.clock.advance(ladder);
                self.charge_energy(tx, SimTime::ZERO, ladder);
                Err(e)
            }
        }
    }

    /// Infallible wrapper around [`Link::try_round_trip`] for the legacy
    /// record path: on failure the error stays latched for the session
    /// layer to observe at its next checkpoint, and the elapsed ladder
    /// time is returned.
    pub fn round_trip(&self, request_bytes: usize, response_bytes: usize) -> SimTime {
        match self.try_round_trip(request_bytes, response_bytes) {
            Ok(dt) => dt,
            Err(_) => SimTime::ZERO,
        }
    }

    /// Total wall time of a full failed retry ladder under the current
    /// policy (every attempt timed out).
    fn ladder_time(&self, c: &NetConditions) -> SimTime {
        let policy = self.policy.get();
        let mut rto = c.rtt.mul_f64(policy.rto_rtts.max(0.5));
        let mut total = SimTime::ZERO;
        for _ in 1..policy.max_attempts.max(1) {
            total += rto;
            rto = rto.mul_f64(policy.backoff.max(1.0));
        }
        // The final attempt's timeout also passes before giving up.
        total + rto
    }

    /// An asynchronous exchange: computes the absolute virtual time at
    /// which the response would be fully received, **without advancing
    /// the clock**.
    ///
    /// Speculative commits (§4.2) use this: the cloud continues executing
    /// on predicted values and joins on the returned completion time only
    /// when forced to (externalization, speculative commit, validation).
    /// Under faults the completion time includes retransmission waits; if
    /// the retry budget is exhausted the error latches (the session sees
    /// it at the next synchronization point) and the returned completion
    /// time covers the failed ladder.
    pub fn round_trip_async(&self, request_bytes: usize, response_bytes: usize) -> SimTime {
        if self.error.get().is_some() {
            self.stats.inc("net.dropped_while_broken");
            return self.clock.now();
        }
        let c = self.conditions();
        let tx = c.tx_time(request_bytes);
        let rx = c.tx_time(response_bytes);
        self.account_message(request_bytes, response_bytes);
        self.stats.inc("net.async_rtts");
        // Overlapped exchanges do not serialize radio idle time; only the
        // actual transmit/receive energy is charged.
        self.charge_energy(tx, rx, SimTime::ZERO);
        match self.schedule(&c, request_bytes, self.clock.now()) {
            Ok(s) => self.clock.now() + s.wait + s.leg + tx + rx,
            Err(_) => self.clock.now() + self.ladder_time(&c),
        }
    }

    /// A one-way bulk transfer (memory-dump synchronization, recording
    /// download). Advances the clock by half an RTT plus serialization
    /// time; lost transfers retransmit under the policy like round trips.
    pub fn try_transfer(&self, bytes: usize, direction: Direction) -> Result<SimTime, LinkError> {
        if let Some(e) = self.error.get() {
            self.stats.inc("net.dropped_while_broken");
            return Err(e);
        }
        let c = self.conditions();
        let tx = c.tx_time(bytes);
        self.next_seq.set(self.next_seq.get() + 1);
        self.stats.inc("net.messages");
        // A sync transfer gates forward progress (job start / IRQ
        // forwarding), so it counts toward the blocking round-trip budget.
        self.stats.inc("net.transfers");
        self.stats.inc("net.blocking_rtts");
        match direction {
            Direction::Up => self.stats.add("net.bytes_up", bytes as u64),
            Direction::Down => self.stats.add("net.bytes_down", bytes as u64),
        }
        match self.schedule(&c, bytes, self.clock.now()) {
            Ok(s) => {
                let total = s.wait + s.leg / 2 + tx;
                self.clock.advance(total);
                match direction {
                    Direction::Up => self.charge_energy(tx, SimTime::ZERO, s.wait + c.rtt / 2),
                    Direction::Down => self.charge_energy(SimTime::ZERO, tx, s.wait + c.rtt / 2),
                }
                Ok(total)
            }
            Err(e) => {
                let ladder = self.ladder_time(&c);
                self.clock.advance(ladder);
                self.charge_energy(SimTime::ZERO, SimTime::ZERO, ladder);
                Err(e)
            }
        }
    }

    /// Infallible wrapper around [`Link::try_transfer`] (legacy callers);
    /// failures latch for the session layer.
    pub fn transfer(&self, bytes: usize, direction: Direction) -> SimTime {
        match self.try_transfer(bytes, direction) {
            Ok(dt) => dt,
            Err(_) => SimTime::ZERO,
        }
    }

    /// The shared stats sink (for layered accounting by the session code).
    pub fn stats(&self) -> &Rc<Stats> {
        &self.stats
    }

    /// The shared clock.
    pub fn clock(&self) -> &Rc<Clock> {
        &self.clock
    }
}

/// Direction of a one-way transfer, from the client's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → cloud (e.g. client memory dump, interrupt forward).
    Up,
    /// Cloud → client (e.g. cloud memory dump, recording download).
    Down,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(c: NetConditions) -> (Rc<Clock>, Rc<Stats>, Rc<Link>) {
        let clock = Clock::new();
        let stats = Stats::new();
        let link = Link::new(&clock, &stats, c);
        (clock, stats, link)
    }

    #[test]
    fn blocking_rtt_advances_clock() {
        let (clock, stats, link) = setup(NetConditions::wifi());
        let dt = link.round_trip(0, 0);
        assert_eq!(dt.as_millis(), 20);
        assert_eq!(clock.now().as_millis(), 20);
        assert_eq!(stats.get("net.blocking_rtts"), 1);
    }

    #[test]
    fn serialization_time_added() {
        let (clock, _, link) = setup(NetConditions::custom(SimTime::ZERO, 8_000_000));
        // 1 MB at 8 Mbps = 1 second each way.
        link.round_trip(1_000_000, 1_000_000);
        assert!((clock.now().as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn async_round_trip_does_not_advance_clock() {
        let (clock, stats, link) = setup(NetConditions::wifi());
        let done_at = link.round_trip_async(100, 100);
        assert_eq!(clock.now(), SimTime::ZERO);
        assert!(done_at.as_millis() >= 20);
        assert_eq!(stats.get("net.blocking_rtts"), 0);
        assert_eq!(stats.get("net.async_rtts"), 1);
    }

    #[test]
    fn transfer_counts_direction() {
        let (_, stats, link) = setup(NetConditions::cellular());
        link.transfer(5000, Direction::Up);
        link.transfer(7000, Direction::Down);
        assert_eq!(stats.get("net.bytes_up"), 5000);
        assert_eq!(stats.get("net.bytes_down"), 7000);
    }

    #[test]
    fn cellular_is_slower_than_wifi() {
        let (cw, _, lw) = setup(NetConditions::wifi());
        let (cc, _, lc) = setup(NetConditions::cellular());
        lw.round_trip(400, 400);
        lc.round_trip(400, 400);
        assert!(cc.now() > cw.now());
    }

    #[test]
    fn energy_charged_per_transfer() {
        let (clock, stats, link) =
            setup(NetConditions::custom(SimTime::from_millis(10), 8_000_000));
        let meter = EnergyMeter::new(&clock);
        link.attach_energy(
            &meter,
            RadioPower {
                tx_watts: 1.0,
                rx_watts: 1.0,
                idle_watts: 0.0,
            },
        );
        // 1 MB up at 8 Mbps = 1 s of tx at 1 W = 1 J.
        link.transfer(1_000_000, Direction::Up);
        assert!((meter.energy(Rail::Radio) - 1.0).abs() < 1e-6);
        let _ = stats;
    }

    #[test]
    fn conditions_can_be_swept() {
        let (clock, _, link) = setup(NetConditions::wifi());
        link.set_conditions(NetConditions::custom(SimTime::from_millis(100), 1_000_000));
        link.round_trip(0, 0);
        assert_eq!(clock.now().as_millis(), 100);
        assert_eq!(link.conditions().rtt.as_millis(), 100);
    }

    #[test]
    fn tx_time_math() {
        let c = NetConditions::custom(SimTime::ZERO, 80_000_000);
        // 10 KB at 80 Mbps = 1 ms.
        assert_eq!(c.tx_time(10_000).as_micros(), 1000);
    }

    #[test]
    fn sequence_numbers_are_per_logical_message() {
        let (_, _, link) = setup(NetConditions::wifi().with_loss(0.4));
        assert_eq!(link.last_seq(), 0);
        for i in 1..=50u64 {
            link.round_trip(10, 10);
            assert_eq!(link.last_seq(), i, "one seq per message, not per attempt");
        }
    }
}

#[cfg(test)]
mod degradation_tests {
    use super::*;

    #[test]
    fn jitter_stretches_rtts_but_never_shrinks() {
        let clock = Clock::new();
        let stats = Stats::new();
        let link = Link::new(&clock, &stats, NetConditions::wifi().with_jitter(0.5));
        let mut total = SimTime::ZERO;
        for _ in 0..50 {
            let dt = link.round_trip(0, 0);
            assert!(dt >= SimTime::from_millis(20), "{dt}");
            assert!(dt <= SimTime::from_millis(30), "{dt}");
            total += dt;
        }
        // On average strictly above the base RTT.
        assert!(total > SimTime::from_millis(20 * 50));
    }

    #[test]
    fn loss_triggers_retransmissions() {
        let clock = Clock::new();
        let stats = Stats::new();
        let link = Link::new(&clock, &stats, NetConditions::wifi().with_loss(0.3));
        for _ in 0..200 {
            link.round_trip(0, 0);
        }
        let retx = stats.get("net.retransmissions");
        assert!((20..160).contains(&retx), "retx={retx}");
        // Each retransmission waited out at least one RTO (1.5 RTT).
        assert!(clock.now() >= SimTime::from_millis(20 * 200) + SimTime::from_millis(30) * retx);
    }

    #[test]
    fn degraded_link_is_deterministic() {
        let run = || {
            let clock = Clock::new();
            let stats = Stats::new();
            let link = Link::new(
                &clock,
                &stats,
                NetConditions::cellular().with_jitter(0.2).with_loss(0.1),
            );
            for i in 0..100 {
                link.round_trip(i, 2 * i);
            }
            clock.now()
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;

    fn setup(c: NetConditions) -> (Rc<Clock>, Rc<Stats>, Rc<Link>) {
        let clock = Clock::new();
        let stats = Stats::new();
        let link = Link::new(&clock, &stats, c);
        (clock, stats, link)
    }

    /// Regression pin (Table-1 accounting): retransmitted messages never
    /// double-count logical bytes or blocking RTTs. A total-loss burst
    /// with jitterless policy makes every count exactly computable.
    #[test]
    fn retransmissions_do_not_double_count_stats() {
        let (clock, stats, link) = setup(NetConditions::wifi());
        link.set_retry_policy(RetryPolicy {
            max_attempts: 6,
            rto_rtts: 1.5,
            backoff: 2.0,
            jitter_frac: 0.0,
        });
        // Total loss for the first 100 ms: the first message's first
        // attempts (at t=0, 30, 90 ms) are all lost; the attempt at
        // t=210 ms succeeds. Messages 2..=10 run on a healed link.
        let plan = Rc::new(FaultPlan::new().with_loss_burst(
            SimTime::ZERO,
            SimTime::from_millis(100),
            1.0,
        ));
        link.attach_faults(&plan);
        for _ in 0..10 {
            link.try_round_trip(1_000, 500)
                .expect("budget covers the burst");
        }
        assert_eq!(stats.get("net.messages"), 10, "logical messages");
        assert_eq!(stats.get("net.blocking_rtts"), 10, "one blocking RTT each");
        assert_eq!(stats.get("net.bytes_up"), 10_000, "payload bytes once");
        assert_eq!(stats.get("net.bytes_down"), 5_000, "payload bytes once");
        // Exactly 3 lost attempts (t=0, 30, 90 ms), all on message 1.
        assert_eq!(stats.get("net.retransmissions"), 3);
        assert_eq!(stats.get("net.retx_bytes_up"), 3_000);
        assert_eq!(stats.get("net.link_failures"), 0);
        // Elapsed: msg1 = 30+60+120 (RTO ladder) + 20 (delivery) = 230 ms,
        // plus 9 × 20 ms, plus 10 × serialization (1500 B at 80 Mbps =
        // 150 µs each).
        let serialization = SimTime::from_micros(150 * 10);
        assert_eq!(
            clock.now(),
            SimTime::from_millis(230 + 9 * 20) + serialization
        );
    }

    #[test]
    fn partition_surfaces_typed_error_with_heal_time() {
        let (clock, stats, link) = setup(NetConditions::wifi());
        link.set_retry_policy(RetryPolicy {
            max_attempts: 3,
            rto_rtts: 1.0,
            backoff: 2.0,
            jitter_frac: 0.0,
        });
        let heal = SimTime::from_secs(30);
        let plan = Rc::new(FaultPlan::new().with_partition(SimTime::ZERO, heal));
        link.attach_faults(&plan);
        let err = link.try_round_trip(100, 100).unwrap_err();
        assert_eq!(err, LinkError::Partitioned { healed_at: heal });
        assert_eq!(link.link_error(), Some(err));
        // The failed ladder's timeouts elapsed: 20+40+80 ms.
        assert_eq!(clock.now(), SimTime::from_millis(140));
        assert_eq!(stats.get("net.link_failures"), 1);
        assert_eq!(stats.get("net.retransmissions"), 2);
    }

    #[test]
    fn broken_link_fast_fails_until_cleared() {
        let (clock, stats, link) = setup(NetConditions::wifi());
        link.set_retry_policy(RetryPolicy {
            max_attempts: 2,
            rto_rtts: 1.0,
            backoff: 2.0,
            jitter_frac: 0.0,
        });
        let plan = Rc::new(FaultPlan::new().with_partition(SimTime::ZERO, SimTime::from_secs(60)));
        link.attach_faults(&plan);
        assert!(link.try_round_trip(10, 10).is_err());
        let t_broken = clock.now();
        // While latched: zero-cost fast failures, nothing accounted.
        let msgs = stats.get("net.messages");
        for _ in 0..5 {
            assert!(link.try_round_trip(10, 10).is_err());
            assert!(link.try_transfer(10, Direction::Up).is_err());
        }
        assert_eq!(clock.now(), t_broken, "fast-fail costs no virtual time");
        assert_eq!(stats.get("net.messages"), msgs);
        assert_eq!(stats.get("net.dropped_while_broken"), 10);
        // After the heal + clear, traffic flows again.
        clock.advance_to(SimTime::from_secs(60));
        link.clear_error();
        assert!(link.try_round_trip(10, 10).is_ok());
        assert_eq!(link.link_error(), None);
    }

    #[test]
    fn short_partition_is_ridden_out_by_retries() {
        let (clock, stats, link) = setup(NetConditions::wifi());
        link.set_retry_policy(RetryPolicy {
            max_attempts: 6,
            rto_rtts: 1.5,
            backoff: 2.0,
            jitter_frac: 0.0,
        });
        // Partition heals at 100 ms; the ladder reaches t=210 ms by
        // attempt 4, which gets through.
        let plan =
            Rc::new(FaultPlan::new().with_partition(SimTime::ZERO, SimTime::from_millis(100)));
        link.attach_faults(&plan);
        let dt = link.try_round_trip(0, 0).expect("retries outlast the flap");
        assert_eq!(dt, SimTime::from_millis(230));
        assert_eq!(stats.get("net.retransmissions"), 3);
        assert_eq!(stats.get("net.link_failures"), 0);
        assert!(clock.now() >= SimTime::from_millis(100));
    }

    #[test]
    fn rtt_spike_stretches_delivery() {
        let (_, _, link) = setup(NetConditions::wifi());
        let plan =
            Rc::new(FaultPlan::new().with_rtt_spike(SimTime::ZERO, SimTime::from_secs(1), 5.0));
        link.attach_faults(&plan);
        let dt = link.try_round_trip(0, 0).unwrap();
        assert_eq!(dt, SimTime::from_millis(100), "5× the 20 ms base RTT");
    }

    #[test]
    fn quiet_plan_leaves_timing_byte_identical() {
        // Attaching a plan whose faults never overlap the traffic must
        // not perturb timing (no extra RNG draws on the base stream).
        let run = |attach: bool| {
            let (clock, _, link) = setup(NetConditions::wifi().with_jitter(0.3));
            if attach {
                let plan = Rc::new(
                    FaultPlan::new()
                        .with_partition(SimTime::from_secs(3600), SimTime::from_secs(3601)),
                );
                link.attach_faults(&plan);
            }
            for i in 0..50 {
                link.round_trip(i * 3, i);
            }
            clock.now()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn faulted_link_is_deterministic() {
        let run = || {
            let (clock, stats, link) = setup(NetConditions::wifi().with_loss(0.05));
            let plan = Rc::new(FaultPlan::generate(
                99,
                &grt_sim::FaultPlanConfig::default(),
            ));
            link.attach_faults(&plan);
            let mut oks = 0u32;
            for i in 0..300 {
                if link.try_round_trip(i, 64).is_ok() {
                    oks += 1;
                } else {
                    clock.advance(SimTime::from_millis(250));
                    link.clear_error();
                }
            }
            (clock.now(), oks, stats.get("net.retransmissions"))
        };
        assert_eq!(run(), run());
    }
}
