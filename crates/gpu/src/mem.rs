//! The CPU/GPU shared memory model.
//!
//! Mobile GPUs share DRAM with the CPU (§2.1). [`Memory`] is one party's
//! physical view of that memory: the cloud VM has one instance (the GPU
//! stack's local memory) and the client has another (the real DRAM the GPU
//! reads); GR-T's memory synchronization keeps them consistent at the §5
//! sync points.
//!
//! Each page carries accessibility flags used for the paper's *continuous
//! validation*: after the cloud ships its dump, the dumped pages are
//! unmapped from the CPU, and any spurious access traps; symmetrically the
//! client unmaps the GPU's view while the GPU is idle.

use std::fmt;

/// The page size used throughout the model (matches the Mali's 4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Per-page accessibility flags for continuous validation (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageFlags {
    /// The CPU (GPU stack) side may not touch this page right now.
    pub cpu_unmapped: bool,
    /// The GPU side may not touch this page right now.
    pub gpu_unmapped: bool,
}

/// Which party is performing an access (selects which trap flag applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accessor {
    /// The CPU-side GPU stack (driver/runtime).
    Cpu,
    /// The GPU hardware (MMU walks, shader loads/stores).
    Gpu,
}

/// A memory access failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// Physical address out of range.
    OutOfBounds {
        /// The faulting physical address.
        pa: u64,
    },
    /// Access hit a page unmapped for this accessor (continuous-validation
    /// trap, §5).
    Trapped {
        /// The faulting physical address.
        pa: u64,
        /// Who tripped the trap.
        accessor: Accessor,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::OutOfBounds { pa } => write!(f, "physical access out of bounds: {pa:#x}"),
            MemFault::Trapped { pa, accessor } => {
                write!(f, "spurious {accessor:?} access trapped at {pa:#x}")
            }
        }
    }
}

impl std::error::Error for MemFault {}

/// A flat physical memory with page-grained trap flags.
///
/// # Examples
///
/// ```
/// use grt_gpu::mem::{Accessor, Memory};
///
/// let mut mem = Memory::new(64 * 1024);
/// mem.write_u32(0x100, 0xDEADBEEF, Accessor::Cpu).unwrap();
/// assert_eq!(mem.read_u32(0x100, Accessor::Gpu).unwrap(), 0xDEADBEEF);
/// ```
pub struct Memory {
    bytes: Vec<u8>,
    flags: Vec<PageFlags>,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("size", &self.bytes.len())
            .finish()
    }
}

impl Memory {
    /// Creates a zeroed memory of `size` bytes (rounded up to a page).
    pub fn new(size: usize) -> Self {
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        Memory {
            bytes: vec![0; size],
            flags: vec![PageFlags::default(); size / PAGE_SIZE],
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.flags.len()
    }

    fn check(&self, pa: u64, len: usize, accessor: Accessor) -> Result<usize, MemFault> {
        let start = pa as usize;
        let end = start.checked_add(len).ok_or(MemFault::OutOfBounds { pa })?;
        if end > self.bytes.len() {
            return Err(MemFault::OutOfBounds { pa });
        }
        let first_page = start / PAGE_SIZE;
        let last_page = (end - 1) / PAGE_SIZE;
        for page in first_page..=last_page {
            let f = self.flags[page];
            let trapped = match accessor {
                Accessor::Cpu => f.cpu_unmapped,
                Accessor::Gpu => f.gpu_unmapped,
            };
            if trapped {
                return Err(MemFault::Trapped {
                    pa: (page * PAGE_SIZE) as u64,
                    accessor,
                });
            }
        }
        Ok(start)
    }

    /// Reads `buf.len()` bytes at `pa`.
    pub fn read(&self, pa: u64, buf: &mut [u8], accessor: Accessor) -> Result<(), MemFault> {
        let start = self.check(pa, buf.len(), accessor)?;
        buf.copy_from_slice(&self.bytes[start..start + buf.len()]);
        Ok(())
    }

    /// Writes `buf` at `pa`.
    pub fn write(&mut self, pa: u64, buf: &[u8], accessor: Accessor) -> Result<(), MemFault> {
        let start = self.check(pa, buf.len(), accessor)?;
        self.bytes[start..start + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, pa: u64, accessor: Accessor) -> Result<u32, MemFault> {
        let mut b = [0u8; 4];
        self.read(pa, &mut b, accessor)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, pa: u64, v: u32, accessor: Accessor) -> Result<(), MemFault> {
        self.write(pa, &v.to_le_bytes(), accessor)
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, pa: u64, accessor: Accessor) -> Result<u64, MemFault> {
        let mut b = [0u8; 8];
        self.read(pa, &mut b, accessor)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, pa: u64, v: u64, accessor: Accessor) -> Result<(), MemFault> {
        self.write(pa, &v.to_le_bytes(), accessor)
    }

    /// Reads a little-endian `f32`.
    pub fn read_f32(&self, pa: u64, accessor: Accessor) -> Result<f32, MemFault> {
        Ok(f32::from_bits(self.read_u32(pa, accessor)?))
    }

    /// Writes a little-endian `f32`.
    pub fn write_f32(&mut self, pa: u64, v: f32, accessor: Accessor) -> Result<(), MemFault> {
        self.write_u32(pa, v.to_bits(), accessor)
    }

    /// Copies out a byte range (dump), ignoring trap flags — dumps are taken
    /// by the shims at synchronization points, when traps are being
    /// (re)configured anyway.
    pub fn dump_range(&self, pa: u64, len: usize) -> Vec<u8> {
        let start = (pa as usize).min(self.bytes.len());
        let end = start.saturating_add(len).min(self.bytes.len());
        self.bytes[start..end].to_vec()
    }

    /// Restores a byte range (from a synchronized dump), ignoring trap flags.
    pub fn restore_range(&mut self, pa: u64, data: &[u8]) {
        let start = (pa as usize).min(self.bytes.len());
        let end = start.saturating_add(data.len()).min(self.bytes.len());
        self.bytes[start..end].copy_from_slice(&data[..end - start]);
    }

    /// Sets the trap flags on a page range.
    pub fn set_page_flags(&mut self, pa: u64, len: usize, flags: PageFlags) {
        if len == 0 {
            return;
        }
        let first = (pa as usize / PAGE_SIZE).min(self.flags.len());
        let last = ((pa as usize + len - 1) / PAGE_SIZE + 1).min(self.flags.len());
        for f in &mut self.flags[first..last] {
            *f = flags;
        }
    }

    /// Reads the trap flags of the page containing `pa`.
    pub fn page_flags(&self, pa: u64) -> PageFlags {
        self.flags
            .get(pa as usize / PAGE_SIZE)
            .copied()
            .unwrap_or_default()
    }

    /// Zeroes all bytes and clears all trap flags (GPU reset / TEE cleanup).
    pub fn wipe(&mut self) {
        self.bytes.fill(0);
        self.flags.fill(PageFlags::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_page_size() {
        let m = Memory::new(1);
        assert_eq!(m.size(), PAGE_SIZE);
        assert_eq!(m.num_pages(), 1);
    }

    #[test]
    fn word_round_trips() {
        let mut m = Memory::new(PAGE_SIZE);
        m.write_u64(8, 0x1122334455667788, Accessor::Cpu).unwrap();
        assert_eq!(m.read_u64(8, Accessor::Cpu).unwrap(), 0x1122334455667788);
        m.write_f32(100, 3.25, Accessor::Gpu).unwrap();
        assert_eq!(m.read_f32(100, Accessor::Gpu).unwrap(), 3.25);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut m = Memory::new(PAGE_SIZE);
        assert!(matches!(
            m.read_u32(PAGE_SIZE as u64 - 2, Accessor::Cpu),
            Err(MemFault::OutOfBounds { .. })
        ));
        assert!(m.write_u32(u64::MAX - 1, 0, Accessor::Cpu).is_err());
    }

    #[test]
    fn cpu_trap_blocks_cpu_not_gpu() {
        let mut m = Memory::new(2 * PAGE_SIZE);
        m.set_page_flags(
            0,
            PAGE_SIZE,
            PageFlags {
                cpu_unmapped: true,
                gpu_unmapped: false,
            },
        );
        assert!(matches!(
            m.read_u32(16, Accessor::Cpu),
            Err(MemFault::Trapped {
                accessor: Accessor::Cpu,
                ..
            })
        ));
        assert!(m.read_u32(16, Accessor::Gpu).is_ok());
        // The second page is unaffected.
        assert!(m.read_u32(PAGE_SIZE as u64 + 16, Accessor::Cpu).is_ok());
    }

    #[test]
    fn gpu_trap_blocks_gpu() {
        let mut m = Memory::new(PAGE_SIZE);
        m.set_page_flags(
            0,
            PAGE_SIZE,
            PageFlags {
                cpu_unmapped: false,
                gpu_unmapped: true,
            },
        );
        assert!(m.write_u32(0, 1, Accessor::Cpu).is_ok());
        assert!(m.write_u32(0, 1, Accessor::Gpu).is_err());
    }

    #[test]
    fn straddling_access_checks_both_pages() {
        let mut m = Memory::new(2 * PAGE_SIZE);
        m.set_page_flags(
            PAGE_SIZE as u64,
            PAGE_SIZE,
            PageFlags {
                cpu_unmapped: true,
                gpu_unmapped: false,
            },
        );
        // An 8-byte access starting 4 bytes before the boundary must trap.
        assert!(m.read_u64(PAGE_SIZE as u64 - 4, Accessor::Cpu).is_err());
    }

    #[test]
    fn dump_and_restore_ignore_traps() {
        let mut m = Memory::new(PAGE_SIZE);
        m.write_u32(0, 42, Accessor::Cpu).unwrap();
        m.set_page_flags(
            0,
            PAGE_SIZE,
            PageFlags {
                cpu_unmapped: true,
                gpu_unmapped: true,
            },
        );
        let dump = m.dump_range(0, PAGE_SIZE);
        assert_eq!(u32::from_le_bytes([dump[0], dump[1], dump[2], dump[3]]), 42);
        let mut m2 = Memory::new(PAGE_SIZE);
        m2.restore_range(0, &dump);
        assert_eq!(m2.read_u32(0, Accessor::Cpu).unwrap(), 42);
    }

    #[test]
    fn dump_clamps_to_size() {
        let m = Memory::new(PAGE_SIZE);
        assert_eq!(m.dump_range(0, 10 * PAGE_SIZE).len(), PAGE_SIZE);
        assert!(m.dump_range(100 * PAGE_SIZE as u64, 8).is_empty());
    }

    #[test]
    fn wipe_clears_everything() {
        let mut m = Memory::new(PAGE_SIZE);
        m.write_u32(0, 7, Accessor::Cpu).unwrap();
        m.set_page_flags(
            0,
            PAGE_SIZE,
            PageFlags {
                cpu_unmapped: true,
                gpu_unmapped: true,
            },
        );
        m.wipe();
        assert_eq!(m.read_u32(0, Accessor::Cpu).unwrap(), 0);
        assert_eq!(m.page_flags(0), PageFlags::default());
    }
}
