//! The CPU/GPU shared memory model.
//!
//! Mobile GPUs share DRAM with the CPU (§2.1). [`Memory`] is one party's
//! physical view of that memory: the cloud VM has one instance (the GPU
//! stack's local memory) and the client has another (the real DRAM the GPU
//! reads); GR-T's memory synchronization keeps them consistent at the §5
//! sync points.
//!
//! Each page carries accessibility flags used for the paper's *continuous
//! validation*: after the cloud ships its dump, the dumped pages are
//! unmapped from the CPU, and any spurious access traps; symmetrically the
//! client unmaps the GPU's view while the GPU is idle.

use std::fmt;

/// The page size used throughout the model (matches the Mali's 4 KiB).
pub const PAGE_SIZE: usize = 4096;

/// Cap on distinct (non-mergeable) entries in the CPU-write log before it
/// degrades to the conservative overflow flag. CPU writes between GPU jobs
/// are region-shaped (input staging, delta restores), so the merged log
/// stays tiny in practice.
const CPU_WRITE_LOG_CAP: usize = 64;

/// Per-page accessibility flags for continuous validation (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageFlags {
    /// The CPU (GPU stack) side may not touch this page right now.
    pub cpu_unmapped: bool,
    /// The GPU side may not touch this page right now.
    pub gpu_unmapped: bool,
}

/// Which party is performing an access (selects which trap flag applies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accessor {
    /// The CPU-side GPU stack (driver/runtime).
    Cpu,
    /// The GPU hardware (MMU walks, shader loads/stores).
    Gpu,
}

/// A memory access failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// Physical address out of range.
    OutOfBounds {
        /// The faulting physical address.
        pa: u64,
    },
    /// Access hit a page unmapped for this accessor (continuous-validation
    /// trap, §5).
    Trapped {
        /// The faulting physical address.
        pa: u64,
        /// Who tripped the trap.
        accessor: Accessor,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::OutOfBounds { pa } => write!(f, "physical access out of bounds: {pa:#x}"),
            MemFault::Trapped { pa, accessor } => {
                write!(f, "spurious {accessor:?} access trapped at {pa:#x}")
            }
        }
    }
}

impl std::error::Error for MemFault {}

/// A flat physical memory with page-grained trap flags.
///
/// # Examples
///
/// ```
/// use grt_gpu::mem::{Accessor, Memory};
///
/// let mut mem = Memory::new(64 * 1024);
/// mem.write_u32(0x100, 0xDEADBEEF, Accessor::Cpu).unwrap();
/// assert_eq!(mem.read_u32(0x100, Accessor::Gpu).unwrap(), 0xDEADBEEF);
/// ```
#[derive(Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    flags: Vec<PageFlags>,
    /// Page ranges `[start, end)` (byte offsets, page-aligned) written by
    /// the CPU since the GPU last drained the log
    /// ([`Memory::take_cpu_writes`]). The GPU reconciles these against its
    /// software TLB at descriptor boundaries: a CPU write that landed on a
    /// walked table page flushes, anything else (input staging, delta
    /// application to data pages) leaves cached translations alone.
    /// Adjacent writes merge in place; GPU-side stores are covered
    /// separately by `Tlb::note_store`.
    cpu_writes: Vec<(u64, u64)>,
    /// Set when the log hit its cap (or the memory was wiped): the GPU
    /// must treat the whole address space as potentially rewritten.
    cpu_writes_overflowed: bool,
    /// One bit per page, set by any mutation since the last
    /// [`Memory::clear_dirty`] on that page. Lets the memsync layer skip
    /// dumping and comparing regions nothing wrote to.
    dirty: Vec<u64>,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("size", &self.bytes.len())
            .finish()
    }
}

impl Memory {
    /// Creates a zeroed memory of `size` bytes (rounded up to a page).
    pub fn new(size: usize) -> Self {
        let size = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let pages = size / PAGE_SIZE;
        Memory {
            bytes: vec![0; size],
            flags: vec![PageFlags::default(); pages],
            cpu_writes: Vec::new(),
            cpu_writes_overflowed: false,
            dirty: vec![0; pages.div_ceil(64)],
        }
    }

    /// Appends `[start, end)` to the CPU-write log (page-rounded), merging
    /// with the previous entry when they touch. Past the cap the log
    /// degrades to the overflow flag — the conservative "flush everything"
    /// signal — so it can never grow without bound between drains.
    fn log_cpu_write(&mut self, start: usize, end: usize) {
        if end <= start || self.cpu_writes_overflowed {
            return;
        }
        let s = (start / PAGE_SIZE * PAGE_SIZE) as u64;
        let e = (end.div_ceil(PAGE_SIZE) * PAGE_SIZE) as u64;
        if let Some(last) = self.cpu_writes.last_mut() {
            if s <= last.1 && e >= last.0 {
                last.0 = last.0.min(s);
                last.1 = last.1.max(e);
                return;
            }
        }
        if self.cpu_writes.len() >= CPU_WRITE_LOG_CAP {
            self.cpu_writes.clear();
            self.cpu_writes_overflowed = true;
            return;
        }
        self.cpu_writes.push((s, e));
    }

    /// Drains the CPU-write log: every page range the CPU has written
    /// since the previous drain, plus whether the log overflowed (treat as
    /// "anything may have been written"). The GPU calls this at descriptor
    /// boundaries and feeds the ranges to `Tlb::note_store`, so cached
    /// translations survive CPU writes that never touched a walked table
    /// page — the common case between warm-replay jobs.
    pub fn take_cpu_writes(&mut self) -> (Vec<(u64, u64)>, bool) {
        let overflowed = self.cpu_writes_overflowed;
        self.cpu_writes_overflowed = false;
        (std::mem::take(&mut self.cpu_writes), overflowed)
    }

    /// Marks the pages overlapping `[start, end)` (byte offsets) dirty.
    fn mark_dirty(&mut self, start: usize, end: usize) {
        if end <= start {
            return;
        }
        let first = start / PAGE_SIZE;
        let last = ((end - 1) / PAGE_SIZE).min(self.flags.len().saturating_sub(1));
        for page in first..=last {
            self.dirty[page / 64] |= 1u64 << (page % 64);
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.flags.len()
    }

    fn check(&self, pa: u64, len: usize, accessor: Accessor) -> Result<usize, MemFault> {
        let start = pa as usize;
        let end = start.checked_add(len).ok_or(MemFault::OutOfBounds { pa })?;
        if end > self.bytes.len() {
            return Err(MemFault::OutOfBounds { pa });
        }
        let first_page = start / PAGE_SIZE;
        let last_page = (end - 1) / PAGE_SIZE;
        for page in first_page..=last_page {
            let f = self.flags[page];
            let trapped = match accessor {
                Accessor::Cpu => f.cpu_unmapped,
                Accessor::Gpu => f.gpu_unmapped,
            };
            if trapped {
                return Err(MemFault::Trapped {
                    pa: (page * PAGE_SIZE) as u64,
                    accessor,
                });
            }
        }
        Ok(start)
    }

    /// Reads `buf.len()` bytes at `pa`.
    pub fn read(&self, pa: u64, buf: &mut [u8], accessor: Accessor) -> Result<(), MemFault> {
        let start = self.check(pa, buf.len(), accessor)?;
        buf.copy_from_slice(&self.bytes[start..start + buf.len()]);
        Ok(())
    }

    /// Writes `buf` at `pa`.
    pub fn write(&mut self, pa: u64, buf: &[u8], accessor: Accessor) -> Result<(), MemFault> {
        let start = self.check(pa, buf.len(), accessor)?;
        self.bytes[start..start + buf.len()].copy_from_slice(buf);
        self.mark_dirty(start, start + buf.len());
        if matches!(accessor, Accessor::Cpu) {
            self.log_cpu_write(start, start + buf.len());
        }
        Ok(())
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, pa: u64, accessor: Accessor) -> Result<u32, MemFault> {
        let mut b = [0u8; 4];
        self.read(pa, &mut b, accessor)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, pa: u64, v: u32, accessor: Accessor) -> Result<(), MemFault> {
        self.write(pa, &v.to_le_bytes(), accessor)
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, pa: u64, accessor: Accessor) -> Result<u64, MemFault> {
        let mut b = [0u8; 8];
        self.read(pa, &mut b, accessor)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, pa: u64, v: u64, accessor: Accessor) -> Result<(), MemFault> {
        self.write(pa, &v.to_le_bytes(), accessor)
    }

    /// Reads a little-endian `f32`.
    pub fn read_f32(&self, pa: u64, accessor: Accessor) -> Result<f32, MemFault> {
        Ok(f32::from_bits(self.read_u32(pa, accessor)?))
    }

    /// Writes a little-endian `f32`.
    pub fn write_f32(&mut self, pa: u64, v: f32, accessor: Accessor) -> Result<(), MemFault> {
        self.write_u32(pa, v.to_bits(), accessor)
    }

    /// Reads `out.len()` little-endian `f32`s starting at `pa` in one
    /// trap-checked pass — the bulk half of the page-run fast path. One
    /// permission check covers the whole range instead of one per element.
    pub fn read_bulk(&self, pa: u64, out: &mut [f32], accessor: Accessor) -> Result<(), MemFault> {
        let len = out.len() * 4;
        let start = self.check(pa, len, accessor)?;
        for (v, b) in out
            .iter_mut()
            .zip(self.bytes[start..start + len].chunks_exact(4))
        {
            *v = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        }
        Ok(())
    }

    /// Writes `vals` as little-endian `f32`s starting at `pa` in one
    /// trap-checked pass, marking the whole range dirty once.
    pub fn write_bulk(
        &mut self,
        pa: u64,
        vals: &[f32],
        accessor: Accessor,
    ) -> Result<(), MemFault> {
        let len = vals.len() * 4;
        let start = self.check(pa, len, accessor)?;
        for (v, b) in vals
            .iter()
            .zip(self.bytes[start..start + len].chunks_exact_mut(4))
        {
            b.copy_from_slice(&v.to_le_bytes());
        }
        self.mark_dirty(start, start + len);
        if matches!(accessor, Accessor::Cpu) {
            self.log_cpu_write(start, start + len);
        }
        Ok(())
    }

    /// Copies `len` bytes from `src_pa` to `dst_pa` without staging them
    /// through a caller buffer — the memmove half of the page-run fast
    /// path for `Copy` kernels. Both ranges are trap-checked (source as a
    /// read, destination as a write) and the destination is marked dirty
    /// once. Overlapping ranges copy as a single `memmove`.
    pub fn copy_within(
        &mut self,
        src_pa: u64,
        dst_pa: u64,
        len: usize,
        accessor: Accessor,
    ) -> Result<(), MemFault> {
        let src = self.check(src_pa, len, accessor)?;
        let dst = self.check(dst_pa, len, accessor)?;
        self.bytes.copy_within(src..src + len, dst);
        self.mark_dirty(dst, dst + len);
        if matches!(accessor, Accessor::Cpu) {
            self.log_cpu_write(dst, dst + len);
        }
        Ok(())
    }

    /// Copies out a byte range (dump), ignoring trap flags — dumps are taken
    /// by the shims at synchronization points, when traps are being
    /// (re)configured anyway.
    pub fn dump_range(&self, pa: u64, len: usize) -> Vec<u8> {
        let start = (pa as usize).min(self.bytes.len());
        let end = start.saturating_add(len).min(self.bytes.len());
        self.bytes[start..end].to_vec()
    }

    /// Restores a byte range (from a synchronized dump), ignoring trap flags.
    pub fn restore_range(&mut self, pa: u64, data: &[u8]) {
        let start = (pa as usize).min(self.bytes.len());
        let end = start.saturating_add(data.len()).min(self.bytes.len());
        self.bytes[start..end].copy_from_slice(&data[..end - start]);
        self.mark_dirty(start, end);
        self.log_cpu_write(start, end);
    }

    /// XORs `xor` into the bytes at `pa`, ignoring trap flags and clamping
    /// at the end of memory (like [`Memory::restore_range`]).
    ///
    /// This is the in-place fast path for applying a pre-validated page
    /// delta: equivalent to dump + XOR-decode + restore of the same range.
    pub fn xor_range(&mut self, pa: u64, xor: &[u8]) {
        let start = (pa as usize).min(self.bytes.len());
        let end = start.saturating_add(xor.len()).min(self.bytes.len());
        for (b, &x) in self.bytes[start..end].iter_mut().zip(xor) {
            *b ^= x;
        }
        self.mark_dirty(start, end);
        self.log_cpu_write(start, end);
    }

    /// Whether any page overlapping `[pa, pa + len)` has been written since
    /// the last [`Memory::clear_dirty`] covering it. Ranges past the end of
    /// memory are clamped.
    pub fn any_dirty(&self, pa: u64, len: usize) -> bool {
        let start = (pa as usize).min(self.bytes.len());
        let end = start.saturating_add(len).min(self.bytes.len());
        if end <= start {
            return false;
        }
        let first = start / PAGE_SIZE;
        let last = (end - 1) / PAGE_SIZE;
        (first..=last).any(|p| self.dirty[p / 64] & (1u64 << (p % 64)) != 0)
    }

    /// Number of dirty pages overlapping `[pa, pa + len)`.
    pub fn count_dirty_pages(&self, pa: u64, len: usize) -> usize {
        let start = (pa as usize).min(self.bytes.len());
        let end = start.saturating_add(len).min(self.bytes.len());
        if end <= start {
            return 0;
        }
        let first = start / PAGE_SIZE;
        let last = (end - 1) / PAGE_SIZE;
        (first..=last)
            .filter(|p| self.dirty[p / 64] & (1u64 << (p % 64)) != 0)
            .count()
    }

    /// Clears the dirty bits of every page overlapping `[pa, pa + len)`.
    ///
    /// Called by the memsync layer once a region's content has been
    /// captured in a baseline, so the next sync can prove "nothing wrote
    /// here" without dumping.
    pub fn clear_dirty(&mut self, pa: u64, len: usize) {
        let start = (pa as usize).min(self.bytes.len());
        let end = start.saturating_add(len).min(self.bytes.len());
        if end <= start {
            return;
        }
        let first = start / PAGE_SIZE;
        let last = (end - 1) / PAGE_SIZE;
        for p in first..=last {
            self.dirty[p / 64] &= !(1u64 << (p % 64));
        }
    }

    /// Sets the trap flags on a page range.
    pub fn set_page_flags(&mut self, pa: u64, len: usize, flags: PageFlags) {
        if len == 0 {
            return;
        }
        let first = (pa as usize / PAGE_SIZE).min(self.flags.len());
        let last = ((pa as usize + len - 1) / PAGE_SIZE + 1).min(self.flags.len());
        for f in &mut self.flags[first..last] {
            *f = flags;
        }
    }

    /// Reads the trap flags of the page containing `pa`.
    pub fn page_flags(&self, pa: u64) -> PageFlags {
        self.flags
            .get(pa as usize / PAGE_SIZE)
            .copied()
            .unwrap_or_default()
    }

    /// Zeroes all bytes and clears all trap flags (GPU reset / TEE cleanup).
    ///
    /// Every page is marked dirty: the wipe changed (or may have changed)
    /// its contents relative to any baseline taken before it.
    pub fn wipe(&mut self) {
        self.bytes.fill(0);
        self.flags.fill(PageFlags::default());
        self.dirty.fill(u64::MAX);
        self.cpu_writes.clear();
        self.cpu_writes_overflowed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_page_size() {
        let m = Memory::new(1);
        assert_eq!(m.size(), PAGE_SIZE);
        assert_eq!(m.num_pages(), 1);
    }

    #[test]
    fn word_round_trips() {
        let mut m = Memory::new(PAGE_SIZE);
        m.write_u64(8, 0x1122334455667788, Accessor::Cpu).unwrap();
        assert_eq!(m.read_u64(8, Accessor::Cpu).unwrap(), 0x1122334455667788);
        m.write_f32(100, 3.25, Accessor::Gpu).unwrap();
        assert_eq!(m.read_f32(100, Accessor::Gpu).unwrap(), 3.25);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut m = Memory::new(PAGE_SIZE);
        assert!(matches!(
            m.read_u32(PAGE_SIZE as u64 - 2, Accessor::Cpu),
            Err(MemFault::OutOfBounds { .. })
        ));
        assert!(m.write_u32(u64::MAX - 1, 0, Accessor::Cpu).is_err());
    }

    #[test]
    fn copy_within_moves_bytes_and_marks_dirty() {
        let mut m = Memory::new(4 * PAGE_SIZE);
        let data: Vec<u8> = (0..=255).collect();
        m.write(100, &data, Accessor::Cpu).unwrap();
        m.clear_dirty(0, 4 * PAGE_SIZE);
        let dst = (2 * PAGE_SIZE + 10) as u64;
        m.copy_within(100, dst, data.len(), Accessor::Gpu).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read(dst, &mut back, Accessor::Gpu).unwrap();
        assert_eq!(back, data);
        // Only the destination pages are dirty; the source stays clean.
        assert!(m.any_dirty(dst, data.len()));
        assert!(!m.any_dirty(100, data.len()));
        // Overlapping forward copy behaves as one memmove.
        m.copy_within(100, 104, 16, Accessor::Cpu).unwrap();
        let mut moved = vec![0u8; 16];
        m.read(104, &mut moved, Accessor::Cpu).unwrap();
        assert_eq!(moved, data[..16]);
    }

    #[test]
    fn copy_within_is_trap_checked_both_ends() {
        let mut m = Memory::new(2 * PAGE_SIZE);
        m.set_page_flags(
            PAGE_SIZE as u64,
            PAGE_SIZE,
            PageFlags {
                cpu_unmapped: false,
                gpu_unmapped: true,
            },
        );
        // Destination trapped.
        assert!(matches!(
            m.copy_within(0, PAGE_SIZE as u64, 8, Accessor::Gpu),
            Err(MemFault::Trapped { .. })
        ));
        // Source trapped.
        assert!(matches!(
            m.copy_within(PAGE_SIZE as u64, 0, 8, Accessor::Gpu),
            Err(MemFault::Trapped { .. })
        ));
        // Out of bounds.
        assert!(m
            .copy_within(0, (2 * PAGE_SIZE - 4) as u64, 8, Accessor::Cpu)
            .is_err());
    }

    #[test]
    fn cpu_trap_blocks_cpu_not_gpu() {
        let mut m = Memory::new(2 * PAGE_SIZE);
        m.set_page_flags(
            0,
            PAGE_SIZE,
            PageFlags {
                cpu_unmapped: true,
                gpu_unmapped: false,
            },
        );
        assert!(matches!(
            m.read_u32(16, Accessor::Cpu),
            Err(MemFault::Trapped {
                accessor: Accessor::Cpu,
                ..
            })
        ));
        assert!(m.read_u32(16, Accessor::Gpu).is_ok());
        // The second page is unaffected.
        assert!(m.read_u32(PAGE_SIZE as u64 + 16, Accessor::Cpu).is_ok());
    }

    #[test]
    fn gpu_trap_blocks_gpu() {
        let mut m = Memory::new(PAGE_SIZE);
        m.set_page_flags(
            0,
            PAGE_SIZE,
            PageFlags {
                cpu_unmapped: false,
                gpu_unmapped: true,
            },
        );
        assert!(m.write_u32(0, 1, Accessor::Cpu).is_ok());
        assert!(m.write_u32(0, 1, Accessor::Gpu).is_err());
    }

    #[test]
    fn straddling_access_checks_both_pages() {
        let mut m = Memory::new(2 * PAGE_SIZE);
        m.set_page_flags(
            PAGE_SIZE as u64,
            PAGE_SIZE,
            PageFlags {
                cpu_unmapped: true,
                gpu_unmapped: false,
            },
        );
        // An 8-byte access starting 4 bytes before the boundary must trap.
        assert!(m.read_u64(PAGE_SIZE as u64 - 4, Accessor::Cpu).is_err());
    }

    #[test]
    fn dump_and_restore_ignore_traps() {
        let mut m = Memory::new(PAGE_SIZE);
        m.write_u32(0, 42, Accessor::Cpu).unwrap();
        m.set_page_flags(
            0,
            PAGE_SIZE,
            PageFlags {
                cpu_unmapped: true,
                gpu_unmapped: true,
            },
        );
        let dump = m.dump_range(0, PAGE_SIZE);
        assert_eq!(u32::from_le_bytes([dump[0], dump[1], dump[2], dump[3]]), 42);
        let mut m2 = Memory::new(PAGE_SIZE);
        m2.restore_range(0, &dump);
        assert_eq!(m2.read_u32(0, Accessor::Cpu).unwrap(), 42);
    }

    #[test]
    fn dump_clamps_to_size() {
        let m = Memory::new(PAGE_SIZE);
        assert_eq!(m.dump_range(0, 10 * PAGE_SIZE).len(), PAGE_SIZE);
        assert!(m.dump_range(100 * PAGE_SIZE as u64, 8).is_empty());
    }

    #[test]
    fn dirty_bits_track_writes_per_page() {
        let mut m = Memory::new(4 * PAGE_SIZE);
        assert!(!m.any_dirty(0, 4 * PAGE_SIZE));
        m.write_u32(PAGE_SIZE as u64 + 8, 7, Accessor::Cpu).unwrap();
        assert!(m.any_dirty(0, 4 * PAGE_SIZE));
        assert!(!m.any_dirty(0, PAGE_SIZE));
        assert!(m.any_dirty(PAGE_SIZE as u64, PAGE_SIZE));
        assert_eq!(m.count_dirty_pages(0, 4 * PAGE_SIZE), 1);
        m.clear_dirty(PAGE_SIZE as u64, PAGE_SIZE);
        assert!(!m.any_dirty(0, 4 * PAGE_SIZE));
    }

    #[test]
    fn dirty_bits_track_restore_and_xor() {
        let mut m = Memory::new(4 * PAGE_SIZE);
        m.restore_range(2 * PAGE_SIZE as u64, &[1, 2, 3]);
        assert!(m.any_dirty(2 * PAGE_SIZE as u64, PAGE_SIZE));
        m.clear_dirty(0, 4 * PAGE_SIZE);
        m.xor_range(3 * PAGE_SIZE as u64, &[0xFF; 8]);
        assert!(m.any_dirty(3 * PAGE_SIZE as u64, PAGE_SIZE));
        assert!(!m.any_dirty(0, 3 * PAGE_SIZE));
    }

    #[test]
    fn straddling_write_dirties_both_pages() {
        let mut m = Memory::new(2 * PAGE_SIZE);
        m.write_u64(PAGE_SIZE as u64 - 4, 0xFFFF_FFFF_FFFF_FFFF, Accessor::Cpu)
            .unwrap();
        assert_eq!(m.count_dirty_pages(0, 2 * PAGE_SIZE), 2);
    }

    #[test]
    fn dirty_queries_clamp_out_of_range() {
        let m = Memory::new(PAGE_SIZE);
        assert!(!m.any_dirty(100 * PAGE_SIZE as u64, PAGE_SIZE));
        assert_eq!(m.count_dirty_pages(100 * PAGE_SIZE as u64, 8), 0);
    }

    #[test]
    fn bulk_f32_round_trips_bit_exactly() {
        let mut m = Memory::new(2 * PAGE_SIZE);
        // Include a signalling-NaN pattern and -0.0: bulk copies must be
        // bit-transparent, not value-transparent.
        let vals = [
            1.5f32,
            -0.0,
            f32::from_bits(0x7FA0_0001),
            f32::MIN_POSITIVE,
            -3.25,
        ];
        m.write_bulk(PAGE_SIZE as u64 - 8, &vals, Accessor::Gpu)
            .unwrap();
        let mut back = [0.0f32; 5];
        m.read_bulk(PAGE_SIZE as u64 - 8, &mut back, Accessor::Gpu)
            .unwrap();
        assert_eq!(
            vals.map(f32::to_bits),
            back.map(f32::to_bits),
            "bulk copy must preserve exact bit patterns"
        );
        // Matches the scalar path byte-for-byte.
        for (i, v) in vals.iter().enumerate() {
            let pa = PAGE_SIZE as u64 - 8 + 4 * i as u64;
            assert_eq!(
                m.read_f32(pa, Accessor::Cpu).unwrap().to_bits(),
                v.to_bits()
            );
        }
    }

    #[test]
    fn bulk_access_respects_traps_and_bounds() {
        let mut m = Memory::new(2 * PAGE_SIZE);
        m.set_page_flags(
            PAGE_SIZE as u64,
            PAGE_SIZE,
            PageFlags {
                cpu_unmapped: false,
                gpu_unmapped: true,
            },
        );
        let mut buf = [0.0f32; 4];
        // A straddling bulk read must trap on the protected second page.
        assert!(m
            .read_bulk(PAGE_SIZE as u64 - 8, &mut buf, Accessor::Gpu)
            .is_err());
        assert!(m
            .read_bulk(PAGE_SIZE as u64 - 8, &mut buf, Accessor::Cpu)
            .is_ok());
        assert!(m
            .write_bulk(2 * PAGE_SIZE as u64 - 4, &buf, Accessor::Cpu)
            .is_err());
    }

    #[test]
    fn bulk_write_marks_dirty() {
        let mut m = Memory::new(2 * PAGE_SIZE);
        m.clear_dirty(0, 2 * PAGE_SIZE);
        m.write_bulk(PAGE_SIZE as u64 - 4, &[1.0, 2.0], Accessor::Gpu)
            .unwrap();
        assert_eq!(m.count_dirty_pages(0, 2 * PAGE_SIZE), 2);
    }

    #[test]
    fn xor_range_matches_dump_decode_restore() {
        let mut a = Memory::new(2 * PAGE_SIZE);
        a.write(0, &[0x5A; 2 * PAGE_SIZE], Accessor::Cpu).unwrap();
        let mut b = Memory::new(2 * PAGE_SIZE);
        b.write(0, &[0x5A; 2 * PAGE_SIZE], Accessor::Cpu).unwrap();
        let xor = [0x0Fu8; 100];
        // Fast path on `a`.
        a.xor_range(PAGE_SIZE as u64, &xor);
        // Slow path on `b`.
        let mut page = b.dump_range(PAGE_SIZE as u64, 100);
        for (p, x) in page.iter_mut().zip(xor) {
            *p ^= x;
        }
        b.restore_range(PAGE_SIZE as u64, &page);
        assert_eq!(
            a.dump_range(0, 2 * PAGE_SIZE),
            b.dump_range(0, 2 * PAGE_SIZE)
        );
    }

    #[test]
    fn wipe_marks_everything_dirty() {
        let mut m = Memory::new(2 * PAGE_SIZE);
        m.clear_dirty(0, 2 * PAGE_SIZE);
        m.wipe();
        assert_eq!(m.count_dirty_pages(0, 2 * PAGE_SIZE), 2);
    }

    #[test]
    fn wipe_clears_everything() {
        let mut m = Memory::new(PAGE_SIZE);
        m.write_u32(0, 7, Accessor::Cpu).unwrap();
        m.set_page_flags(
            0,
            PAGE_SIZE,
            PageFlags {
                cpu_unmapped: true,
                gpu_unmapped: true,
            },
        );
        m.wipe();
        assert_eq!(m.read_u32(0, Accessor::Cpu).unwrap(), 0);
        assert_eq!(m.page_flags(0), PageFlags::default());
    }
}
