//! A register-level model of a Mali-Bifrost-class mobile GPU.
//!
//! The paper's prototype targets the Mali G71 MP8 on a HiKey960. GR-T never
//! looks *inside* the GPU — it interposes the CPU/GPU boundary: registers,
//! shared memory, and interrupts (§2.1). This crate therefore models exactly
//! that boundary, faithfully enough that a kbase-style driver written
//! against it produces the same *classes* of interaction traffic the paper
//! records:
//!
//! - a Bifrost-like register map ([`regs`]): GPU/JOB/MMU control blocks,
//!   job slots, address spaces, power domains;
//! - LPAE-style GPU page tables living **in shared memory** ([`mmu`]), so
//!   page-table state is captured by memory dumps exactly as in the paper;
//! - a tiny tensor-level shader ISA and interpreter ([`shader`]) — the GPU
//!   really fetches job descriptors and shader code from shared memory
//!   through its MMU and really computes, which is what makes replay-with-
//!   new-input produce correct inference results;
//! - timestamp-based hardware state machines (power-up, cache/TLB flush,
//!   soft reset, job completion) on the shared virtual clock, so polling
//!   loops and interrupt waits cost realistic virtual time;
//! - a GPU SKU catalog ([`sku`], [`catalog`]) reproducing the diversity
//!   argument of Figure 3 and making JIT output genuinely SKU-specific.

#![warn(missing_docs)]

pub mod catalog;
pub mod fusion;
pub mod gpu;
pub mod job;
pub mod mem;
pub mod mmu;
pub mod regs;
pub mod shader;
pub mod sku;

pub use fusion::{FusedDirective, TailAdd};
pub use gpu::{ExecStats, Gpu, IrqLine};
pub use job::{JobDescriptor, JobStatus};
pub use mem::{Memory, PageFlags, PAGE_SIZE};
pub use mmu::{AddressSpace, PteFlags, Tlb, TlbStats};
pub use shader::{ConvParams, OpKind, OpKindStats, PoolKind, ShaderOp, OP_KIND_COUNT};
pub use sku::{CostEnvelope, GpuSku};
