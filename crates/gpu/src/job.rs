//! Job descriptors: the in-memory structures the GPU fetches at `JS_HEAD`.
//!
//! The runtime emits a chain of descriptors into shared memory; the driver
//! writes the head VA into the job-slot registers and kicks `JS_COMMAND =
//! START`. Descriptors are data like any other — they travel in memory
//! dumps and are classified as metastate by the §5 synchronizer.

use crate::mem::{Accessor, Memory};
use crate::mmu::{AccessKind, MmuFault, Tlb, Walker};

/// Size of one encoded job descriptor.
pub const DESC_SIZE: usize = 64;

/// Magic tag identifying a valid descriptor ("JOB1").
pub const DESC_MAGIC: u32 = 0x4A4F_4231;

/// Completion status written back into the descriptor by the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Not yet executed.
    Pending,
    /// Completed successfully.
    Done,
    /// Faulted with a `JS_STATUS`-style code.
    Fault(u32),
}

impl JobStatus {
    /// Encodes to the descriptor's status word.
    pub fn to_word(self) -> u32 {
        match self {
            JobStatus::Pending => 0,
            JobStatus::Done => 1,
            JobStatus::Fault(code) => code,
        }
    }

    /// Decodes from the descriptor's status word.
    pub fn from_word(w: u32) -> JobStatus {
        match w {
            0 => JobStatus::Pending,
            1 => JobStatus::Done,
            code => JobStatus::Fault(code),
        }
    }
}

/// A GPU job descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobDescriptor {
    /// VA of the shader program.
    pub shader_va: u64,
    /// Number of instructions in the program.
    pub n_instrs: u32,
    /// Virtual execution cost in microseconds (set by the JIT cost model).
    pub cost_us: u32,
    /// VA of the next descriptor in the chain (0 = end).
    pub next_va: u64,
    /// Completion status (written by the GPU).
    pub status: JobStatus,
}

impl JobDescriptor {
    /// Encodes into the 64-byte wire format.
    pub fn encode(&self) -> [u8; DESC_SIZE] {
        let mut b = [0u8; DESC_SIZE];
        b[0..4].copy_from_slice(&DESC_MAGIC.to_le_bytes());
        b[8..16].copy_from_slice(&self.shader_va.to_le_bytes());
        b[16..20].copy_from_slice(&self.n_instrs.to_le_bytes());
        b[20..24].copy_from_slice(&self.cost_us.to_le_bytes());
        b[24..32].copy_from_slice(&self.next_va.to_le_bytes());
        b[32..36].copy_from_slice(&self.status.to_word().to_le_bytes());
        b
    }

    /// Decodes from the wire format; `None` if the magic is wrong.
    pub fn decode(b: &[u8; DESC_SIZE]) -> Option<JobDescriptor> {
        let u32_at = |off: usize| u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]]);
        let u64_at = |off: usize| {
            let mut x = [0u8; 8];
            x.copy_from_slice(&b[off..off + 8]);
            u64::from_le_bytes(x)
        };
        if u32_at(0) != DESC_MAGIC {
            return None;
        }
        Some(JobDescriptor {
            shader_va: u64_at(8),
            n_instrs: u32_at(16),
            cost_us: u32_at(20),
            next_va: u64_at(24),
            status: JobStatus::from_word(u32_at(32)),
        })
    }

    /// Reads a descriptor at `va` through the GPU MMU.
    pub fn read_via_mmu(mem: &Memory, walker: &Walker, va: u64) -> Result<Option<Self>, MmuFault> {
        let mut raw = [0u8; DESC_SIZE];
        for (i, byte) in raw.iter_mut().enumerate() {
            let pa = walker.translate(mem, va + i as u64, AccessKind::Read)?;
            let mut one = [0u8];
            mem.read(pa, &mut one, Accessor::Gpu)
                .map_err(|fault| MmuFault::WalkError { fault })?;
            *byte = one[0];
        }
        Ok(JobDescriptor::decode(&raw))
    }

    /// Reads a descriptor at `va` through the GPU MMU using the software TLB.
    ///
    /// Translates in contiguous page runs instead of once per byte: a
    /// descriptor spans at most two pages, so this costs at most two
    /// `translate_run` calls (usually one) instead of 64 full walks.
    pub fn read_via_mmu_cached(
        mem: &Memory,
        walker: &Walker,
        tlb: &mut Tlb,
        va: u64,
    ) -> Result<Option<Self>, MmuFault> {
        let mut raw = [0u8; DESC_SIZE];
        let mut done = 0usize;
        while done < DESC_SIZE {
            let (pa, run) = walker.translate_run(
                mem,
                tlb,
                va + done as u64,
                DESC_SIZE - done,
                AccessKind::Read,
            )?;
            mem.read(pa, &mut raw[done..done + run], Accessor::Gpu)
                .map_err(|fault| MmuFault::WalkError { fault })?;
            done += run;
        }
        Ok(JobDescriptor::decode(&raw))
    }

    /// Writes this descriptor's status word back at `va` through the MMU.
    pub fn write_status_via_mmu(
        mem: &mut Memory,
        walker: &Walker,
        va: u64,
        status: JobStatus,
    ) -> Result<(), MmuFault> {
        let word = status.to_word().to_le_bytes();
        for (i, byte) in word.iter().enumerate() {
            let pa = walker.translate(mem, va + 32 + i as u64, AccessKind::Write)?;
            mem.write(pa, &[*byte], Accessor::Gpu)
                .map_err(|fault| MmuFault::WalkError { fault })?;
        }
        Ok(())
    }

    /// Writes this descriptor's status word back via the software TLB.
    ///
    /// The store is reported to the TLB (`note_store`) so a descriptor that
    /// aliases a walked page-table page cannot leave stale translations.
    pub fn write_status_via_mmu_cached(
        mem: &mut Memory,
        walker: &Walker,
        tlb: &mut Tlb,
        va: u64,
        status: JobStatus,
    ) -> Result<(), MmuFault> {
        let word = status.to_word().to_le_bytes();
        let mut done = 0usize;
        while done < word.len() {
            let (pa, run) = walker.translate_run(
                mem,
                tlb,
                va + 32 + done as u64,
                word.len() - done,
                AccessKind::Write,
            )?;
            mem.write(pa, &word[done..done + run], Accessor::Gpu)
                .map_err(|fault| MmuFault::WalkError { fault })?;
            tlb.note_store(pa, run);
            done += run;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let d = JobDescriptor {
            shader_va: 0xABCD_0000,
            n_instrs: 7,
            cost_us: 1234,
            next_va: 0x1111_2000,
            status: JobStatus::Pending,
        };
        let back = JobDescriptor::decode(&d.encode()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = JobDescriptor {
            shader_va: 0,
            n_instrs: 0,
            cost_us: 0,
            next_va: 0,
            status: JobStatus::Pending,
        }
        .encode();
        raw[0] ^= 0xFF;
        assert!(JobDescriptor::decode(&raw).is_none());
    }

    #[test]
    fn status_words_round_trip() {
        for s in [JobStatus::Pending, JobStatus::Done, JobStatus::Fault(0x40)] {
            assert_eq!(JobStatus::from_word(s.to_word()), s);
        }
    }
}
