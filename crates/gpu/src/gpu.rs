//! The GPU device model: register file and hardware state machines.
//!
//! Everything the outside world can observe goes through three channels,
//! exactly as in §2.1: [`Gpu::read_reg`] / [`Gpu::write_reg`], the shared
//! [`Memory`], and interrupt lines. Hardware activities (reset, power
//! transitions, cache flushes, job execution) take *virtual time*: their
//! completion is a timestamp, and register reads / interrupt queries are
//! evaluated against the shared clock. This is what gives polling loops and
//! interrupt waits realistic costs without a central event pump.

use crate::fusion::FusedDirective;
use crate::job::{JobDescriptor, JobStatus};
use crate::mem::Memory;
use crate::mmu::{AddressSpace, Tlb, TlbStats, Walker};
use crate::regs::{gpu_control as gc, job_control as jc, mmu_control as mc};
use crate::shader::{
    execute_program, ExecReport, ExecScratch, OpKindStats, ShaderFault, OP_KIND_COUNT,
};
use crate::sku::GpuSku;
use grt_sim::{Clock, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Virtual duration of a soft/hard reset.
const RESET_TIME: SimTime = SimTime::from_micros(150);
/// Virtual duration of a power-domain transition.
const POWER_TIME: SimTime = SimTime::from_micros(80);
/// Virtual duration of a cache clean/invalidate.
const FLUSH_TIME: SimTime = SimTime::from_micros(25);
/// Virtual duration of an AS command (UPDATE/LOCK/FLUSH).
const AS_CMD_TIME: SimTime = SimTime::from_micros(8);
/// Fixed per-job overhead on top of the descriptor's cost.
const JOB_BASE_TIME: SimTime = SimTime::from_micros(30);

/// Fraction of a descriptor's modeled cost that is pure compute (1/N).
///
/// The remaining (N-1)/N is memory-stall time that scales with the measured
/// TLB-miss-per-access ratio: the old per-element-walk engine had one walk
/// per access (full stall cost), the fast path amortizes walks over page
/// runs and pays only the fraction it actually misses.
const COMPUTE_FRACTION_DIV: u128 = 8;

/// Cumulative execution fast-path statistics (observability for the replay
/// profiler and benches). Counters survive reset, like [`Gpu::macs_executed`],
/// so callers can diff before/after snapshots across a replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Software-TLB hit/miss/flush counters.
    pub tlb: TlbStats,
    /// Element accesses (f32 loads/stores plus instruction bytes) issued by
    /// shader programs.
    pub element_accesses: u64,
    /// Contiguous page runs translated (one walk-or-hit per run).
    pub bulk_runs: u64,
    /// Copy runs that aliased in place (source and destination resolved to
    /// the same physical run, nothing moved).
    pub alias_runs: u64,
    /// Elements covered by aliased copy runs.
    pub alias_elems: u64,
    /// Per-op-kind event/mac/time breakdown, indexed by `OpKind::index()`.
    pub per_kind: [OpKindStats; OP_KIND_COUNT],
}

impl ExecStats {
    /// Counter-wise difference `self - before`.
    ///
    /// Both snapshots must come from the same [`Gpu`]; the counters are
    /// monotonic (they survive reset), so the difference isolates exactly
    /// the work done between the two snapshots.
    pub fn delta_since(&self, before: &ExecStats) -> ExecStats {
        let mut per_kind = [OpKindStats::default(); OP_KIND_COUNT];
        for (d, (a, b)) in per_kind
            .iter_mut()
            .zip(self.per_kind.iter().zip(before.per_kind.iter()))
        {
            d.events = a.events - b.events;
            d.macs = a.macs - b.macs;
            d.ns = a.ns - b.ns;
        }
        ExecStats {
            tlb: TlbStats {
                hits: self.tlb.hits - before.tlb.hits,
                misses: self.tlb.misses - before.tlb.misses,
                flushes: self.tlb.flushes - before.tlb.flushes,
            },
            element_accesses: self.element_accesses - before.element_accesses,
            bulk_runs: self.bulk_runs - before.bulk_runs,
            alias_runs: self.alias_runs - before.alias_runs,
            alias_elems: self.alias_elems - before.alias_elems,
            per_kind,
        }
    }
}

/// Models a descriptor's execution time from its JIT cost and the measured
/// walk amortization.
///
/// `cost_us` was calibrated against the old engine, where every access did a
/// full page-table walk (`walks == accesses` reproduces `cost_us` exactly).
/// We split that budget into a compute fraction (1/8) that is irreducible and
/// a stall fraction (7/8) scaled by the walk-per-access ratio the TLB + bulk
/// path actually achieved. A job with no accesses (e.g. a watchdog sleep job
/// with `n_instrs == 0`) keeps its full modeled cost.
///
/// `charged` is the accesses actually billed at element granularity: bulk
/// copies move whole page runs per transaction, so their elements are
/// replaced by their run count (`accesses - copy_elems + copy_runs`) while
/// the calibration denominator stays the full element count.
fn job_exec_time(cost_us: u32, accesses: u64, charged: u64, walks: u64) -> SimTime {
    let cost_ns = cost_us as u128 * 1_000;
    if accesses == 0 {
        return SimTime::from_nanos(cost_ns as u64);
    }
    let walks = walks.min(accesses) as u128;
    let charged = charged.min(accesses) as u128;
    let accesses = accesses as u128;
    let stall_div = COMPUTE_FRACTION_DIV - 1;
    let ns = cost_ns * (charged + stall_div * walks) / (COMPUTE_FRACTION_DIV * accesses);
    SimTime::from_nanos(ns as u64)
}

/// The three interrupt lines a Mali exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqLine {
    /// GPU-global events (reset, power, cache flush, faults).
    Gpu,
    /// Job slot completion/failure.
    Job,
    /// MMU page faults.
    Mmu,
}

/// A raw-status bit set that becomes visible at a future virtual time.
#[derive(Debug, Clone, Copy)]
struct TimedIrq {
    at: SimTime,
    line: IrqLine,
    bits: u32,
}

/// A power domain with a timed transition.
#[derive(Debug, Clone, Copy, Default)]
struct PowerDomain {
    current: u32,
    target: u32,
    trans_until: SimTime,
}

impl PowerDomain {
    fn ready(&self, now: SimTime) -> u32 {
        if now >= self.trans_until {
            self.target
        } else {
            self.current
        }
    }

    fn in_transition(&self, now: SimTime) -> u32 {
        if now < self.trans_until {
            self.current ^ self.target
        } else {
            0
        }
    }

    fn request(&mut self, now: SimTime, target: u32) {
        self.current = self.ready(now);
        self.target = target;
        self.trans_until = now + POWER_TIME;
    }
}

/// One job slot's architectural state.
#[derive(Debug, Clone, Copy, Default)]
struct JobSlot {
    head_lo: u32,
    head_hi: u32,
    affinity_lo: u32,
    affinity_hi: u32,
    config: u32,
    active_until: SimTime,
    /// Status once `active_until` passes.
    final_status: u32,
    /// True if a chain has ever been started on this slot.
    started: bool,
}

/// One address space's register state.
#[derive(Debug, Clone, Copy, Default)]
struct AsState {
    transtab_lo: u32,
    transtab_hi: u32,
    memattr_lo: u32,
    memattr_hi: u32,
    lockaddr_lo: u32,
    lockaddr_hi: u32,
    faultstatus: u32,
    faultaddr_lo: u32,
    faultaddr_hi: u32,
    cmd_until: SimTime,
    latched: AddressSpace,
}

/// The GPU device.
///
/// # Examples
///
/// ```
/// use grt_gpu::{Gpu, GpuSku, Memory};
/// use grt_gpu::regs::gpu_control as gc;
/// use grt_sim::Clock;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let clock = Clock::new();
/// let mem = Rc::new(RefCell::new(Memory::new(1 << 20)));
/// let mut gpu = Gpu::new(GpuSku::mali_g71_mp8(), &clock, &mem);
/// assert_eq!(gpu.read_reg(gc::GPU_ID), 0x6000_0011);
/// ```
#[derive(Debug, Clone)]
pub struct Gpu {
    sku: GpuSku,
    clock: Rc<Clock>,
    mem: Rc<RefCell<Memory>>,

    // Interrupt state per line.
    gpu_rawstat: u32,
    gpu_mask: u32,
    job_rawstat: u32,
    job_mask: u32,
    mmu_rawstat: u32,
    mmu_mask: u32,
    timed: Vec<TimedIrq>,

    // GPU-global state machines.
    reset_until: SimTime,
    flush_until: SimTime,
    latest_flush: u32,
    shader_config: u32,
    tiler_config: u32,
    l2_mmu_config: u32,

    shader_pwr: PowerDomain,
    tiler_pwr: PowerDomain,
    l2_pwr: PowerDomain,

    slots: Vec<JobSlot>,
    address_spaces: Vec<AsState>,

    /// Total MACs executed (observability for tests/benches).
    macs_executed: u64,
    /// Total jobs completed successfully.
    jobs_done: u64,
    /// Software TLB shared by descriptor fetch and shader execution.
    /// Flushed at AS commands, reset, and any descriptor boundary where
    /// the CPU wrote memory or the translation root changed since the
    /// last flush (see `tlb_ctx`).
    tlb: Tlb,
    /// Page-table root (`root_pa`) the cached translations were walked
    /// through. `None` forces the next descriptor boundary to flush.
    /// Combined with draining the memory's CPU-write log through
    /// `Tlb::note_store`, this lets translations survive descriptor
    /// boundaries: a boundary flushes only when the latched root changed
    /// or a CPU write actually landed on a walked table page.
    tlb_root: Option<u64>,
    /// Reusable kernel scratch buffers (kills per-op Vec churn).
    scratch: ExecScratch,
    /// Cumulative element accesses by shader programs (survives reset).
    exec_element_accesses: u64,
    /// Cumulative page runs translated (survives reset).
    exec_bulk_runs: u64,
    /// Cumulative aliased (zero-copy) runs and elements (survive reset).
    exec_alias_runs: u64,
    exec_alias_elems: u64,
    /// Cumulative per-op-kind breakdown (survives reset).
    exec_per_kind: [OpKindStats; OP_KIND_COUNT],

    // Performance-counter block.
    prfcnt_base_lo: u32,
    prfcnt_base_hi: u32,
    prfcnt_config: u32,
    prfcnt_enables: [u32; 4],
    /// Counter epoch: values at the last PRFCNT_CLEAR.
    prfcnt_clear_macs: u64,
    prfcnt_clear_jobs: u64,
    prfcnt_clear_at: SimTime,
    /// GPU-busy time accumulated for the cycle counter.
    busy_until: SimTime,

    /// Batched-replay lanes: additional memory images whose control state
    /// (page tables, descriptors, metastate) is byte-identical to the
    /// primary memory and whose data pages hold a different inference
    /// input each. While attached, every job descriptor's shader program
    /// re-executes once per lane against the lane's memory: descriptor
    /// fetch, page walks, and batch-resident operand reads
    /// ([`crate::shader::ExecReport::resident_elems`]) are paid once per
    /// batch, marginal lanes pay only their data streaming cost. Empty in
    /// scalar operation.
    batch_lanes: Vec<Rc<RefCell<Memory>>>,

    /// Fusion plan for the current replay: `(descriptor VA, directive)`
    /// pairs sorted by VA. A descriptor whose VA appears here executes as
    /// a fused superinstruction (tails applied in scratch); descriptors
    /// not listed run unfused. Empty in recording and interpreted replay.
    fusion_plan: Vec<(u64, FusedDirective)>,
}

impl Gpu {
    /// Creates a powered-off GPU of the given SKU attached to `mem`.
    pub fn new(sku: GpuSku, clock: &Rc<Clock>, mem: &Rc<RefCell<Memory>>) -> Self {
        let slots = vec![JobSlot::default(); sku.job_slots as usize];
        let address_spaces = vec![AsState::default(); sku.address_spaces as usize];
        Gpu {
            sku,
            clock: Rc::clone(clock),
            mem: Rc::clone(mem),
            gpu_rawstat: 0,
            gpu_mask: 0,
            job_rawstat: 0,
            job_mask: 0,
            mmu_rawstat: 0,
            mmu_mask: 0,
            timed: Vec::new(),
            reset_until: SimTime::ZERO,
            flush_until: SimTime::ZERO,
            latest_flush: 0,
            shader_config: 0x0001_0008,
            tiler_config: 0x0000_0010,
            l2_mmu_config: 0x0300_0000,
            shader_pwr: PowerDomain::default(),
            tiler_pwr: PowerDomain::default(),
            l2_pwr: PowerDomain::default(),
            slots,
            address_spaces,
            macs_executed: 0,
            jobs_done: 0,
            tlb: Tlb::new(),
            tlb_root: None,
            scratch: ExecScratch::default(),
            exec_element_accesses: 0,
            exec_bulk_runs: 0,
            exec_alias_runs: 0,
            exec_alias_elems: 0,
            exec_per_kind: [OpKindStats::default(); OP_KIND_COUNT],
            prfcnt_base_lo: 0,
            prfcnt_base_hi: 0,
            prfcnt_config: 0,
            prfcnt_enables: [0; 4],
            prfcnt_clear_macs: 0,
            prfcnt_clear_jobs: 0,
            prfcnt_clear_at: SimTime::ZERO,
            busy_until: SimTime::ZERO,
            batch_lanes: Vec::new(),
            fusion_plan: Vec::new(),
        }
    }

    /// Attaches batch lanes for a batched replay. Each lane must be a full
    /// memory image whose control state matches the primary memory (in
    /// practice: a clone of the primary taken after reset/wipe/weight/input
    /// restore, with the input slot overwritten by that lane's input).
    /// Lanes stay attached until [`Gpu::take_batch_lanes`].
    pub fn set_batch_lanes(&mut self, lanes: Vec<Rc<RefCell<Memory>>>) {
        self.batch_lanes = lanes;
    }

    /// Detaches and returns the batch lanes, restoring scalar operation.
    pub fn take_batch_lanes(&mut self) -> Vec<Rc<RefCell<Memory>>> {
        std::mem::take(&mut self.batch_lanes)
    }

    /// Attaches a fusion plan: `(descriptor VA, directive)` pairs. Sorted
    /// by VA internally; descriptors whose VA matches execute fused until
    /// [`Gpu::take_fusion_plan`] detaches the plan.
    pub fn set_fusion_plan(&mut self, mut plan: Vec<(u64, FusedDirective)>) {
        plan.sort_by_key(|e| e.0);
        self.fusion_plan = plan;
    }

    /// Detaches and returns the fusion plan, restoring unfused execution.
    pub fn take_fusion_plan(&mut self) -> Vec<(u64, FusedDirective)> {
        std::mem::take(&mut self.fusion_plan)
    }

    /// The SKU this device instantiates.
    pub fn sku(&self) -> &GpuSku {
        &self.sku
    }

    /// Total MACs executed by shader programs (test observability).
    pub fn macs_executed(&self) -> u64 {
        self.macs_executed
    }

    /// Total successfully completed jobs (test observability).
    pub fn jobs_done(&self) -> u64 {
        self.jobs_done
    }

    /// Cumulative execution fast-path statistics.
    ///
    /// Like [`Gpu::macs_executed`], these survive reset so the replayer can
    /// diff snapshots taken before and after a replay.
    pub fn exec_stats(&self) -> ExecStats {
        ExecStats {
            tlb: self.tlb.stats(),
            element_accesses: self.exec_element_accesses,
            bulk_runs: self.exec_bulk_runs,
            alias_runs: self.exec_alias_runs,
            alias_elems: self.exec_alias_elems,
            per_kind: self.exec_per_kind,
        }
    }

    /// Folds a descriptor's [`ExecReport`] into the cumulative per-kind
    /// breakdown, attributing the descriptor's modeled nanoseconds across
    /// kinds proportionally to their MAC counts (remainder to the largest
    /// kind; a MAC-free report charges the first kind that ran anything).
    fn accumulate_per_kind(&mut self, rep: &ExecReport, dur_ns: u64) {
        let total_macs: u64 = rep.per_kind.iter().map(|k| k.macs).sum();
        for (acc, k) in self.exec_per_kind.iter_mut().zip(rep.per_kind.iter()) {
            acc.events += k.events;
            acc.macs += k.macs;
        }
        if dur_ns == 0 {
            return;
        }
        if total_macs == 0 {
            if let Some(i) = rep.per_kind.iter().position(|k| k.events > 0) {
                self.exec_per_kind[i].ns += dur_ns;
            }
            return;
        }
        let mut assigned = 0u64;
        let mut max_i = 0usize;
        for (i, k) in rep.per_kind.iter().enumerate() {
            if k.macs > rep.per_kind[max_i].macs {
                max_i = i;
            }
            let share = ((dur_ns as u128) * (k.macs as u128) / (total_macs as u128)) as u64;
            self.exec_per_kind[i].ns += share;
            assigned += share;
        }
        self.exec_per_kind[max_i].ns += dur_ns - assigned;
    }

    /// Moves due timed IRQ bits into the raw status registers.
    fn sync(&mut self) {
        let now = self.clock.now();
        let mut i = 0;
        while i < self.timed.len() {
            if self.timed[i].at <= now {
                let t = self.timed.swap_remove(i);
                match t.line {
                    IrqLine::Gpu => self.gpu_rawstat |= t.bits,
                    IrqLine::Job => self.job_rawstat |= t.bits,
                    IrqLine::Mmu => self.mmu_rawstat |= t.bits,
                }
            } else {
                i += 1;
            }
        }
    }

    /// When will `line` next have a pending (masked) interrupt, if ever?
    ///
    /// Returns the current time if one is already pending. GPUShim uses
    /// this to advance the clock straight to an interrupt instead of
    /// spinning.
    pub fn next_irq_at(&mut self, line: IrqLine) -> Option<SimTime> {
        self.sync();
        let (raw, mask) = match line {
            IrqLine::Gpu => (self.gpu_rawstat, self.gpu_mask),
            IrqLine::Job => (self.job_rawstat, self.job_mask),
            IrqLine::Mmu => (self.mmu_rawstat, self.mmu_mask),
        };
        if raw & mask != 0 {
            return Some(self.clock.now());
        }
        self.timed
            .iter()
            .filter(|t| t.line == line && t.bits & mask_for(line, mask) != 0)
            .map(|t| t.at)
            .min()
    }

    /// Earliest time at which *any* in-flight hardware activity completes.
    ///
    /// Used by poll-loop offloading to fast-forward rather than iterate.
    pub fn next_activity_at(&self) -> Option<SimTime> {
        let now = self.clock.now();
        let mut best: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            if t > now {
                best = Some(best.map_or(t, |b| b.min(t)));
            }
        };
        consider(self.reset_until);
        consider(self.flush_until);
        consider(self.shader_pwr.trans_until);
        consider(self.tiler_pwr.trans_until);
        consider(self.l2_pwr.trans_until);
        for s in &self.slots {
            consider(s.active_until);
        }
        for a in &self.address_spaces {
            consider(a.cmd_until);
        }
        for t in &self.timed {
            consider(t.at);
        }
        best
    }

    /// Reads a register at the current virtual time.
    pub fn read_reg(&mut self, offset: u32) -> u32 {
        self.sync();
        let now = self.clock.now();
        // Job slot window?
        if (0x1800..0x1800 + 16 * 0x80).contains(&offset) {
            let slot = ((offset - 0x1800) / 0x80) as usize;
            let reg = (offset - 0x1800) % 0x80;
            if slot >= self.slots.len() {
                return 0;
            }
            let s = &self.slots[slot];
            return match reg {
                jc::JS_HEAD_LO => s.head_lo,
                jc::JS_HEAD_HI => s.head_hi,
                jc::JS_TAIL_LO => s.head_lo,
                jc::JS_TAIL_HI => s.head_hi,
                jc::JS_AFFINITY_LO => s.affinity_lo,
                jc::JS_AFFINITY_HI => s.affinity_hi,
                jc::JS_CONFIG => s.config,
                jc::JS_STATUS => {
                    if !s.started {
                        jc::JS_STATUS_IDLE
                    } else if now < s.active_until {
                        jc::JS_STATUS_ACTIVE
                    } else {
                        s.final_status
                    }
                }
                jc::JS_FLUSH_ID_NEXT => self.latest_flush,
                _ => 0,
            };
        }
        // Address space window?
        if (0x2400..0x2400 + 16 * 0x40).contains(&offset) {
            let asn = ((offset - 0x2400) / 0x40) as usize;
            let reg = (offset - 0x2400) % 0x40;
            if asn >= self.address_spaces.len() {
                return 0;
            }
            let a = &self.address_spaces[asn];
            return match reg {
                mc::AS_TRANSTAB_LO => a.transtab_lo,
                mc::AS_TRANSTAB_HI => a.transtab_hi,
                mc::AS_MEMATTR_LO => a.memattr_lo,
                mc::AS_MEMATTR_HI => a.memattr_hi,
                mc::AS_LOCKADDR_LO => a.lockaddr_lo,
                mc::AS_LOCKADDR_HI => a.lockaddr_hi,
                mc::AS_FAULTSTATUS => a.faultstatus,
                mc::AS_FAULTADDRESS_LO => a.faultaddr_lo,
                mc::AS_FAULTADDRESS_HI => a.faultaddr_hi,
                mc::AS_STATUS if now < a.cmd_until => mc::AS_STATUS_ACTIVE,
                mc::AS_STATUS => 0,
                _ => 0,
            };
        }
        match offset {
            gc::GPU_ID => self.sku.gpu_id,
            gc::L2_FEATURES => 0x0700_0100 | self.sku.l2_slices,
            gc::CORE_FEATURES => self.sku.shader_cores,
            gc::TILER_FEATURES => 0x0000_0809,
            gc::MEM_FEATURES => 0x0000_0001,
            gc::MMU_FEATURES => 0x0000_2830,
            gc::AS_PRESENT => self.sku.as_present_mask(),
            gc::JS_PRESENT => self.sku.js_present_mask(),
            gc::GPU_IRQ_RAWSTAT => self.gpu_rawstat,
            gc::GPU_IRQ_MASK => self.gpu_mask,
            gc::GPU_IRQ_STATUS => self.gpu_rawstat & self.gpu_mask,
            gc::GPU_STATUS => {
                let mut st = 0;
                if now < self.flush_until {
                    st |= gc::STATUS_CLEAN_ACTIVE;
                }
                if now < self.reset_until {
                    st |= gc::STATUS_RESET_ACTIVE;
                }
                st
            }
            gc::LATEST_FLUSH => self.latest_flush,
            gc::PRFCNT_BASE_LO => self.prfcnt_base_lo,
            gc::PRFCNT_BASE_HI => self.prfcnt_base_hi,
            gc::PRFCNT_CONFIG => self.prfcnt_config,
            gc::PRFCNT_JM_EN => self.prfcnt_enables[0],
            gc::PRFCNT_SHADER_EN => self.prfcnt_enables[1],
            gc::PRFCNT_TILER_EN => self.prfcnt_enables[2],
            gc::PRFCNT_MMU_L2_EN => self.prfcnt_enables[3],
            gc::THREAD_MAX_THREADS => 0x180,
            gc::THREAD_MAX_WORKGROUP_SIZE => 0x180,
            gc::THREAD_MAX_BARRIER_SIZE => 0x180,
            gc::THREAD_FEATURES => 0x0A04_0400,
            o if (gc::TEXTURE_FEATURES_0..gc::TEXTURE_FEATURES_0 + 16).contains(&o) => {
                0x00FE_001E | ((o - gc::TEXTURE_FEATURES_0) << 24)
            }
            o if (gc::JS0_FEATURES..gc::JS0_FEATURES + 64).contains(&o) => {
                let n = (o - gc::JS0_FEATURES) / 4;
                if n < self.sku.job_slots {
                    0x0000_020E
                } else {
                    0
                }
            }
            gc::SHADER_PRESENT_LO => self.sku.shader_present_mask(),
            gc::SHADER_PRESENT_HI => 0,
            gc::TILER_PRESENT_LO => 1,
            gc::L2_PRESENT_LO => self.sku.l2_present_mask(),
            gc::SHADER_READY_LO => self.shader_pwr.ready(now),
            gc::TILER_READY_LO => self.tiler_pwr.ready(now),
            gc::L2_READY_LO => self.l2_pwr.ready(now),
            gc::SHADER_PWRTRANS_LO => self.shader_pwr.in_transition(now),
            gc::TILER_PWRTRANS_LO => self.tiler_pwr.in_transition(now),
            gc::L2_PWRTRANS_LO => self.l2_pwr.in_transition(now),
            gc::SHADER_CONFIG => self.shader_config,
            gc::TILER_CONFIG => self.tiler_config,
            gc::L2_MMU_CONFIG => self.l2_mmu_config,
            jc::JOB_IRQ_RAWSTAT => self.job_rawstat,
            jc::JOB_IRQ_MASK => self.job_mask,
            jc::JOB_IRQ_STATUS => self.job_rawstat & self.job_mask,
            jc::JOB_IRQ_JS_STATE => {
                let mut st = 0;
                for (i, s) in self.slots.iter().enumerate() {
                    if s.started && now < s.active_until {
                        st |= 1 << i;
                    }
                }
                st
            }
            mc::MMU_IRQ_RAWSTAT => self.mmu_rawstat,
            mc::MMU_IRQ_MASK => self.mmu_mask,
            mc::MMU_IRQ_STATUS => self.mmu_rawstat & self.mmu_mask,
            _ => 0,
        }
    }

    /// Writes a register.
    pub fn write_reg(&mut self, offset: u32, value: u32) {
        self.sync();
        let now = self.clock.now();
        if (0x1800..0x1800 + 16 * 0x80).contains(&offset) {
            let slot = ((offset - 0x1800) / 0x80) as usize;
            let reg = (offset - 0x1800) % 0x80;
            if slot >= self.slots.len() {
                return;
            }
            match reg {
                jc::JS_HEAD_LO => self.slots[slot].head_lo = value,
                jc::JS_HEAD_HI => self.slots[slot].head_hi = value,
                jc::JS_AFFINITY_LO => self.slots[slot].affinity_lo = value,
                jc::JS_AFFINITY_HI => self.slots[slot].affinity_hi = value,
                jc::JS_CONFIG => self.slots[slot].config = value,
                jc::JS_COMMAND if value == jc::JS_CMD_START => self.start_job_chain(slot),
                jc::JS_COMMAND
                    if value == jc::JS_CMD_HARD_STOP || value == jc::JS_CMD_SOFT_STOP =>
                {
                    self.stop_job_chain(slot)
                }
                jc::JS_COMMAND => {}
                _ => {}
            }
            return;
        }
        if (0x2400..0x2400 + 16 * 0x40).contains(&offset) {
            let asn = ((offset - 0x2400) / 0x40) as usize;
            let reg = (offset - 0x2400) % 0x40;
            if asn >= self.address_spaces.len() {
                return;
            }
            let a = &mut self.address_spaces[asn];
            match reg {
                mc::AS_TRANSTAB_LO => a.transtab_lo = value,
                mc::AS_TRANSTAB_HI => a.transtab_hi = value,
                mc::AS_MEMATTR_LO => a.memattr_lo = value,
                mc::AS_MEMATTR_HI => a.memattr_hi = value,
                mc::AS_LOCKADDR_LO => a.lockaddr_lo = value,
                mc::AS_LOCKADDR_HI => a.lockaddr_hi = value,
                mc::AS_COMMAND => {
                    a.cmd_until = now + AS_CMD_TIME;
                    if value == mc::AS_CMD_UPDATE {
                        a.latched = AddressSpace {
                            transtab: ((a.transtab_hi as u64) << 32) | a.transtab_lo as u64,
                            memattr: ((a.memattr_hi as u64) << 32) | a.memattr_lo as u64,
                            enabled: a.transtab_lo != 0 || a.transtab_hi != 0,
                        };
                    }
                    // TLB maintenance follows real Mali semantics instead
                    // of flushing on every command: UPDATE latches a new
                    // root and drops everything; FLUSH_PT/FLUSH_MEM
                    // invalidate only the VA region bracketed by
                    // AS_LOCKADDR (address | log2-size in the low bits);
                    // LOCK/UNLOCK touch no cached translation. The
                    // Listing-2 lock/flush/unlock sequence thus costs one
                    // ranged invalidation, not three full flushes.
                    match value {
                        mc::AS_CMD_UPDATE => {
                            self.tlb.invalidate_all();
                            self.tlb_root = None;
                        }
                        mc::AS_CMD_FLUSH_PT | mc::AS_CMD_FLUSH_MEM => {
                            let lockaddr = ((a.lockaddr_hi as u64) << 32) | a.lockaddr_lo as u64;
                            let log2 = (lockaddr & 0x3F).clamp(12, 48) as u32;
                            let size = 1u64 << log2;
                            let base = lockaddr & !(size - 1);
                            self.tlb.invalidate_va_range(base, size);
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
            return;
        }
        match offset {
            gc::GPU_IRQ_CLEAR => self.gpu_rawstat &= !value,
            gc::GPU_IRQ_MASK => self.gpu_mask = value,
            gc::PRFCNT_BASE_LO => self.prfcnt_base_lo = value,
            gc::PRFCNT_BASE_HI => self.prfcnt_base_hi = value,
            gc::PRFCNT_CONFIG => self.prfcnt_config = value,
            gc::PRFCNT_JM_EN => self.prfcnt_enables[0] = value,
            gc::PRFCNT_SHADER_EN => self.prfcnt_enables[1] = value,
            gc::PRFCNT_TILER_EN => self.prfcnt_enables[2] = value,
            gc::PRFCNT_MMU_L2_EN => self.prfcnt_enables[3] = value,
            gc::GPU_COMMAND => match value {
                gc::CMD_SOFT_RESET | gc::CMD_HARD_RESET => self.begin_reset(now),
                gc::CMD_PRFCNT_CLEAR => {
                    self.prfcnt_clear_macs = self.macs_executed;
                    self.prfcnt_clear_jobs = self.jobs_done;
                    self.prfcnt_clear_at = now;
                }
                gc::CMD_PRFCNT_SAMPLE => self.prfcnt_sample(now),
                gc::CMD_CLEAN_CACHES | gc::CMD_CLEAN_INV_CACHES => {
                    self.flush_until = now + FLUSH_TIME;
                    self.latest_flush = self.latest_flush.wrapping_add(1);
                    self.timed.push(TimedIrq {
                        at: self.flush_until,
                        line: IrqLine::Gpu,
                        bits: gc::IRQ_CLEAN_CACHES_COMPLETED,
                    });
                }
                _ => {}
            },
            gc::SHADER_PWRON_LO => {
                let t = self.shader_pwr.ready(now) | value;
                self.shader_pwr.request(now, t);
                self.power_changed_irq();
            }
            gc::SHADER_PWROFF_LO => {
                let t = self.shader_pwr.ready(now) & !value;
                self.shader_pwr.request(now, t);
                self.power_changed_irq();
            }
            gc::TILER_PWRON_LO => {
                let t = self.tiler_pwr.ready(now) | value;
                self.tiler_pwr.request(now, t);
                self.power_changed_irq();
            }
            gc::TILER_PWROFF_LO => {
                let t = self.tiler_pwr.ready(now) & !value;
                self.tiler_pwr.request(now, t);
                self.power_changed_irq();
            }
            gc::L2_PWRON_LO => {
                let t = self.l2_pwr.ready(now) | value;
                self.l2_pwr.request(now, t);
                self.power_changed_irq();
            }
            gc::L2_PWROFF_LO => {
                let t = self.l2_pwr.ready(now) & !value;
                self.l2_pwr.request(now, t);
                self.power_changed_irq();
            }
            gc::SHADER_CONFIG => self.shader_config = value,
            gc::TILER_CONFIG => self.tiler_config = value,
            gc::L2_MMU_CONFIG => self.l2_mmu_config = value,
            jc::JOB_IRQ_CLEAR => self.job_rawstat &= !value,
            jc::JOB_IRQ_MASK => self.job_mask = value,
            mc::MMU_IRQ_CLEAR => self.mmu_rawstat &= !value,
            mc::MMU_IRQ_MASK => self.mmu_mask = value,
            _ => {}
        }
    }

    /// Dumps the performance counters to the configured base address and
    /// schedules the sample-completed interrupt (kbase's PRFCNT protocol).
    fn prfcnt_sample(&mut self, now: SimTime) {
        let base = ((self.prfcnt_base_hi as u64) << 32) | self.prfcnt_base_lo as u64;
        if base == 0 {
            return; // Unconfigured: hardware ignores the command.
        }
        let macs = self.macs_executed - self.prfcnt_clear_macs;
        let jobs = self.jobs_done - self.prfcnt_clear_jobs;
        // Approximate GPU cycle count from busy time and the SKU clock.
        let busy = self
            .busy_until
            .min(now)
            .saturating_sub(self.prfcnt_clear_at);
        let cycles = busy.as_micros() * self.sku.clock_mhz as u64;
        let mut dump = [0u32; 16];
        dump[0] = 0x50524643; // "PRFC" header.
        dump[1] = self.prfcnt_config;
        dump[2] = cycles as u32;
        dump[3] = (cycles >> 32) as u32;
        dump[4] = jobs as u32;
        dump[5] = (macs & 0xFFFF_FFFF) as u32;
        dump[6] = (macs >> 32) as u32;
        dump[7] = self.latest_flush;
        for (i, en) in self.prfcnt_enables.iter().enumerate() {
            dump[8 + i] = *en;
        }
        let mut mem = self.mem.borrow_mut();
        for (i, word) in dump.iter().enumerate() {
            let _ = mem.write_u32(base + (i * 4) as u64, *word, crate::mem::Accessor::Gpu);
        }
        drop(mem);
        self.timed.push(TimedIrq {
            at: now + SimTime::from_micros(10),
            line: IrqLine::Gpu,
            bits: gc::IRQ_PRFCNT_SAMPLE_COMPLETED,
        });
    }

    fn power_changed_irq(&mut self) {
        let at = self
            .shader_pwr
            .trans_until
            .max(self.tiler_pwr.trans_until)
            .max(self.l2_pwr.trans_until);
        self.timed.push(TimedIrq {
            at,
            line: IrqLine::Gpu,
            bits: gc::IRQ_POWER_CHANGED_ALL | gc::IRQ_POWER_CHANGED_SINGLE,
        });
    }

    fn begin_reset(&mut self, now: SimTime) {
        // Architectural state is cleared; the completion IRQ fires later.
        // The TLB is flushed (its hit/miss counters survive, like
        // `macs_executed`, so replay-profile deltas stay meaningful).
        self.tlb.invalidate_all();
        self.tlb_root = None;
        self.reset_until = now + RESET_TIME;
        self.flush_until = SimTime::ZERO;
        self.gpu_rawstat = 0;
        self.job_rawstat = 0;
        self.mmu_rawstat = 0;
        self.gpu_mask = 0;
        self.job_mask = 0;
        self.mmu_mask = 0;
        // Config registers return to power-on defaults; LATEST_FLUSH is a
        // cache-epoch counter and deliberately survives reset (the
        // nondeterminism §7.3 observes on real Mali hardware).
        self.shader_config = 0x0001_0008;
        self.tiler_config = 0x0000_0010;
        self.l2_mmu_config = 0x0300_0000;
        self.timed.clear();
        self.shader_pwr = PowerDomain::default();
        self.tiler_pwr = PowerDomain::default();
        self.l2_pwr = PowerDomain::default();
        for s in &mut self.slots {
            *s = JobSlot::default();
        }
        for a in &mut self.address_spaces {
            *a = AsState::default();
        }
        self.timed.push(TimedIrq {
            at: self.reset_until,
            line: IrqLine::Gpu,
            bits: gc::IRQ_RESET_COMPLETED,
        });
    }

    /// Immediately resets all state (TEE cleanup before/after replay; no
    /// IRQ is raised — this models the secure monitor's hard reset path).
    pub fn hard_reset_now(&mut self) {
        let now = self.clock.now();
        self.begin_reset(now);
        self.reset_until = now;
        self.timed.clear();
    }

    fn start_job_chain(&mut self, slot: usize) {
        let now = self.clock.now();
        let head = ((self.slots[slot].head_hi as u64) << 32) | self.slots[slot].head_lo as u64;
        self.slots[slot].started = true;

        // Job slots need powered shader cores and L2.
        if self.shader_pwr.ready(now) == 0 || self.l2_pwr.ready(now) == 0 {
            self.finish_job(slot, now + JOB_BASE_TIME, jc::JS_STATUS_CONFIG_FAULT);
            return;
        }

        // The slot's AS comes from the low bits of JS_CONFIG, as on Mali.
        let asn = (self.slots[slot].config & 0x7) as usize;
        let latched = self
            .address_spaces
            .get(asn)
            .map(|a| a.latched)
            .unwrap_or_default();
        if !latched.enabled {
            self.finish_job(slot, now + JOB_BASE_TIME, jc::JS_STATUS_CONFIG_FAULT);
            return;
        }
        let walker = Walker {
            root_pa: latched.transtab,
            quirk: self.sku.pte_quirk,
            asn: asn as u8,
        };

        let mem_rc = Rc::clone(&self.mem);
        let mut mem = mem_rc.borrow_mut();
        // Detach batch lanes for the duration of the chain so the lane loop
        // below can run while `self` is mutably borrowed for TLB/stat
        // bookkeeping. Restored before `finish_job`.
        let lanes = std::mem::take(&mut self.batch_lanes);
        let mut total = JOB_BASE_TIME;
        let mut va = head;
        let mut status = jc::JS_STATUS_DONE;
        let mut hops = 0;
        'chain: while va != 0 {
            hops += 1;
            if hops > 1024 {
                status = jc::JS_STATUS_BAD_DESCRIPTOR;
                break;
            }
            // Descriptor boundary: reconcile CPU-side writes with the
            // TLB instead of flushing unconditionally. Draining the
            // memory's write log through `note_store` flushes exactly
            // when a CPU write (memsync restore, rollback, driver remap)
            // landed on a walked table page; data-page writes — input
            // staging, delta application — leave cached translations
            // alone, so warm replays stop re-walking every descriptor.
            // A changed translation root or an overflowed log still
            // flushes; GPU stores are caught by `note_store` at the
            // store site.
            let (cpu_writes, overflowed) = mem.take_cpu_writes();
            if overflowed || self.tlb_root != Some(walker.root_pa) {
                self.tlb.invalidate_all();
                self.tlb_root = Some(walker.root_pa);
            } else {
                for (start, end) in cpu_writes {
                    self.tlb.note_store(start, (end - start) as usize);
                }
            }
            let desc = match JobDescriptor::read_via_mmu_cached(&mem, &walker, &mut self.tlb, va) {
                Ok(Some(d)) => d,
                Ok(None) => {
                    status = jc::JS_STATUS_BAD_DESCRIPTOR;
                    break;
                }
                Err(fault) => {
                    self.raise_mmu_fault(asn, va, &fault);
                    status = jc::JS_STATUS_JOB_BUS_FAULT;
                    break;
                }
            };
            // Fused lowering: a directive keyed by this descriptor's VA
            // makes its (single) instruction execute as a superinstruction
            // with tails applied in scratch. The absorbed tail jobs'
            // worst-case cost rides along in `extra_cost_us` so fused time
            // stays an upper bound.
            let fused = self
                .fusion_plan
                .binary_search_by_key(&va, |e| e.0)
                .ok()
                .map(|i| self.fusion_plan[i].1.clone());
            let cost_us = desc.cost_us.saturating_add(
                fused
                    .as_ref()
                    .map_or(0, |d| u32::try_from(d.extra_cost_us).unwrap_or(u32::MAX)),
            );
            // Walks during this descriptor's execution = TLB-miss delta.
            let misses_before = self.tlb.stats().misses;
            match execute_program(
                &mut mem,
                &walker,
                &mut self.tlb,
                &mut self.scratch,
                desc.shader_va,
                desc.n_instrs,
                self.sku.shader_cores,
                fused.as_ref(),
            ) {
                Ok(rep) => {
                    self.macs_executed += rep.macs;
                    self.jobs_done += 1;
                    self.exec_element_accesses += rep.element_accesses;
                    self.exec_bulk_runs += rep.bulk_runs;
                    self.exec_alias_runs += rep.alias_runs;
                    self.exec_alias_elems += rep.alias_elems;
                    let walks = self.tlb.stats().misses - misses_before;
                    let charged = (rep.element_accesses - rep.copy_elems + rep.copy_runs)
                        .saturating_sub(rep.alias_runs);
                    let dur = job_exec_time(cost_us, rep.element_accesses, charged, walks);
                    self.accumulate_per_kind(&rep, dur.as_nanos());
                    total += dur;
                    let _ = JobDescriptor::write_status_via_mmu_cached(
                        &mut mem,
                        &walker,
                        &mut self.tlb,
                        va,
                        JobStatus::Done,
                    );
                    // Batched replay: re-execute this descriptor's shader
                    // program against every attached lane. Control state
                    // (descriptor, page tables) is byte-identical across
                    // lanes, so the descriptor fetched above is reused and
                    // cached translations stay valid; only data pages
                    // differ. Marginal lanes are charged their streamed
                    // data accesses — batch-resident operands (weights,
                    // biases, instruction fetches) and the run-granular
                    // copy footprint are fetched once per batch and
                    // subtracted from the charge.
                    for lane in &lanes {
                        let mut lmem = lane.borrow_mut();
                        let lane_misses = self.tlb.stats().misses;
                        match execute_program(
                            &mut lmem,
                            &walker,
                            &mut self.tlb,
                            &mut self.scratch,
                            desc.shader_va,
                            desc.n_instrs,
                            self.sku.shader_cores,
                            fused.as_ref(),
                        ) {
                            Ok(lrep) => {
                                self.macs_executed += lrep.macs;
                                self.jobs_done += 1;
                                self.exec_element_accesses += lrep.element_accesses;
                                self.exec_bulk_runs += lrep.bulk_runs;
                                self.exec_alias_runs += lrep.alias_runs;
                                self.exec_alias_elems += lrep.alias_elems;
                                let lwalks = self.tlb.stats().misses - lane_misses;
                                let lcharged = (lrep.element_accesses - lrep.copy_elems
                                    + lrep.copy_runs)
                                    .saturating_sub(lrep.alias_runs)
                                    .saturating_sub(lrep.resident_elems);
                                let ldur =
                                    job_exec_time(cost_us, lrep.element_accesses, lcharged, lwalks);
                                self.accumulate_per_kind(&lrep, ldur.as_nanos());
                                total += ldur;
                                let _ = JobDescriptor::write_status_via_mmu_cached(
                                    &mut lmem,
                                    &walker,
                                    &mut self.tlb,
                                    va,
                                    JobStatus::Done,
                                );
                            }
                            Err(ShaderFault::TileMismatch { .. } | ShaderFault::FusionMismatch) => {
                                let _ = JobDescriptor::write_status_via_mmu_cached(
                                    &mut lmem,
                                    &walker,
                                    &mut self.tlb,
                                    va,
                                    JobStatus::Fault(jc::JS_STATUS_CONFIG_FAULT),
                                );
                                status = jc::JS_STATUS_CONFIG_FAULT;
                                break 'chain;
                            }
                            Err(ShaderFault::BadInstruction) => {
                                status = jc::JS_STATUS_BAD_DESCRIPTOR;
                                break 'chain;
                            }
                            Err(ShaderFault::Mmu(fault)) => {
                                self.raise_mmu_fault(asn, desc.shader_va, &fault);
                                status = jc::JS_STATUS_JOB_BUS_FAULT;
                                break 'chain;
                            }
                        }
                    }
                }
                Err(ShaderFault::TileMismatch { .. } | ShaderFault::FusionMismatch) => {
                    let _ = JobDescriptor::write_status_via_mmu_cached(
                        &mut mem,
                        &walker,
                        &mut self.tlb,
                        va,
                        JobStatus::Fault(jc::JS_STATUS_CONFIG_FAULT),
                    );
                    status = jc::JS_STATUS_CONFIG_FAULT;
                    break;
                }
                Err(ShaderFault::BadInstruction) => {
                    status = jc::JS_STATUS_BAD_DESCRIPTOR;
                    break;
                }
                Err(ShaderFault::Mmu(fault)) => {
                    self.raise_mmu_fault(asn, desc.shader_va, &fault);
                    status = jc::JS_STATUS_JOB_BUS_FAULT;
                    break;
                }
            }
            va = desc.next_va;
        }
        drop(mem);
        self.batch_lanes = lanes;
        self.finish_job(slot, now + total, status);
    }

    /// Cancels the chain on `slot` (soft/hard stop). The slot reports
    /// `JS_STATUS_STOPPED` and raises the failure interrupt; an idle slot
    /// ignores the command, as on real hardware.
    fn stop_job_chain(&mut self, slot: usize) {
        let now = self.clock.now();
        if !self.slots[slot].started || now >= self.slots[slot].active_until {
            return; // Nothing in flight.
        }
        // Drop the chain's pending completion interrupt.
        self.timed
            .retain(|t| !(t.line == IrqLine::Job && t.bits & (1 << slot) != 0));
        self.finish_job(slot, now + SimTime::from_micros(5), jc::JS_STATUS_STOPPED);
    }

    fn finish_job(&mut self, slot: usize, at: SimTime, status: u32) {
        self.busy_until = self.busy_until.max(at);
        self.slots[slot].active_until = at;
        self.slots[slot].final_status = status;
        let bit = if status == jc::JS_STATUS_DONE {
            1u32 << slot
        } else {
            1u32 << (slot + 16)
        };
        self.timed.push(TimedIrq {
            at,
            line: IrqLine::Job,
            bits: bit,
        });
        // Each submission advances the flush-ID counter — the register the
        // paper calls out as nondeterministic across record runs (§7.3).
        self.latest_flush = self.latest_flush.wrapping_add(1);
    }

    fn raise_mmu_fault(&mut self, asn: usize, va: u64, fault: &crate::mmu::MmuFault) {
        let now = self.clock.now();
        if let Some(a) = self.address_spaces.get_mut(asn) {
            a.faultstatus = match fault {
                crate::mmu::MmuFault::Translation { .. } => 0xC1,
                crate::mmu::MmuFault::Permission { .. } => 0xC2,
                crate::mmu::MmuFault::WalkError { .. } => 0xC3,
            };
            a.faultaddr_lo = va as u32;
            a.faultaddr_hi = (va >> 32) as u32;
        }
        self.timed.push(TimedIrq {
            at: now + JOB_BASE_TIME,
            line: IrqLine::Mmu,
            bits: 1 << asn,
        });
    }
}

fn mask_for(_line: IrqLine, mask: u32) -> u32 {
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{Accessor, PAGE_SIZE};
    use crate::mmu::{map_page, PteFlags};
    use crate::shader::ShaderOp;

    struct Rig {
        clock: Rc<Clock>,
        mem: Rc<RefCell<Memory>>,
        gpu: Gpu,
    }

    fn rig() -> Rig {
        let clock = Clock::new();
        let mem = Rc::new(RefCell::new(Memory::new(4 << 20)));
        let gpu = Gpu::new(GpuSku::mali_g71_mp8(), &clock, &mem);
        Rig { clock, mem, gpu }
    }

    #[test]
    fn probe_registers_reflect_sku() {
        let mut r = rig();
        assert_eq!(r.gpu.read_reg(gc::GPU_ID), 0x6000_0011);
        assert_eq!(r.gpu.read_reg(gc::SHADER_PRESENT_LO), 0xFF);
        assert_eq!(r.gpu.read_reg(gc::JS_PRESENT), 0x7);
        assert_eq!(r.gpu.read_reg(gc::AS_PRESENT), 0xFF);
    }

    #[test]
    fn soft_reset_completes_after_delay() {
        let mut r = rig();
        r.gpu.write_reg(gc::GPU_COMMAND, gc::CMD_SOFT_RESET);
        // Reset clears the masks; re-arm like the driver's reset path does.
        r.gpu.write_reg(gc::GPU_IRQ_MASK, !0);
        assert_eq!(
            r.gpu.read_reg(gc::GPU_IRQ_RAWSTAT) & gc::IRQ_RESET_COMPLETED,
            0
        );
        assert_ne!(r.gpu.read_reg(gc::GPU_STATUS) & gc::STATUS_RESET_ACTIVE, 0);
        let at = r.gpu.next_irq_at(IrqLine::Gpu).unwrap();
        r.clock.advance_to(at);
        assert_ne!(
            r.gpu.read_reg(gc::GPU_IRQ_RAWSTAT) & gc::IRQ_RESET_COMPLETED,
            0
        );
    }

    #[test]
    fn irq_mask_gates_status_not_rawstat() {
        let mut r = rig();
        r.gpu.write_reg(gc::GPU_IRQ_MASK, 0);
        r.gpu.write_reg(gc::GPU_COMMAND, gc::CMD_CLEAN_CACHES);
        r.clock.advance(SimTime::from_millis(1));
        assert_ne!(
            r.gpu.read_reg(gc::GPU_IRQ_RAWSTAT) & gc::IRQ_CLEAN_CACHES_COMPLETED,
            0
        );
        assert_eq!(r.gpu.read_reg(gc::GPU_IRQ_STATUS), 0);
        r.gpu.write_reg(gc::GPU_IRQ_MASK, !0);
        assert_ne!(r.gpu.read_reg(gc::GPU_IRQ_STATUS), 0);
    }

    #[test]
    fn irq_clear_is_write_one_to_clear() {
        let mut r = rig();
        r.gpu.write_reg(gc::GPU_COMMAND, gc::CMD_CLEAN_CACHES);
        r.clock.advance(SimTime::from_millis(1));
        let raw = r.gpu.read_reg(gc::GPU_IRQ_RAWSTAT);
        assert_ne!(raw & gc::IRQ_CLEAN_CACHES_COMPLETED, 0);
        r.gpu
            .write_reg(gc::GPU_IRQ_CLEAR, gc::IRQ_CLEAN_CACHES_COMPLETED);
        assert_eq!(
            r.gpu.read_reg(gc::GPU_IRQ_RAWSTAT) & gc::IRQ_CLEAN_CACHES_COMPLETED,
            0
        );
    }

    #[test]
    fn power_up_takes_time() {
        let mut r = rig();
        r.gpu.write_reg(gc::L2_PWRON_LO, 0x3);
        assert_eq!(r.gpu.read_reg(gc::L2_READY_LO), 0);
        assert_eq!(r.gpu.read_reg(gc::L2_PWRTRANS_LO), 0x3);
        r.clock.advance(POWER_TIME);
        assert_eq!(r.gpu.read_reg(gc::L2_READY_LO), 0x3);
        assert_eq!(r.gpu.read_reg(gc::L2_PWRTRANS_LO), 0);
    }

    #[test]
    fn latest_flush_changes_with_flushes() {
        let mut r = rig();
        let f0 = r.gpu.read_reg(gc::LATEST_FLUSH);
        r.gpu.write_reg(gc::GPU_COMMAND, gc::CMD_CLEAN_INV_CACHES);
        let f1 = r.gpu.read_reg(gc::LATEST_FLUSH);
        assert_ne!(f0, f1);
    }

    /// Builds a mapped environment with one runnable job and returns the
    /// descriptor VA.
    fn setup_job(r: &mut Rig, tiles: u32) -> u64 {
        let mut mem = r.mem.borrow_mut();
        // Bump allocator for tables at 1 MiB.
        let mut next_table = 1 << 20;
        let root = next_table;
        next_table += PAGE_SIZE as u64;
        let mut alloc = || {
            let pa = next_table;
            next_table += PAGE_SIZE as u64;
            pa
        };
        // Identity-map 16 pages at 0x10000 (rwx for simplicity).
        for i in 0..16u64 {
            let addr = 0x10000 + i * PAGE_SIZE as u64;
            map_page(&mut mem, root, addr, addr, PteFlags::rwx(), 0, &mut alloc).unwrap();
        }
        // Shader at 0x11000: copy 4 floats from 0x12000 to 0x13000.
        let prog = ShaderOp::Copy {
            src_va: 0x12000,
            dst_va: 0x13000,
            len: 4,
        }
        .encode();
        mem.write(0x11000, &prog, Accessor::Cpu).unwrap();
        for i in 0..4u64 {
            mem.write_f32(0x12000 + i * 4, i as f32 + 1.0, Accessor::Cpu)
                .unwrap();
        }
        // Descriptor at 0x10000.
        let desc = JobDescriptor {
            shader_va: 0x11000,
            n_instrs: 1,
            cost_us: 100,
            next_va: 0,
            status: JobStatus::Pending,
        };
        mem.write(0x10000, &desc.encode(), Accessor::Cpu).unwrap();
        drop(mem);

        // Configure AS 0 and power up.
        r.gpu
            .write_reg(mc::as_base(0) + mc::AS_TRANSTAB_LO, root as u32);
        r.gpu
            .write_reg(mc::as_base(0) + mc::AS_TRANSTAB_HI, (root >> 32) as u32);
        r.gpu
            .write_reg(mc::as_base(0) + mc::AS_COMMAND, mc::AS_CMD_UPDATE);
        r.gpu.write_reg(gc::L2_PWRON_LO, 0x3);
        r.gpu.write_reg(gc::SHADER_PWRON_LO, 0xFF);
        r.gpu.write_reg(gc::TILER_PWRON_LO, 0x1);
        r.clock.advance(POWER_TIME);
        let _ = tiles;
        0x10000
    }

    #[test]
    fn job_chain_executes_and_raises_irq() {
        let mut r = rig();
        let head = setup_job(&mut r, 8);
        r.gpu.write_reg(jc::JOB_IRQ_MASK, !0);
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_HEAD_LO, head as u32);
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_HEAD_HI, (head >> 32) as u32);
        r.gpu.write_reg(jc::slot_base(0) + jc::JS_CONFIG, 0); // AS 0.
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_COMMAND, jc::JS_CMD_START);

        // Busy until the cost elapses.
        assert_eq!(
            r.gpu.read_reg(jc::slot_base(0) + jc::JS_STATUS),
            jc::JS_STATUS_ACTIVE
        );
        let at = r.gpu.next_irq_at(IrqLine::Job).unwrap();
        r.clock.advance_to(at);
        assert_eq!(r.gpu.read_reg(jc::JOB_IRQ_RAWSTAT), 1);
        assert_eq!(
            r.gpu.read_reg(jc::slot_base(0) + jc::JS_STATUS),
            jc::JS_STATUS_DONE
        );
        // The copy really happened.
        let mem = r.mem.borrow();
        assert_eq!(mem.read_f32(0x13000, Accessor::Cpu).unwrap(), 1.0);
        assert_eq!(mem.read_f32(0x1300C, Accessor::Cpu).unwrap(), 4.0);
        assert_eq!(r.gpu.jobs_done(), 1);
    }

    #[test]
    fn job_without_power_faults() {
        let mut r = rig();
        let head = setup_job(&mut r, 8);
        // Power everything off again.
        r.gpu.write_reg(gc::SHADER_PWROFF_LO, 0xFF);
        r.gpu.write_reg(gc::L2_PWROFF_LO, 0x3);
        r.clock.advance(POWER_TIME);
        r.gpu.write_reg(jc::JOB_IRQ_MASK, !0);
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_HEAD_LO, head as u32);
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_COMMAND, jc::JS_CMD_START);
        let at = r.gpu.next_irq_at(IrqLine::Job).unwrap();
        r.clock.advance_to(at);
        // Failure bit (slot + 16).
        assert_eq!(r.gpu.read_reg(jc::JOB_IRQ_RAWSTAT), 1 << 16);
        assert_eq!(
            r.gpu.read_reg(jc::slot_base(0) + jc::JS_STATUS),
            jc::JS_STATUS_CONFIG_FAULT
        );
    }

    #[test]
    fn job_with_unmapped_head_raises_mmu_fault() {
        let mut r = rig();
        let _ = setup_job(&mut r, 8);
        r.gpu.write_reg(mc::MMU_IRQ_MASK, !0);
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_HEAD_LO, 0xDEAD_0000);
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_COMMAND, jc::JS_CMD_START);
        let at = r.gpu.next_irq_at(IrqLine::Mmu).unwrap();
        r.clock.advance_to(at);
        assert_eq!(r.gpu.read_reg(mc::MMU_IRQ_RAWSTAT), 1);
        assert_eq!(r.gpu.read_reg(mc::as_base(0) + mc::AS_FAULTSTATUS), 0xC1);
        assert_eq!(
            r.gpu.read_reg(jc::slot_base(0) + jc::JS_STATUS),
            jc::JS_STATUS_JOB_BUS_FAULT
        );
    }

    #[test]
    fn hard_stop_cancels_inflight_chain() {
        let mut r = rig();
        let head = setup_job(&mut r, 8);
        r.gpu.write_reg(jc::JOB_IRQ_MASK, !0);
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_HEAD_LO, head as u32);
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_COMMAND, jc::JS_CMD_START);
        assert_eq!(
            r.gpu.read_reg(jc::slot_base(0) + jc::JS_STATUS),
            jc::JS_STATUS_ACTIVE
        );
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_COMMAND, jc::JS_CMD_HARD_STOP);
        let at = r.gpu.next_irq_at(IrqLine::Job).unwrap();
        r.clock.advance_to(at);
        // The failure bit fires, not the done bit.
        assert_eq!(r.gpu.read_reg(jc::JOB_IRQ_RAWSTAT), 1 << 16);
        assert_eq!(
            r.gpu.read_reg(jc::slot_base(0) + jc::JS_STATUS),
            jc::JS_STATUS_STOPPED
        );
        // The slot is reusable afterwards.
        r.gpu.write_reg(jc::JOB_IRQ_CLEAR, !0);
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_COMMAND, jc::JS_CMD_START);
        let at = r.gpu.next_irq_at(IrqLine::Job).unwrap();
        r.clock.advance_to(at);
        assert_eq!(r.gpu.read_reg(jc::JOB_IRQ_RAWSTAT), 1);
    }

    #[test]
    fn stop_on_idle_slot_is_ignored() {
        let mut r = rig();
        let _ = setup_job(&mut r, 8);
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_COMMAND, jc::JS_CMD_HARD_STOP);
        assert_eq!(r.gpu.next_irq_at(IrqLine::Job), None);
    }

    #[test]
    fn hard_reset_now_clears_everything() {
        let mut r = rig();
        let head = setup_job(&mut r, 8);
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_HEAD_LO, head as u32);
        r.gpu
            .write_reg(jc::slot_base(0) + jc::JS_COMMAND, jc::JS_CMD_START);
        r.gpu.hard_reset_now();
        assert_eq!(r.gpu.read_reg(jc::JOB_IRQ_RAWSTAT), 0);
        assert_eq!(r.gpu.read_reg(gc::SHADER_READY_LO), 0);
        assert_eq!(
            r.gpu.read_reg(jc::slot_base(0) + jc::JS_STATUS),
            jc::JS_STATUS_IDLE
        );
    }

    #[test]
    fn next_activity_reports_inflight_work() {
        let mut r = rig();
        assert!(r.gpu.next_activity_at().is_none());
        r.gpu.write_reg(gc::GPU_COMMAND, gc::CMD_CLEAN_CACHES);
        let at = r.gpu.next_activity_at().unwrap();
        assert!(at > r.clock.now());
        r.clock.advance_to(at);
        assert_eq!(r.gpu.read_reg(gc::GPU_STATUS) & gc::STATUS_CLEAN_ACTIVE, 0);
    }

    #[test]
    fn sku_config_quirk_registers_are_read_write() {
        let mut r = rig();
        let v = r.gpu.read_reg(gc::L2_MMU_CONFIG);
        r.gpu.write_reg(gc::L2_MMU_CONFIG, v | 0x10);
        assert_eq!(r.gpu.read_reg(gc::L2_MMU_CONFIG), v | 0x10);
    }
}
