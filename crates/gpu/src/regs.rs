//! The GPU register map, mirroring the Mali Bifrost (kbase) layout.
//!
//! Offsets and bit definitions follow the open-source Bifrost kernel driver
//! closely enough that the driver crate reads like kbase; exact values only
//! matter for internal consistency.

/// GPU control block (base `0x0000`).
pub mod gpu_control {
    /// GPU product/revision identifier.
    pub const GPU_ID: u32 = 0x000;
    /// L2 cache features.
    pub const L2_FEATURES: u32 = 0x004;
    /// Shader core features.
    pub const CORE_FEATURES: u32 = 0x008;
    /// Tiler features.
    pub const TILER_FEATURES: u32 = 0x00C;
    /// Memory-system features.
    pub const MEM_FEATURES: u32 = 0x010;
    /// MMU features (VA/PA bits).
    pub const MMU_FEATURES: u32 = 0x014;
    /// Bitmask of present address spaces.
    pub const AS_PRESENT: u32 = 0x018;
    /// Bitmask of present job slots.
    pub const JS_PRESENT: u32 = 0x01C;

    /// Raw interrupt status (unmasked).
    pub const GPU_IRQ_RAWSTAT: u32 = 0x020;
    /// Write-1-to-clear interrupt acknowledge.
    pub const GPU_IRQ_CLEAR: u32 = 0x024;
    /// Interrupt mask.
    pub const GPU_IRQ_MASK: u32 = 0x028;
    /// Masked interrupt status.
    pub const GPU_IRQ_STATUS: u32 = 0x02C;

    /// Command register (reset, cache maintenance, counters).
    pub const GPU_COMMAND: u32 = 0x030;
    /// Status register.
    pub const GPU_STATUS: u32 = 0x034;
    /// ID of the most recent cache-flush request; the paper singles this
    /// register out as nondeterministic (§7.3).
    pub const LATEST_FLUSH: u32 = 0x038;

    /// Performance-counter dump base address, low word.
    pub const PRFCNT_BASE_LO: u32 = 0x060;
    /// Performance-counter dump base address, high word.
    pub const PRFCNT_BASE_HI: u32 = 0x064;
    /// Performance-counter configuration (enable bits).
    pub const PRFCNT_CONFIG: u32 = 0x068;
    /// Job-manager counter enable mask.
    pub const PRFCNT_JM_EN: u32 = 0x06C;
    /// Shader-core counter enable mask.
    pub const PRFCNT_SHADER_EN: u32 = 0x070;
    /// Tiler counter enable mask.
    pub const PRFCNT_TILER_EN: u32 = 0x074;
    /// MMU/L2 counter enable mask.
    pub const PRFCNT_MMU_L2_EN: u32 = 0x07C;

    /// Thread limits used by the JIT.
    pub const THREAD_MAX_THREADS: u32 = 0x0A0;
    /// Maximum workgroup size.
    pub const THREAD_MAX_WORKGROUP_SIZE: u32 = 0x0A4;
    /// Maximum barrier size.
    pub const THREAD_MAX_BARRIER_SIZE: u32 = 0x0A8;
    /// Thread features word.
    pub const THREAD_FEATURES: u32 = 0x0AC;

    /// Texture feature words 0-3 (read during probe).
    pub const TEXTURE_FEATURES_0: u32 = 0x0B0;
    /// Per-job-slot feature words: `JS_FEATURES_N = 0x0C0 + n*4`.
    pub const JS0_FEATURES: u32 = 0x0C0;

    /// Present shader cores (low word).
    pub const SHADER_PRESENT_LO: u32 = 0x100;
    /// Present shader cores (high word).
    pub const SHADER_PRESENT_HI: u32 = 0x104;
    /// Present tiler units.
    pub const TILER_PRESENT_LO: u32 = 0x110;
    /// Present L2 slices.
    pub const L2_PRESENT_LO: u32 = 0x120;

    /// Powered-and-ready shader cores.
    pub const SHADER_READY_LO: u32 = 0x140;
    /// Powered-and-ready tiler.
    pub const TILER_READY_LO: u32 = 0x150;
    /// Powered-and-ready L2 slices.
    pub const L2_READY_LO: u32 = 0x160;

    /// Power-on command for shader cores.
    pub const SHADER_PWRON_LO: u32 = 0x180;
    /// Power-on command for the tiler.
    pub const TILER_PWRON_LO: u32 = 0x190;
    /// Power-on command for L2 slices.
    pub const L2_PWRON_LO: u32 = 0x1A0;

    /// Power-off command for shader cores.
    pub const SHADER_PWROFF_LO: u32 = 0x1C0;
    /// Power-off command for the tiler.
    pub const TILER_PWROFF_LO: u32 = 0x1D0;
    /// Power-off command for L2 slices.
    pub const L2_PWROFF_LO: u32 = 0x1E0;

    /// Cores currently in a power transition.
    pub const SHADER_PWRTRANS_LO: u32 = 0x200;
    /// Tiler power transition.
    pub const TILER_PWRTRANS_LO: u32 = 0x210;
    /// L2 power transition.
    pub const L2_PWRTRANS_LO: u32 = 0x220;

    /// Shader/MMU configuration quirk registers (read-modify-write during
    /// init, the paper's Listing 1(a) example).
    pub const SHADER_CONFIG: u32 = 0xF04;
    /// Tiler configuration quirks.
    pub const TILER_CONFIG: u32 = 0xF08;
    /// L2 / MMU configuration quirks.
    pub const L2_MMU_CONFIG: u32 = 0xF0C;

    /// GPU_IRQ bit: a GPU-global fault occurred.
    pub const IRQ_GPU_FAULT: u32 = 1 << 0;
    /// GPU_IRQ bit: soft/hard reset completed.
    pub const IRQ_RESET_COMPLETED: u32 = 1 << 8;
    /// GPU_IRQ bit: a single power domain finished transitioning.
    pub const IRQ_POWER_CHANGED_SINGLE: u32 = 1 << 9;
    /// GPU_IRQ bit: all requested power domains finished transitioning.
    pub const IRQ_POWER_CHANGED_ALL: u32 = 1 << 10;
    /// GPU_IRQ bit: a performance-counter sample completed.
    pub const IRQ_PRFCNT_SAMPLE_COMPLETED: u32 = 1 << 16;
    /// GPU_IRQ bit: cache clean/invalidate completed.
    pub const IRQ_CLEAN_CACHES_COMPLETED: u32 = 1 << 17;

    /// GPU_COMMAND: no-op.
    pub const CMD_NOP: u32 = 0x00;
    /// GPU_COMMAND: soft reset (preserves nothing but survives clocks).
    pub const CMD_SOFT_RESET: u32 = 0x01;
    /// GPU_COMMAND: hard reset.
    pub const CMD_HARD_RESET: u32 = 0x02;
    /// GPU_COMMAND: zero the performance counters.
    pub const CMD_PRFCNT_CLEAR: u32 = 0x03;
    /// GPU_COMMAND: dump the performance counters to PRFCNT_BASE.
    pub const CMD_PRFCNT_SAMPLE: u32 = 0x04;
    /// GPU_COMMAND: clean (write back) caches.
    pub const CMD_CLEAN_CACHES: u32 = 0x07;
    /// GPU_COMMAND: clean and invalidate caches.
    pub const CMD_CLEAN_INV_CACHES: u32 = 0x08;

    /// GPU_STATUS bit: a cache clean is in progress.
    pub const STATUS_CLEAN_ACTIVE: u32 = 1 << 0;
    /// GPU_STATUS bit: a reset is in progress.
    pub const STATUS_RESET_ACTIVE: u32 = 1 << 1;
}

/// Job control block (base `0x1000`).
pub mod job_control {
    /// Raw job interrupt status: bit *n* = job slot *n* done, bit *n*+16 =
    /// job slot *n* failed.
    pub const JOB_IRQ_RAWSTAT: u32 = 0x1000;
    /// Write-1-to-clear acknowledge.
    pub const JOB_IRQ_CLEAR: u32 = 0x1004;
    /// Interrupt mask.
    pub const JOB_IRQ_MASK: u32 = 0x1008;
    /// Masked interrupt status.
    pub const JOB_IRQ_STATUS: u32 = 0x100C;
    /// Per-slot active state.
    pub const JOB_IRQ_JS_STATE: u32 = 0x1010;

    /// Base of job slot `n`'s register window.
    pub const fn slot_base(n: u32) -> u32 {
        0x1800 + n * 0x80
    }

    /// Job chain head VA, low word (offset within a slot window).
    pub const JS_HEAD_LO: u32 = 0x00;
    /// Job chain head VA, high word.
    pub const JS_HEAD_HI: u32 = 0x04;
    /// Job chain tail VA, low word.
    pub const JS_TAIL_LO: u32 = 0x08;
    /// Job chain tail VA, high word.
    pub const JS_TAIL_HI: u32 = 0x0C;
    /// Core affinity mask, low word.
    pub const JS_AFFINITY_LO: u32 = 0x10;
    /// Core affinity mask, high word.
    pub const JS_AFFINITY_HI: u32 = 0x14;
    /// Slot configuration (address space, flush behaviour).
    pub const JS_CONFIG: u32 = 0x18;
    /// Command register for the slot.
    pub const JS_COMMAND: u32 = 0x20;
    /// Completion status of the last job on the slot.
    pub const JS_STATUS: u32 = 0x24;
    /// Flush ID the job was submitted with.
    pub const JS_FLUSH_ID_NEXT: u32 = 0x70;

    /// JS_COMMAND: no-op.
    pub const JS_CMD_NOP: u32 = 0;
    /// JS_COMMAND: start the chain at JS_HEAD.
    pub const JS_CMD_START: u32 = 1;
    /// JS_COMMAND: soft-stop at the next job boundary.
    pub const JS_CMD_SOFT_STOP: u32 = 2;
    /// JS_COMMAND: hard-stop immediately.
    pub const JS_CMD_HARD_STOP: u32 = 3;

    /// JS_STATUS: slot idle.
    pub const JS_STATUS_IDLE: u32 = 0x00;
    /// JS_STATUS: chain completed successfully.
    pub const JS_STATUS_DONE: u32 = 0x01;
    /// JS_STATUS: chain was soft/hard-stopped by the driver.
    pub const JS_STATUS_STOPPED: u32 = 0x03;
    /// JS_STATUS: chain is running.
    pub const JS_STATUS_ACTIVE: u32 = 0x08;
    /// JS_STATUS: configuration fault (e.g. shader compiled for a different
    /// SKU — the behaviour that makes recordings SKU-specific).
    pub const JS_STATUS_CONFIG_FAULT: u32 = 0x40;
    /// JS_STATUS: the job raised a data-abort through the GPU MMU.
    pub const JS_STATUS_JOB_BUS_FAULT: u32 = 0x48;
    /// JS_STATUS: malformed job descriptor.
    pub const JS_STATUS_BAD_DESCRIPTOR: u32 = 0x4C;
}

/// MMU / address-space block (base `0x2000`).
pub mod mmu_control {
    /// Raw MMU interrupt status: bit *n* = page fault on AS *n*.
    pub const MMU_IRQ_RAWSTAT: u32 = 0x2000;
    /// Write-1-to-clear acknowledge.
    pub const MMU_IRQ_CLEAR: u32 = 0x2004;
    /// Interrupt mask.
    pub const MMU_IRQ_MASK: u32 = 0x2008;
    /// Masked interrupt status.
    pub const MMU_IRQ_STATUS: u32 = 0x200C;

    /// Base of address space `n`'s register window.
    pub const fn as_base(n: u32) -> u32 {
        0x2400 + n * 0x40
    }

    /// Page-table root physical address, low word (offset within AS window).
    pub const AS_TRANSTAB_LO: u32 = 0x00;
    /// Page-table root physical address, high word.
    pub const AS_TRANSTAB_HI: u32 = 0x04;
    /// Memory attributes.
    pub const AS_MEMATTR_LO: u32 = 0x08;
    /// Memory attributes (high).
    pub const AS_MEMATTR_HI: u32 = 0x0C;
    /// Region lock address for flushes.
    pub const AS_LOCKADDR_LO: u32 = 0x10;
    /// Region lock address (high).
    pub const AS_LOCKADDR_HI: u32 = 0x14;
    /// AS command register.
    pub const AS_COMMAND: u32 = 0x18;
    /// Fault status for the last MMU fault on this AS.
    pub const AS_FAULTSTATUS: u32 = 0x1C;
    /// Faulting VA, low word.
    pub const AS_FAULTADDRESS_LO: u32 = 0x20;
    /// Faulting VA, high word.
    pub const AS_FAULTADDRESS_HI: u32 = 0x24;
    /// AS status; bit 0 = command in progress.
    pub const AS_STATUS: u32 = 0x28;

    /// AS_COMMAND: no-op.
    pub const AS_CMD_NOP: u32 = 0;
    /// AS_COMMAND: latch TRANSTAB/MEMATTR into the live walker.
    pub const AS_CMD_UPDATE: u32 = 1;
    /// AS_COMMAND: lock the region at AS_LOCKADDR.
    pub const AS_CMD_LOCK: u32 = 2;
    /// AS_COMMAND: unlock.
    pub const AS_CMD_UNLOCK: u32 = 3;
    /// AS_COMMAND: flush page-table walk caches.
    pub const AS_CMD_FLUSH_PT: u32 = 4;
    /// AS_COMMAND: flush page-table caches and memory.
    pub const AS_CMD_FLUSH_MEM: u32 = 5;

    /// AS_STATUS bit: an AS command is in flight.
    pub const AS_STATUS_ACTIVE: u32 = 1 << 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_windows_do_not_overlap() {
        for n in 0..3u32 {
            let base = job_control::slot_base(n);
            let next = job_control::slot_base(n + 1);
            assert!(base + job_control::JS_FLUSH_ID_NEXT < next);
        }
    }

    #[test]
    fn as_windows_do_not_overlap() {
        for n in 0..7u32 {
            assert!(mmu_control::as_base(n) + mmu_control::AS_STATUS < mmu_control::as_base(n + 1));
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // Pins the register-map layout.
    fn blocks_are_disjoint() {
        assert!(gpu_control::L2_MMU_CONFIG < job_control::JOB_IRQ_RAWSTAT);
        assert!(job_control::slot_base(15) + 0x80 <= mmu_control::MMU_IRQ_RAWSTAT + 0x2000);
        assert!(job_control::JOB_IRQ_RAWSTAT < mmu_control::MMU_IRQ_RAWSTAT);
    }
}
