//! The mobile-GPU diversity dataset behind Figure 3.
//!
//! Figure 3 plots the number of *new* mobile GPU SKUs introduced per year
//! (data originally from gadgetversus.com, the paper's reference 24), by family
//! (Adreno / Mali / PowerVR / other), to argue that per-SKU recording on
//! developer machines cannot scale: ~80 SKUs are in circulation, none
//! dominates, and new ones appear every year. The dataset here reproduces
//! that shape; `fig3_sku_diversity` renders the figure's series.

/// New-SKU counts for one release year.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YearEntry {
    /// Calendar year.
    pub year: u32,
    /// New Qualcomm Adreno SKUs.
    pub adreno: u32,
    /// New Arm Mali SKUs.
    pub mali: u32,
    /// New Imagination PowerVR SKUs.
    pub powervr: u32,
    /// Other vendors (Apple, Vivante, ...).
    pub other: u32,
}

impl YearEntry {
    /// Total new SKUs in this year.
    pub fn total(&self) -> u32 {
        self.adreno + self.mali + self.powervr + self.other
    }
}

/// New mobile GPU SKUs per year, 2012–2021.
///
/// The shape matches the paper's Figure 3: high single digits to mid-teens
/// per year, Mali and Adreno dominating, with a cumulative total of roughly
/// 80 SKUs on smartphones in circulation by 2021.
pub fn sku_releases_per_year() -> Vec<YearEntry> {
    vec![
        YearEntry {
            year: 2012,
            adreno: 3,
            mali: 2,
            powervr: 2,
            other: 0,
        },
        YearEntry {
            year: 2013,
            adreno: 3,
            mali: 3,
            powervr: 1,
            other: 1,
        },
        YearEntry {
            year: 2014,
            adreno: 2,
            mali: 4,
            powervr: 2,
            other: 0,
        },
        YearEntry {
            year: 2015,
            adreno: 3,
            mali: 3,
            powervr: 1,
            other: 1,
        },
        YearEntry {
            year: 2016,
            adreno: 3,
            mali: 4,
            powervr: 1,
            other: 0,
        },
        YearEntry {
            year: 2017,
            adreno: 2,
            mali: 4,
            powervr: 1,
            other: 2,
        },
        YearEntry {
            year: 2018,
            adreno: 2,
            mali: 4,
            powervr: 1,
            other: 1,
        },
        YearEntry {
            year: 2019,
            adreno: 3,
            mali: 4,
            powervr: 1,
            other: 1,
        },
        YearEntry {
            year: 2020,
            adreno: 3,
            mali: 5,
            powervr: 1,
            other: 2,
        },
        YearEntry {
            year: 2021,
            adreno: 2,
            mali: 4,
            powervr: 1,
            other: 2,
        },
    ]
}

/// Cumulative SKU count across the dataset (the paper's "~80 SKUs").
pub fn cumulative_sku_count() -> u32 {
    sku_releases_per_year().iter().map(YearEntry::total).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roughly_eighty_skus_total() {
        let total = cumulative_sku_count();
        assert!((70..=90).contains(&total), "total={total}");
    }

    #[test]
    fn new_skus_every_year() {
        for entry in sku_releases_per_year() {
            assert!(entry.total() >= 4, "year {} too quiet", entry.year);
        }
    }

    #[test]
    fn no_vendor_dominates() {
        // The paper's point: no single family covers the market.
        let data = sku_releases_per_year();
        let adreno: u32 = data.iter().map(|e| e.adreno).sum();
        let mali: u32 = data.iter().map(|e| e.mali).sum();
        let total = cumulative_sku_count();
        assert!(adreno * 2 < total);
        assert!(mali * 2 < total + 4);
    }

    #[test]
    fn years_sorted_and_unique() {
        let data = sku_releases_per_year();
        for w in data.windows(2) {
            assert!(w[0].year < w[1].year);
        }
    }
}
