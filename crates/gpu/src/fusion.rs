//! Runtime side of IR-driven superinstruction fusion (DESIGN.md §15).
//!
//! The fusion *analysis* lives in `grt-ir` (it needs the lifted dataflow
//! facts); this module holds only what the executor must know at job time:
//! a [`FusedDirective`] describing which tail operations a head kernel
//! absorbs. The shader core applies the tails to the head's output while it
//! still sits in [`ExecScratch`](crate::shader::ExecScratch), so the
//! intermediate tensor is never materialized in the carveout, never pays
//! TLB walks, and never needs its own job dispatch/poll dialog.
//!
//! Fusion is a pure lowering decision: a directive never changes *what* is
//! computed, only where the intermediate lives. The executor cross-checks
//! every directive against the decoded head instruction and faults
//! ([`ShaderFault::FusionMismatch`](crate::shader::ShaderFault)) on any
//! disagreement rather than silently computing something else.

use crate::shader::OpKind;

/// A fused elementwise `add` tail: `out[i] = head_out[i] + other[i]`
/// (operand order preserved from the recording — see `interm_first`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailAdd {
    /// VA of the *other* (non-intermediate) add operand, read from the
    /// carveout exactly as the standalone `Add` job would have.
    pub other_va: u64,
    /// VA the fused result is written to (the standalone `Add`'s `out`).
    pub out_va: u64,
    /// Element count; must equal the head's output length.
    pub len: u64,
    /// True when the recorded `Add` had the intermediate as operand `a`
    /// (`a + b` evaluation order is preserved bit-for-bit, which matters
    /// for NaN payload propagation).
    pub interm_first: bool,
}

/// One fusion decision for one job-chain head, keyed by descriptor VA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedDirective {
    /// Op kind the head instruction must decode to (`Conv2d`, `MatMul`,
    /// or `Add` for a bare `add+relu` chain).
    pub head: OpKind,
    /// Output VA the head instruction must carry.
    pub head_out_va: u64,
    /// Output element count of the head (and of every tail).
    pub head_len: u64,
    /// Optional fused elementwise add consuming the head's output.
    pub tail_add: Option<TailAdd>,
    /// Whether a `relu` is applied to the final result in scratch.
    pub tail_relu: bool,
    /// Worst-case cost (µs) of the absorbed tail jobs, folded into the
    /// head's duration so fused time stays an upper bound on tail work.
    pub extra_cost_us: u64,
    /// The fused kind reported in per-op stats (`fused:conv2d+add+relu`
    /// and friends).
    pub kind: OpKind,
}

impl FusedDirective {
    /// Number of shader instructions this directive eliminates (the tails
    /// that no longer run as standalone jobs).
    pub fn instrs_eliminated(&self) -> u32 {
        self.tail_add.is_some() as u32 + self.tail_relu as u32
    }

    /// Bytes of intermediate tensor not materialized in the carveout.
    /// Only a fused `add` saves a round-trip (the head's output would
    /// otherwise be written then read back); a bare in-place `relu` tail
    /// reads and writes the same buffer the head writes anyway.
    pub fn bytes_not_materialized(&self) -> u64 {
        if self.tail_add.is_some() {
            self.head_len * 4
        } else {
            0
        }
    }

    /// VA the fused kernel finally writes to.
    pub fn final_out_va(&self) -> u64 {
        match &self.tail_add {
            Some(t) => t.out_va,
            None => self.head_out_va,
        }
    }
}
