//! GPU SKU (stock-keeping unit) descriptions.
//!
//! §2.4: *"even subtle SKU differences can break replay: variations in GPU
//! hardware resources, e.g. shader core count, which determines how the JIT
//! compiler generates and optimizes GPU shaders; variations in GPU page
//! table formats; variations in shared memory layout."* The SKU struct
//! carries exactly those axes, and the rest of the stack really depends on
//! them: the JIT tiles by `shader_cores`, the MMU honours `pte_quirk`, and
//! job timing scales with core count and clock.

/// The static cost budget one replay of a vetted recording may consume on
/// a SKU: the ceiling `grt-lint`'s R9 certifies recordings against before
/// the replayer ever runs them. Both bounds are *worst-case* totals
/// computable from the recording alone — MACs from the decoded shader
/// programs, poll iterations as `Σ min(max_iters, replay cap)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostEnvelope {
    /// Upper bound on total multiply-accumulates per replay.
    pub max_macs: u64,
    /// Upper bound on total worst-case polling-loop iterations per replay.
    pub max_poll_iters: u64,
}

/// Identity and capabilities of one GPU hardware model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuSku {
    /// Marketing name, e.g. `"Mali-G71 MP8"`.
    pub name: &'static str,
    /// Value returned by the `GPU_ID` register (product << 16 | revision).
    pub gpu_id: u32,
    /// Number of shader cores (the `MPx` suffix).
    pub shader_cores: u32,
    /// Number of L2 cache slices.
    pub l2_slices: u32,
    /// Number of hardware address spaces.
    pub address_spaces: u32,
    /// Number of job slots.
    pub job_slots: u32,
    /// Core clock in MHz (drives the job cost model).
    pub clock_mhz: u32,
    /// A page-table-entry format quirk: XOR-ed into the flag bits of every
    /// PTE. Different quirks between record and replay SKUs make page-table
    /// snapshots incompatible, reproducing the paper's "page table format"
    /// SKU variation.
    pub pte_quirk: u8,
    /// Multiply-accumulate throughput per core per MHz (cost model).
    pub macs_per_core_per_cycle: u32,
}

impl GpuSku {
    /// The paper's client GPU: Mali-G71 MP8 on the HiKey960.
    pub fn mali_g71_mp8() -> Self {
        GpuSku {
            name: "Mali-G71 MP8",
            gpu_id: 0x6000_0011,
            shader_cores: 8,
            l2_slices: 2,
            address_spaces: 8,
            job_slots: 3,
            clock_mhz: 850,
            pte_quirk: 0x00,
            macs_per_core_per_cycle: 8,
        }
    }

    /// A smaller G71 variant: same driver, different core count.
    pub fn mali_g71_mp4() -> Self {
        GpuSku {
            name: "Mali-G71 MP4",
            gpu_id: 0x6000_0012,
            shader_cores: 4,
            l2_slices: 1,
            address_spaces: 8,
            job_slots: 3,
            clock_mhz: 770,
            pte_quirk: 0x00,
            macs_per_core_per_cycle: 8,
        }
    }

    /// A G72 with a PTE quirk, exercising the page-table-format axis.
    pub fn mali_g72_mp12() -> Self {
        GpuSku {
            name: "Mali-G72 MP12",
            gpu_id: 0x6001_0020,
            shader_cores: 12,
            l2_slices: 2,
            address_spaces: 8,
            job_slots: 3,
            clock_mhz: 900,
            pte_quirk: 0x01,
            macs_per_core_per_cycle: 12,
        }
    }

    /// A G76 with both more cores and a different PTE quirk.
    pub fn mali_g76_mp10() -> Self {
        GpuSku {
            name: "Mali-G76 MP10",
            gpu_id: 0x6002_0030,
            shader_cores: 10,
            l2_slices: 4,
            address_spaces: 8,
            job_slots: 3,
            clock_mhz: 720,
            pte_quirk: 0x05,
            macs_per_core_per_cycle: 24,
        }
    }

    /// Every SKU this reproduction models.
    pub fn known() -> Vec<GpuSku> {
        vec![
            GpuSku::mali_g71_mp8(),
            GpuSku::mali_g71_mp4(),
            GpuSku::mali_g72_mp12(),
            GpuSku::mali_g76_mp10(),
        ]
    }

    /// Resolves a `GPU_ID` register value (as carried in a recording
    /// header) back to its SKU.
    pub fn by_gpu_id(gpu_id: u32) -> Option<GpuSku> {
        GpuSku::known().into_iter().find(|s| s.gpu_id == gpu_id)
    }

    /// Bitmask of present shader cores.
    pub fn shader_present_mask(&self) -> u32 {
        if self.shader_cores >= 32 {
            u32::MAX
        } else {
            (1u32 << self.shader_cores) - 1
        }
    }

    /// Bitmask of present L2 slices.
    pub fn l2_present_mask(&self) -> u32 {
        (1u32 << self.l2_slices.min(31)) - 1
    }

    /// Bitmask of present address spaces.
    pub fn as_present_mask(&self) -> u32 {
        (1u32 << self.address_spaces.min(31)) - 1
    }

    /// Bitmask of present job slots.
    pub fn js_present_mask(&self) -> u32 {
        (1u32 << self.job_slots.min(31)) - 1
    }

    /// MAC throughput per microsecond, the denominator of the job cost model.
    pub fn macs_per_us(&self) -> u64 {
        self.clock_mhz as u64 * self.shader_cores as u64 * self.macs_per_core_per_cycle as u64
    }

    /// The per-replay cost ceiling this SKU certifies recordings against.
    ///
    /// The MAC budget is ten virtual milliseconds of full-throughput
    /// compute — roughly 20x the heaviest zoo network (ResNet12, 26.5M
    /// MACs on the G71 MP8) and scaled to the SKU, so a slower part
    /// certifies a proportionally smaller program. The poll budget bounds
    /// the worst-case busy-wait work a replay can be asked to do
    /// (`Σ min(max_iters, replay cap)`; the densest zoo recording totals
    /// ~117k); it is a per-recording *total*, complementing R3's per-poll
    /// iteration cap.
    pub fn cost_envelope(&self) -> CostEnvelope {
        CostEnvelope {
            max_macs: self.macs_per_us() * 10_000,
            max_poll_iters: 1_000_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_match_counts() {
        let sku = GpuSku::mali_g71_mp8();
        assert_eq!(sku.shader_present_mask(), 0xFF);
        assert_eq!(sku.l2_present_mask(), 0x3);
        assert_eq!(sku.js_present_mask(), 0x7);
        assert_eq!(sku.as_present_mask(), 0xFF);
    }

    #[test]
    fn mp4_has_half_the_cores() {
        assert_eq!(GpuSku::mali_g71_mp4().shader_present_mask(), 0x0F);
    }

    #[test]
    fn gpu_ids_are_unique() {
        let ids = [
            GpuSku::mali_g71_mp8().gpu_id,
            GpuSku::mali_g71_mp4().gpu_id,
            GpuSku::mali_g72_mp12().gpu_id,
            GpuSku::mali_g76_mp10().gpu_id,
        ];
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn by_gpu_id_round_trips() {
        for sku in GpuSku::known() {
            assert_eq!(GpuSku::by_gpu_id(sku.gpu_id), Some(sku));
        }
        assert_eq!(GpuSku::by_gpu_id(0xdead_beef), None);
    }

    #[test]
    fn throughput_scales_with_cores() {
        assert!(GpuSku::mali_g71_mp8().macs_per_us() > GpuSku::mali_g71_mp4().macs_per_us());
    }
}
