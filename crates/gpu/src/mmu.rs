//! GPU page tables: an LPAE-style 4-level format living in shared memory.
//!
//! Real Mali GPUs walk page tables the *driver* builds in shared memory;
//! the `AS_TRANSTAB` register points at the root. Because the tables are
//! ordinary memory, GR-T's memory dumps capture the GPU address space for
//! free — "CPU's dynamic updates to the GPU address space are recorded in
//! snapshots of GPU page tables" (§2.3). This module provides both sides:
//! the builder the driver uses ([`map_page`] / [`unmap_page`]) and the
//! walker the GPU hardware uses ([`Walker`]).
//!
//! Every SKU may apply a *PTE quirk* — an XOR mask over the flag bits —
//! modeling the paper's "variations in GPU page table formats" (§2.4).
//! Tables built for one quirk are misdecoded under another, which is one of
//! the concrete mechanisms that breaks cross-SKU replay.

use crate::mem::{Accessor, MemFault, Memory, PAGE_SIZE};
use std::fmt;

/// Entry type bits (bits 1:0).
const TYPE_MASK: u64 = 0b11;
const TYPE_INVALID: u64 = 0b00;
const TYPE_TABLE: u64 = 0b01;
const TYPE_PAGE: u64 = 0b11;

/// Flag bit positions within a page entry.
const FLAG_READ: u64 = 1 << 2;
const FLAG_WRITE: u64 = 1 << 3;
const FLAG_NOEXEC: u64 = 1 << 4;
/// The flag byte region a SKU quirk may scramble.
const FLAG_REGION_SHIFT: u64 = 2;

/// Physical-address field of an entry.
const PA_MASK: u64 = 0x0000_FFFF_FFFF_F000;

/// Number of translation levels (L0..L3).
const LEVELS: u32 = 4;
/// Index bits per level.
const IDX_BITS: u32 = 9;

/// Access permissions of a GPU mapping.
///
/// `execute` marks pages holding shader code; the §5 metastate classifier
/// keys off this bit exactly as the paper does for Mali ("map metastate as
/// executable").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PteFlags {
    /// GPU may read.
    pub read: bool,
    /// GPU may write.
    pub write: bool,
    /// Page contains GPU-executable (shader) code.
    pub execute: bool,
}

impl PteFlags {
    /// Read-only data.
    pub fn ro() -> Self {
        PteFlags {
            read: true,
            write: false,
            execute: false,
        }
    }

    /// Read-write data.
    pub fn rw() -> Self {
        PteFlags {
            read: true,
            write: true,
            execute: false,
        }
    }

    /// Readable executable (shader code / command metastate).
    pub fn rx() -> Self {
        PteFlags {
            read: true,
            write: false,
            execute: true,
        }
    }

    /// Readable, writable, executable.
    pub fn rwx() -> Self {
        PteFlags {
            read: true,
            write: true,
            execute: true,
        }
    }
}

/// An MMU translation failure, surfaced as a page fault on the AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmuFault {
    /// No valid translation for `va` (missing entry at `level`).
    Translation {
        /// Faulting GPU virtual address.
        va: u64,
        /// Level at which the walk failed.
        level: u32,
    },
    /// Translation exists but the access kind is not permitted.
    Permission {
        /// Faulting GPU virtual address.
        va: u64,
    },
    /// The walk itself touched invalid physical memory.
    WalkError {
        /// Underlying physical fault.
        fault: MemFault,
    },
}

impl fmt::Display for MmuFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmuFault::Translation { va, level } => {
                write!(f, "translation fault at va {va:#x} (level {level})")
            }
            MmuFault::Permission { va } => write!(f, "permission fault at va {va:#x}"),
            MmuFault::WalkError { fault } => write!(f, "page-table walk error: {fault}"),
        }
    }
}

impl std::error::Error for MmuFault {}

/// The access kind being checked during a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch (shader/descriptor decode).
    Execute,
}

/// Live configuration of one hardware address space, latched from the AS
/// registers by `AS_COMMAND = UPDATE`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AddressSpace {
    /// Physical address of the L0 table (0 = disabled).
    pub transtab: u64,
    /// Memory attributes (opaque to the model, recorded for fidelity).
    pub memattr: u64,
    /// Whether `UPDATE` has latched a valid configuration.
    pub enabled: bool,
}

fn level_index(va: u64, level: u32) -> u64 {
    let shift = 12 + IDX_BITS * (LEVELS - 1 - level);
    (va >> shift) & ((1 << IDX_BITS) - 1)
}

/// Encodes a leaf (page) entry with the SKU's PTE quirk applied.
pub fn encode_pte(pa: u64, flags: PteFlags, quirk: u8) -> u64 {
    let mut e = (pa & PA_MASK) | TYPE_PAGE;
    if flags.read {
        e |= FLAG_READ;
    }
    if flags.write {
        e |= FLAG_WRITE;
    }
    if !flags.execute {
        e |= FLAG_NOEXEC;
    }
    e ^ ((quirk as u64) << FLAG_REGION_SHIFT)
}

/// Decodes a leaf entry under the SKU's PTE quirk.
///
/// Returns `None` if the entry is not a valid page entry under this quirk.
pub fn decode_pte(entry: u64, quirk: u8) -> Option<(u64, PteFlags)> {
    let e = entry ^ ((quirk as u64) << FLAG_REGION_SHIFT);
    if e & TYPE_MASK != TYPE_PAGE {
        return None;
    }
    Some((
        e & PA_MASK,
        PteFlags {
            read: e & FLAG_READ != 0,
            write: e & FLAG_WRITE != 0,
            execute: e & FLAG_NOEXEC == 0,
        },
    ))
}

/// Number of translation levels in the LPAE-style format (exposed for
/// external walkers, e.g. the recording linter's shadow-memory walk).
pub const WALK_LEVELS: u32 = LEVELS;

/// Index bits consumed per translation level.
pub const WALK_IDX_BITS: u32 = IDX_BITS;

/// Decodes a non-leaf entry: `Some(child_table_pa)` when the entry is a
/// valid table pointer, `None` otherwise. Table entries are not covered by
/// the SKU PTE quirk (only leaf flag bits are scrambled).
pub fn decode_table_entry(entry: u64) -> Option<u64> {
    if entry & TYPE_MASK == TYPE_TABLE {
        Some(entry & PA_MASK)
    } else {
        None
    }
}

/// Maps one 4 KiB page `va -> pa` in the table rooted at `root_pa`.
///
/// Intermediate table pages are allocated through `alloc_table`, which must
/// return the physical address of a zeroed page. This is the driver-side
/// builder; quirk must match the SKU the tables will run on.
pub fn map_page(
    mem: &mut Memory,
    root_pa: u64,
    va: u64,
    pa: u64,
    flags: PteFlags,
    quirk: u8,
    alloc_table: &mut dyn FnMut() -> u64,
) -> Result<(), MemFault> {
    let mut table_pa = root_pa;
    for level in 0..LEVELS - 1 {
        let idx = level_index(va, level);
        let entry_pa = table_pa + idx * 8;
        let entry = mem.read_u64(entry_pa, Accessor::Cpu)?;
        if entry & TYPE_MASK == TYPE_TABLE {
            table_pa = entry & PA_MASK;
        } else {
            let new_table = alloc_table();
            mem.write_u64(entry_pa, (new_table & PA_MASK) | TYPE_TABLE, Accessor::Cpu)?;
            table_pa = new_table;
        }
    }
    let idx = level_index(va, LEVELS - 1);
    mem.write_u64(
        table_pa + idx * 8,
        encode_pte(pa, flags, quirk),
        Accessor::Cpu,
    )
}

/// Unmaps the page at `va`; returns true if a mapping was removed.
pub fn unmap_page(mem: &mut Memory, root_pa: u64, va: u64) -> Result<bool, MemFault> {
    let mut table_pa = root_pa;
    for level in 0..LEVELS - 1 {
        let idx = level_index(va, level);
        let entry = mem.read_u64(table_pa + idx * 8, Accessor::Cpu)?;
        if entry & TYPE_MASK != TYPE_TABLE {
            return Ok(false);
        }
        table_pa = entry & PA_MASK;
    }
    let idx = level_index(va, LEVELS - 1);
    let entry_pa = table_pa + idx * 8;
    let entry = mem.read_u64(entry_pa, Accessor::Cpu)?;
    if entry & TYPE_MASK == TYPE_INVALID {
        return Ok(false);
    }
    mem.write_u64(entry_pa, TYPE_INVALID, Accessor::Cpu)?;
    Ok(true)
}

/// Number of entries in the software TLB. Must be a multiple of
/// [`TLB_WAYS`] with a power-of-two set count; 256 entries cover 1 MiB of
/// working set per fill.
pub const TLB_ENTRIES: usize = 256;

/// Associativity: each set holds this many ways, evicted LRU. The old
/// direct-mapped layout conflicted whenever two hot tensors sat exactly
/// `TLB_ENTRIES` pages apart (VGG16's large conv operands did, at
/// 580 hits / 426 misses); four ways absorb those aliases.
pub const TLB_WAYS: usize = 4;

/// Number of sets (the index space of the VPN hash).
pub const TLB_SETS: usize = TLB_ENTRIES / TLB_WAYS;

/// One TLB way: a cached leaf translation tagged by virtual page *and*
/// address space.
#[derive(Debug, Clone, Copy, Default)]
struct TlbEntry {
    valid: bool,
    /// Address space the translation belongs to. Tagging (instead of
    /// flushing on every AS switch) keeps translations from distinct
    /// spaces coexisting without ever serving a cross-AS hit.
    asn: u8,
    /// Virtual page number (`va >> 12`) this way caches.
    vpn: u64,
    /// Physical base of the mapped page.
    pa_base: u64,
    /// Leaf permissions, re-checked on every lookup (permission faults are
    /// never served stale from the cache).
    flags: PteFlags,
    /// LRU stamp (monotonic lookup tick of the last touch).
    last_use: u64,
}

/// Cumulative TLB counters, exported into replay profiles and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups served from a cached translation (no table walk).
    pub hits: u64,
    /// Lookups that required a full multi-level walk.
    pub misses: u64,
    /// Whole-TLB invalidations (job boundaries, AS updates, resets,
    /// stores that overlap a walked table page).
    pub flushes: u64,
}

/// A software TLB for one GPU address space.
///
/// The cache is *per job*: the GPU flushes it at every descriptor boundary
/// and whenever the address-space registers are rewritten, so CPU-side
/// page-table updates between jobs (memsync sync-down, rollback restores,
/// driver remaps) can never be observed through a stale translation.
/// Within a job, [`Tlb::note_store`] detects GPU stores that land on a
/// table page consulted by a cached walk and flushes, keeping even
/// self-modifying page tables coherent.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// `TLB_SETS` sets of `TLB_WAYS` ways, stored flat: set `s` occupies
    /// `entries[s * TLB_WAYS .. (s + 1) * TLB_WAYS]`.
    entries: Vec<TlbEntry>,
    stats: TlbStats,
    /// Monotonic lookup counter stamping `TlbEntry::last_use` for LRU
    /// victim selection. Deterministic: advances only on lookups.
    tick: u64,
    /// Page-aligned PAs of every table page consulted by a walk that
    /// filled a currently-live entry. Sorted, deduplicated.
    table_pages: Vec<u64>,
}

impl Default for Tlb {
    fn default() -> Self {
        Tlb::new()
    }
}

impl Tlb {
    /// An empty TLB with zeroed counters.
    pub fn new() -> Self {
        Tlb {
            entries: vec![TlbEntry::default(); TLB_ENTRIES],
            stats: TlbStats::default(),
            tick: 0,
            table_pages: Vec::new(),
        }
    }

    /// Drops every cached translation (counted as one flush).
    pub fn invalidate_all(&mut self) {
        self.stats.flushes += 1;
        for e in &mut self.entries {
            e.valid = false;
        }
        self.table_pages.clear();
    }

    /// Drops cached translations for virtual pages in `[va, va + len)` —
    /// the ranged TLB maintenance op behind `AS_CMD_FLUSH_MEM` /
    /// `AS_CMD_FLUSH_PT`, which on real Mali invalidate only the region
    /// bracketed by `AS_LOCKADDR`. Walked-table-page bookkeeping is left
    /// in place (a later store there still flushes — conservative, never
    /// unsafe). Not counted in `TlbStats::flushes`, which tracks
    /// whole-TLB invalidations.
    pub fn invalidate_va_range(&mut self, va: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first_vpn = va >> 12;
        let last_vpn = (va + len - 1) >> 12;
        // Matching VPNs are dropped in *every* address space: the flush
        // command is issued per-AS on real hardware, but invalidating
        // across spaces is conservative (never serves a stale PA).
        for e in &mut self.entries {
            if e.valid && e.vpn >= first_vpn && e.vpn <= last_vpn {
                e.valid = false;
            }
        }
    }

    /// Reports a store to physical range `[pa, pa + len)`. If it overlaps
    /// any table page a live entry was walked through, the whole TLB is
    /// flushed: the store may have rewritten a PTE backing a cached
    /// translation.
    pub fn note_store(&mut self, pa: u64, len: usize) {
        if self.table_pages.is_empty() || len == 0 {
            return;
        }
        let first = pa & !(PAGE_SIZE as u64 - 1);
        let last = (pa + len as u64 - 1) & !(PAGE_SIZE as u64 - 1);
        let mut page = first;
        loop {
            if self.table_pages.binary_search(&page).is_ok() {
                self.invalidate_all();
                return;
            }
            if page >= last {
                break;
            }
            page += PAGE_SIZE as u64;
        }
    }

    /// Cumulative hit/miss/flush counters.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Resets the counters (entries are left alone).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    fn remember_table_page(&mut self, pa: u64) {
        if let Err(at) = self.table_pages.binary_search(&pa) {
            self.table_pages.insert(at, pa);
        }
    }
}

/// The hardware page-table walker for one address space.
#[derive(Debug, Clone, Copy)]
pub struct Walker {
    /// Physical address of the L0 table.
    pub root_pa: u64,
    /// The SKU's PTE quirk.
    pub quirk: u8,
    /// Hardware address-space slot this walker serves; TLB fills are
    /// tagged with it so translations from different spaces can share the
    /// cache without ever cross-hitting.
    pub asn: u8,
}

impl Walker {
    /// One full multi-level walk to the leaf for `va`. Returns the mapped
    /// page's physical base and flags; reports every table page consulted
    /// through `touched`.
    fn walk_leaf(
        &self,
        mem: &Memory,
        va: u64,
        mut touched: impl FnMut(u64),
    ) -> Result<(u64, PteFlags), MmuFault> {
        let mut table_pa = self.root_pa;
        for level in 0..LEVELS - 1 {
            touched(table_pa);
            let idx = level_index(va, level);
            let entry = mem
                .read_u64(table_pa + idx * 8, Accessor::Gpu)
                .map_err(|fault| MmuFault::WalkError { fault })?;
            if entry & TYPE_MASK != TYPE_TABLE {
                return Err(MmuFault::Translation { va, level });
            }
            table_pa = entry & PA_MASK;
        }
        touched(table_pa);
        let idx = level_index(va, LEVELS - 1);
        let entry = mem
            .read_u64(table_pa + idx * 8, Accessor::Gpu)
            .map_err(|fault| MmuFault::WalkError { fault })?;
        let (pa, flags) = decode_pte(entry, self.quirk).ok_or(MmuFault::Translation {
            va,
            level: LEVELS - 1,
        })?;
        Ok((pa, flags))
    }

    fn check_kind(va: u64, flags: PteFlags, kind: AccessKind) -> Result<(), MmuFault> {
        let allowed = match kind {
            AccessKind::Read => flags.read,
            AccessKind::Write => flags.write,
            AccessKind::Execute => flags.execute,
        };
        if allowed {
            Ok(())
        } else {
            Err(MmuFault::Permission { va })
        }
    }

    /// Translates `va`, checking `kind` against the page permissions.
    pub fn translate(&self, mem: &Memory, va: u64, kind: AccessKind) -> Result<u64, MmuFault> {
        let (pa, flags) = self.walk_leaf(mem, va, |_| {})?;
        Self::check_kind(va, flags, kind)?;
        Ok(pa + (va & (PAGE_SIZE as u64 - 1)))
    }

    /// Translates `va` through the software TLB: a hit skips the table
    /// walk entirely; a miss walks once and caches the leaf. Permission
    /// bits are checked on every lookup, hit or miss.
    pub fn translate_cached(
        &self,
        mem: &Memory,
        tlb: &mut Tlb,
        va: u64,
        kind: AccessKind,
    ) -> Result<u64, MmuFault> {
        let vpn = va >> 12;
        let set = ((vpn as usize) & (TLB_SETS - 1)) * TLB_WAYS;
        tlb.tick += 1;
        let tick = tlb.tick;
        for way in 0..TLB_WAYS {
            let e = tlb.entries[set + way];
            if e.valid && e.vpn == vpn && e.asn == self.asn {
                tlb.stats.hits += 1;
                tlb.entries[set + way].last_use = tick;
                Self::check_kind(va, e.flags, kind)?;
                return Ok(e.pa_base + (va & (PAGE_SIZE as u64 - 1)));
            }
        }
        tlb.stats.misses += 1;
        let mut touched = [0u64; LEVELS as usize];
        let mut n = 0usize;
        let (pa_base, flags) = self.walk_leaf(mem, va, |p| {
            touched[n] = p;
            n += 1;
        })?;
        Self::check_kind(va, flags, kind)?;
        for &p in &touched[..n] {
            tlb.remember_table_page(p);
        }
        // Victim: first invalid way, else least-recently-used.
        let victim = set
            + (0..TLB_WAYS)
                .min_by_key(|&w| {
                    let e = tlb.entries[set + w];
                    (e.valid, e.last_use)
                })
                .unwrap_or(0);
        tlb.entries[victim] = TlbEntry {
            valid: true,
            asn: self.asn,
            vpn,
            pa_base,
            flags,
            last_use: tick,
        };
        Ok(pa_base + (va & (PAGE_SIZE as u64 - 1)))
    }

    /// Translates the start of `[va, va + max_len)` and extends the
    /// translation over every following virtually-contiguous page that is
    /// also *physically* contiguous with the same permissions. Returns the
    /// starting PA and the byte length of the run (`1 ..= max_len`).
    ///
    /// This is the page-run primitive behind bulk memory access: one call
    /// per run replaces a translation per element.
    pub fn translate_run(
        &self,
        mem: &Memory,
        tlb: &mut Tlb,
        va: u64,
        max_len: usize,
        kind: AccessKind,
    ) -> Result<(u64, usize), MmuFault> {
        debug_assert!(max_len > 0);
        let pa0 = self.translate_cached(mem, tlb, va, kind)?;
        let in_page = PAGE_SIZE - (va as usize & (PAGE_SIZE - 1));
        let mut run = in_page.min(max_len);
        while run < max_len {
            let next_va = va + run as u64;
            let next_pa = self.translate_cached(mem, tlb, next_va, kind)?;
            if next_pa != pa0 + run as u64 {
                break;
            }
            run += PAGE_SIZE.min(max_len - run);
        }
        Ok((pa0, run))
    }

    /// Enumerates all mapped pages as `(va, pa, flags)` triples.
    ///
    /// Used by the §5 metastate classifier (e.g. "all executable pages") and
    /// by tests; walks the whole tree.
    pub fn mapped_pages(&self, mem: &Memory) -> Vec<(u64, u64, PteFlags)> {
        let mut out = Vec::new();
        self.visit_level(mem, self.root_pa, 0, 0, &mut out);
        out
    }

    fn visit_level(
        &self,
        mem: &Memory,
        table_pa: u64,
        level: u32,
        va_base: u64,
        out: &mut Vec<(u64, u64, PteFlags)>,
    ) {
        for idx in 0..(1u64 << IDX_BITS) {
            let Ok(entry) = mem.read_u64(table_pa + idx * 8, Accessor::Gpu) else {
                continue;
            };
            let shift = 12 + IDX_BITS * (LEVELS - 1 - level);
            let va = va_base | (idx << shift);
            if level < LEVELS - 1 {
                if entry & TYPE_MASK == TYPE_TABLE {
                    self.visit_level(mem, entry & PA_MASK, level + 1, va, out);
                }
            } else if let Some((pa, flags)) = decode_pte(entry, self.quirk) {
                out.push((va, pa, flags));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bump allocator for table pages starting at `base`.
    struct TableAlloc {
        next: u64,
    }

    impl TableAlloc {
        fn new(base: u64) -> Self {
            TableAlloc { next: base }
        }

        fn alloc(&mut self) -> u64 {
            let pa = self.next;
            self.next += PAGE_SIZE as u64;
            pa
        }
    }

    fn setup() -> (Memory, u64, TableAlloc) {
        let mem = Memory::new(2 * 1024 * 1024);
        let mut alloc = TableAlloc::new(0x10_000);
        let root = alloc.alloc();
        (mem, root, alloc)
    }

    #[test]
    fn map_translate_round_trip() {
        let (mut mem, root, mut alloc) = setup();
        map_page(
            &mut mem,
            root,
            0x4000_0000,
            0x8_0000,
            PteFlags::rw(),
            0,
            &mut || alloc.alloc(),
        )
        .unwrap();
        let w = Walker {
            root_pa: root,
            quirk: 0,
            asn: 0,
        };
        assert_eq!(
            w.translate(&mem, 0x4000_0123, AccessKind::Read).unwrap(),
            0x8_0123
        );
        assert_eq!(
            w.translate(&mem, 0x4000_0FFF, AccessKind::Write).unwrap(),
            0x8_0FFF
        );
    }

    #[test]
    fn unmapped_va_faults() {
        let (mem, root, _) = setup();
        let w = Walker {
            root_pa: root,
            quirk: 0,
            asn: 0,
        };
        assert!(matches!(
            w.translate(&mem, 0x1234_5000, AccessKind::Read),
            Err(MmuFault::Translation { .. })
        ));
    }

    #[test]
    fn permission_bits_enforced() {
        let (mut mem, root, mut alloc) = setup();
        map_page(
            &mut mem,
            root,
            0x1000,
            0x9000,
            PteFlags::ro(),
            0,
            &mut || alloc.alloc(),
        )
        .unwrap();
        let w = Walker {
            root_pa: root,
            quirk: 0,
            asn: 0,
        };
        assert!(w.translate(&mem, 0x1000, AccessKind::Read).is_ok());
        assert!(matches!(
            w.translate(&mem, 0x1000, AccessKind::Write),
            Err(MmuFault::Permission { .. })
        ));
        assert!(matches!(
            w.translate(&mem, 0x1000, AccessKind::Execute),
            Err(MmuFault::Permission { .. })
        ));
    }

    #[test]
    fn executable_pages_enumerable() {
        let (mut mem, root, mut alloc) = setup();
        let mut a = || alloc.alloc();
        map_page(&mut mem, root, 0x1000, 0x9000, PteFlags::rx(), 0, &mut a).unwrap();
        map_page(&mut mem, root, 0x2000, 0xA000, PteFlags::rw(), 0, &mut a).unwrap();
        map_page(
            &mut mem,
            root,
            0x8000_0000,
            0xB000,
            PteFlags::rx(),
            0,
            &mut a,
        )
        .unwrap();
        let w = Walker {
            root_pa: root,
            quirk: 0,
            asn: 0,
        };
        let exec: Vec<_> = w
            .mapped_pages(&mem)
            .into_iter()
            .filter(|(_, _, f)| f.execute)
            .collect();
        assert_eq!(exec.len(), 2);
        assert_eq!(exec[0].0, 0x1000);
        assert_eq!(exec[1].0, 0x8000_0000);
    }

    #[test]
    fn unmap_removes_translation() {
        let (mut mem, root, mut alloc) = setup();
        map_page(
            &mut mem,
            root,
            0x1000,
            0x9000,
            PteFlags::rw(),
            0,
            &mut || alloc.alloc(),
        )
        .unwrap();
        let w = Walker {
            root_pa: root,
            quirk: 0,
            asn: 0,
        };
        assert!(w.translate(&mem, 0x1000, AccessKind::Read).is_ok());
        assert!(unmap_page(&mut mem, root, 0x1000).unwrap());
        assert!(w.translate(&mem, 0x1000, AccessKind::Read).is_err());
        assert!(!unmap_page(&mut mem, root, 0x1000).unwrap());
    }

    #[test]
    fn quirk_mismatch_breaks_translation() {
        // Tables built for quirk 0x01 (read-flag flip) misdecode under
        // quirk 0x00 — the §2.4 "page table format variation" SKU
        // incompatibility.
        let (mut mem, root, mut alloc) = setup();
        map_page(
            &mut mem,
            root,
            0x1000,
            0x9000,
            PteFlags::rw(),
            0x01,
            &mut || alloc.alloc(),
        )
        .unwrap();
        let right = Walker {
            root_pa: root,
            quirk: 0x01,
            asn: 0,
        };
        assert!(right.translate(&mem, 0x1000, AccessKind::Read).is_ok());
        let wrong = Walker {
            root_pa: root,
            quirk: 0x00,
            asn: 0,
        };
        let r = wrong.translate(&mem, 0x1000, AccessKind::Read);
        assert!(r.is_err(), "quirk mismatch must fault, got {r:?}");
    }

    #[test]
    fn distant_vas_do_not_collide() {
        let (mut mem, root, mut alloc) = setup();
        let mut a = || alloc.alloc();
        map_page(
            &mut mem,
            root,
            0x0000_0000_1000,
            0x1_0000,
            PteFlags::rw(),
            0,
            &mut a,
        )
        .unwrap();
        map_page(
            &mut mem,
            root,
            0x00FF_FFFF_F000,
            0x2_0000,
            PteFlags::rw(),
            0,
            &mut a,
        )
        .unwrap();
        let w = Walker {
            root_pa: root,
            quirk: 0,
            asn: 0,
        };
        assert_eq!(
            w.translate(&mem, 0x0000_0000_1004, AccessKind::Read)
                .unwrap(),
            0x1_0004
        );
        assert_eq!(
            w.translate(&mem, 0x00FF_FFFF_F008, AccessKind::Read)
                .unwrap(),
            0x2_0008
        );
    }

    #[test]
    fn tlb_hit_skips_the_walk_and_matches_translate() {
        let (mut mem, root, mut alloc) = setup();
        map_page(
            &mut mem,
            root,
            0x4000_0000,
            0x8_0000,
            PteFlags::rw(),
            0,
            &mut || alloc.alloc(),
        )
        .unwrap();
        let w = Walker {
            root_pa: root,
            quirk: 0,
            asn: 0,
        };
        let mut tlb = Tlb::new();
        let slow = w.translate(&mem, 0x4000_0123, AccessKind::Read).unwrap();
        let first = w
            .translate_cached(&mem, &mut tlb, 0x4000_0123, AccessKind::Read)
            .unwrap();
        let second = w
            .translate_cached(&mem, &mut tlb, 0x4000_0FFF, AccessKind::Write)
            .unwrap();
        assert_eq!(first, slow);
        assert_eq!(second, 0x8_0FFF);
        let s = tlb.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn tlb_permission_checked_on_every_hit() {
        let (mut mem, root, mut alloc) = setup();
        map_page(
            &mut mem,
            root,
            0x1000,
            0x9000,
            PteFlags::ro(),
            0,
            &mut || alloc.alloc(),
        )
        .unwrap();
        let w = Walker {
            root_pa: root,
            quirk: 0,
            asn: 0,
        };
        let mut tlb = Tlb::new();
        assert!(w
            .translate_cached(&mem, &mut tlb, 0x1000, AccessKind::Read)
            .is_ok());
        // The translation is now cached; a write through the hit path must
        // still take the permission fault.
        assert!(matches!(
            w.translate_cached(&mem, &mut tlb, 0x1004, AccessKind::Write),
            Err(MmuFault::Permission { .. })
        ));
    }

    #[test]
    fn tlb_set_absorbs_aliases_up_to_associativity() {
        let (mut mem, root, mut alloc) = setup();
        let mut a = || alloc.alloc();
        // TLB_WAYS + 1 VAs mapping to the same set: the set can hold all
        // but one, so round-robin touches never hit (each lookup evicts
        // the entry needed TLB_WAYS lookups later), while a working set of
        // exactly TLB_WAYS aliases hits every time after the first pass.
        let stride = (TLB_SETS as u64) * PAGE_SIZE as u64;
        let vas: Vec<u64> = (0..=TLB_WAYS as u64).map(|i| 0x1000 + i * stride).collect();
        for (i, &va) in vas.iter().enumerate() {
            let pa = 0x9000 + (i as u64) * PAGE_SIZE as u64;
            map_page(&mut mem, root, va, pa, PteFlags::rw(), 0, &mut a).unwrap();
        }
        let w = Walker {
            root_pa: root,
            quirk: 0,
            asn: 0,
        };
        let mut tlb = Tlb::new();
        // Working set of TLB_WAYS: first pass misses, later passes hit.
        for round in 0..3 {
            for (i, &va) in vas[..TLB_WAYS].iter().enumerate() {
                let pa = w
                    .translate_cached(&mem, &mut tlb, va, AccessKind::Read)
                    .unwrap();
                assert_eq!(pa, 0x9000 + (i as u64) * PAGE_SIZE as u64, "round {round}");
            }
        }
        let s = tlb.stats();
        assert_eq!(
            (s.hits, s.misses),
            (2 * TLB_WAYS as u64, TLB_WAYS as u64),
            "a TLB_WAYS-wide alias set must fit"
        );
        // One alias past the associativity: LRU order makes every lookup
        // in a round-robin sweep a miss (fresh TLB so no warm entries
        // from the phase above survive into the first round).
        let mut tlb = Tlb::new();
        for _ in 0..3 {
            for &va in &vas {
                w.translate_cached(&mem, &mut tlb, va, AccessKind::Read)
                    .unwrap();
            }
        }
        let s = tlb.stats();
        assert_eq!(s.hits, 0, "TLB_WAYS + 1 aliases thrash the set");
        assert_eq!(s.misses, 3 * (TLB_WAYS as u64 + 1));
    }

    #[test]
    fn tlb_entries_are_tagged_per_address_space() {
        // Two address spaces map the *same VA* to different PAs. With
        // per-AS tags both translations coexist in one TLB and neither
        // walker ever sees the other's PA.
        let mem = Memory::new(2 * 1024 * 1024);
        let mut mem = mem;
        let mut alloc = TableAlloc::new(0x10_000);
        let root_a = alloc.alloc();
        let root_b = alloc.alloc();
        let mut a = || alloc.alloc();
        map_page(&mut mem, root_a, 0x1000, 0x9000, PteFlags::rw(), 0, &mut a).unwrap();
        map_page(&mut mem, root_b, 0x1000, 0xA000, PteFlags::rw(), 0, &mut a).unwrap();
        let wa = Walker {
            root_pa: root_a,
            quirk: 0,
            asn: 0,
        };
        let wb = Walker {
            root_pa: root_b,
            quirk: 0,
            asn: 1,
        };
        let mut tlb = Tlb::new();
        for _ in 0..2 {
            assert_eq!(
                wa.translate_cached(&mem, &mut tlb, 0x1004, AccessKind::Read)
                    .unwrap(),
                0x9004
            );
            assert_eq!(
                wb.translate_cached(&mem, &mut tlb, 0x1004, AccessKind::Read)
                    .unwrap(),
                0xA004
            );
        }
        let s = tlb.stats();
        assert_eq!(
            (s.hits, s.misses),
            (2, 2),
            "per-AS tags must let the same VPN coexist for two spaces"
        );
        // Ranged invalidation stays conservative: it drops the VPN in
        // *both* spaces.
        tlb.invalidate_va_range(0x1000, 1);
        wa.translate_cached(&mem, &mut tlb, 0x1004, AccessKind::Read)
            .unwrap();
        wb.translate_cached(&mem, &mut tlb, 0x1004, AccessKind::Read)
            .unwrap();
        let s = tlb.stats();
        assert_eq!(s.misses, 4, "ranged invalidate drops all spaces' copies");
    }

    #[test]
    fn tlb_invalidate_all_drops_stale_translations() {
        let (mut mem, root, mut alloc) = setup();
        let mut a = || alloc.alloc();
        map_page(&mut mem, root, 0x1000, 0x9000, PteFlags::rw(), 0, &mut a).unwrap();
        let w = Walker {
            root_pa: root,
            quirk: 0,
            asn: 0,
        };
        let mut tlb = Tlb::new();
        assert_eq!(
            w.translate_cached(&mem, &mut tlb, 0x1000, AccessKind::Read)
                .unwrap(),
            0x9000
        );
        // CPU rewrites the mapping. Without an invalidation the cache is
        // (by design) allowed to serve the stale PA...
        map_page(&mut mem, root, 0x1000, 0xB000, PteFlags::rw(), 0, &mut a).unwrap();
        assert_eq!(
            w.translate_cached(&mem, &mut tlb, 0x1000, AccessKind::Read)
                .unwrap(),
            0x9000
        );
        // ...which is exactly why every job boundary flushes.
        tlb.invalidate_all();
        assert_eq!(
            w.translate_cached(&mem, &mut tlb, 0x1000, AccessKind::Read)
                .unwrap(),
            0xB000
        );
        assert_eq!(tlb.stats().flushes, 1);
    }

    #[test]
    fn tlb_note_store_on_walked_table_page_flushes() {
        let (mut mem, root, mut alloc) = setup();
        let mut a = || alloc.alloc();
        map_page(&mut mem, root, 0x1000, 0x9000, PteFlags::rw(), 0, &mut a).unwrap();
        let w = Walker {
            root_pa: root,
            quirk: 0,
            asn: 0,
        };
        let mut tlb = Tlb::new();
        w.translate_cached(&mem, &mut tlb, 0x1000, AccessKind::Read)
            .unwrap();
        // A store to unrelated memory leaves the cache alone.
        tlb.note_store(0xF_0000, 64);
        assert_eq!(tlb.stats().flushes, 0);
        // A store overlapping the leaf table page (the last level the walk
        // consulted) must flush. The leaf table is an alloc'd table page;
        // rewrite the PTE in place and poke the same PA.
        map_page(&mut mem, root, 0x1000, 0xB000, PteFlags::rw(), 0, &mut a).unwrap();
        let leaf_table = {
            // Walk CPU-side to find the leaf table page.
            let mut t = root;
            for level in 0..LEVELS - 1 {
                let idx = level_index(0x1000, level);
                t = mem.read_u64(t + idx * 8, Accessor::Cpu).unwrap() & PA_MASK;
            }
            t
        };
        tlb.note_store(leaf_table + 8, 8);
        assert_eq!(tlb.stats().flushes, 1);
        assert_eq!(
            w.translate_cached(&mem, &mut tlb, 0x1000, AccessKind::Read)
                .unwrap(),
            0xB000
        );
    }

    #[test]
    fn translate_run_merges_contiguous_pages_and_stops_at_gaps() {
        let (mut mem, root, mut alloc) = setup();
        let mut a = || alloc.alloc();
        // Three virtually-consecutive pages; the first two are physically
        // contiguous, the third is not.
        map_page(
            &mut mem,
            root,
            0x10_0000,
            0x4_0000,
            PteFlags::rw(),
            0,
            &mut a,
        )
        .unwrap();
        map_page(
            &mut mem,
            root,
            0x10_1000,
            0x4_1000,
            PteFlags::rw(),
            0,
            &mut a,
        )
        .unwrap();
        map_page(
            &mut mem,
            root,
            0x10_2000,
            0x9_0000,
            PteFlags::rw(),
            0,
            &mut a,
        )
        .unwrap();
        let w = Walker {
            root_pa: root,
            quirk: 0,
            asn: 0,
        };
        let mut tlb = Tlb::new();
        let (pa, run) = w
            .translate_run(&mem, &mut tlb, 0x10_0000, 3 * PAGE_SIZE, AccessKind::Read)
            .unwrap();
        assert_eq!((pa, run), (0x4_0000, 2 * PAGE_SIZE));
        // Unaligned start: the run begins mid-page and still merges into
        // the physically-contiguous neighbour.
        let (pa, run) = w
            .translate_run(&mem, &mut tlb, 0x10_0800, 0x1000, AccessKind::Read)
            .unwrap();
        assert_eq!((pa, run), (0x4_0800, 0x1000));
        // Length is always capped by the request.
        let (pa, run) = w
            .translate_run(&mem, &mut tlb, 0x10_2000, 16, AccessKind::Read)
            .unwrap();
        assert_eq!((pa, run), (0x9_0000, 16));
    }

    #[test]
    fn pte_encode_decode_round_trip() {
        for quirk in [0u8, 0x20, 0xFF] {
            for flags in [
                PteFlags::ro(),
                PteFlags::rw(),
                PteFlags::rx(),
                PteFlags::rwx(),
            ] {
                let e = encode_pte(0xABC000, flags, quirk);
                let (pa, f) = decode_pte(e, quirk).unwrap();
                assert_eq!(pa, 0xABC000);
                assert_eq!(f, flags);
            }
        }
    }
}
