//! The shader ISA: tensor-level operations the GPU fetches and executes
//! from shared memory.
//!
//! Real Mali shaders are vendor-proprietary binaries emitted by the
//! `libmali` JIT; GR-T treats them as opaque bytes that must (a) live in
//! executable pages, (b) be generated per-SKU, and (c) actually drive the
//! compute that replay reproduces. This ISA keeps all three properties with
//! a tensor-granular instruction set: each instruction is a fixed 64-byte
//! record the GPU decodes through its MMU, parameterized (tiled) by the
//! SKU's shader-core count — executing a program compiled for a different
//! core count raises a configuration fault, which is precisely what makes
//! recordings SKU-specific (§2.4).

use crate::mem::Memory;
use crate::mmu::{AccessKind, MmuFault, Walker};

/// Size of one encoded instruction record.
pub const INSTR_SIZE: usize = 64;

/// Convolution geometry (NCHW, square kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvParams {
    /// Input channels.
    pub in_c: u32,
    /// Input height.
    pub in_h: u32,
    /// Input width.
    pub in_w: u32,
    /// Output channels.
    pub out_c: u32,
    /// Kernel size (k×k).
    pub k: u32,
    /// Stride.
    pub stride: u32,
    /// Zero padding.
    pub pad: u32,
}

impl ConvParams {
    /// Output height.
    pub fn out_h(&self) -> u32 {
        (self.in_h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> u32 {
        (self.in_w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Multiply-accumulate count of this convolution.
    pub fn macs(&self) -> u64 {
        self.out_c as u64
            * self.out_h() as u64
            * self.out_w() as u64
            * self.in_c as u64
            * self.k as u64
            * self.k as u64
    }
}

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// One shader instruction.
///
/// `tiles` on compute ops is the workgroup tiling the JIT chose for the
/// target SKU; the hardware rejects a mismatch with a configuration fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShaderOp {
    /// 2-D convolution + bias: `out = conv(in, w) + b`.
    Conv2d {
        /// Input tensor VA.
        in_va: u64,
        /// Weight tensor VA (`[out_c][in_c][k][k]`).
        w_va: u64,
        /// Bias VA (`[out_c]`).
        b_va: u64,
        /// Output tensor VA.
        out_va: u64,
        /// Geometry.
        p: ConvParams,
        /// SKU tiling (shader-core count the kernel was compiled for).
        tiles: u32,
    },
    /// Dense layer: `out[m,n] = a[m,k] × b[k,n] + bias[n]`.
    MatMul {
        /// Left operand VA.
        a_va: u64,
        /// Right operand VA.
        b_va: u64,
        /// Bias VA (0 = no bias).
        bias_va: u64,
        /// Output VA.
        out_va: u64,
        /// Rows of `a`.
        m: u32,
        /// Inner dimension.
        k: u32,
        /// Columns of `b`.
        n: u32,
        /// SKU tiling.
        tiles: u32,
    },
    /// Spatial pooling over NCHW input.
    Pool {
        /// Input VA.
        in_va: u64,
        /// Output VA.
        out_va: u64,
        /// Flavour.
        kind: PoolKind,
        /// Channels.
        c: u32,
        /// Input height.
        h: u32,
        /// Input width.
        w: u32,
        /// Kernel size.
        k: u32,
        /// Stride.
        stride: u32,
    },
    /// Elementwise ReLU.
    Relu {
        /// Input VA.
        in_va: u64,
        /// Output VA (may equal input).
        out_va: u64,
        /// Element count.
        len: u32,
    },
    /// Elementwise addition (residual connections).
    Add {
        /// First operand VA.
        a_va: u64,
        /// Second operand VA.
        b_va: u64,
        /// Output VA.
        out_va: u64,
        /// Element count.
        len: u32,
    },
    /// Softmax over a vector.
    Softmax {
        /// Input VA.
        in_va: u64,
        /// Output VA.
        out_va: u64,
        /// Element count.
        len: u32,
    },
    /// Bulk copy of `len` f32 elements.
    Copy {
        /// Source VA.
        src_va: u64,
        /// Destination VA.
        dst_va: u64,
        /// Element count.
        len: u32,
    },
}

const OP_CONV2D: u32 = 1;
const OP_MATMUL: u32 = 2;
const OP_POOL: u32 = 3;
const OP_RELU: u32 = 4;
const OP_ADD: u32 = 5;
const OP_SOFTMAX: u32 = 6;
const OP_COPY: u32 = 7;

impl ShaderOp {
    /// Approximate MAC cost of this instruction (for the job cost model).
    pub fn macs(&self) -> u64 {
        match self {
            ShaderOp::Conv2d { p, .. } => p.macs(),
            ShaderOp::MatMul { m, k, n, .. } => *m as u64 * *k as u64 * *n as u64,
            ShaderOp::Pool { c, h, w, k, .. } => {
                *c as u64 * *h as u64 * *w as u64 * (*k as u64).pow(2) / 4
            }
            ShaderOp::Relu { len, .. } | ShaderOp::Add { len, .. } => *len as u64,
            ShaderOp::Softmax { len, .. } => *len as u64 * 4,
            ShaderOp::Copy { len, .. } => *len as u64 / 2,
        }
    }

    /// Encodes to the fixed 64-byte record format.
    pub fn encode(&self) -> [u8; INSTR_SIZE] {
        let mut b = [0u8; INSTR_SIZE];
        let put_u32 = |buf: &mut [u8; INSTR_SIZE], off: usize, v: u32| {
            buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
        };
        fn put_u64(buf: &mut [u8; INSTR_SIZE], off: usize, v: u64) {
            buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
        }
        match *self {
            ShaderOp::Conv2d {
                in_va,
                w_va,
                b_va,
                out_va,
                p,
                tiles,
            } => {
                put_u32(&mut b, 0, OP_CONV2D);
                put_u32(&mut b, 4, tiles);
                put_u64(&mut b, 8, in_va);
                put_u64(&mut b, 16, w_va);
                put_u64(&mut b, 24, b_va);
                put_u64(&mut b, 32, out_va);
                // Six param slots remain (40..64): pack stride and pad
                // into one word.
                for (i, v) in [
                    p.in_c,
                    p.in_h,
                    p.in_w,
                    p.out_c,
                    p.k,
                    p.stride | (p.pad << 16),
                ]
                .into_iter()
                .enumerate()
                {
                    put_u32(&mut b, 40 + i * 4, v);
                }
            }
            ShaderOp::MatMul {
                a_va,
                b_va,
                bias_va,
                out_va,
                m,
                k,
                n,
                tiles,
            } => {
                put_u32(&mut b, 0, OP_MATMUL);
                put_u32(&mut b, 4, tiles);
                put_u64(&mut b, 8, a_va);
                put_u64(&mut b, 16, b_va);
                put_u64(&mut b, 24, bias_va);
                put_u64(&mut b, 32, out_va);
                put_u32(&mut b, 40, m);
                put_u32(&mut b, 44, k);
                put_u32(&mut b, 48, n);
            }
            ShaderOp::Pool {
                in_va,
                out_va,
                kind,
                c,
                h,
                w,
                k,
                stride,
            } => {
                put_u32(&mut b, 0, OP_POOL);
                put_u64(&mut b, 8, in_va);
                put_u64(&mut b, 32, out_va);
                put_u32(&mut b, 40, matches!(kind, PoolKind::Avg) as u32);
                put_u32(&mut b, 44, c);
                put_u32(&mut b, 48, h);
                put_u32(&mut b, 52, w);
                put_u32(&mut b, 56, k);
                put_u32(&mut b, 60, stride);
            }
            ShaderOp::Relu { in_va, out_va, len } => {
                put_u32(&mut b, 0, OP_RELU);
                put_u64(&mut b, 8, in_va);
                put_u64(&mut b, 32, out_va);
                put_u32(&mut b, 40, len);
            }
            ShaderOp::Add {
                a_va,
                b_va,
                out_va,
                len,
            } => {
                put_u32(&mut b, 0, OP_ADD);
                put_u64(&mut b, 8, a_va);
                put_u64(&mut b, 16, b_va);
                put_u64(&mut b, 32, out_va);
                put_u32(&mut b, 40, len);
            }
            ShaderOp::Softmax { in_va, out_va, len } => {
                put_u32(&mut b, 0, OP_SOFTMAX);
                put_u64(&mut b, 8, in_va);
                put_u64(&mut b, 32, out_va);
                put_u32(&mut b, 40, len);
            }
            ShaderOp::Copy {
                src_va,
                dst_va,
                len,
            } => {
                put_u32(&mut b, 0, OP_COPY);
                put_u64(&mut b, 8, src_va);
                put_u64(&mut b, 32, dst_va);
                put_u32(&mut b, 40, len);
            }
        }
        b
    }

    /// Decodes a 64-byte record; `None` for an unknown opcode.
    pub fn decode(b: &[u8; INSTR_SIZE]) -> Option<ShaderOp> {
        let u32_at = |off: usize| u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]]);
        let u64_at = |off: usize| {
            u64::from_le_bytes([
                b[off],
                b[off + 1],
                b[off + 2],
                b[off + 3],
                b[off + 4],
                b[off + 5],
                b[off + 6],
                b[off + 7],
            ])
        };
        Some(match u32_at(0) {
            OP_CONV2D => ShaderOp::Conv2d {
                tiles: u32_at(4),
                in_va: u64_at(8),
                w_va: u64_at(16),
                b_va: u64_at(24),
                out_va: u64_at(32),
                p: ConvParams {
                    in_c: u32_at(40),
                    in_h: u32_at(44),
                    in_w: u32_at(48),
                    out_c: u32_at(52),
                    k: u32_at(56),
                    stride: u32_at(60) & 0xFFFF,
                    pad: u32_at(60) >> 16,
                },
            },
            OP_MATMUL => ShaderOp::MatMul {
                tiles: u32_at(4),
                a_va: u64_at(8),
                b_va: u64_at(16),
                bias_va: u64_at(24),
                out_va: u64_at(32),
                m: u32_at(40),
                k: u32_at(44),
                n: u32_at(48),
            },
            OP_POOL => ShaderOp::Pool {
                in_va: u64_at(8),
                out_va: u64_at(32),
                kind: if u32_at(40) == 1 {
                    PoolKind::Avg
                } else {
                    PoolKind::Max
                },
                c: u32_at(44),
                h: u32_at(48),
                w: u32_at(52),
                k: u32_at(56),
                stride: u32_at(60),
            },
            OP_RELU => ShaderOp::Relu {
                in_va: u64_at(8),
                out_va: u64_at(32),
                len: u32_at(40),
            },
            OP_ADD => ShaderOp::Add {
                a_va: u64_at(8),
                b_va: u64_at(16),
                out_va: u64_at(32),
                len: u32_at(40),
            },
            OP_SOFTMAX => ShaderOp::Softmax {
                in_va: u64_at(8),
                out_va: u64_at(32),
                len: u32_at(40),
            },
            OP_COPY => ShaderOp::Copy {
                src_va: u64_at(8),
                dst_va: u64_at(32),
                len: u32_at(40),
            },
            _ => return None,
        })
    }
}

/// Shader execution failures, mapped to job fault codes by the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShaderFault {
    /// An MMU fault during fetch or data access.
    Mmu(MmuFault),
    /// Unknown opcode.
    BadInstruction,
    /// The kernel's tiling does not match this SKU's core count.
    TileMismatch {
        /// Tiling baked into the instruction.
        compiled_for: u32,
        /// Cores actually present.
        present: u32,
    },
}

impl From<MmuFault> for ShaderFault {
    fn from(m: MmuFault) -> Self {
        ShaderFault::Mmu(m)
    }
}

/// Reads `n` f32 elements at `va` through the walker.
fn read_f32s(mem: &Memory, w: &Walker, va: u64, n: usize) -> Result<Vec<f32>, MmuFault> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let pa = w.translate(mem, va + (i * 4) as u64, AccessKind::Read)?;
        let v = mem
            .read_f32(pa, crate::mem::Accessor::Gpu)
            .map_err(|fault| MmuFault::WalkError { fault })?;
        out.push(v);
    }
    Ok(out)
}

/// Writes f32 elements at `va` through the walker.
fn write_f32s(mem: &mut Memory, w: &Walker, va: u64, data: &[f32]) -> Result<(), MmuFault> {
    for (i, &v) in data.iter().enumerate() {
        let pa = w.translate(mem, va + (i * 4) as u64, AccessKind::Write)?;
        mem.write_f32(pa, v, crate::mem::Accessor::Gpu)
            .map_err(|fault| MmuFault::WalkError { fault })?;
    }
    Ok(())
}

/// Executes a shader program of `n_instrs` records at `shader_va`.
///
/// `present_cores` is the executing SKU's core count; tiled kernels
/// compiled for another count fault. Returns the total MACs executed.
pub fn execute_program(
    mem: &mut Memory,
    walker: &Walker,
    shader_va: u64,
    n_instrs: u32,
    present_cores: u32,
) -> Result<u64, ShaderFault> {
    let mut total_macs = 0u64;
    for i in 0..n_instrs {
        let va = shader_va + (i as usize * INSTR_SIZE) as u64;
        let mut rec = [0u8; INSTR_SIZE];
        for (j, byte) in rec.iter_mut().enumerate() {
            let pa = walker.translate(mem, va + j as u64, AccessKind::Execute)?;
            let mut one = [0u8];
            mem.read(pa, &mut one, crate::mem::Accessor::Gpu)
                .map_err(|fault| MmuFault::WalkError { fault })?;
            *byte = one[0];
        }
        let op = ShaderOp::decode(&rec).ok_or(ShaderFault::BadInstruction)?;
        total_macs += op.macs();
        execute_op(mem, walker, &op, present_cores)?;
    }
    Ok(total_macs)
}

fn check_tiles(tiles: u32, present: u32) -> Result<(), ShaderFault> {
    if tiles != present {
        Err(ShaderFault::TileMismatch {
            compiled_for: tiles,
            present,
        })
    } else {
        Ok(())
    }
}

fn execute_op(
    mem: &mut Memory,
    w: &Walker,
    op: &ShaderOp,
    present_cores: u32,
) -> Result<(), ShaderFault> {
    match *op {
        ShaderOp::Conv2d {
            in_va,
            w_va,
            b_va,
            out_va,
            p,
            tiles,
        } => {
            check_tiles(tiles, present_cores)?;
            let input = read_f32s(mem, w, in_va, (p.in_c * p.in_h * p.in_w) as usize)?;
            let weights = read_f32s(mem, w, w_va, (p.out_c * p.in_c * p.k * p.k) as usize)?;
            let bias = if b_va != 0 {
                read_f32s(mem, w, b_va, p.out_c as usize)?
            } else {
                vec![0.0; p.out_c as usize]
            };
            let (oh, ow) = (p.out_h() as usize, p.out_w() as usize);
            let mut out = vec![0.0f32; p.out_c as usize * oh * ow];
            for oc in 0..p.out_c as usize {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias[oc];
                        for ic in 0..p.in_c as usize {
                            for ky in 0..p.k as usize {
                                for kx in 0..p.k as usize {
                                    let iy = oy as i64 * p.stride as i64 + ky as i64 - p.pad as i64;
                                    let ix = ox as i64 * p.stride as i64 + kx as i64 - p.pad as i64;
                                    if iy < 0
                                        || ix < 0
                                        || iy >= p.in_h as i64
                                        || ix >= p.in_w as i64
                                    {
                                        continue;
                                    }
                                    let iv = input[ic * (p.in_h * p.in_w) as usize
                                        + iy as usize * p.in_w as usize
                                        + ix as usize];
                                    let wv = weights[oc * (p.in_c * p.k * p.k) as usize
                                        + ic * (p.k * p.k) as usize
                                        + ky * p.k as usize
                                        + kx];
                                    acc += iv * wv;
                                }
                            }
                        }
                        out[oc * oh * ow + oy * ow + ox] = acc;
                    }
                }
            }
            write_f32s(mem, w, out_va, &out)?;
        }
        ShaderOp::MatMul {
            a_va,
            b_va,
            bias_va,
            out_va,
            m,
            k,
            n,
            tiles,
        } => {
            check_tiles(tiles, present_cores)?;
            let a = read_f32s(mem, w, a_va, (m * k) as usize)?;
            let b = read_f32s(mem, w, b_va, (k * n) as usize)?;
            let bias = if bias_va != 0 {
                read_f32s(mem, w, bias_va, n as usize)?
            } else {
                vec![0.0; n as usize]
            };
            let mut out = vec![0.0f32; (m * n) as usize];
            for i in 0..m as usize {
                for j in 0..n as usize {
                    let mut acc = bias[j];
                    for kk in 0..k as usize {
                        acc += a[i * k as usize + kk] * b[kk * n as usize + j];
                    }
                    out[i * n as usize + j] = acc;
                }
            }
            write_f32s(mem, w, out_va, &out)?;
        }
        ShaderOp::Pool {
            in_va,
            out_va,
            kind,
            c,
            h,
            w: width,
            k,
            stride,
        } => {
            let input = read_f32s(mem, w, in_va, (c * h * width) as usize)?;
            let oh = ((h - k) / stride + 1) as usize;
            let ow = ((width - k) / stride + 1) as usize;
            let mut out = vec![0.0f32; c as usize * oh * ow];
            for ch in 0..c as usize {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut sum = 0.0f32;
                        for ky in 0..k as usize {
                            for kx in 0..k as usize {
                                let iy = oy * stride as usize + ky;
                                let ix = ox * stride as usize + kx;
                                let v = input[ch * (h * width) as usize + iy * width as usize + ix];
                                best = best.max(v);
                                sum += v;
                            }
                        }
                        out[ch * oh * ow + oy * ow + ox] = match kind {
                            PoolKind::Max => best,
                            PoolKind::Avg => sum / (k * k) as f32,
                        };
                    }
                }
            }
            write_f32s(mem, w, out_va, &out)?;
        }
        ShaderOp::Relu { in_va, out_va, len } => {
            let data = read_f32s(mem, w, in_va, len as usize)?;
            let out: Vec<f32> = data.iter().map(|&v| v.max(0.0)).collect();
            write_f32s(mem, w, out_va, &out)?;
        }
        ShaderOp::Add {
            a_va,
            b_va,
            out_va,
            len,
        } => {
            let a = read_f32s(mem, w, a_va, len as usize)?;
            let b = read_f32s(mem, w, b_va, len as usize)?;
            let out: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            write_f32s(mem, w, out_va, &out)?;
        }
        ShaderOp::Softmax { in_va, out_va, len } => {
            let data = read_f32s(mem, w, in_va, len as usize)?;
            let max = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = data.iter().map(|&v| (v - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            let out: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
            write_f32s(mem, w, out_va, &out)?;
        }
        ShaderOp::Copy {
            src_va,
            dst_va,
            len,
        } => {
            let data = read_f32s(mem, w, src_va, len as usize)?;
            write_f32s(mem, w, dst_va, &data)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::PAGE_SIZE;
    use crate::mmu::{map_page, PteFlags};

    fn all_ops() -> Vec<ShaderOp> {
        vec![
            ShaderOp::Conv2d {
                in_va: 0x1000,
                w_va: 0x2000,
                b_va: 0x3000,
                out_va: 0x4000,
                p: ConvParams {
                    in_c: 3,
                    in_h: 8,
                    in_w: 8,
                    out_c: 4,
                    k: 3,
                    stride: 1,
                    pad: 0,
                },
                tiles: 8,
            },
            ShaderOp::MatMul {
                a_va: 1,
                b_va: 2,
                bias_va: 3,
                out_va: 4,
                m: 5,
                k: 6,
                n: 7,
                tiles: 8,
            },
            ShaderOp::Pool {
                in_va: 9,
                out_va: 10,
                kind: PoolKind::Avg,
                c: 2,
                h: 4,
                w: 4,
                k: 2,
                stride: 2,
            },
            ShaderOp::Relu {
                in_va: 1,
                out_va: 2,
                len: 77,
            },
            ShaderOp::Add {
                a_va: 1,
                b_va: 2,
                out_va: 3,
                len: 5,
            },
            ShaderOp::Softmax {
                in_va: 1,
                out_va: 2,
                len: 10,
            },
            ShaderOp::Copy {
                src_va: 1,
                dst_va: 2,
                len: 9,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for op in all_ops() {
            let rec = op.encode();
            let back = ShaderOp::decode(&rec).unwrap();
            assert_eq!(back, op);
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut rec = [0u8; INSTR_SIZE];
        rec[0] = 0xFE;
        assert!(ShaderOp::decode(&rec).is_none());
    }

    /// Identity-map `npages` starting at VA/PA 0x1000 and return a walker.
    fn setup_mapped(npages: usize) -> (Memory, Walker) {
        let mut mem = Memory::new((npages + 8) * PAGE_SIZE);
        let table_region = (npages + 2) * PAGE_SIZE;
        let mut next_table = table_region as u64;
        let root = next_table;
        next_table += PAGE_SIZE as u64;
        for i in 0..npages {
            let addr = 0x1000 + (i * PAGE_SIZE) as u64;
            map_page(&mut mem, root, addr, addr, PteFlags::rwx(), 0, &mut || {
                let pa = next_table;
                next_table += PAGE_SIZE as u64;
                pa
            })
            .unwrap();
        }
        (
            mem,
            Walker {
                root_pa: root,
                quirk: 0,
            },
        )
    }

    #[test]
    fn matmul_computes_correctly() {
        let (mut mem, w) = setup_mapped(4);
        // a = [[1,2],[3,4]], b = [[5,6],[7,8]], bias = [10, 20].
        let a_va = 0x1000u64;
        let b_va = 0x1100u64;
        let bias_va = 0x1200u64;
        let out_va = 0x1300u64;
        for (i, v) in [1.0f32, 2.0, 3.0, 4.0].iter().enumerate() {
            let pa = w
                .translate(&mem, a_va + (i * 4) as u64, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, *v, crate::mem::Accessor::Gpu).unwrap();
        }
        for (i, v) in [5.0f32, 6.0, 7.0, 8.0].iter().enumerate() {
            let pa = w
                .translate(&mem, b_va + (i * 4) as u64, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, *v, crate::mem::Accessor::Gpu).unwrap();
        }
        for (i, v) in [10.0f32, 20.0].iter().enumerate() {
            let pa = w
                .translate(&mem, bias_va + (i * 4) as u64, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, *v, crate::mem::Accessor::Gpu).unwrap();
        }
        let op = ShaderOp::MatMul {
            a_va,
            b_va,
            bias_va,
            out_va,
            m: 2,
            k: 2,
            n: 2,
            tiles: 8,
        };
        execute_op(&mut mem, &w, &op, 8).unwrap();
        let expect = [29.0f32, 42.0, 53.0, 70.0]; // a*b + bias
        for (i, e) in expect.iter().enumerate() {
            let pa = w
                .translate(&mem, out_va + (i * 4) as u64, AccessKind::Read)
                .unwrap();
            assert_eq!(mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap(), *e);
        }
    }

    #[test]
    fn conv_identity_kernel() {
        let (mut mem, w) = setup_mapped(4);
        let in_va = 0x1000u64;
        let w_va = 0x1400u64;
        let out_va = 0x1800u64;
        // 1x4x4 input, 1 output channel, 1x1 identity kernel.
        for i in 0..16 {
            let pa = w.translate(&mem, in_va + i * 4, AccessKind::Write).unwrap();
            mem.write_f32(pa, i as f32, crate::mem::Accessor::Gpu)
                .unwrap();
        }
        let pa = w.translate(&mem, w_va, AccessKind::Write).unwrap();
        mem.write_f32(pa, 1.0, crate::mem::Accessor::Gpu).unwrap();
        let op = ShaderOp::Conv2d {
            in_va,
            w_va,
            b_va: 0,
            out_va,
            p: ConvParams {
                in_c: 1,
                in_h: 4,
                in_w: 4,
                out_c: 1,
                k: 1,
                stride: 1,
                pad: 0,
            },
            tiles: 4,
        };
        execute_op(&mut mem, &w, &op, 4).unwrap();
        for i in 0..16 {
            let pa = w.translate(&mem, out_va + i * 4, AccessKind::Read).unwrap();
            assert_eq!(
                mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap(),
                i as f32
            );
        }
    }

    #[test]
    fn tile_mismatch_faults() {
        let (mut mem, w) = setup_mapped(4);
        let op = ShaderOp::MatMul {
            a_va: 0x1000,
            b_va: 0x1100,
            bias_va: 0,
            out_va: 0x1200,
            m: 1,
            k: 1,
            n: 1,
            tiles: 8,
        };
        let r = execute_op(&mut mem, &w, &op, 4);
        assert_eq!(
            r,
            Err(ShaderFault::TileMismatch {
                compiled_for: 8,
                present: 4
            })
        );
    }

    #[test]
    fn pool_max_and_avg() {
        let (mut mem, w) = setup_mapped(2);
        let in_va = 0x1000u64;
        for (i, v) in [1.0f32, 2.0, 3.0, 4.0].iter().enumerate() {
            let pa = w
                .translate(&mem, in_va + (i * 4) as u64, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, *v, crate::mem::Accessor::Gpu).unwrap();
        }
        let max_op = ShaderOp::Pool {
            in_va,
            out_va: 0x1100,
            kind: PoolKind::Max,
            c: 1,
            h: 2,
            w: 2,
            k: 2,
            stride: 2,
        };
        execute_op(&mut mem, &w, &max_op, 8).unwrap();
        let pa = w.translate(&mem, 0x1100, AccessKind::Read).unwrap();
        assert_eq!(mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap(), 4.0);

        let avg_op = ShaderOp::Pool {
            in_va,
            out_va: 0x1200,
            kind: PoolKind::Avg,
            c: 1,
            h: 2,
            w: 2,
            k: 2,
            stride: 2,
        };
        execute_op(&mut mem, &w, &avg_op, 8).unwrap();
        let pa = w.translate(&mem, 0x1200, AccessKind::Read).unwrap();
        assert_eq!(mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap(), 2.5);
    }

    #[test]
    fn softmax_normalizes() {
        let (mut mem, w) = setup_mapped(2);
        for (i, v) in [1.0f32, 2.0, 3.0].iter().enumerate() {
            let pa = w
                .translate(&mem, 0x1000 + (i * 4) as u64, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, *v, crate::mem::Accessor::Gpu).unwrap();
        }
        let op = ShaderOp::Softmax {
            in_va: 0x1000,
            out_va: 0x1100,
            len: 3,
        };
        execute_op(&mut mem, &w, &op, 8).unwrap();
        let mut sum = 0.0f32;
        let mut vals = [0.0f32; 3];
        for (i, v) in vals.iter_mut().enumerate() {
            let pa = w
                .translate(&mem, 0x1100 + (i * 4) as u64, AccessKind::Read)
                .unwrap();
            *v = mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap();
            sum += *v;
        }
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(vals[2] > vals[1] && vals[1] > vals[0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let (mut mem, w) = setup_mapped(2);
        for (i, v) in [-1.0f32, 0.5, -3.0, 2.0].iter().enumerate() {
            let pa = w
                .translate(&mem, 0x1000 + (i * 4) as u64, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, *v, crate::mem::Accessor::Gpu).unwrap();
        }
        execute_op(
            &mut mem,
            &w,
            &ShaderOp::Relu {
                in_va: 0x1000,
                out_va: 0x1000,
                len: 4,
            },
            8,
        )
        .unwrap();
        let expect = [0.0f32, 0.5, 0.0, 2.0];
        for (i, e) in expect.iter().enumerate() {
            let pa = w
                .translate(&mem, 0x1000 + (i * 4) as u64, AccessKind::Read)
                .unwrap();
            assert_eq!(mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap(), *e);
        }
    }

    #[test]
    fn program_executes_from_shader_pages() {
        let (mut mem, w) = setup_mapped(8);
        // Program: copy 4 elements from 0x2000 to 0x3000.
        let shader_va = 0x1000u64;
        let rec = ShaderOp::Copy {
            src_va: 0x2000,
            dst_va: 0x3000,
            len: 4,
        }
        .encode();
        for (j, byte) in rec.iter().enumerate() {
            let pa = w
                .translate(&mem, shader_va + j as u64, AccessKind::Write)
                .unwrap();
            mem.write(pa, &[*byte], crate::mem::Accessor::Gpu).unwrap();
        }
        for i in 0..4 {
            let pa = w
                .translate(&mem, 0x2000 + i * 4, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, (i * 10) as f32, crate::mem::Accessor::Gpu)
                .unwrap();
        }
        let macs = execute_program(&mut mem, &w, shader_va, 1, 8).unwrap();
        assert_eq!(macs, 2);
        for i in 0..4 {
            let pa = w.translate(&mem, 0x3000 + i * 4, AccessKind::Read).unwrap();
            assert_eq!(
                mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap(),
                (i * 10) as f32
            );
        }
    }

    #[test]
    fn conv_macs_math() {
        let p = ConvParams {
            in_c: 3,
            in_h: 32,
            in_w: 32,
            out_c: 16,
            k: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(p.out_h(), 32);
        assert_eq!(p.out_w(), 32);
        assert_eq!(p.macs(), 16 * 32 * 32 * 3 * 3 * 3);
    }
}
