//! The shader ISA: tensor-level operations the GPU fetches and executes
//! from shared memory.
//!
//! Real Mali shaders are vendor-proprietary binaries emitted by the
//! `libmali` JIT; GR-T treats them as opaque bytes that must (a) live in
//! executable pages, (b) be generated per-SKU, and (c) actually drive the
//! compute that replay reproduces. This ISA keeps all three properties with
//! a tensor-granular instruction set: each instruction is a fixed 64-byte
//! record the GPU decodes through its MMU, parameterized (tiled) by the
//! SKU's shader-core count — executing a program compiled for a different
//! core count raises a configuration fault, which is precisely what makes
//! recordings SKU-specific (§2.4).

use crate::fusion::FusedDirective;
use crate::mem::Memory;
use crate::mmu::{AccessKind, MmuFault, Tlb, Walker};

/// Size of one encoded instruction record.
pub const INSTR_SIZE: usize = 64;

/// Convolution geometry (NCHW, square kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvParams {
    /// Input channels.
    pub in_c: u32,
    /// Input height.
    pub in_h: u32,
    /// Input width.
    pub in_w: u32,
    /// Output channels.
    pub out_c: u32,
    /// Kernel size (k×k).
    pub k: u32,
    /// Stride.
    pub stride: u32,
    /// Zero padding.
    pub pad: u32,
}

impl ConvParams {
    /// Output height.
    pub fn out_h(&self) -> u32 {
        (self.in_h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> u32 {
        (self.in_w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Multiply-accumulate count of this convolution.
    pub fn macs(&self) -> u64 {
        self.out_c as u64
            * self.out_h() as u64
            * self.out_w() as u64
            * self.in_c as u64
            * self.k as u64
            * self.k as u64
    }
}

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// One shader instruction.
///
/// `tiles` on compute ops is the workgroup tiling the JIT chose for the
/// target SKU; the hardware rejects a mismatch with a configuration fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShaderOp {
    /// 2-D convolution + bias: `out = conv(in, w) + b`.
    Conv2d {
        /// Input tensor VA.
        in_va: u64,
        /// Weight tensor VA (`[out_c][in_c][k][k]`).
        w_va: u64,
        /// Bias VA (`[out_c]`).
        b_va: u64,
        /// Output tensor VA.
        out_va: u64,
        /// Geometry.
        p: ConvParams,
        /// SKU tiling (shader-core count the kernel was compiled for).
        tiles: u32,
    },
    /// Dense layer: `out[m,n] = a[m,k] × b[k,n] + bias[n]`.
    MatMul {
        /// Left operand VA.
        a_va: u64,
        /// Right operand VA.
        b_va: u64,
        /// Bias VA (0 = no bias).
        bias_va: u64,
        /// Output VA.
        out_va: u64,
        /// Rows of `a`.
        m: u32,
        /// Inner dimension.
        k: u32,
        /// Columns of `b`.
        n: u32,
        /// SKU tiling.
        tiles: u32,
    },
    /// Spatial pooling over NCHW input.
    Pool {
        /// Input VA.
        in_va: u64,
        /// Output VA.
        out_va: u64,
        /// Flavour.
        kind: PoolKind,
        /// Channels.
        c: u32,
        /// Input height.
        h: u32,
        /// Input width.
        w: u32,
        /// Kernel size.
        k: u32,
        /// Stride.
        stride: u32,
    },
    /// Elementwise ReLU.
    Relu {
        /// Input VA.
        in_va: u64,
        /// Output VA (may equal input).
        out_va: u64,
        /// Element count.
        len: u32,
    },
    /// Elementwise addition (residual connections).
    Add {
        /// First operand VA.
        a_va: u64,
        /// Second operand VA.
        b_va: u64,
        /// Output VA.
        out_va: u64,
        /// Element count.
        len: u32,
    },
    /// Softmax over a vector.
    Softmax {
        /// Input VA.
        in_va: u64,
        /// Output VA.
        out_va: u64,
        /// Element count.
        len: u32,
    },
    /// Bulk copy of `len` f32 elements.
    Copy {
        /// Source VA.
        src_va: u64,
        /// Destination VA.
        dst_va: u64,
        /// Element count.
        len: u32,
    },
}

const OP_CONV2D: u32 = 1;
const OP_MATMUL: u32 = 2;
const OP_POOL: u32 = 3;
const OP_RELU: u32 = 4;
const OP_ADD: u32 = 5;
const OP_SOFTMAX: u32 = 6;
const OP_COPY: u32 = 7;

impl ShaderOp {
    /// Approximate MAC cost of this instruction (for the job cost model).
    pub fn macs(&self) -> u64 {
        match self {
            ShaderOp::Conv2d { p, .. } => p.macs(),
            ShaderOp::MatMul { m, k, n, .. } => *m as u64 * *k as u64 * *n as u64,
            ShaderOp::Pool { c, h, w, k, .. } => {
                *c as u64 * *h as u64 * *w as u64 * (*k as u64).pow(2) / 4
            }
            ShaderOp::Relu { len, .. } | ShaderOp::Add { len, .. } => *len as u64,
            ShaderOp::Softmax { len, .. } => *len as u64 * 4,
            ShaderOp::Copy { len, .. } => *len as u64 / 2,
        }
    }

    /// Encodes to the fixed 64-byte record format.
    pub fn encode(&self) -> [u8; INSTR_SIZE] {
        let mut b = [0u8; INSTR_SIZE];
        let put_u32 = |buf: &mut [u8; INSTR_SIZE], off: usize, v: u32| {
            buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
        };
        fn put_u64(buf: &mut [u8; INSTR_SIZE], off: usize, v: u64) {
            buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
        }
        match *self {
            ShaderOp::Conv2d {
                in_va,
                w_va,
                b_va,
                out_va,
                p,
                tiles,
            } => {
                put_u32(&mut b, 0, OP_CONV2D);
                put_u32(&mut b, 4, tiles);
                put_u64(&mut b, 8, in_va);
                put_u64(&mut b, 16, w_va);
                put_u64(&mut b, 24, b_va);
                put_u64(&mut b, 32, out_va);
                // Six param slots remain (40..64): pack stride and pad
                // into one word.
                for (i, v) in [
                    p.in_c,
                    p.in_h,
                    p.in_w,
                    p.out_c,
                    p.k,
                    p.stride | (p.pad << 16),
                ]
                .into_iter()
                .enumerate()
                {
                    put_u32(&mut b, 40 + i * 4, v);
                }
            }
            ShaderOp::MatMul {
                a_va,
                b_va,
                bias_va,
                out_va,
                m,
                k,
                n,
                tiles,
            } => {
                put_u32(&mut b, 0, OP_MATMUL);
                put_u32(&mut b, 4, tiles);
                put_u64(&mut b, 8, a_va);
                put_u64(&mut b, 16, b_va);
                put_u64(&mut b, 24, bias_va);
                put_u64(&mut b, 32, out_va);
                put_u32(&mut b, 40, m);
                put_u32(&mut b, 44, k);
                put_u32(&mut b, 48, n);
            }
            ShaderOp::Pool {
                in_va,
                out_va,
                kind,
                c,
                h,
                w,
                k,
                stride,
            } => {
                put_u32(&mut b, 0, OP_POOL);
                put_u64(&mut b, 8, in_va);
                put_u64(&mut b, 32, out_va);
                put_u32(&mut b, 40, matches!(kind, PoolKind::Avg) as u32);
                put_u32(&mut b, 44, c);
                put_u32(&mut b, 48, h);
                put_u32(&mut b, 52, w);
                put_u32(&mut b, 56, k);
                put_u32(&mut b, 60, stride);
            }
            ShaderOp::Relu { in_va, out_va, len } => {
                put_u32(&mut b, 0, OP_RELU);
                put_u64(&mut b, 8, in_va);
                put_u64(&mut b, 32, out_va);
                put_u32(&mut b, 40, len);
            }
            ShaderOp::Add {
                a_va,
                b_va,
                out_va,
                len,
            } => {
                put_u32(&mut b, 0, OP_ADD);
                put_u64(&mut b, 8, a_va);
                put_u64(&mut b, 16, b_va);
                put_u64(&mut b, 32, out_va);
                put_u32(&mut b, 40, len);
            }
            ShaderOp::Softmax { in_va, out_va, len } => {
                put_u32(&mut b, 0, OP_SOFTMAX);
                put_u64(&mut b, 8, in_va);
                put_u64(&mut b, 32, out_va);
                put_u32(&mut b, 40, len);
            }
            ShaderOp::Copy {
                src_va,
                dst_va,
                len,
            } => {
                put_u32(&mut b, 0, OP_COPY);
                put_u64(&mut b, 8, src_va);
                put_u64(&mut b, 32, dst_va);
                put_u32(&mut b, 40, len);
            }
        }
        b
    }

    /// Decodes a 64-byte record; `None` for an unknown opcode.
    pub fn decode(b: &[u8; INSTR_SIZE]) -> Option<ShaderOp> {
        let u32_at = |off: usize| u32::from_le_bytes([b[off], b[off + 1], b[off + 2], b[off + 3]]);
        let u64_at = |off: usize| {
            u64::from_le_bytes([
                b[off],
                b[off + 1],
                b[off + 2],
                b[off + 3],
                b[off + 4],
                b[off + 5],
                b[off + 6],
                b[off + 7],
            ])
        };
        Some(match u32_at(0) {
            OP_CONV2D => ShaderOp::Conv2d {
                tiles: u32_at(4),
                in_va: u64_at(8),
                w_va: u64_at(16),
                b_va: u64_at(24),
                out_va: u64_at(32),
                p: ConvParams {
                    in_c: u32_at(40),
                    in_h: u32_at(44),
                    in_w: u32_at(48),
                    out_c: u32_at(52),
                    k: u32_at(56),
                    stride: u32_at(60) & 0xFFFF,
                    pad: u32_at(60) >> 16,
                },
            },
            OP_MATMUL => ShaderOp::MatMul {
                tiles: u32_at(4),
                a_va: u64_at(8),
                b_va: u64_at(16),
                bias_va: u64_at(24),
                out_va: u64_at(32),
                m: u32_at(40),
                k: u32_at(44),
                n: u32_at(48),
            },
            OP_POOL => ShaderOp::Pool {
                in_va: u64_at(8),
                out_va: u64_at(32),
                kind: if u32_at(40) == 1 {
                    PoolKind::Avg
                } else {
                    PoolKind::Max
                },
                c: u32_at(44),
                h: u32_at(48),
                w: u32_at(52),
                k: u32_at(56),
                stride: u32_at(60),
            },
            OP_RELU => ShaderOp::Relu {
                in_va: u64_at(8),
                out_va: u64_at(32),
                len: u32_at(40),
            },
            OP_ADD => ShaderOp::Add {
                a_va: u64_at(8),
                b_va: u64_at(16),
                out_va: u64_at(32),
                len: u32_at(40),
            },
            OP_SOFTMAX => ShaderOp::Softmax {
                in_va: u64_at(8),
                out_va: u64_at(32),
                len: u32_at(40),
            },
            OP_COPY => ShaderOp::Copy {
                src_va: u64_at(8),
                dst_va: u64_at(32),
                len: u32_at(40),
            },
            _ => return None,
        })
    }
}

/// Shader execution failures, mapped to job fault codes by the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShaderFault {
    /// An MMU fault during fetch or data access.
    Mmu(MmuFault),
    /// Unknown opcode.
    BadInstruction,
    /// The kernel's tiling does not match this SKU's core count.
    TileMismatch {
        /// Tiling baked into the instruction.
        compiled_for: u32,
        /// Cores actually present.
        present: u32,
    },
    /// A [`FusedDirective`] disagreed with the instruction it was attached
    /// to (wrong kind, output VA, or length). Fusion plans are derived from
    /// the same recording the program was lifted from, so a mismatch means
    /// the plan is stale or corrupt — fault rather than guess.
    FusionMismatch,
}

impl From<MmuFault> for ShaderFault {
    fn from(m: MmuFault) -> Self {
        ShaderFault::Mmu(m)
    }
}

/// Number of [`OpKind`] variants (array size for per-kind stats).
pub const OP_KIND_COUNT: usize = 14;

/// The kind of a shader instruction, used to key per-op-kind execution
/// statistics in replay profiles and benches.
///
/// The `Fused*` variants never come from a decoded instruction — they are
/// assigned by a [`FusedDirective`] so fused
/// superinstructions report under their own key (`fused:conv2d+add+relu`
/// and friends) instead of inflating the head kind's stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// 2-D convolution.
    Conv2d,
    /// Dense matmul.
    MatMul,
    /// Spatial pooling.
    Pool,
    /// Elementwise ReLU.
    Relu,
    /// Elementwise add.
    Add,
    /// Softmax.
    Softmax,
    /// Bulk copy.
    Copy,
    /// Fused conv2d with in-place relu tail.
    FusedConvRelu,
    /// Fused conv2d feeding a residual add.
    FusedConvAdd,
    /// Fused conv2d → add → relu chain.
    FusedConvAddRelu,
    /// Fused matmul with in-place relu tail.
    FusedMatMulRelu,
    /// Fused matmul feeding an add.
    FusedMatMulAdd,
    /// Fused matmul → add → relu chain.
    FusedMatMulAddRelu,
    /// Fused residual add with in-place relu tail.
    FusedAddRelu,
}

impl OpKind {
    /// All kinds, in stable display order (indexes match [`OpKind::index`]).
    pub const ALL: [OpKind; OP_KIND_COUNT] = [
        OpKind::Conv2d,
        OpKind::MatMul,
        OpKind::Pool,
        OpKind::Relu,
        OpKind::Add,
        OpKind::Softmax,
        OpKind::Copy,
        OpKind::FusedConvRelu,
        OpKind::FusedConvAdd,
        OpKind::FusedConvAddRelu,
        OpKind::FusedMatMulRelu,
        OpKind::FusedMatMulAdd,
        OpKind::FusedMatMulAddRelu,
        OpKind::FusedAddRelu,
    ];

    /// The kind of `op`.
    pub fn of(op: &ShaderOp) -> OpKind {
        match op {
            ShaderOp::Conv2d { .. } => OpKind::Conv2d,
            ShaderOp::MatMul { .. } => OpKind::MatMul,
            ShaderOp::Pool { .. } => OpKind::Pool,
            ShaderOp::Relu { .. } => OpKind::Relu,
            ShaderOp::Add { .. } => OpKind::Add,
            ShaderOp::Softmax { .. } => OpKind::Softmax,
            ShaderOp::Copy { .. } => OpKind::Copy,
        }
    }

    /// The fused kind for a head kind + tail combination; `None` when the
    /// combination is not a recognized superinstruction.
    pub fn fused(head: OpKind, tail_add: bool, tail_relu: bool) -> Option<OpKind> {
        Some(match (head, tail_add, tail_relu) {
            (OpKind::Conv2d, false, true) => OpKind::FusedConvRelu,
            (OpKind::Conv2d, true, false) => OpKind::FusedConvAdd,
            (OpKind::Conv2d, true, true) => OpKind::FusedConvAddRelu,
            (OpKind::MatMul, false, true) => OpKind::FusedMatMulRelu,
            (OpKind::MatMul, true, false) => OpKind::FusedMatMulAdd,
            (OpKind::MatMul, true, true) => OpKind::FusedMatMulAddRelu,
            (OpKind::Add, false, true) => OpKind::FusedAddRelu,
            _ => return None,
        })
    }

    /// Whether this kind names a fused superinstruction.
    pub fn is_fused(self) -> bool {
        self.index() >= 7
    }

    /// Stable index into per-kind stat arrays.
    pub fn index(self) -> usize {
        match self {
            OpKind::Conv2d => 0,
            OpKind::MatMul => 1,
            OpKind::Pool => 2,
            OpKind::Relu => 3,
            OpKind::Add => 4,
            OpKind::Softmax => 5,
            OpKind::Copy => 6,
            OpKind::FusedConvRelu => 7,
            OpKind::FusedConvAdd => 8,
            OpKind::FusedConvAddRelu => 9,
            OpKind::FusedMatMulRelu => 10,
            OpKind::FusedMatMulAdd => 11,
            OpKind::FusedMatMulAddRelu => 12,
            OpKind::FusedAddRelu => 13,
        }
    }

    /// Display name (used in bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Conv2d => "conv2d",
            OpKind::MatMul => "matmul",
            OpKind::Pool => "pool",
            OpKind::Relu => "relu",
            OpKind::Add => "add",
            OpKind::Softmax => "softmax",
            OpKind::Copy => "copy",
            OpKind::FusedConvRelu => "fused:conv2d+relu",
            OpKind::FusedConvAdd => "fused:conv2d+add",
            OpKind::FusedConvAddRelu => "fused:conv2d+add+relu",
            OpKind::FusedMatMulRelu => "fused:matmul+relu",
            OpKind::FusedMatMulAdd => "fused:matmul+add",
            OpKind::FusedMatMulAddRelu => "fused:matmul+add+relu",
            OpKind::FusedAddRelu => "fused:add+relu",
        }
    }
}

/// Per-op-kind execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpKindStats {
    /// Instructions of this kind executed.
    pub events: u64,
    /// MACs attributed to this kind.
    pub macs: u64,
    /// Modeled execution nanoseconds attributed to this kind (filled by
    /// the GPU's job cost model, zero at the shader layer).
    pub ns: u64,
}

/// What one `execute_program` call did, as seen by the memory system:
/// feeds the GPU's job duration model and the replay profile counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Total MACs executed.
    pub macs: u64,
    /// Scalar accesses the walk-per-element engine would have made
    /// (elements moved + instruction bytes fetched). The denominator of
    /// the stall model: `tlb misses / element_accesses` is the fraction
    /// of accesses that still paid for a full table walk.
    pub element_accesses: u64,
    /// Contiguous page runs the bulk path translated once and copied.
    pub bulk_runs: u64,
    /// The subset of [`element_accesses`](Self::element_accesses) made by
    /// `Copy` instructions (their fetch plus the elements moved). A DMA
    /// engine pays per *run* for these, not per element, so the cost model
    /// recharges them at [`copy_runs`](Self::copy_runs) granularity.
    pub copy_elems: u64,
    /// The subset of [`bulk_runs`](Self::bulk_runs) made by `Copy`
    /// instructions: what a bulk copy actually costs.
    pub copy_runs: u64,
    /// The subset of [`element_accesses`](Self::element_accesses) that is
    /// *batch-resident*: instruction-record fetches and read-only operand
    /// reads (conv weights/bias, matmul B/bias) whose bytes are identical
    /// for every input in a batched replay. A batch executor fetches these
    /// once and streams them to every lane, so marginal batch lanes are
    /// charged `element_accesses - resident_elems` (copy-op fetches are
    /// excluded — copies are already recharged at run granularity).
    pub resident_elems: u64,
    /// The subset of [`copy_runs`](Self::copy_runs) where source and
    /// destination resolved to the *same* physical run: nothing moved, the
    /// copy aliased in place. The cost model refunds these runs.
    pub alias_runs: u64,
    /// Elements covered by aliased (zero-copy) runs.
    pub alias_elems: u64,
    /// Per-kind breakdown (indexed by [`OpKind::index`]).
    pub per_kind: [OpKindStats; OP_KIND_COUNT],
}

impl ExecReport {
    /// Accumulates `other` into `self` (per-kind arrays add elementwise).
    pub fn add(&mut self, other: &ExecReport) {
        self.macs += other.macs;
        self.element_accesses += other.element_accesses;
        self.bulk_runs += other.bulk_runs;
        self.copy_elems += other.copy_elems;
        self.copy_runs += other.copy_runs;
        self.resident_elems += other.resident_elems;
        self.alias_runs += other.alias_runs;
        self.alias_elems += other.alias_elems;
        for (a, b) in self.per_kind.iter_mut().zip(other.per_kind.iter()) {
            a.events += b.events;
            a.macs += b.macs;
            a.ns += b.ns;
        }
    }
}

/// Reusable execution buffers: one set per GPU, so per-op `Vec` churn is
/// gone from the hot replay loop. Buffers only ever grow.
#[derive(Debug, Clone, Default)]
pub struct ExecScratch {
    /// First input operand (conv input / matmul A / elementwise A).
    a: Vec<f32>,
    /// Second input operand (conv weights / matmul B / elementwise B).
    b: Vec<f32>,
    /// Bias operand.
    bias: Vec<f32>,
    /// Kernel output, staged before the bulk write-back. Fused tails
    /// operate on this buffer in place, which is exactly how fusion skips
    /// materializing the intermediate tensor in the carveout.
    out: Vec<f32>,
    /// The non-intermediate operand of a fused `add` tail.
    tail: Vec<f32>,
}

/// Reads `n` f32 elements at `va` through the TLB'd page-run path into
/// `out` (cleared and resized). Falls back to element-at-a-time for
/// non-4-byte-aligned `va` (never produced by the JIT, but legal).
fn read_f32s_bulk(
    mem: &Memory,
    w: &Walker,
    tlb: &mut Tlb,
    rep: &mut ExecReport,
    va: u64,
    n: usize,
    out: &mut Vec<f32>,
) -> Result<(), MmuFault> {
    out.clear();
    out.resize(n, 0.0);
    rep.element_accesses += n as u64;
    if n == 0 {
        return Ok(());
    }
    if !va.is_multiple_of(4) {
        for (i, v) in out.iter_mut().enumerate() {
            let pa = w.translate_cached(mem, tlb, va + (i * 4) as u64, AccessKind::Read)?;
            *v = mem
                .read_f32(pa, crate::mem::Accessor::Gpu)
                .map_err(|fault| MmuFault::WalkError { fault })?;
        }
        return Ok(());
    }
    let mut done = 0usize;
    while done < n {
        let want = (n - done) * 4;
        let (pa, run) =
            w.translate_run(mem, tlb, va + (done * 4) as u64, want, AccessKind::Read)?;
        let elems = run / 4;
        mem.read_bulk(pa, &mut out[done..done + elems], crate::mem::Accessor::Gpu)
            .map_err(|fault| MmuFault::WalkError { fault })?;
        rep.bulk_runs += 1;
        done += elems;
    }
    Ok(())
}

/// Writes `data` as f32 elements at `va` through the TLB'd page-run path.
/// Every physical run written is reported to the TLB so a store that lands
/// on a walked table page flushes stale translations.
fn write_f32s_bulk(
    mem: &mut Memory,
    w: &Walker,
    tlb: &mut Tlb,
    rep: &mut ExecReport,
    va: u64,
    data: &[f32],
) -> Result<(), MmuFault> {
    rep.element_accesses += data.len() as u64;
    if data.is_empty() {
        return Ok(());
    }
    if !va.is_multiple_of(4) {
        for (i, &v) in data.iter().enumerate() {
            let pa = w.translate_cached(mem, tlb, va + (i * 4) as u64, AccessKind::Write)?;
            mem.write_f32(pa, v, crate::mem::Accessor::Gpu)
                .map_err(|fault| MmuFault::WalkError { fault })?;
            tlb.note_store(pa, 4);
        }
        return Ok(());
    }
    let mut done = 0usize;
    while done < data.len() {
        let want = (data.len() - done) * 4;
        let (pa, run) =
            w.translate_run(mem, tlb, va + (done * 4) as u64, want, AccessKind::Write)?;
        let elems = run / 4;
        mem.write_bulk(pa, &data[done..done + elems], crate::mem::Accessor::Gpu)
            .map_err(|fault| MmuFault::WalkError { fault })?;
        tlb.note_store(pa, run);
        rep.bulk_runs += 1;
        done += elems;
    }
    Ok(())
}

/// Copies `n` f32 elements from `src_va` to `dst_va` page-run by page-run
/// without staging through scratch — source and destination runs are
/// translated in lockstep and each overlap copied as one `memmove`
/// ([`Memory::copy_within`]). Copy dominates warm replay (§7.4: ~31 ms of
/// ResNet12's 67 ms), so skipping the f32 decode/encode round-trip and the
/// scratch fill matters.
///
/// Accounting matches the staged read+write path exactly: `2n` element
/// accesses (the timing model's input) and one TLB-visible store per
/// destination run. Misaligned or VA-overlapping copies (never produced by
/// the JIT, but legal) fall back to the staged path, which doubles as the
/// bit-exactness oracle for this one.
fn copy_f32s_bulk(
    mem: &mut Memory,
    w: &Walker,
    tlb: &mut Tlb,
    rep: &mut ExecReport,
    src_va: u64,
    dst_va: u64,
    n: usize,
) -> Result<(), MmuFault> {
    rep.element_accesses += 2 * n as u64;
    if n == 0 {
        return Ok(());
    }
    let mut done = 0usize;
    while done < n {
        let want = (n - done) * 4;
        let (src_pa, src_run) =
            w.translate_run(mem, tlb, src_va + (done * 4) as u64, want, AccessKind::Read)?;
        let (dst_pa, dst_run) = w.translate_run(
            mem,
            tlb,
            dst_va + (done * 4) as u64,
            src_run,
            AccessKind::Write,
        )?;
        let run = src_run.min(dst_run);
        if src_pa == dst_pa {
            // Congruent alias: both VAs resolve to the same physical run,
            // so the copy is already done — nothing moves, no bytes change
            // (and thus no TLB-visible store). The run pair is recorded in
            // `alias_runs` so the cost model can refund it.
            rep.alias_runs += 2;
            rep.alias_elems += (run / 4) as u64;
        } else {
            mem.copy_within(src_pa, dst_pa, run, crate::mem::Accessor::Gpu)
                .map_err(|fault| MmuFault::WalkError { fault })?;
            tlb.note_store(dst_pa, run);
        }
        rep.bulk_runs += 2;
        done += run / 4;
    }
    Ok(())
}

/// Fetches one 64-byte instruction record through the bulk path.
///
/// Fetching per record (not the whole program up front) preserves the old
/// engine's visibility semantics: an op that overwrites a later record is
/// observed, exactly as with the byte-at-a-time fetch.
fn fetch_record(
    mem: &Memory,
    w: &Walker,
    tlb: &mut Tlb,
    rep: &mut ExecReport,
    va: u64,
) -> Result<[u8; INSTR_SIZE], ShaderFault> {
    let mut rec = [0u8; INSTR_SIZE];
    rep.element_accesses += INSTR_SIZE as u64;
    let mut done = 0usize;
    while done < INSTR_SIZE {
        let (pa, run) = w.translate_run(
            mem,
            tlb,
            va + done as u64,
            INSTR_SIZE - done,
            AccessKind::Execute,
        )?;
        mem.read(pa, &mut rec[done..done + run], crate::mem::Accessor::Gpu)
            .map_err(|fault| MmuFault::WalkError { fault })?;
        rep.bulk_runs += 1;
        done += run;
    }
    Ok(rec)
}

/// Executes a shader program of `n_instrs` records at `shader_va`.
///
/// `present_cores` is the executing SKU's core count; tiled kernels
/// compiled for another count fault. Translations go through `tlb` (the
/// GPU flushes it at job boundaries); tensors are staged in `scratch`.
/// Returns the execution report (MACs, access counters, per-kind stats).
///
/// When `fused` carries a directive, the program must be the single head
/// instruction of a fused chain: its tails are applied to the output while
/// it sits in scratch (`execute_fused`), and any disagreement between
/// directive and instruction faults with [`ShaderFault::FusionMismatch`].
#[allow(clippy::too_many_arguments)]
pub fn execute_program(
    mem: &mut Memory,
    walker: &Walker,
    tlb: &mut Tlb,
    scratch: &mut ExecScratch,
    shader_va: u64,
    n_instrs: u32,
    present_cores: u32,
    fused: Option<&FusedDirective>,
) -> Result<ExecReport, ShaderFault> {
    let mut rep = ExecReport::default();
    if let Some(d) = fused {
        if n_instrs != 1 {
            return Err(ShaderFault::FusionMismatch);
        }
        let rec = fetch_record(mem, walker, tlb, &mut rep, shader_va)?;
        let op = ShaderOp::decode(&rec).ok_or(ShaderFault::BadInstruction)?;
        rep.resident_elems += INSTR_SIZE as u64;
        // The superinstruction's MACs are the head's plus each absorbed
        // tail's (an `Add` or `Relu` of the head's output length each
        // count `len`, same as the standalone instructions would).
        let macs =
            op.macs() + d.tail_add.map_or(0, |t| t.len) + if d.tail_relu { d.head_len } else { 0 };
        rep.macs += macs;
        let slot = &mut rep.per_kind[d.kind.index()];
        slot.events += 1;
        slot.macs += macs;
        execute_fused(mem, walker, tlb, scratch, &op, d, present_cores, &mut rep)?;
        return Ok(rep);
    }
    for i in 0..n_instrs {
        let va = shader_va + (i as usize * INSTR_SIZE) as u64;
        let elems_before = rep.element_accesses;
        let runs_before = rep.bulk_runs;
        let rec = fetch_record(mem, walker, tlb, &mut rep, va)?;
        let op = ShaderOp::decode(&rec).ok_or(ShaderFault::BadInstruction)?;
        // Instruction records are input-independent, so a batch executor
        // fetches them once per batch. Copy ops are excluded: their whole
        // access footprint (fetch included) is already recharged at run
        // granularity via `copy_elems`/`copy_runs`.
        if !matches!(op, ShaderOp::Copy { .. }) {
            rep.resident_elems += INSTR_SIZE as u64;
        }
        let macs = op.macs();
        rep.macs += macs;
        let slot = &mut rep.per_kind[OpKind::of(&op).index()];
        slot.events += 1;
        slot.macs += macs;
        execute_op(mem, walker, tlb, scratch, &op, present_cores, &mut rep)?;
        if matches!(op, ShaderOp::Copy { .. }) {
            rep.copy_elems += rep.element_accesses - elems_before;
            rep.copy_runs += rep.bulk_runs - runs_before;
        }
    }
    Ok(rep)
}

fn check_tiles(tiles: u32, present: u32) -> Result<(), ShaderFault> {
    if tiles != present {
        Err(ShaderFault::TileMismatch {
            compiled_for: tiles,
            present,
        })
    } else {
        Ok(())
    }
}

/// For one output axis, the `[lo, hi)` range of output coordinates whose
/// full k-window lies inside the input (no clamping needed) — the
/// interior of the interior/border split.
fn interior_range(
    out_dim: usize,
    k: usize,
    stride: usize,
    pad: usize,
    in_dim: usize,
) -> (usize, usize) {
    // Smallest o with o*stride - pad >= 0.
    let lo = pad.div_ceil(stride);
    // Largest o with o*stride - pad + k <= in_dim, plus one.
    let hi = if in_dim + pad >= k {
        (in_dim + pad - k) / stride + 1
    } else {
        0
    };
    let lo = lo.min(out_dim);
    (lo, hi.clamp(lo, out_dim))
}

/// Clamped kernel-coordinate range for output coordinate `o`: exactly the
/// iterations the scalar engine's bounds check would not `continue` past.
fn kernel_range(o: usize, k: usize, stride: usize, pad: usize, in_dim: usize) -> (usize, usize) {
    let base = o as i64 * stride as i64 - pad as i64;
    let lo = (-base).clamp(0, k as i64) as usize;
    let hi = (in_dim as i64 - base).clamp(0, k as i64) as usize;
    (lo, hi.max(lo))
}

/// Blocked conv kernel with hoisted bounds checks.
///
/// Bit-identical to the scalar reference: per output element the
/// accumulator starts at the bias and adds contributions in ic → ky → kx
/// order; the hoisted `kernel_range` skips exactly the out-of-bounds
/// terms the scalar loop `continue`d past (which contribute nothing), so
/// the FP addition sequence is unchanged.
fn conv2d_blocked(
    input: &[f32],
    weights: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    p: &ConvParams,
) {
    let (ic_n, ih, iw) = (p.in_c as usize, p.in_h as usize, p.in_w as usize);
    let (oc_n, k, s, pad) = (
        p.out_c as usize,
        p.k as usize,
        p.stride as usize,
        p.pad as usize,
    );
    let (oh, ow) = (p.out_h() as usize, p.out_w() as usize);
    let (ox_lo, ox_hi) = interior_range(ow, k, s, pad, iw);
    for oc in 0..oc_n {
        let w_oc = &weights[oc * ic_n * k * k..(oc + 1) * ic_n * k * k];
        let b0 = bias.map_or(0.0, |b| b[oc]);
        let out_oc = &mut out[oc * oh * ow..(oc + 1) * oh * ow];
        for oy in 0..oh {
            let (ky_lo, ky_hi) = kernel_range(oy, k, s, pad, ih);
            let iy_base = oy as i64 * s as i64 - pad as i64;
            let row = &mut out_oc[oy * ow..(oy + 1) * ow];
            let mut px = |ox: usize, kx_lo: usize, kx_hi: usize| {
                let ix_base = (ox * s) as i64 - pad as i64;
                let mut acc = b0;
                for ic in 0..ic_n {
                    let in_ch = &input[ic * ih * iw..(ic + 1) * ih * iw];
                    let w_ic = &w_oc[ic * k * k..(ic + 1) * k * k];
                    for ky in ky_lo..ky_hi {
                        let iy = (iy_base + ky as i64) as usize;
                        let in_row = &in_ch[iy * iw..(iy + 1) * iw];
                        let w_row = &w_ic[ky * k..(ky + 1) * k];
                        for kx in kx_lo..kx_hi {
                            acc += in_row[(ix_base + kx as i64) as usize] * w_row[kx];
                        }
                    }
                }
                row[ox] = acc;
            };
            // Left border: clamped kx ranges, computed per pixel.
            for ox in 0..ox_lo {
                let (kx_lo, kx_hi) = kernel_range(ox, k, s, pad, iw);
                px(ox, kx_lo, kx_hi);
            }
            // Interior: the full kx window is in bounds, no per-pixel work.
            for ox in ox_lo..ox_hi {
                px(ox, 0, k);
            }
            // Right border.
            for ox in ox_hi..ow {
                let (kx_lo, kx_hi) = kernel_range(ox, k, s, pad, iw);
                px(ox, kx_lo, kx_hi);
            }
        }
    }
}

/// Cache-blocked matmul (i-k-j loop order with k blocking).
///
/// Bit-identical to the scalar reference: each `out[i][j]` starts at the
/// bias and accumulates `a[i][kk] * b[kk][j]` in ascending `kk`, the same
/// FP addition sequence as the j-inner scalar loop — only the traversal
/// is reordered so `b` rows stream through cache.
fn matmul_blocked(
    a: &[f32],
    b: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    const KB: usize = 64;
    for i in 0..m {
        let row = &mut out[i * n..(i + 1) * n];
        match bias {
            Some(bias) => row.copy_from_slice(&bias[..n]),
            None => row.fill(0.0),
        }
    }
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KB).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for kk in kb..kend {
                let aik = arow[kk];
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aik * bv;
                }
            }
        }
        kb = kend;
    }
}

/// Runs the kernel of a fusable head op (conv2d / matmul / elementwise
/// add), staging its result in `scratch.out` *without* writing it back.
/// Returns the op's output VA. Both the standalone path and the fused path
/// go through this function, which is what makes fused results bitwise
/// identical: the staged f32 values are the same either way, only where
/// they are written differs.
fn stage_head_kernel(
    mem: &mut Memory,
    w: &Walker,
    tlb: &mut Tlb,
    scratch: &mut ExecScratch,
    op: &ShaderOp,
    present_cores: u32,
    rep: &mut ExecReport,
) -> Result<u64, ShaderFault> {
    match *op {
        ShaderOp::Conv2d {
            in_va,
            w_va,
            b_va,
            out_va,
            p,
            tiles,
        } => {
            check_tiles(tiles, present_cores)?;
            read_f32s_bulk(
                mem,
                w,
                tlb,
                rep,
                in_va,
                (p.in_c * p.in_h * p.in_w) as usize,
                &mut scratch.a,
            )?;
            // Weights and bias are read-only and identical for every lane
            // of a batched replay: resident across the batch loop.
            let w_elems = (p.out_c * p.in_c * p.k * p.k) as usize;
            read_f32s_bulk(mem, w, tlb, rep, w_va, w_elems, &mut scratch.b)?;
            rep.resident_elems += w_elems as u64;
            // No allocation when the op carries no bias: the kernel seeds
            // the accumulator with 0.0 directly.
            let bias = if b_va != 0 {
                read_f32s_bulk(mem, w, tlb, rep, b_va, p.out_c as usize, &mut scratch.bias)?;
                rep.resident_elems += p.out_c as u64;
                Some(scratch.bias.as_slice())
            } else {
                None
            };
            let (oh, ow) = (p.out_h() as usize, p.out_w() as usize);
            scratch.out.clear();
            scratch.out.resize(p.out_c as usize * oh * ow, 0.0);
            conv2d_blocked(&scratch.a, &scratch.b, bias, &mut scratch.out, &p);
            Ok(out_va)
        }
        ShaderOp::MatMul {
            a_va,
            b_va,
            bias_va,
            out_va,
            m,
            k,
            n,
            tiles,
        } => {
            check_tiles(tiles, present_cores)?;
            read_f32s_bulk(mem, w, tlb, rep, a_va, (m * k) as usize, &mut scratch.a)?;
            // The B matrix (model parameters) and bias are batch-resident,
            // like conv weights.
            read_f32s_bulk(mem, w, tlb, rep, b_va, (k * n) as usize, &mut scratch.b)?;
            rep.resident_elems += (k * n) as u64;
            let bias = if bias_va != 0 {
                read_f32s_bulk(mem, w, tlb, rep, bias_va, n as usize, &mut scratch.bias)?;
                rep.resident_elems += n as u64;
                Some(scratch.bias.as_slice())
            } else {
                None
            };
            scratch.out.clear();
            scratch.out.resize((m * n) as usize, 0.0);
            matmul_blocked(
                &scratch.a,
                &scratch.b,
                bias,
                &mut scratch.out,
                m as usize,
                k as usize,
                n as usize,
            );
            Ok(out_va)
        }
        ShaderOp::Add {
            a_va,
            b_va,
            out_va,
            len,
        } => {
            read_f32s_bulk(mem, w, tlb, rep, a_va, len as usize, &mut scratch.a)?;
            read_f32s_bulk(mem, w, tlb, rep, b_va, len as usize, &mut scratch.b)?;
            scratch.out.clear();
            scratch
                .out
                .extend(scratch.a.iter().zip(&scratch.b).map(|(x, y)| x + y));
            Ok(out_va)
        }
        // Only reachable through a corrupt fusion plan: non-fusable ops
        // never take this path from `execute_op`.
        _ => Err(ShaderFault::FusionMismatch),
    }
}

/// Executes the head instruction of a fused chain and applies its tails
/// while the result sits in `scratch.out` (DESIGN.md §15).
///
/// FP order matches the sequential kernels exactly: the head kernel
/// finishes every output element (bias included) before any tail touches
/// it, the fused `add` preserves the recorded operand order, and `relu`
/// is `v.max(0.0)` elementwise — so the staged bits equal what a
/// standalone `Add`/`Relu` would have read back from the carveout.
#[allow(clippy::too_many_arguments)]
fn execute_fused(
    mem: &mut Memory,
    w: &Walker,
    tlb: &mut Tlb,
    scratch: &mut ExecScratch,
    op: &ShaderOp,
    d: &FusedDirective,
    present_cores: u32,
    rep: &mut ExecReport,
) -> Result<(), ShaderFault> {
    if OpKind::of(op) != d.head {
        return Err(ShaderFault::FusionMismatch);
    }
    let out_va = stage_head_kernel(mem, w, tlb, scratch, op, present_cores, rep)?;
    if out_va != d.head_out_va || scratch.out.len() as u64 != d.head_len {
        return Err(ShaderFault::FusionMismatch);
    }
    if let Some(t) = &d.tail_add {
        if t.len != d.head_len {
            return Err(ShaderFault::FusionMismatch);
        }
        read_f32s_bulk(
            mem,
            w,
            tlb,
            rep,
            t.other_va,
            t.len as usize,
            &mut scratch.tail,
        )?;
        if t.interm_first {
            for (o, &y) in scratch.out.iter_mut().zip(&scratch.tail) {
                *o += y;
            }
        } else {
            // Operand order must match the unfused Add kernel's `a + b`
            // (NaN payload selection is order-sensitive), so no `+=` here.
            #[allow(clippy::assign_op_pattern)]
            for (o, &x) in scratch.out.iter_mut().zip(&scratch.tail) {
                *o = x + *o;
            }
        }
    }
    if d.tail_relu {
        for o in &mut scratch.out {
            *o = o.max(0.0);
        }
    }
    write_f32s_bulk(mem, w, tlb, rep, d.final_out_va(), &scratch.out)?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn execute_op(
    mem: &mut Memory,
    w: &Walker,
    tlb: &mut Tlb,
    scratch: &mut ExecScratch,
    op: &ShaderOp,
    present_cores: u32,
    rep: &mut ExecReport,
) -> Result<(), ShaderFault> {
    match *op {
        ShaderOp::Conv2d { .. } | ShaderOp::MatMul { .. } | ShaderOp::Add { .. } => {
            let out_va = stage_head_kernel(mem, w, tlb, scratch, op, present_cores, rep)?;
            write_f32s_bulk(mem, w, tlb, rep, out_va, &scratch.out)?;
        }
        ShaderOp::Pool {
            in_va,
            out_va,
            kind,
            c,
            h,
            w: width,
            k,
            stride,
        } => {
            read_f32s_bulk(
                mem,
                w,
                tlb,
                rep,
                in_va,
                (c * h * width) as usize,
                &mut scratch.a,
            )?;
            let input = &scratch.a;
            let oh = ((h - k) / stride + 1) as usize;
            let ow = ((width - k) / stride + 1) as usize;
            let (hw, wd, ks, ss) = (
                (h * width) as usize,
                width as usize,
                k as usize,
                stride as usize,
            );
            scratch.out.clear();
            scratch.out.resize(c as usize * oh * ow, 0.0);
            // One loop nest per flavour: max pooling no longer pays for a
            // running sum it discards (and vice versa). The per-window
            // fold order is unchanged, so results stay bit-identical.
            match kind {
                PoolKind::Max => {
                    for ch in 0..c as usize {
                        let in_ch = &input[ch * hw..(ch + 1) * hw];
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut best = f32::NEG_INFINITY;
                                for ky in 0..ks {
                                    let row = &in_ch[(oy * ss + ky) * wd + ox * ss..];
                                    for &v in &row[..ks] {
                                        best = best.max(v);
                                    }
                                }
                                scratch.out[ch * oh * ow + oy * ow + ox] = best;
                            }
                        }
                    }
                }
                PoolKind::Avg => {
                    let denom = (k * k) as f32;
                    for ch in 0..c as usize {
                        let in_ch = &input[ch * hw..(ch + 1) * hw];
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut sum = 0.0f32;
                                for ky in 0..ks {
                                    let row = &in_ch[(oy * ss + ky) * wd + ox * ss..];
                                    for &v in &row[..ks] {
                                        sum += v;
                                    }
                                }
                                scratch.out[ch * oh * ow + oy * ow + ox] = sum / denom;
                            }
                        }
                    }
                }
            }
            write_f32s_bulk(mem, w, tlb, rep, out_va, &scratch.out)?;
        }
        ShaderOp::Relu { in_va, out_va, len } => {
            read_f32s_bulk(mem, w, tlb, rep, in_va, len as usize, &mut scratch.a)?;
            scratch.out.clear();
            scratch.out.extend(scratch.a.iter().map(|&v| v.max(0.0)));
            write_f32s_bulk(mem, w, tlb, rep, out_va, &scratch.out)?;
        }
        ShaderOp::Softmax { in_va, out_va, len } => {
            read_f32s_bulk(mem, w, tlb, rep, in_va, len as usize, &mut scratch.a)?;
            let max = scratch.a.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            scratch.out.clear();
            scratch
                .out
                .extend(scratch.a.iter().map(|&v| (v - max).exp()));
            let sum: f32 = scratch.out.iter().sum();
            for e in &mut scratch.out {
                *e /= sum;
            }
            write_f32s_bulk(mem, w, tlb, rep, out_va, &scratch.out)?;
        }
        ShaderOp::Copy {
            src_va,
            dst_va,
            len,
        } => {
            let bytes = len as u64 * 4;
            let aligned = src_va.is_multiple_of(4) && dst_va.is_multiple_of(4);
            let overlaps = src_va < dst_va + bytes && dst_va < src_va + bytes;
            // Identity copies (src == dst) overlap *fully*, which is the
            // one overlap shape the direct path handles exactly: every run
            // aliases in place and nothing moves.
            if aligned && (src_va == dst_va || !overlaps) {
                copy_f32s_bulk(mem, w, tlb, rep, src_va, dst_va, len as usize)?;
            } else {
                // Staged oracle path: read everything, then write — the
                // only order that is well-defined for overlapping ranges.
                read_f32s_bulk(mem, w, tlb, rep, src_va, len as usize, &mut scratch.a)?;
                write_f32s_bulk(mem, w, tlb, rep, dst_va, &scratch.a)?;
            }
        }
    }
    Ok(())
}

/// The original unblocked element-at-a-time kernels, kept verbatim as the
/// bit-exactness oracle for the fast path: property tests pin every fast
/// kernel to these, bit for bit, across the zoo networks and randomized
/// geometries.
pub mod reference {
    use super::{ConvParams, PoolKind};

    /// Scalar 2-D convolution + bias (the pre-fast-path loop, verbatim).
    pub fn conv2d(input: &[f32], weights: &[f32], bias: &[f32], p: &ConvParams) -> Vec<f32> {
        let (oh, ow) = (p.out_h() as usize, p.out_w() as usize);
        let mut out = vec![0.0f32; p.out_c as usize * oh * ow];
        for oc in 0..p.out_c as usize {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[oc];
                    for ic in 0..p.in_c as usize {
                        for ky in 0..p.k as usize {
                            for kx in 0..p.k as usize {
                                let iy = oy as i64 * p.stride as i64 + ky as i64 - p.pad as i64;
                                let ix = ox as i64 * p.stride as i64 + kx as i64 - p.pad as i64;
                                if iy < 0 || ix < 0 || iy >= p.in_h as i64 || ix >= p.in_w as i64 {
                                    continue;
                                }
                                let iv = input[ic * (p.in_h * p.in_w) as usize
                                    + iy as usize * p.in_w as usize
                                    + ix as usize];
                                let wv = weights[oc * (p.in_c * p.k * p.k) as usize
                                    + ic * (p.k * p.k) as usize
                                    + ky * p.k as usize
                                    + kx];
                                acc += iv * wv;
                            }
                        }
                    }
                    out[oc * oh * ow + oy * ow + ox] = acc;
                }
            }
        }
        out
    }

    /// Scalar dense matmul + bias (j-inner loop, verbatim).
    pub fn matmul(a: &[f32], b: &[f32], bias: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = bias[j];
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    /// Scalar pooling computing both max and sum per window (verbatim).
    #[allow(clippy::too_many_arguments)]
    pub fn pool(
        input: &[f32],
        kind: PoolKind,
        c: usize,
        h: usize,
        w: usize,
        k: usize,
        stride: usize,
    ) -> Vec<f32> {
        let oh = (h - k) / stride + 1;
        let ow = (w - k) / stride + 1;
        let mut out = vec![0.0f32; c * oh * ow];
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut sum = 0.0f32;
                    for ky in 0..k {
                        for kx in 0..k {
                            let v = input[ch * h * w + (oy * stride + ky) * w + ox * stride + kx];
                            best = best.max(v);
                            sum += v;
                        }
                    }
                    out[ch * oh * ow + oy * ow + ox] = match kind {
                        PoolKind::Max => best,
                        PoolKind::Avg => sum / (k * k) as f32,
                    };
                }
            }
        }
        out
    }

    /// Scalar ReLU.
    pub fn relu(x: &[f32]) -> Vec<f32> {
        x.iter().map(|&v| v.max(0.0)).collect()
    }

    /// Scalar elementwise add.
    pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
        a.iter().zip(b).map(|(x, y)| x + y).collect()
    }

    /// Scalar softmax (max-subtracted, verbatim).
    pub fn softmax(x: &[f32]) -> Vec<f32> {
        let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = x.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        exps.iter().map(|&e| e / sum).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::PAGE_SIZE;
    use crate::mmu::{map_page, PteFlags};

    /// Executes one op with a fresh TLB and scratch (test convenience).
    fn exec(mem: &mut Memory, w: &Walker, op: &ShaderOp, cores: u32) -> Result<(), ShaderFault> {
        let mut tlb = Tlb::new();
        let mut scratch = ExecScratch::default();
        let mut rep = ExecReport::default();
        execute_op(mem, w, &mut tlb, &mut scratch, op, cores, &mut rep)
    }

    /// Deterministic pseudo-random f32 stream in roughly [-2, 2).
    fn lcg(seed: u64) -> impl FnMut() -> f32 {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 40) as i32 - (1 << 23)) as f32 / (1 << 22) as f32
        }
    }

    fn fill(n: usize, rng: &mut impl FnMut() -> f32) -> Vec<f32> {
        (0..n).map(|_| rng()).collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn all_ops() -> Vec<ShaderOp> {
        vec![
            ShaderOp::Conv2d {
                in_va: 0x1000,
                w_va: 0x2000,
                b_va: 0x3000,
                out_va: 0x4000,
                p: ConvParams {
                    in_c: 3,
                    in_h: 8,
                    in_w: 8,
                    out_c: 4,
                    k: 3,
                    stride: 1,
                    pad: 0,
                },
                tiles: 8,
            },
            ShaderOp::MatMul {
                a_va: 1,
                b_va: 2,
                bias_va: 3,
                out_va: 4,
                m: 5,
                k: 6,
                n: 7,
                tiles: 8,
            },
            ShaderOp::Pool {
                in_va: 9,
                out_va: 10,
                kind: PoolKind::Avg,
                c: 2,
                h: 4,
                w: 4,
                k: 2,
                stride: 2,
            },
            ShaderOp::Relu {
                in_va: 1,
                out_va: 2,
                len: 77,
            },
            ShaderOp::Add {
                a_va: 1,
                b_va: 2,
                out_va: 3,
                len: 5,
            },
            ShaderOp::Softmax {
                in_va: 1,
                out_va: 2,
                len: 10,
            },
            ShaderOp::Copy {
                src_va: 1,
                dst_va: 2,
                len: 9,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for op in all_ops() {
            let rec = op.encode();
            let back = ShaderOp::decode(&rec).unwrap();
            assert_eq!(back, op);
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut rec = [0u8; INSTR_SIZE];
        rec[0] = 0xFE;
        assert!(ShaderOp::decode(&rec).is_none());
    }

    /// Identity-map `npages` starting at VA/PA 0x1000 and return a walker.
    fn setup_mapped(npages: usize) -> (Memory, Walker) {
        let mut mem = Memory::new((npages + 8) * PAGE_SIZE);
        let table_region = (npages + 2) * PAGE_SIZE;
        let mut next_table = table_region as u64;
        let root = next_table;
        next_table += PAGE_SIZE as u64;
        for i in 0..npages {
            let addr = 0x1000 + (i * PAGE_SIZE) as u64;
            map_page(&mut mem, root, addr, addr, PteFlags::rwx(), 0, &mut || {
                let pa = next_table;
                next_table += PAGE_SIZE as u64;
                pa
            })
            .unwrap();
        }
        (
            mem,
            Walker {
                root_pa: root,
                quirk: 0,
                asn: 0,
            },
        )
    }

    #[test]
    fn matmul_computes_correctly() {
        let (mut mem, w) = setup_mapped(4);
        // a = [[1,2],[3,4]], b = [[5,6],[7,8]], bias = [10, 20].
        let a_va = 0x1000u64;
        let b_va = 0x1100u64;
        let bias_va = 0x1200u64;
        let out_va = 0x1300u64;
        for (i, v) in [1.0f32, 2.0, 3.0, 4.0].iter().enumerate() {
            let pa = w
                .translate(&mem, a_va + (i * 4) as u64, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, *v, crate::mem::Accessor::Gpu).unwrap();
        }
        for (i, v) in [5.0f32, 6.0, 7.0, 8.0].iter().enumerate() {
            let pa = w
                .translate(&mem, b_va + (i * 4) as u64, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, *v, crate::mem::Accessor::Gpu).unwrap();
        }
        for (i, v) in [10.0f32, 20.0].iter().enumerate() {
            let pa = w
                .translate(&mem, bias_va + (i * 4) as u64, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, *v, crate::mem::Accessor::Gpu).unwrap();
        }
        let op = ShaderOp::MatMul {
            a_va,
            b_va,
            bias_va,
            out_va,
            m: 2,
            k: 2,
            n: 2,
            tiles: 8,
        };
        exec(&mut mem, &w, &op, 8).unwrap();
        let expect = [29.0f32, 42.0, 53.0, 70.0]; // a*b + bias
        for (i, e) in expect.iter().enumerate() {
            let pa = w
                .translate(&mem, out_va + (i * 4) as u64, AccessKind::Read)
                .unwrap();
            assert_eq!(mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap(), *e);
        }
    }

    #[test]
    fn conv_identity_kernel() {
        let (mut mem, w) = setup_mapped(4);
        let in_va = 0x1000u64;
        let w_va = 0x1400u64;
        let out_va = 0x1800u64;
        // 1x4x4 input, 1 output channel, 1x1 identity kernel.
        for i in 0..16 {
            let pa = w.translate(&mem, in_va + i * 4, AccessKind::Write).unwrap();
            mem.write_f32(pa, i as f32, crate::mem::Accessor::Gpu)
                .unwrap();
        }
        let pa = w.translate(&mem, w_va, AccessKind::Write).unwrap();
        mem.write_f32(pa, 1.0, crate::mem::Accessor::Gpu).unwrap();
        let op = ShaderOp::Conv2d {
            in_va,
            w_va,
            b_va: 0,
            out_va,
            p: ConvParams {
                in_c: 1,
                in_h: 4,
                in_w: 4,
                out_c: 1,
                k: 1,
                stride: 1,
                pad: 0,
            },
            tiles: 4,
        };
        exec(&mut mem, &w, &op, 4).unwrap();
        for i in 0..16 {
            let pa = w.translate(&mem, out_va + i * 4, AccessKind::Read).unwrap();
            assert_eq!(
                mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap(),
                i as f32
            );
        }
    }

    #[test]
    fn tile_mismatch_faults() {
        let (mut mem, w) = setup_mapped(4);
        let op = ShaderOp::MatMul {
            a_va: 0x1000,
            b_va: 0x1100,
            bias_va: 0,
            out_va: 0x1200,
            m: 1,
            k: 1,
            n: 1,
            tiles: 8,
        };
        let r = exec(&mut mem, &w, &op, 4);
        assert_eq!(
            r,
            Err(ShaderFault::TileMismatch {
                compiled_for: 8,
                present: 4
            })
        );
    }

    #[test]
    fn pool_max_and_avg() {
        let (mut mem, w) = setup_mapped(2);
        let in_va = 0x1000u64;
        for (i, v) in [1.0f32, 2.0, 3.0, 4.0].iter().enumerate() {
            let pa = w
                .translate(&mem, in_va + (i * 4) as u64, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, *v, crate::mem::Accessor::Gpu).unwrap();
        }
        let max_op = ShaderOp::Pool {
            in_va,
            out_va: 0x1100,
            kind: PoolKind::Max,
            c: 1,
            h: 2,
            w: 2,
            k: 2,
            stride: 2,
        };
        exec(&mut mem, &w, &max_op, 8).unwrap();
        let pa = w.translate(&mem, 0x1100, AccessKind::Read).unwrap();
        assert_eq!(mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap(), 4.0);

        let avg_op = ShaderOp::Pool {
            in_va,
            out_va: 0x1200,
            kind: PoolKind::Avg,
            c: 1,
            h: 2,
            w: 2,
            k: 2,
            stride: 2,
        };
        exec(&mut mem, &w, &avg_op, 8).unwrap();
        let pa = w.translate(&mem, 0x1200, AccessKind::Read).unwrap();
        assert_eq!(mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap(), 2.5);
    }

    #[test]
    fn softmax_normalizes() {
        let (mut mem, w) = setup_mapped(2);
        for (i, v) in [1.0f32, 2.0, 3.0].iter().enumerate() {
            let pa = w
                .translate(&mem, 0x1000 + (i * 4) as u64, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, *v, crate::mem::Accessor::Gpu).unwrap();
        }
        let op = ShaderOp::Softmax {
            in_va: 0x1000,
            out_va: 0x1100,
            len: 3,
        };
        exec(&mut mem, &w, &op, 8).unwrap();
        let mut sum = 0.0f32;
        let mut vals = [0.0f32; 3];
        for (i, v) in vals.iter_mut().enumerate() {
            let pa = w
                .translate(&mem, 0x1100 + (i * 4) as u64, AccessKind::Read)
                .unwrap();
            *v = mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap();
            sum += *v;
        }
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(vals[2] > vals[1] && vals[1] > vals[0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let (mut mem, w) = setup_mapped(2);
        for (i, v) in [-1.0f32, 0.5, -3.0, 2.0].iter().enumerate() {
            let pa = w
                .translate(&mem, 0x1000 + (i * 4) as u64, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, *v, crate::mem::Accessor::Gpu).unwrap();
        }
        exec(
            &mut mem,
            &w,
            &ShaderOp::Relu {
                in_va: 0x1000,
                out_va: 0x1000,
                len: 4,
            },
            8,
        )
        .unwrap();
        let expect = [0.0f32, 0.5, 0.0, 2.0];
        for (i, e) in expect.iter().enumerate() {
            let pa = w
                .translate(&mem, 0x1000 + (i * 4) as u64, AccessKind::Read)
                .unwrap();
            assert_eq!(mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap(), *e);
        }
    }

    #[test]
    fn copy_direct_path_matches_staged_oracle_bitwise() {
        // Span several pages so translate_run splits the copy into runs.
        let n = 3 * PAGE_SIZE / 4 + 13;
        let mut rng = lcg(5);
        let data = fill(n, &mut rng);
        let src_va = 0x1000u64;
        let dst_va = src_va + (4 * PAGE_SIZE) as u64;

        // Direct (memmove) path: disjoint aligned ranges.
        let (mut mem, w) = setup_mapped(10);
        let mut tlb = Tlb::new();
        let mut rep = ExecReport::default();
        write_f32s_bulk(&mut mem, &w, &mut tlb, &mut rep, src_va, &data).unwrap();
        let mut rep = ExecReport::default();
        let mut scratch = ExecScratch::default();
        let op = ShaderOp::Copy {
            src_va,
            dst_va,
            len: n as u32,
        };
        execute_op(&mut mem, &w, &mut tlb, &mut scratch, &op, 8, &mut rep).unwrap();
        // Accounting parity with the staged path: one read + one write
        // per element (the timing model's input).
        assert_eq!(rep.element_accesses, 2 * n as u64);
        assert!(rep.bulk_runs >= 2, "direct copy still reports bulk runs");
        let mut direct = Vec::new();
        read_f32s_bulk(
            &mem,
            &w,
            &mut tlb,
            &mut ExecReport::default(),
            dst_va,
            n,
            &mut direct,
        )
        .unwrap();

        // Staged oracle on an identical second device.
        let (mut mem2, w2) = setup_mapped(10);
        let mut tlb2 = Tlb::new();
        let mut rep2 = ExecReport::default();
        write_f32s_bulk(&mut mem2, &w2, &mut tlb2, &mut rep2, src_va, &data).unwrap();
        let mut scratch2 = ExecScratch::default();
        read_f32s_bulk(&mem2, &w2, &mut tlb2, &mut rep2, src_va, n, &mut scratch2.a).unwrap();
        write_f32s_bulk(&mut mem2, &w2, &mut tlb2, &mut rep2, dst_va, &scratch2.a).unwrap();
        let mut staged = Vec::new();
        read_f32s_bulk(
            &mem2,
            &w2,
            &mut tlb2,
            &mut ExecReport::default(),
            dst_va,
            n,
            &mut staged,
        )
        .unwrap();
        assert_eq!(bits(&direct), bits(&staged));
    }

    #[test]
    fn overlapping_copy_falls_back_to_staged_semantics() {
        // src and dst overlap by all but one element: the staged path
        // reads everything before writing, so the result is a clean
        // shifted copy with no self-feedback.
        let (mut mem, w) = setup_mapped(4);
        let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut tlb = Tlb::new();
        let mut rep = ExecReport::default();
        write_f32s_bulk(&mut mem, &w, &mut tlb, &mut rep, 0x1000, &data).unwrap();
        let op = ShaderOp::Copy {
            src_va: 0x1000,
            dst_va: 0x1004,
            len: 64,
        };
        let mut scratch = ExecScratch::default();
        let mut rep = ExecReport::default();
        execute_op(&mut mem, &w, &mut tlb, &mut scratch, &op, 8, &mut rep).unwrap();
        let mut out = Vec::new();
        read_f32s_bulk(
            &mem,
            &w,
            &mut tlb,
            &mut ExecReport::default(),
            0x1004,
            64,
            &mut out,
        )
        .unwrap();
        assert_eq!(bits(&out), bits(&data));
    }

    #[test]
    fn program_executes_from_shader_pages() {
        let (mut mem, w) = setup_mapped(8);
        // Program: copy 4 elements from 0x2000 to 0x3000.
        let shader_va = 0x1000u64;
        let rec = ShaderOp::Copy {
            src_va: 0x2000,
            dst_va: 0x3000,
            len: 4,
        }
        .encode();
        for (j, byte) in rec.iter().enumerate() {
            let pa = w
                .translate(&mem, shader_va + j as u64, AccessKind::Write)
                .unwrap();
            mem.write(pa, &[*byte], crate::mem::Accessor::Gpu).unwrap();
        }
        for i in 0..4 {
            let pa = w
                .translate(&mem, 0x2000 + i * 4, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, (i * 10) as f32, crate::mem::Accessor::Gpu)
                .unwrap();
        }
        let mut tlb = Tlb::new();
        let mut scratch = ExecScratch::default();
        let rep =
            execute_program(&mut mem, &w, &mut tlb, &mut scratch, shader_va, 1, 8, None).unwrap();
        assert_eq!(rep.macs, 2);
        assert_eq!(rep.per_kind[OpKind::Copy.index()].events, 1);
        assert_eq!(rep.per_kind[OpKind::Conv2d.index()].events, 0);
        let ts = tlb.stats();
        assert!(
            ts.hits + ts.misses >= rep.bulk_runs,
            "every bulk run translates at least once"
        );
        assert!(
            (ts.misses as usize) < INSTR_SIZE,
            "bulk fetch must not walk once per byte (misses={})",
            ts.misses
        );
        for i in 0..4 {
            let pa = w.translate(&mem, 0x3000 + i * 4, AccessKind::Read).unwrap();
            assert_eq!(
                mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap(),
                (i * 10) as f32
            );
        }
    }

    #[test]
    fn blocked_matmul_matches_reference_bitwise() {
        let mut rng = lcg(1);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (7, 5, 9), (16, 64, 10), (33, 129, 17)] {
            let a = fill(m * k, &mut rng);
            let b = fill(k * n, &mut rng);
            let bias = fill(n, &mut rng);
            let mut fast = vec![0.0; m * n];
            matmul_blocked(&a, &b, Some(&bias), &mut fast, m, k, n);
            assert_eq!(
                bits(&fast),
                bits(&reference::matmul(&a, &b, &bias, m, k, n)),
                "matmul {m}x{k}x{n}"
            );
            // The no-bias fast path seeds 0.0 — identical to the reference
            // fed the zero bias vector the old engine allocated.
            let zero = vec![0.0; n];
            let mut fast0 = vec![0.0; m * n];
            matmul_blocked(&a, &b, None, &mut fast0, m, k, n);
            assert_eq!(
                bits(&fast0),
                bits(&reference::matmul(&a, &b, &zero, m, k, n)),
                "matmul-nobias {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn blocked_conv_matches_reference_bitwise() {
        let mut rng = lcg(2);
        // Geometries covering k=1, pad=0, pad>0, stride>1, k=stride,
        // non-square inputs, and pad up to k-1.
        let geoms: [(u32, u32, u32, u32, u32, u32, u32); 7] = [
            (1, 5, 5, 1, 3, 1, 1),
            (3, 8, 8, 4, 3, 1, 0),
            (2, 9, 7, 3, 3, 2, 1),
            (4, 16, 16, 8, 5, 2, 2),
            (1, 4, 4, 2, 4, 4, 0),
            (3, 7, 7, 5, 1, 1, 0),
            (2, 6, 6, 3, 3, 3, 2),
        ];
        for &(in_c, in_h, in_w, out_c, k, stride, pad) in &geoms {
            let p = ConvParams {
                in_c,
                in_h,
                in_w,
                out_c,
                k,
                stride,
                pad,
            };
            let input = fill((in_c * in_h * in_w) as usize, &mut rng);
            let weights = fill((out_c * in_c * k * k) as usize, &mut rng);
            let bias = fill(out_c as usize, &mut rng);
            let mut fast = vec![0.0; (out_c * p.out_h() * p.out_w()) as usize];
            conv2d_blocked(&input, &weights, Some(&bias), &mut fast, &p);
            assert_eq!(
                bits(&fast),
                bits(&reference::conv2d(&input, &weights, &bias, &p)),
                "conv {p:?}"
            );
        }
    }

    #[test]
    fn split_pool_matches_reference_bitwise() {
        let mut rng = lcg(3);
        let geoms: [(u32, u32, u32, u32, u32); 4] = [
            (1, 4, 4, 2, 2),
            (3, 8, 8, 2, 2),
            (2, 9, 9, 3, 2),
            (4, 7, 7, 3, 1),
        ];
        for &(c, h, w, k, stride) in &geoms {
            let input = fill((c * h * w) as usize, &mut rng);
            for kind in [PoolKind::Max, PoolKind::Avg] {
                let (mut mem, walker) = setup_mapped(8);
                let in_va = 0x1000u64;
                let out_va = 0x3000u64;
                for (i, v) in input.iter().enumerate() {
                    let pa = walker
                        .translate(&mem, in_va + (i * 4) as u64, AccessKind::Write)
                        .unwrap();
                    mem.write_f32(pa, *v, crate::mem::Accessor::Gpu).unwrap();
                }
                let op = ShaderOp::Pool {
                    in_va,
                    out_va,
                    kind,
                    c,
                    h,
                    w,
                    k,
                    stride,
                };
                exec(&mut mem, &walker, &op, 8).unwrap();
                let oh = ((h - k) / stride + 1) as usize;
                let ow = ((w - k) / stride + 1) as usize;
                let expect = reference::pool(
                    &input,
                    kind,
                    c as usize,
                    h as usize,
                    w as usize,
                    k as usize,
                    stride as usize,
                );
                assert_eq!(expect.len(), c as usize * oh * ow);
                for (i, e) in expect.iter().enumerate() {
                    let pa = walker
                        .translate(&mem, out_va + (i * 4) as u64, AccessKind::Read)
                        .unwrap();
                    let got = mem.read_f32(pa, crate::mem::Accessor::Gpu).unwrap();
                    assert_eq!(got.to_bits(), e.to_bits(), "{kind:?} elem {i}");
                }
            }
        }
    }

    #[test]
    fn conv_macs_math() {
        let p = ConvParams {
            in_c: 3,
            in_h: 32,
            in_w: 32,
            out_c: 16,
            k: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(p.out_h(), 32);
        assert_eq!(p.out_w(), 32);
        assert_eq!(p.macs(), 16 * 32 * 32 * 3 * 3 * 3);
    }

    #[test]
    fn op_kind_names_and_indexes_are_stable() {
        for (i, k) in OpKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(OpKind::FusedConvAddRelu.name(), "fused:conv2d+add+relu");
        assert_eq!(
            OpKind::fused(OpKind::Conv2d, true, true),
            Some(OpKind::FusedConvAddRelu)
        );
        assert_eq!(
            OpKind::fused(OpKind::Add, false, true),
            Some(OpKind::FusedAddRelu)
        );
        assert_eq!(OpKind::fused(OpKind::Add, true, false), None);
        assert_eq!(OpKind::fused(OpKind::Pool, false, true), None);
        assert!(OpKind::FusedAddRelu.is_fused() && !OpKind::Copy.is_fused());
    }

    /// Writes `op` as the single-instruction program at `shader_va`.
    fn write_program(mem: &mut Memory, w: &Walker, shader_va: u64, op: &ShaderOp) {
        for (j, byte) in op.encode().iter().enumerate() {
            let pa = w
                .translate(mem, shader_va + j as u64, AccessKind::Write)
                .unwrap();
            mem.write(pa, &[*byte], crate::mem::Accessor::Gpu).unwrap();
        }
    }

    fn write_f32s(mem: &mut Memory, w: &Walker, va: u64, data: &[f32]) {
        for (i, &v) in data.iter().enumerate() {
            let pa = w
                .translate(mem, va + (i * 4) as u64, AccessKind::Write)
                .unwrap();
            mem.write_f32(pa, v, crate::mem::Accessor::Gpu).unwrap();
        }
    }

    fn read_f32s(mem: &Memory, w: &Walker, va: u64, n: usize) -> Vec<f32> {
        let mut tlb = Tlb::new();
        let mut out = Vec::new();
        read_f32s_bulk(
            mem,
            w,
            &mut tlb,
            &mut ExecReport::default(),
            va,
            n,
            &mut out,
        )
        .unwrap();
        out
    }

    /// Fused conv2d+add+relu produces bit-identical final output to the
    /// three standalone instructions run in sequence, never materializes
    /// the intermediate, and reports under the fused kind.
    #[test]
    fn fused_conv_add_relu_matches_sequential_bitwise() {
        let p = ConvParams {
            in_c: 2,
            in_h: 6,
            in_w: 6,
            out_c: 3,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let out_len = (p.out_c * p.out_h() * p.out_w()) as usize;
        let mut rng = lcg(7);
        let input = fill((p.in_c * p.in_h * p.in_w) as usize, &mut rng);
        let weights = fill((p.out_c * p.in_c * p.k * p.k) as usize, &mut rng);
        let bias = fill(p.out_c as usize, &mut rng);
        let skip = fill(out_len, &mut rng);
        let (in_va, w_va, b_va, mid_va, skip_va, out_va, shader_va) =
            (0x1000u64, 0x2000, 0x3000, 0x4000, 0x5000, 0x6000, 0x7000);
        let conv = ShaderOp::Conv2d {
            in_va,
            w_va,
            b_va,
            out_va: mid_va,
            p,
            tiles: 8,
        };

        // Sequential oracle: conv → add → relu as standalone ops.
        let (mut mem, w) = setup_mapped(8);
        write_f32s(&mut mem, &w, in_va, &input);
        write_f32s(&mut mem, &w, w_va, &weights);
        write_f32s(&mut mem, &w, b_va, &bias);
        write_f32s(&mut mem, &w, skip_va, &skip);
        exec(&mut mem, &w, &conv, 8).unwrap();
        exec(
            &mut mem,
            &w,
            &ShaderOp::Add {
                a_va: mid_va,
                b_va: skip_va,
                out_va,
                len: out_len as u32,
            },
            8,
        )
        .unwrap();
        exec(
            &mut mem,
            &w,
            &ShaderOp::Relu {
                in_va: out_va,
                out_va,
                len: out_len as u32,
            },
            8,
        )
        .unwrap();
        let sequential = read_f32s(&mem, &w, out_va, out_len);

        // Fused path on an identical second device.
        let (mut mem2, w2) = setup_mapped(8);
        write_f32s(&mut mem2, &w2, in_va, &input);
        write_f32s(&mut mem2, &w2, w_va, &weights);
        write_f32s(&mut mem2, &w2, b_va, &bias);
        write_f32s(&mut mem2, &w2, skip_va, &skip);
        write_program(&mut mem2, &w2, shader_va, &conv);
        let d = FusedDirective {
            head: OpKind::Conv2d,
            head_out_va: mid_va,
            head_len: out_len as u64,
            tail_add: Some(crate::fusion::TailAdd {
                other_va: skip_va,
                out_va,
                len: out_len as u64,
                interm_first: true,
            }),
            tail_relu: true,
            extra_cost_us: 20,
            kind: OpKind::FusedConvAddRelu,
        };
        let mut tlb = Tlb::new();
        let mut scratch = ExecScratch::default();
        let rep = execute_program(
            &mut mem2,
            &w2,
            &mut tlb,
            &mut scratch,
            shader_va,
            1,
            8,
            Some(&d),
        )
        .unwrap();
        let fused = read_f32s(&mem2, &w2, out_va, out_len);
        assert_eq!(bits(&fused), bits(&sequential));

        // The intermediate tensor was never written to the carveout.
        let mid = read_f32s(&mem2, &w2, mid_va, out_len);
        assert!(
            mid.iter().all(|&v| v == 0.0),
            "fused run must not materialize the intermediate"
        );
        // Stats land under the fused kind, with head + tail MACs.
        assert_eq!(rep.per_kind[OpKind::FusedConvAddRelu.index()].events, 1);
        assert_eq!(rep.per_kind[OpKind::Conv2d.index()].events, 0);
        assert_eq!(rep.macs, p.macs() + 2 * out_len as u64);
    }

    /// A directive that disagrees with the decoded head faults instead of
    /// silently computing something else.
    #[test]
    fn mismatched_directive_faults() {
        let (mut mem, w) = setup_mapped(8);
        let shader_va = 0x1000u64;
        let op = ShaderOp::Relu {
            in_va: 0x2000,
            out_va: 0x2000,
            len: 8,
        };
        write_program(&mut mem, &w, shader_va, &op);
        let d = FusedDirective {
            head: OpKind::Conv2d,
            head_out_va: 0x2000,
            head_len: 8,
            tail_add: None,
            tail_relu: true,
            extra_cost_us: 10,
            kind: OpKind::FusedConvRelu,
        };
        let mut tlb = Tlb::new();
        let mut scratch = ExecScratch::default();
        let r = execute_program(
            &mut mem,
            &w,
            &mut tlb,
            &mut scratch,
            shader_va,
            1,
            8,
            Some(&d),
        );
        assert_eq!(r, Err(ShaderFault::FusionMismatch));
    }

    /// A copy whose source and destination resolve to the same physical
    /// run moves nothing and reports the aliased runs for refunding, while
    /// element accounting stays identical to a real copy.
    #[test]
    fn identity_copy_aliases_in_place() {
        let (mut mem, w) = setup_mapped(4);
        let n = 64usize;
        let data: Vec<f32> = (0..n).map(|i| i as f32 - 7.5).collect();
        let mut tlb = Tlb::new();
        write_f32s(&mut mem, &w, 0x1000, &data);
        let op = ShaderOp::Copy {
            src_va: 0x1000,
            dst_va: 0x1000,
            len: n as u32,
        };
        let mut scratch = ExecScratch::default();
        let mut rep = ExecReport::default();
        execute_op(&mut mem, &w, &mut tlb, &mut scratch, &op, 8, &mut rep).unwrap();
        assert_eq!(rep.element_accesses, 2 * n as u64);
        assert_eq!(rep.alias_runs, rep.bulk_runs);
        assert_eq!(rep.alias_elems, n as u64);
        let out = read_f32s(&mem, &w, 0x1000, n);
        assert_eq!(bits(&out), bits(&data));
    }
}
