//! CPU reference inference and deterministic weight generation.
//!
//! Replay correctness (§2.3 "independence of input") is validated by
//! comparing the GPU pipeline's output — native, record dry-run, or replay
//! with injected input — against this straightforward CPU implementation
//! using the same deterministically generated weights.

use crate::spec::{LayerOp, NetworkSpec};
use grt_gpu::PoolKind;
use grt_sim::Rng;

/// Deterministic weights for layer `layer_idx` of `net_name`.
///
/// Both the runtime (when populating GPU weight buffers) and the reference
/// net call this, so the two computations share parameters exactly.
pub fn weights_for_layer(net_name: &str, layer_idx: usize, len: usize) -> Vec<f32> {
    let seed = fxhash(net_name) ^ (layer_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = Rng::new(seed);
    let scale = 1.0 / (len as f32).sqrt().max(1.0);
    (0..len)
        .map(|_| rng.gen_f32_range(-1.0, 1.0) * scale)
        .collect()
}

/// Deterministic biases for layer `layer_idx` of `net_name`.
pub fn biases_for_layer(net_name: &str, layer_idx: usize, len: usize) -> Vec<f32> {
    let seed = fxhash(net_name) ^ 0xB1A5 ^ (layer_idx as u64).wrapping_mul(0xD605_1A2B_95C4_13D1);
    let mut rng = Rng::new(seed);
    (0..len).map(|_| rng.gen_f32_range(-0.1, 0.1)).collect()
}

/// A deterministic test input for a network.
pub fn test_input(net: &NetworkSpec, variant: u64) -> Vec<f32> {
    let mut rng = Rng::new(fxhash(net.name) ^ 0x1279 ^ variant);
    (0..net.input_len as usize)
        .map(|_| rng.gen_f32_range(0.0, 1.0))
        .collect()
}

fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The CPU reference executor for a [`NetworkSpec`].
#[derive(Debug)]
pub struct ReferenceNet {
    spec: NetworkSpec,
}

impl ReferenceNet {
    /// Wraps a spec for reference execution.
    pub fn new(spec: NetworkSpec) -> Self {
        ReferenceNet { spec }
    }

    /// The wrapped spec.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Runs forward inference on `input`, returning the output vector.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` does not match the spec (this is test
    /// infrastructure; shape errors are programmer errors).
    pub fn infer(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.spec.input_len as usize, "input length");
        let mut cur = input.to_vec();
        let mut skip: Vec<f32> = Vec::new();
        for (idx, layer) in self.spec.layers.iter().enumerate() {
            cur = match &layer.op {
                LayerOp::Conv { p, relu } => {
                    let w = weights_for_layer(self.spec.name, idx, layer.op.weight_len() as usize);
                    let b = biases_for_layer(self.spec.name, idx, layer.op.bias_len() as usize);
                    let mut out = conv2d(&cur, &w, &b, p);
                    if *relu {
                        relu_inplace(&mut out);
                    }
                    out
                }
                LayerOp::Fc {
                    in_dim,
                    out_dim,
                    relu,
                } => {
                    let w = weights_for_layer(self.spec.name, idx, (*in_dim * *out_dim) as usize);
                    let b = biases_for_layer(self.spec.name, idx, *out_dim as usize);
                    let mut out = vec![0.0f32; *out_dim as usize];
                    for (j, o) in out.iter_mut().enumerate() {
                        let mut acc = b[j];
                        for (i, x) in cur.iter().enumerate() {
                            acc += x * w[i * *out_dim as usize + j];
                        }
                        *o = acc;
                    }
                    if *relu {
                        relu_inplace(&mut out);
                    }
                    out
                }
                LayerOp::Pool {
                    kind,
                    c,
                    h,
                    w,
                    k,
                    stride,
                } => pool2d(&cur, *kind, *c, *h, *w, *k, *stride),
                LayerOp::Add { len } => {
                    assert_eq!(skip.len(), *len as usize, "skip length");
                    let mut out: Vec<f32> = cur.iter().zip(&skip).map(|(a, b)| a + b).collect();
                    relu_inplace(&mut out);
                    out
                }
                LayerOp::Softmax { .. } => {
                    let max = cur.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let exps: Vec<f32> = cur.iter().map(|v| (v - max).exp()).collect();
                    let sum: f32 = exps.iter().sum();
                    exps.iter().map(|e| e / sum).collect()
                }
            };
            if layer.save_skip {
                skip = cur.clone();
            }
        }
        cur
    }
}

fn relu_inplace(v: &mut [f32]) {
    for x in v.iter_mut() {
        *x = x.max(0.0);
    }
}

fn conv2d(
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    p: &grt_gpu::shader::ConvParams,
) -> Vec<f32> {
    let (oh, ow) = (p.out_h() as usize, p.out_w() as usize);
    let mut out = vec![0.0f32; p.out_c as usize * oh * ow];
    for oc in 0..p.out_c as usize {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = bias[oc];
                for ic in 0..p.in_c as usize {
                    for ky in 0..p.k as usize {
                        for kx in 0..p.k as usize {
                            let iy = oy as i64 * p.stride as i64 + ky as i64 - p.pad as i64;
                            let ix = ox as i64 * p.stride as i64 + kx as i64 - p.pad as i64;
                            if iy < 0 || ix < 0 || iy >= p.in_h as i64 || ix >= p.in_w as i64 {
                                continue;
                            }
                            acc += input[ic * (p.in_h * p.in_w) as usize
                                + iy as usize * p.in_w as usize
                                + ix as usize]
                                * weights[oc * (p.in_c * p.k * p.k) as usize
                                    + ic * (p.k * p.k) as usize
                                    + ky * p.k as usize
                                    + kx];
                        }
                    }
                }
                out[oc * oh * ow + oy * ow + ox] = acc;
            }
        }
    }
    out
}

fn pool2d(input: &[f32], kind: PoolKind, c: u32, h: u32, w: u32, k: u32, stride: u32) -> Vec<f32> {
    let oh = ((h - k) / stride + 1) as usize;
    let ow = ((w - k) / stride + 1) as usize;
    let mut out = vec![0.0f32; c as usize * oh * ow];
    for ch in 0..c as usize {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut sum = 0.0f32;
                for ky in 0..k as usize {
                    for kx in 0..k as usize {
                        let v = input[ch * (h * w) as usize
                            + (oy * stride as usize + ky) * w as usize
                            + ox * stride as usize
                            + kx];
                        best = best.max(v);
                        sum += v;
                    }
                }
                out[ch * oh * ow + oy * ow + ox] = match kind {
                    PoolKind::Max => best,
                    PoolKind::Avg => sum / (k * k) as f32,
                };
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn weights_are_deterministic() {
        let a = weights_for_layer("MNIST", 0, 100);
        let b = weights_for_layer("MNIST", 0, 100);
        assert_eq!(a, b);
        let c = weights_for_layer("MNIST", 1, 100);
        assert_ne!(a, c);
        let d = weights_for_layer("AlexNet", 0, 100);
        assert_ne!(a, d);
    }

    #[test]
    fn weights_are_bounded() {
        let w = weights_for_layer("VGG16", 3, 10_000);
        let scale = 1.0 / (10_000f32).sqrt();
        assert!(w.iter().all(|v| v.abs() <= scale));
    }

    #[test]
    fn all_networks_infer_to_probability_vectors() {
        for spec in zoo::all_benchmarks() {
            let reference = ReferenceNet::new(spec);
            let input = test_input(reference.spec(), 0);
            let out = reference.infer(&input);
            assert_eq!(out.len(), reference.spec().output_len as usize);
            let sum: f32 = out.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-4,
                "{}: softmax sum {sum}",
                reference.spec().name
            );
            assert!(out.iter().all(|v| *v >= 0.0));
        }
    }

    #[test]
    fn different_inputs_give_different_outputs() {
        let reference = ReferenceNet::new(zoo::mnist());
        let a = reference.infer(&test_input(reference.spec(), 0));
        let b = reference.infer(&test_input(reference.spec(), 1));
        assert_ne!(a, b);
    }

    #[test]
    fn inference_is_deterministic() {
        let reference = ReferenceNet::new(zoo::squeezenet());
        let input = test_input(reference.spec(), 7);
        assert_eq!(reference.infer(&input), reference.infer(&input));
    }
}
