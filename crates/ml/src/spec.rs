//! Network and layer specifications.

use grt_gpu::shader::ConvParams;
use grt_gpu::PoolKind;

/// The operator a layer computes, with its *actual* (scaled) dimensions.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerOp {
    /// Convolution (+ optional fused ReLU).
    Conv {
        /// Geometry at actual scale.
        p: ConvParams,
        /// Fused ReLU after the convolution.
        relu: bool,
    },
    /// Fully-connected layer (+ optional fused ReLU).
    Fc {
        /// Input features.
        in_dim: u32,
        /// Output features.
        out_dim: u32,
        /// Fused ReLU.
        relu: bool,
    },
    /// Spatial pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Channels.
        c: u32,
        /// Input height.
        h: u32,
        /// Input width.
        w: u32,
        /// Kernel size.
        k: u32,
        /// Stride.
        stride: u32,
    },
    /// Residual addition with the saved skip buffer, followed by a fused
    /// ReLU (lowered to two GPU jobs).
    Add {
        /// Element count.
        len: u32,
    },
    /// Softmax over the final vector.
    Softmax {
        /// Element count.
        len: u32,
    },
}

impl LayerOp {
    /// Output element count of this layer.
    pub fn out_len(&self) -> u32 {
        match self {
            LayerOp::Conv { p, .. } => p.out_c * p.out_h() * p.out_w(),
            LayerOp::Fc { out_dim, .. } => *out_dim,
            LayerOp::Pool {
                kind: _,
                c,
                h,
                w,
                k,
                stride,
            } => {
                let oh = (h - k) / stride + 1;
                let ow = (w - k) / stride + 1;
                c * oh * ow
            }
            LayerOp::Add { len } | LayerOp::Softmax { len } => *len,
        }
    }

    /// Input element count of this layer.
    pub fn in_len(&self) -> u32 {
        match self {
            LayerOp::Conv { p, .. } => p.in_c * p.in_h * p.in_w,
            LayerOp::Fc { in_dim, .. } => *in_dim,
            LayerOp::Pool { c, h, w, .. } => c * h * w,
            LayerOp::Add { len } | LayerOp::Softmax { len } => *len,
        }
    }

    /// Weight element count (0 for weight-less ops).
    pub fn weight_len(&self) -> u32 {
        match self {
            LayerOp::Conv { p, .. } => p.out_c * p.in_c * p.k * p.k,
            LayerOp::Fc {
                in_dim, out_dim, ..
            } => in_dim * out_dim,
            _ => 0,
        }
    }

    /// Bias element count.
    pub fn bias_len(&self) -> u32 {
        match self {
            LayerOp::Conv { p, .. } => p.out_c,
            LayerOp::Fc { out_dim, .. } => *out_dim,
            _ => 0,
        }
    }

    /// MACs at actual scale.
    pub fn actual_macs(&self) -> u64 {
        match self {
            LayerOp::Conv { p, .. } => p.macs(),
            LayerOp::Fc {
                in_dim, out_dim, ..
            } => *in_dim as u64 * *out_dim as u64,
            LayerOp::Pool { c, h, w, k, .. } => {
                *c as u64 * *h as u64 * *w as u64 * (*k as u64).pow(2) / 4
            }
            LayerOp::Add { len } => *len as u64,
            LayerOp::Softmax { len } => *len as u64 * 4,
        }
    }
}

/// One layer: operator plus JIT/lowering calibration knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// Layer name (`"conv1"`, `"fc2"`, ...).
    pub name: &'static str,
    /// The operator.
    pub op: LayerOp,
    /// GEMM tile jobs the JIT emits for this layer's main op (≥ 1) —
    /// standing in for ACL's workload tiling heuristics.
    pub splits: u32,
    /// Runtime housekeeping jobs (buffer fills, border handling, staging)
    /// ACL emits around this layer.
    pub setup_jobs: u32,
    /// Paper-scale MAC count (drives the job-duration cost model).
    pub nominal_macs: u64,
    /// Paper-scale live working set in bytes (drives naive sync traffic).
    pub nominal_data_bytes: u64,
    /// Save this layer's output as the skip input for a later `Add`.
    pub save_skip: bool,
}

impl LayerSpec {
    /// Number of GPU jobs this layer lowers to (must match the runtime's
    /// lowering; asserted by cross-crate tests).
    pub fn job_count(&self) -> u32 {
        let main = match &self.op {
            LayerOp::Conv { relu, .. } | LayerOp::Fc { relu, .. } => {
                // Stage + tiles + optional activation.
                1 + self.splits + u32::from(*relu)
            }
            // Residual add lowers to an Add job plus its fused ReLU job.
            LayerOp::Add { .. } => 2,
            LayerOp::Pool { .. } | LayerOp::Softmax { .. } => 1,
        };
        self.setup_jobs + main
    }
}

/// A whole network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Benchmark name as used in the paper's tables.
    pub name: &'static str,
    /// Input element count.
    pub input_len: u32,
    /// Output element count (class scores).
    pub output_len: u32,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Total GPU jobs over all layers (the "# GPU jobs" of Table 1).
    pub fn total_jobs(&self) -> u32 {
        self.layers.iter().map(LayerSpec::job_count).sum()
    }

    /// Total paper-scale MACs.
    pub fn total_nominal_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.nominal_macs).sum()
    }

    /// Total weight elements at actual scale.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.op.weight_len() as u64).sum()
    }

    /// Validates internal consistency: each layer's input length matches
    /// the previous layer's output length (Add layers consume the running
    /// activation plus the skip buffer and so must match too).
    pub fn validate(&self) -> Result<(), String> {
        let mut cur = self.input_len;
        for layer in &self.layers {
            let expect = layer.op.in_len();
            if expect != cur {
                return Err(format!(
                    "{}: layer {} expects {} inputs but receives {}",
                    self.name, layer.name, expect, cur
                ));
            }
            cur = layer.op.out_len();
        }
        if cur != self.output_len {
            return Err(format!(
                "{}: final output {} != declared {}",
                self.name, cur, self.output_len
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(in_c: u32, in_hw: u32, out_c: u32, k: u32, relu: bool) -> LayerOp {
        LayerOp::Conv {
            p: ConvParams {
                in_c,
                in_h: in_hw,
                in_w: in_hw,
                out_c,
                k,
                stride: 1,
                pad: 0,
            },
            relu,
        }
    }

    #[test]
    fn out_len_math() {
        let op = conv(1, 28, 6, 5, true);
        assert_eq!(op.out_len(), 6 * 24 * 24);
        assert_eq!(op.in_len(), 28 * 28);
        assert_eq!(op.weight_len(), 6 * 25);
        assert_eq!(op.bias_len(), 6);
    }

    #[test]
    fn job_count_lowering_rule() {
        let l = LayerSpec {
            name: "c",
            op: conv(1, 8, 2, 3, true),
            splits: 3,
            setup_jobs: 2,
            nominal_macs: 0,
            nominal_data_bytes: 0,
            save_skip: false,
        };
        // 2 setup + 1 stage + 3 tiles + 1 relu.
        assert_eq!(l.job_count(), 7);
        let pool = LayerSpec {
            name: "p",
            op: LayerOp::Pool {
                kind: PoolKind::Max,
                c: 2,
                h: 6,
                w: 6,
                k: 2,
                stride: 2,
            },
            splits: 1,
            setup_jobs: 0,
            nominal_macs: 0,
            nominal_data_bytes: 0,
            save_skip: false,
        };
        assert_eq!(pool.job_count(), 1);
    }

    #[test]
    fn validate_catches_shape_mismatch() {
        let net = NetworkSpec {
            name: "bad",
            input_len: 10,
            output_len: 4,
            layers: vec![LayerSpec {
                name: "fc",
                op: LayerOp::Fc {
                    in_dim: 12, // Mismatch: input is 10.
                    out_dim: 4,
                    relu: false,
                },
                splits: 1,
                setup_jobs: 0,
                nominal_macs: 0,
                nominal_data_bytes: 0,
                save_skip: false,
            }],
        };
        assert!(net.validate().is_err());
    }
}
