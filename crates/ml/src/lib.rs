//! Neural-network workload definitions: the paper's six benchmarks.
//!
//! §7.2 evaluates GR-T on MNIST (LeNet-5), AlexNet, MobileNet, SqueezeNet,
//! ResNet12, and VGG16, all running atop the ARM Compute Library. This
//! crate defines those networks as *specs* the runtime's JIT lowers to GPU
//! jobs, plus a CPU reference implementation used to validate that replay
//! with new input reproduces the correct computation.
//!
//! Two scales coexist deliberately (see DESIGN.md):
//!
//! - **actual dims** drive real arithmetic on the simulated GPU — kept
//!   small so test suites and benches run in seconds;
//! - **nominal** MAC counts and working-set bytes carry the paper-scale
//!   magnitudes into the DES cost model and the §5 traffic accounting, so
//!   recording/replay delays and MemSync MB land near the paper's numbers.

#![warn(missing_docs)]

pub mod reference;
pub mod spec;
pub mod zoo;

pub use reference::ReferenceNet;
pub use spec::{LayerOp, LayerSpec, NetworkSpec};
pub use zoo::{alexnet, all_benchmarks, mnist, mobilenet, resnet12, squeezenet, vgg16};
