//! The six benchmark networks of §7.2, at validation scale.
//!
//! Architectures follow the originals (LeNet-5, AlexNet, MobileNet-v1,
//! SqueezeNet, a 12-weight-layer ResNet, VGG16) with channel/spatial
//! dimensions scaled down so the shader interpreter runs in milliseconds.
//! Three calibration knobs carry the paper-scale magnitudes instead:
//!
//! - **GPU job counts** match Table 1 exactly (23/60/104/98/111/96) via
//!   per-layer `splits`/`setup_jobs`, standing in for ACL's tiling and
//!   housekeeping kernels;
//! - **nominal MACs** per network are set so native/replay delays land in
//!   Table 2's range on the modeled Mali G71 MP8;
//! - **nominal working-set bytes** are set so Naive's full-memory sync
//!   traffic lands in Table 1's MemSync column.
//!
//! EXPERIMENTS.md records the paper-vs-measured outcome for every value.

use crate::spec::{LayerOp, LayerSpec, NetworkSpec};
use grt_gpu::shader::ConvParams;
use grt_gpu::PoolKind;

#[allow(clippy::too_many_arguments)] // Mirrors the conv layer's natural parameter list.
fn conv(
    name: &'static str,
    in_c: u32,
    in_hw: u32,
    out_c: u32,
    k: u32,
    stride: u32,
    pad: u32,
    relu: bool,
    splits: u32,
    setup_jobs: u32,
) -> LayerSpec {
    LayerSpec {
        name,
        op: LayerOp::Conv {
            p: ConvParams {
                in_c,
                in_h: in_hw,
                in_w: in_hw,
                out_c,
                k,
                stride,
                pad,
            },
            relu,
        },
        splits,
        setup_jobs,
        nominal_macs: 0,
        nominal_data_bytes: 0,
        save_skip: false,
    }
}

fn fc(
    name: &'static str,
    in_dim: u32,
    out_dim: u32,
    relu: bool,
    splits: u32,
    setup_jobs: u32,
) -> LayerSpec {
    LayerSpec {
        name,
        op: LayerOp::Fc {
            in_dim,
            out_dim,
            relu,
        },
        splits,
        setup_jobs,
        nominal_macs: 0,
        nominal_data_bytes: 0,
        save_skip: false,
    }
}

fn pool(
    name: &'static str,
    kind: PoolKind,
    c: u32,
    hw: u32,
    k: u32,
    stride: u32,
    setup_jobs: u32,
) -> LayerSpec {
    LayerSpec {
        name,
        op: LayerOp::Pool {
            kind,
            c,
            h: hw,
            w: hw,
            k,
            stride,
        },
        splits: 1,
        setup_jobs,
        nominal_macs: 0,
        nominal_data_bytes: 0,
        save_skip: false,
    }
}

fn add(name: &'static str, len: u32, setup_jobs: u32) -> LayerSpec {
    LayerSpec {
        name,
        op: LayerOp::Add { len },
        splits: 1,
        setup_jobs,
        nominal_macs: 0,
        nominal_data_bytes: 0,
        save_skip: false,
    }
}

fn softmax(name: &'static str, len: u32) -> LayerSpec {
    LayerSpec {
        name,
        op: LayerOp::Softmax { len },
        splits: 1,
        setup_jobs: 0,
        nominal_macs: 0,
        nominal_data_bytes: 0,
        save_skip: false,
    }
}

/// Distributes paper-scale MACs (∝ actual MACs) and working-set bytes
/// (uniform per job) across the layers.
fn calibrate(
    mut net: NetworkSpec,
    nominal_total_macs: u64,
    naive_sync_total_mb: f64,
) -> NetworkSpec {
    let actual_total: u64 = net.layers.iter().map(|l| l.op.actual_macs()).sum();
    let total_jobs = net.total_jobs() as u64;
    let per_job_bytes = (naive_sync_total_mb * 1e6 / (2.0 * total_jobs as f64)) as u64;
    for layer in &mut net.layers {
        layer.nominal_macs = (layer.op.actual_macs() as u128 * nominal_total_macs as u128
            / actual_total.max(1) as u128) as u64;
        layer.nominal_data_bytes = per_job_bytes;
    }
    net
}

/// MNIST (LeNet-5): 23 GPU jobs.
pub fn mnist() -> NetworkSpec {
    let net = NetworkSpec {
        name: "MNIST",
        input_len: 28 * 28,
        output_len: 10,
        layers: vec![
            conv("conv1", 1, 28, 6, 5, 1, 0, true, 1, 2),
            pool("pool1", PoolKind::Max, 6, 24, 2, 2, 0),
            conv("conv2", 6, 12, 16, 5, 1, 0, true, 1, 1),
            pool("pool2", PoolKind::Max, 16, 8, 2, 2, 0),
            fc("fc1", 256, 120, true, 1, 1),
            fc("fc2", 120, 84, true, 1, 1),
            fc("fc3", 84, 10, false, 1, 1),
            softmax("softmax", 10),
        ],
    };
    calibrate(net, 500_000, 3.07)
}

/// AlexNet: 60 GPU jobs.
pub fn alexnet() -> NetworkSpec {
    let net = NetworkSpec {
        name: "AlexNet",
        input_len: 3 * 32 * 32,
        output_len: 10,
        layers: vec![
            conv("conv1", 3, 32, 16, 3, 1, 1, true, 4, 1),
            pool("pool1", PoolKind::Max, 16, 32, 2, 2, 0),
            conv("conv2", 16, 16, 32, 3, 1, 1, true, 8, 1),
            pool("pool2", PoolKind::Max, 32, 16, 2, 2, 0),
            conv("conv3", 32, 8, 48, 3, 1, 1, true, 6, 1),
            conv("conv4", 48, 8, 48, 3, 1, 1, true, 6, 1),
            conv("conv5", 48, 8, 32, 3, 1, 1, true, 4, 1),
            pool("pool3", PoolKind::Max, 32, 8, 2, 2, 0),
            fc("fc1", 512, 128, true, 3, 1),
            fc("fc2", 128, 64, true, 1, 1),
            fc("fc3", 64, 10, false, 1, 1),
            softmax("softmax", 10),
        ],
    };
    calibrate(net, 1_600_000_000, 454.9)
}

/// MobileNet-v1 (13 depthwise-separable blocks): 104 GPU jobs.
pub fn mobilenet() -> NetworkSpec {
    let mut layers = vec![conv("conv1", 3, 32, 8, 3, 1, 1, true, 1, 1)];
    // (block, in_c, out_c, in_hw, dw_stride, pw_setup)
    let blocks: [(u32, u32, u32, u32, u32); 13] = [
        (8, 16, 32, 1, 1),
        (16, 16, 32, 2, 0),
        (16, 24, 16, 1, 1),
        (24, 24, 16, 2, 0),
        (24, 32, 8, 1, 1),
        (32, 32, 8, 2, 0),
        (32, 48, 4, 1, 1),
        (48, 48, 4, 2, 0),
        (48, 48, 2, 1, 0),
        (48, 48, 2, 1, 0),
        (48, 48, 2, 1, 0),
        (48, 48, 2, 1, 0),
        (48, 48, 2, 1, 0),
    ];
    for (i, (in_c, out_c, hw, stride, pw_setup)) in blocks.into_iter().enumerate() {
        let dw_names = [
            "dw1", "dw2", "dw3", "dw4", "dw5", "dw6", "dw7", "dw8", "dw9", "dw10", "dw11", "dw12",
            "dw13",
        ];
        let pw_names = [
            "pw1", "pw2", "pw3", "pw4", "pw5", "pw6", "pw7", "pw8", "pw9", "pw10", "pw11", "pw12",
            "pw13",
        ];
        // Depthwise modeled as a dense conv at validation scale.
        layers.push(conv(dw_names[i], in_c, hw, in_c, 3, stride, 1, true, 1, 1));
        let out_hw = (hw + 2 - 3) / stride + 1;
        layers.push(conv(
            pw_names[i],
            in_c,
            out_hw,
            out_c,
            1,
            1,
            0,
            true,
            1,
            pw_setup,
        ));
    }
    layers.push(pool("avgpool", PoolKind::Avg, 48, 2, 2, 2, 0));
    layers.push(fc("fc", 48, 10, false, 1, 1));
    layers.push(softmax("softmax", 10));
    let net = NetworkSpec {
        name: "MobileNet",
        input_len: 3 * 32 * 32,
        output_len: 10,
        layers,
    };
    calibrate(net, 760_000_000, 37.4)
}

/// SqueezeNet (8 fire modules): 98 GPU jobs.
pub fn squeezenet() -> NetworkSpec {
    let mut layers = vec![
        conv("conv1", 3, 32, 16, 3, 1, 1, true, 3, 1),
        pool("pool1", PoolKind::Max, 16, 32, 2, 2, 0),
    ];
    let sq_names = ["sq1", "sq2", "sq3", "sq4", "sq5", "sq6", "sq7", "sq8"];
    let ex_names = ["ex1", "ex2", "ex3", "ex4", "ex5", "ex6", "ex7", "ex8"];
    let mut hw = 16u32;
    for i in 0..8 {
        layers.push(conv(sq_names[i], 16, hw, 8, 1, 1, 0, true, 1, 1));
        layers.push(conv(ex_names[i], 8, hw, 16, 3, 1, 1, true, 3, 1));
        // Pools after fire 2, 4, 6.
        if i == 1 {
            layers.push(pool("pool2", PoolKind::Max, 16, hw, 2, 2, 0));
            hw /= 2;
        } else if i == 3 {
            layers.push(pool("pool3", PoolKind::Max, 16, hw, 2, 2, 0));
            hw /= 2;
        } else if i == 5 {
            layers.push(pool("pool4", PoolKind::Max, 16, hw, 2, 2, 0));
            hw /= 2;
        }
    }
    layers.push(conv("conv10", 16, 2, 10, 1, 1, 0, true, 3, 1));
    layers.push(pool("avgpool", PoolKind::Avg, 10, 2, 2, 2, 0));
    layers.push(softmax("softmax", 10));
    let net = NetworkSpec {
        name: "SqueezeNet",
        input_len: 3 * 32 * 32,
        output_len: 10,
        layers,
    };
    calibrate(net, 1_100_000_000, 41.3)
}

/// A 12-weight-layer ResNet (conv1 + 5 two-conv residual blocks + fc):
/// 111 GPU jobs.
pub fn resnet12() -> NetworkSpec {
    let mut layers = Vec::new();
    let mut c1 = conv("conv1", 3, 32, 32, 3, 1, 1, true, 4, 1);
    c1.save_skip = true; // Block 1's skip input.
    layers.push(c1);
    let a_names = ["b1a", "b2a", "b3a", "b4a", "b5a"];
    let b_names = ["b1b", "b2b", "b3b", "b4b", "b5b"];
    let add_names = ["add1", "add2", "add3", "add4", "add5"];
    let pool_names = ["rpool1", "rpool2", "rpool3"];
    let mut hw = 32u32;
    for i in 0..5 {
        layers.push(conv(a_names[i], 32, hw, 32, 3, 1, 1, true, 4, 2));
        layers.push(conv(b_names[i], 32, hw, 32, 3, 1, 1, false, 4, 2));
        let mut a = add(add_names[i], 32 * hw * hw, 1);
        // The add output feeds the next block's skip (or the pool below,
        // whose output is re-saved).
        a.save_skip = true;
        layers.push(a);
        if i < 3 {
            let mut p = pool(pool_names[i], PoolKind::Max, 32, hw, 2, 2, 1);
            p.save_skip = true;
            layers.push(p);
            hw /= 2;
        }
    }
    layers.push(pool("avgpool", PoolKind::Avg, 32, 4, 4, 4, 1));
    layers.push(fc("fc", 32, 10, false, 2, 2));
    layers.push(softmax("softmax", 10));
    let net = NetworkSpec {
        name: "ResNet12",
        input_len: 3 * 32 * 32,
        output_len: 10,
        layers,
    };
    calibrate(net, 16_900_000_000, 151.2)
}

/// VGG16: 96 GPU jobs.
pub fn vgg16() -> NetworkSpec {
    let mut layers = Vec::new();
    // (name, in_c, out_c, hw).
    let convs: [(&'static str, u32, u32, u32); 13] = [
        ("c1_1", 3, 16, 32),
        ("c1_2", 16, 16, 32),
        ("c2_1", 16, 32, 16),
        ("c2_2", 32, 32, 16),
        ("c3_1", 32, 48, 8),
        ("c3_2", 48, 48, 8),
        ("c3_3", 48, 48, 8),
        ("c4_1", 48, 64, 4),
        ("c4_2", 64, 64, 4),
        ("c4_3", 64, 64, 4),
        ("c5_1", 64, 64, 2),
        ("c5_2", 64, 64, 2),
        ("c5_3", 64, 64, 2),
    ];
    let pool_after = ["c1_2", "c2_2", "c3_3", "c4_3", "c5_3"];
    let pool_names = ["vp1", "vp2", "vp3", "vp4", "vp5"];
    let mut pool_idx = 0;
    for (name, in_c, out_c, hw) in convs {
        layers.push(conv(name, in_c, hw, out_c, 3, 1, 1, true, 3, 1));
        if pool_after.contains(&name) {
            layers.push(pool(
                pool_names[pool_idx],
                PoolKind::Max,
                out_c,
                hw,
                2,
                2,
                0,
            ));
            pool_idx += 1;
        }
    }
    layers.push(fc("fc1", 64, 64, true, 2, 1));
    layers.push(fc("fc2", 64, 32, true, 1, 1));
    layers.push(fc("fc3", 32, 10, false, 1, 1));
    layers.push(softmax("softmax", 10));
    let net = NetworkSpec {
        name: "VGG16",
        input_len: 3 * 32 * 32,
        output_len: 10,
        layers,
    };
    calibrate(net, 17_900_000_000, 1215.2)
}

/// All six benchmarks in the paper's table order.
pub fn all_benchmarks() -> Vec<NetworkSpec> {
    vec![
        mnist(),
        alexnet(),
        mobilenet(),
        squeezenet(),
        resnet12(),
        vgg16(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_counts_match_table_1() {
        let expected = [
            ("MNIST", 23u32),
            ("AlexNet", 60),
            ("MobileNet", 104),
            ("SqueezeNet", 98),
            ("ResNet12", 111),
            ("VGG16", 96),
        ];
        for (net, (name, jobs)) in all_benchmarks().iter().zip(expected) {
            assert_eq!(net.name, name);
            assert_eq!(net.total_jobs(), jobs, "{name} job count");
        }
    }

    #[test]
    fn all_networks_shape_check() {
        for net in all_benchmarks() {
            net.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn nominal_macs_are_calibrated() {
        let nets = all_benchmarks();
        let mnist_macs = nets[0].total_nominal_macs();
        let vgg_macs = nets[5].total_nominal_macs();
        assert!((400_000..=500_000).contains(&mnist_macs), "{mnist_macs}");
        assert!(vgg_macs > 17_000_000_000, "{vgg_macs}");
    }

    #[test]
    fn nominal_data_bytes_reflect_naive_sync() {
        // Per-job working set × 2 syncs × jobs ≈ the Table 1 Naive column.
        let net = alexnet();
        let total: u64 = 2 * net
            .layers
            .iter()
            .map(|l| l.nominal_data_bytes * l.job_count() as u64)
            .sum::<u64>();
        let mb = total as f64 / 1e6;
        assert!((400.0..500.0).contains(&mb), "mb={mb}");
    }

    #[test]
    fn resnet_marks_skip_sources() {
        let net = resnet12();
        let saves = net.layers.iter().filter(|l| l.save_skip).count();
        assert!(saves >= 6, "saves={saves}");
    }

    #[test]
    fn ordering_by_size_holds() {
        // MNIST is by far the smallest; VGG16/ResNet12 the largest.
        let nets = all_benchmarks();
        assert!(nets[0].total_nominal_macs() < nets[1].total_nominal_macs() / 100);
        assert!(nets[4].total_nominal_macs() > nets[1].total_nominal_macs() * 5);
    }
}
