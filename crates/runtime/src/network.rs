//! Network compilation: allocate GPU regions, JIT all layers, emit shader
//! programs / descriptors / command streams into GPU memory.

use crate::jit::{Jit, JitJob, JobKind, LayerBuffers};
use grt_driver::{DriverError, KbaseDriver, RegPort, Usage};
use grt_gpu::job::{JobDescriptor, JobStatus, DESC_SIZE};
use grt_gpu::mem::PAGE_SIZE;
use grt_gpu::mmu::PteFlags;
use grt_gpu::shader::INSTR_SIZE;
use grt_ml::reference::{biases_for_layer, weights_for_layer};
use grt_ml::NetworkSpec;

/// One submitted GPU job of a compiled network.
#[derive(Debug, Clone, Copy)]
pub struct CompiledJob {
    /// VA of the job descriptor (what goes into `JS_HEAD`).
    pub desc_va: u64,
    /// Modeled duration.
    pub cost_us: u32,
    /// Role within the layer.
    pub kind: JobKind,
}

/// One compiled layer: the recording granularity of Figure 2.
#[derive(Debug, Clone)]
pub struct CompiledLayer {
    /// Layer name.
    pub name: &'static str,
    /// Jobs in submission order.
    pub jobs: Vec<CompiledJob>,
    /// Paper-scale live working set for naive sync accounting.
    pub nominal_data_bytes: u64,
}

/// A network compiled for one specific GPU SKU.
#[derive(Debug, Clone)]
pub struct CompiledNetwork {
    /// Benchmark name.
    pub name: String,
    /// SKU the JIT targeted (recordings are only valid on this SKU).
    pub compiled_for_gpu_id: u32,
    /// Layers in execution order.
    pub layers: Vec<CompiledLayer>,
    /// VA where inference input is written.
    pub input_va: u64,
    /// VA where the final output appears.
    pub output_va: u64,
    /// Input element count.
    pub input_len: u32,
    /// Output element count.
    pub output_len: u32,
    /// Weight/bias buffer VAs and element counts in layer order (weights
    /// then bias per layer; empty buffers omitted). The replayer injects
    /// real parameters into these slots (§2.3 input independence).
    pub weight_slots: Vec<(u64, u32)>,
}

impl CompiledNetwork {
    /// Total job count (matches `NetworkSpec::total_jobs`).
    pub fn total_jobs(&self) -> usize {
        self.layers.iter().map(|l| l.jobs.len()).sum()
    }
}

fn pages_for(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE).max(1)
}

/// Size of the compiled kernel binary for a job of the given virtual
/// cost: bigger kernels (unrolled tiles) for bigger workloads, clamped to
/// the 4-48 KiB range seen in real Mali shader blobs.
fn kernel_pad_bytes(cost_us: u32) -> usize {
    (4096 + cost_us as usize * 32).min(48 * 1024)
}

/// Deterministic pseudo-"machine code" for a kernel binary: incompressible
/// bytes seeded by the kernel's address (stable across record runs).
fn kernel_binary_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = grt_sim::Rng::new(seed ^ 0x4A49_545F_4B42);
    let mut out = vec![0u8; len];
    rng.fill_bytes(&mut out);
    out
}

/// Compiles `spec` through `driver` for the driver's device-tree SKU.
///
/// Allocates all GPU regions, writes weights/biases (deterministic, shared
/// with the CPU reference), JITs every layer, and emits descriptors plus a
/// synthetic command stream — the metastate the §5 synchronizer ships.
pub fn compile_network<P: RegPort>(
    driver: &mut KbaseDriver<P>,
    spec: &NetworkSpec,
) -> Result<CompiledNetwork, DriverError> {
    compile_network_inner(driver, spec, false)
}

/// Like [`compile_network`] but *dry*: weight buffers are left zero-filled,
/// matching the paper's record-phase rule that model parameters never reach
/// the cloud (§5, §7.1). Layout is identical to a real compile.
pub fn compile_network_dry<P: RegPort>(
    driver: &mut KbaseDriver<P>,
    spec: &NetworkSpec,
) -> Result<CompiledNetwork, DriverError> {
    compile_network_inner(driver, spec, true)
}

fn compile_network_inner<P: RegPort>(
    driver: &mut KbaseDriver<P>,
    spec: &NetworkSpec,
    dry: bool,
) -> Result<CompiledNetwork, DriverError> {
    spec.validate().map_err(|_| DriverError::NotProbed).ok();
    let jit = Jit::for_device(driver.devtree());

    // --- Region sizing -------------------------------------------------
    let max_act = spec
        .layers
        .iter()
        .flat_map(|l| [l.op.in_len(), l.op.out_len()])
        .chain([spec.input_len, spec.output_len])
        .max()
        .unwrap_or(1) as usize;
    let total_jobs: usize = spec.total_jobs() as usize;
    let total_weights: usize = spec
        .layers
        .iter()
        .map(|l| (l.op.weight_len() + l.op.bias_len()) as usize)
        .sum();

    let input_va = driver.alloc_region(
        pages_for(spec.input_len as usize * 4),
        PteFlags::rw(),
        Usage::Input,
        None,
    )?;
    let output_va = driver.alloc_region(
        pages_for(spec.output_len as usize * 4),
        PteFlags::rw(),
        Usage::Output,
        None,
    )?;
    // Four rotating activation buffers; skip-pinned buffers are excluded
    // from reuse until consumed.
    let mut scratch = Vec::new();
    for _ in 0..4 {
        scratch.push(driver.alloc_region(
            pages_for(max_act * 4),
            PteFlags::rw(),
            Usage::Scratch,
            None,
        )?);
    }
    let weights_va = driver.alloc_region(
        pages_for(total_weights.max(1) * 4),
        PteFlags::ro(),
        Usage::Weights,
        None,
    )?;
    // Shader region: instruction records plus the JIT's compiled kernel
    // binaries. Real Mali kernels are 4-64 KiB of machine code per tile;
    // pad_bytes models that (it is what makes the §5 metastate sync carry
    // paper-scale traffic).
    let total_shader_bytes: usize = spec
        .layers
        .iter()
        .flat_map(|l| {
            jit.lower_layer(
                l,
                LayerBuffers {
                    in_va: 0,
                    out_va: 0,
                    w_va: 0,
                    b_va: 0,
                    skip_va: 0,
                },
            )
        })
        .map(|j| j.ops.len() * INSTR_SIZE + kernel_pad_bytes(j.cost_us))
        .sum();
    let shader_va = driver.alloc_region(
        pages_for(total_shader_bytes + PAGE_SIZE),
        PteFlags::rx(),
        Usage::Shader,
        None,
    )?;
    let desc_region_va = driver.alloc_region(
        pages_for(total_jobs * DESC_SIZE),
        PteFlags::rw(),
        Usage::JobDescriptors,
        None,
    )?;
    let cmd_va = driver.alloc_region(
        pages_for(total_jobs * 32),
        PteFlags::rw(),
        Usage::Commands,
        None,
    )?;

    // --- Weights -------------------------------------------------------
    let mut w_cursor = weights_va;
    let mut layer_weight_vas: Vec<(u64, u64)> = Vec::new();
    let mut weight_slots: Vec<(u64, u32)> = Vec::new();
    for (idx, layer) in spec.layers.iter().enumerate() {
        let wl = layer.op.weight_len() as usize;
        let bl = layer.op.bias_len() as usize;
        let (mut w_va, mut b_va) = (0u64, 0u64);
        if wl > 0 {
            if !dry {
                let w = weights_for_layer(spec.name, idx, wl);
                let bytes: Vec<u8> = w.iter().flat_map(|v| v.to_le_bytes()).collect();
                driver.copy_to_gpu(w_cursor, &bytes)?;
            }
            w_va = w_cursor;
            weight_slots.push((w_va, wl as u32));
            w_cursor += (wl * 4) as u64;
        }
        if bl > 0 {
            if !dry {
                let b = biases_for_layer(spec.name, idx, bl);
                let bytes: Vec<u8> = b.iter().flat_map(|v| v.to_le_bytes()).collect();
                driver.copy_to_gpu(w_cursor, &bytes)?;
            }
            b_va = w_cursor;
            weight_slots.push((b_va, bl as u32));
            w_cursor += (bl * 4) as u64;
        }
        layer_weight_vas.push((w_va, b_va));
    }

    // --- Lower layers, emit shaders + descriptors + commands -----------
    let mut layers = Vec::new();
    let mut shader_cursor = shader_va;
    let mut desc_cursor = desc_region_va;
    let mut cmd_cursor = cmd_va;
    let mut cur_va = input_va;
    let mut skip_va = 0u64;

    for (idx, layer) in spec.layers.iter().enumerate() {
        let is_last = idx == spec.layers.len() - 1;
        let out_va = if is_last {
            output_va
        } else {
            // Pick a scratch buffer that is neither the live input nor the
            // pinned skip buffer.
            *scratch
                .iter()
                .find(|&&v| v != cur_va && v != skip_va)
                .expect("four scratch buffers always leave a free one")
        };
        let (w_va, b_va) = layer_weight_vas[idx];
        let bufs = LayerBuffers {
            in_va: cur_va,
            out_va,
            w_va,
            b_va,
            skip_va,
        };
        let jit_jobs: Vec<JitJob> = jit.lower_layer(layer, bufs);
        let mut jobs = Vec::new();
        for job in &jit_jobs {
            // Shader program.
            let prog_va = shader_cursor;
            for op in &job.ops {
                driver.copy_to_gpu(shader_cursor, &op.encode())?;
                shader_cursor += INSTR_SIZE as u64;
            }
            // The kernel's compiled binary body (decoder only reads the
            // records above; these bytes ride along as metastate). Dry
            // compiles emit it too: kernel code is metastate, not data.
            let pad = kernel_pad_bytes(job.cost_us);
            let body = kernel_binary_bytes(shader_cursor, pad);
            driver.copy_to_gpu(shader_cursor, &body)?;
            shader_cursor += pad as u64;
            // Descriptor.
            let desc = JobDescriptor {
                shader_va: prog_va,
                n_instrs: job.ops.len() as u32,
                cost_us: job.cost_us,
                next_va: 0,
                status: JobStatus::Pending,
            };
            driver.copy_to_gpu(desc_cursor, &desc.encode())?;
            // Synthetic command-stream words referencing the descriptor.
            let mut cmd = Vec::with_capacity(16);
            cmd.extend_from_slice(&0xC0DE_CAFEu32.to_le_bytes());
            cmd.extend_from_slice(&(desc_cursor as u32).to_le_bytes());
            cmd.extend_from_slice(&((desc_cursor >> 32) as u32).to_le_bytes());
            cmd.extend_from_slice(&job.cost_us.to_le_bytes());
            driver.copy_to_gpu(cmd_cursor, &cmd)?;
            cmd_cursor += 32;
            jobs.push(CompiledJob {
                desc_va: desc_cursor,
                cost_us: job.cost_us,
                kind: job.kind,
            });
            desc_cursor += DESC_SIZE as u64;
        }
        layers.push(CompiledLayer {
            name: layer.name,
            jobs,
            nominal_data_bytes: layer.nominal_data_bytes,
        });
        if layer.save_skip {
            skip_va = out_va;
        }
        cur_va = out_va;
    }

    Ok(CompiledNetwork {
        name: spec.name.to_owned(),
        compiled_for_gpu_id: driver.devtree().gpu_id,
        layers,
        input_va,
        output_va,
        input_len: spec.input_len,
        output_len: spec.output_len,
        weight_slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_driver::DirectPort;
    use grt_gpu::{Gpu, GpuSku, Memory};
    use grt_sim::{Clock, Stats};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn driver() -> KbaseDriver<DirectPort> {
        let clock = Clock::new();
        let stats = Stats::new();
        let mem = Rc::new(RefCell::new(Memory::new(96 << 20)));
        let gpu = Rc::new(RefCell::new(Gpu::new(GpuSku::mali_g71_mp8(), &clock, &mem)));
        let port = DirectPort::new(&gpu, &clock, &stats);
        let mut d = KbaseDriver::new(&port, &mem, GpuSku::mali_g71_mp8(), 0, 96 << 20);
        d.probe().unwrap();
        d
    }

    #[test]
    fn compile_all_benchmarks() {
        let mut d = driver();
        for spec in grt_ml::zoo::all_benchmarks() {
            let net = compile_network(&mut d, &spec).unwrap();
            assert_eq!(
                net.total_jobs(),
                spec.total_jobs() as usize,
                "{}",
                spec.name
            );
            assert_eq!(net.layers.len(), spec.layers.len());
            assert_ne!(net.input_va, net.output_va);
        }
    }

    #[test]
    fn dry_compile_has_identical_layout() {
        // §5/§7.1: the dry compile must place every buffer exactly where a
        // real compile would, or replay-time weight injection would miss.
        let mut d1 = driver();
        let real = compile_network(&mut d1, &grt_ml::zoo::mnist()).unwrap();
        let mut d2 = driver();
        let dry = compile_network_dry(&mut d2, &grt_ml::zoo::mnist()).unwrap();
        assert_eq!(real.input_va, dry.input_va);
        assert_eq!(real.output_va, dry.output_va);
        assert_eq!(real.weight_slots, dry.weight_slots);
        assert_eq!(real.total_jobs(), dry.total_jobs());
        for (a, b) in real.layers.iter().zip(&dry.layers) {
            for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
                assert_eq!(ja.desc_va, jb.desc_va);
                assert_eq!(ja.cost_us, jb.cost_us);
            }
        }
        // And the weights region really is zero in the dry compile.
        let (w_va, w_len) = dry.weight_slots[0];
        let bytes = d2.copy_from_gpu(w_va, w_len as usize * 4).unwrap();
        assert!(bytes.iter().all(|&b| b == 0));
        let bytes = d1.copy_from_gpu(w_va, w_len as usize * 4).unwrap();
        assert!(bytes.iter().any(|&b| b != 0));
    }

    #[test]
    fn kernel_binaries_are_deterministic_metastate() {
        // The JIT's kernel bodies must be identical across compiles (they
        // are recorded metastate) and incompressible enough to model real
        // shader blobs.
        let mut d1 = driver();
        let n1 = compile_network(&mut d1, &grt_ml::zoo::mnist()).unwrap();
        let mut d2 = driver();
        let n2 = compile_network(&mut d2, &grt_ml::zoo::mnist()).unwrap();
        let regions1 = d1.regions();
        let regions1 = regions1.borrow();
        let shader1 = regions1
            .all()
            .iter()
            .find(|r| r.usage == Usage::Shader)
            .unwrap();
        let dump1 = d1
            .mem()
            .borrow()
            .dump_range(shader1.pa, shader1.len_bytes());
        let dump2 = d2
            .mem()
            .borrow()
            .dump_range(shader1.pa, shader1.len_bytes());
        assert_eq!(dump1, dump2, "kernel bodies must be reproducible");
        let packed = grt_compress::compress(&dump1);
        assert!(
            packed.len() * 2 > dump1.len(),
            "kernel bodies should be near-incompressible: {} -> {}",
            dump1.len(),
            packed.len()
        );
        let _ = (n1, n2);
    }

    #[test]
    fn regions_are_classified() {
        let mut d = driver();
        let _net = compile_network(&mut d, &grt_ml::zoo::mnist()).unwrap();
        let regions = d.regions();
        let regions = regions.borrow();
        let meta: Vec<_> = regions.metastate().map(|r| r.usage).collect();
        assert!(meta.contains(&Usage::Shader));
        assert!(meta.contains(&Usage::JobDescriptors));
        assert!(meta.contains(&Usage::Commands));
        assert!(meta.contains(&Usage::PageTable));
        assert!(regions.data().count() >= 3); // Input, output, scratch, weights.
    }

    #[test]
    fn shader_pages_are_executable_only_for_shader_region() {
        let mut d = driver();
        let _net = compile_network(&mut d, &grt_ml::zoo::mnist()).unwrap();
        let regions = d.regions();
        let regions = regions.borrow();
        for r in regions.all() {
            match r.usage {
                Usage::Shader => assert!(r.gpu_flags.execute),
                Usage::Input | Usage::Output | Usage::Scratch | Usage::Weights => {
                    assert!(!r.gpu_flags.execute)
                }
                _ => {}
            }
        }
    }
}
