//! The userspace GPU runtime: buffers, per-SKU JIT, and execution.
//!
//! This crate stands in for the proprietary `libmali.so` + ARM Compute
//! Library pair in the paper's GPU stack (§2.1): it receives a hardware-
//! neutral [`grt_ml::NetworkSpec`] (the "late binding" format developers
//! actually ship, §2.4), JIT-compiles it for the *probed* GPU SKU, emits
//! shader programs / job descriptors / command streams into driver-managed
//! GPU memory, and drives job submission.
//!
//! Because the JIT tiles by shader-core count, the bytes it emits — and
//! hence every recording made from them — are genuinely SKU-specific,
//! which is the paper's central motivation for cloud-side recording.

#![warn(missing_docs)]

pub mod executor;
pub mod jit;
pub mod network;

pub use executor::{
    run_inference, run_inference_with_scratch, ExecHooks, NativeHooks, NativeStack, UploadScratch,
};
pub use jit::{Jit, JitJob, JobKind};
pub use network::{
    compile_network, compile_network_dry, CompiledJob, CompiledLayer, CompiledNetwork,
};
