//! Inference execution over a compiled network.
//!
//! [`run_inference`] is the mode-independent loop: inject input, submit
//! each job (queue length 1), wait for its interrupt, handle it, read the
//! output. The [`ExecHooks`] implementation decides *how* waiting and
//! framework overhead happen: [`NativeHooks`] models the co-located stack
//! (Table 2's "Native"); grt-core's record session supplies hooks that
//! forward interrupts from the remote client.

use crate::network::CompiledNetwork;
use grt_driver::{DriverError, JobIrqOutcome, KbaseDriver, RegPort};
use grt_gpu::{Gpu, GpuSku, IrqLine, Memory};
use grt_sim::{Clock, SimTime, Stats};
use std::cell::RefCell;
use std::rc::Rc;

/// Per-job CPU overhead of the ML framework + runtime + syscall path on
/// the native stack (drives Table 2's native delays).
pub const NATIVE_OVERHEAD_PER_JOB: SimTime = SimTime::from_micros(450);

/// Execution-environment hooks.
pub trait ExecHooks {
    /// Called before each job submission (framework CPU cost point).
    fn pre_job(&mut self, layer_idx: usize, job_idx: usize);

    /// Blocks until the job interrupt for the last submission fires.
    fn wait_job_irq(&mut self);

    /// Called at each layer boundary before its first job.
    fn pre_layer(&mut self, _layer_idx: usize) {}

    /// Called after a layer's last job completes.
    fn post_layer(&mut self, _layer_idx: usize) {}
}

/// Reusable byte-staging buffer for the f32 → wire conversion on input
/// upload. One inference allocates it; every subsequent inference on the
/// same stack reuses the capacity — the executor-side analogue of the
/// GPU's kernel scratch buffers on the fleet-serving hot path.
#[derive(Debug, Clone, Default)]
pub struct UploadScratch {
    bytes: Vec<u8>,
}

impl UploadScratch {
    /// Stages one f32 slice as its little-endian wire bytes, reusing the
    /// buffer's capacity across calls (the batched-replay input lanes
    /// and the executor's input upload share this conversion).
    pub fn stage(&mut self, input: &[f32]) -> &[u8] {
        self.bytes.clear();
        self.bytes.reserve(input.len() * 4);
        for v in input {
            self.bytes.extend_from_slice(&v.to_le_bytes());
        }
        &self.bytes
    }
}

/// Runs one inference through the driver.
pub fn run_inference<P: RegPort>(
    driver: &mut KbaseDriver<P>,
    net: &CompiledNetwork,
    input: &[f32],
    hooks: &mut dyn ExecHooks,
) -> Result<Vec<f32>, DriverError> {
    let mut scratch = UploadScratch::default();
    run_inference_with_scratch(driver, net, input, hooks, &mut scratch)
}

/// [`run_inference`] with a caller-owned staging buffer, for callers that
/// run many inferences back to back (see [`UploadScratch`]).
pub fn run_inference_with_scratch<P: RegPort>(
    driver: &mut KbaseDriver<P>,
    net: &CompiledNetwork,
    input: &[f32],
    hooks: &mut dyn ExecHooks,
    scratch: &mut UploadScratch,
) -> Result<Vec<f32>, DriverError> {
    assert_eq!(input.len(), net.input_len as usize, "input length");
    driver.copy_to_gpu(net.input_va, scratch.stage(input))?;

    for (li, layer) in net.layers.iter().enumerate() {
        hooks.pre_layer(li);
        for (ji, job) in layer.jobs.iter().enumerate() {
            hooks.pre_job(li, ji);
            driver.submit_job(job.desc_va)?;
            // Wait + handle, tolerating spurious wakeups on the shared line.
            loop {
                hooks.wait_job_irq();
                match driver.handle_job_irq()? {
                    JobIrqOutcome::Done => break,
                    JobIrqOutcome::Spurious => continue,
                    JobIrqOutcome::Failed(code) => return Err(DriverError::JobFault(code)),
                }
            }
        }
        hooks.post_layer(li);
    }

    let raw = driver.copy_from_gpu(net.output_va, net.output_len as usize * 4)?;
    Ok(raw
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Hooks for the co-located native stack.
pub struct NativeHooks {
    gpu: Rc<RefCell<Gpu>>,
    clock: Rc<Clock>,
    /// Per-job framework overhead (defaults to [`NATIVE_OVERHEAD_PER_JOB`]).
    pub overhead: SimTime,
}

impl NativeHooks {
    /// Creates hooks over the native GPU.
    pub fn new(gpu: &Rc<RefCell<Gpu>>, clock: &Rc<Clock>) -> Self {
        NativeHooks {
            gpu: Rc::clone(gpu),
            clock: Rc::clone(clock),
            overhead: NATIVE_OVERHEAD_PER_JOB,
        }
    }
}

impl ExecHooks for NativeHooks {
    fn pre_job(&mut self, _layer_idx: usize, _job_idx: usize) {
        self.clock.advance(self.overhead);
    }

    fn wait_job_irq(&mut self) {
        let at = self
            .gpu
            .borrow_mut()
            .next_irq_at(IrqLine::Job)
            .expect("a submitted job always completes or faults");
        self.clock.advance_to(at);
    }
}

/// The whole native GPU stack on one device: clock, memory, GPU, driver.
///
/// # Examples
///
/// ```
/// use grt_runtime::NativeStack;
/// use grt_gpu::GpuSku;
///
/// let mut stack = NativeStack::boot(GpuSku::mali_g71_mp8()).unwrap();
/// let spec = grt_ml::zoo::mnist();
/// let net = stack.compile(&spec).unwrap();
/// let input = grt_ml::reference::test_input(&spec, 0);
/// let out = stack.infer(&net, &input).unwrap();
/// assert_eq!(out.len(), 10);
/// ```
pub struct NativeStack {
    /// Shared virtual clock.
    pub clock: Rc<Clock>,
    /// Shared counters.
    pub stats: Rc<Stats>,
    /// Device memory.
    pub mem: Rc<RefCell<Memory>>,
    /// The GPU.
    pub gpu: Rc<RefCell<Gpu>>,
    /// The kernel driver over the native port.
    pub driver: KbaseDriver<grt_driver::DirectPort>,
    /// Reused input-staging buffer (see [`UploadScratch`]).
    upload: UploadScratch,
}

/// Default device memory size for native stacks.
const NATIVE_MEM_BYTES: usize = 96 << 20;

impl NativeStack {
    /// Boots the full stack: probe + power-up on `sku`.
    pub fn boot(sku: GpuSku) -> Result<Self, DriverError> {
        let clock = Clock::new();
        let stats = Stats::new();
        let mem = Rc::new(RefCell::new(Memory::new(NATIVE_MEM_BYTES)));
        let gpu = Rc::new(RefCell::new(Gpu::new(sku.clone(), &clock, &mem)));
        let port = grt_driver::DirectPort::new(&gpu, &clock, &stats);
        let mut driver = KbaseDriver::new(&port, &mem, sku, 0, NATIVE_MEM_BYTES as u64);
        driver.probe()?;
        driver.power_up()?;
        Ok(NativeStack {
            clock,
            stats,
            mem,
            gpu,
            driver,
            upload: UploadScratch::default(),
        })
    }

    /// Compiles a network for this device.
    pub fn compile(&mut self, spec: &grt_ml::NetworkSpec) -> Result<CompiledNetwork, DriverError> {
        crate::network::compile_network(&mut self.driver, spec)
    }

    /// Runs one inference, returning the output and advancing the clock by
    /// the native end-to-end delay.
    pub fn infer(&mut self, net: &CompiledNetwork, input: &[f32]) -> Result<Vec<f32>, DriverError> {
        let mut hooks = NativeHooks::new(&self.gpu, &self.clock);
        run_inference_with_scratch(&mut self.driver, net, input, &mut hooks, &mut self.upload)
    }

    /// Like [`NativeStack::infer`] but also returns the inference delay.
    pub fn infer_timed(
        &mut self,
        net: &CompiledNetwork,
        input: &[f32],
    ) -> Result<(Vec<f32>, SimTime), DriverError> {
        let t0 = self.clock.now();
        let out = self.infer(net, input)?;
        Ok((out, self.clock.now() - t0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_ml::reference::{test_input, ReferenceNet};
    use grt_ml::zoo;

    fn close(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x - y).abs() < 1e-3 * (1.0 + x.abs().max(y.abs())))
    }

    #[test]
    fn mnist_native_matches_reference() {
        let spec = zoo::mnist();
        let mut stack = NativeStack::boot(GpuSku::mali_g71_mp8()).unwrap();
        let net = stack.compile(&spec).unwrap();
        let input = test_input(&spec, 3);
        let gpu_out = stack.infer(&net, &input).unwrap();
        let cpu_out = ReferenceNet::new(spec).infer(&input);
        assert!(close(&gpu_out, &cpu_out), "{gpu_out:?} vs {cpu_out:?}");
    }

    #[test]
    fn resnet_skip_connections_match_reference() {
        let spec = zoo::resnet12();
        let mut stack = NativeStack::boot(GpuSku::mali_g71_mp8()).unwrap();
        let net = stack.compile(&spec).unwrap();
        let input = test_input(&spec, 1);
        let gpu_out = stack.infer(&net, &input).unwrap();
        let cpu_out = ReferenceNet::new(spec).infer(&input);
        assert!(close(&gpu_out, &cpu_out), "{gpu_out:?} vs {cpu_out:?}");
    }

    #[test]
    fn repeated_inference_with_new_inputs() {
        let spec = zoo::mnist();
        let mut stack = NativeStack::boot(GpuSku::mali_g71_mp8()).unwrap();
        let net = stack.compile(&spec).unwrap();
        let reference = ReferenceNet::new(spec.clone());
        for variant in 0..3 {
            let input = test_input(&spec, variant);
            let gpu_out = stack.infer(&net, &input).unwrap();
            let cpu_out = reference.infer(&input);
            assert!(close(&gpu_out, &cpu_out), "variant {variant}");
        }
    }

    #[test]
    fn native_delay_scales_with_network() {
        let mut stack = NativeStack::boot(GpuSku::mali_g71_mp8()).unwrap();
        let mnist_spec = zoo::mnist();
        let mnist = stack.compile(&mnist_spec).unwrap();
        let (_, d_mnist) = stack
            .infer_timed(&mnist, &test_input(&mnist_spec, 0))
            .unwrap();
        // MNIST native should land in the low-millisecond range (Table 2:
        // 15.2 ms on the paper's hardware).
        let ms = d_mnist.as_millis_f64();
        assert!((5.0..40.0).contains(&ms), "mnist native = {ms} ms");
    }

    #[test]
    fn wrong_sku_compilation_faults_at_run() {
        // Compile for MP8 but the physical GPU is an MP4: the tiled
        // kernels must fault (SKU specificity, §2.4).
        let clock = Clock::new();
        let stats = Stats::new();
        let mem = Rc::new(RefCell::new(Memory::new(96 << 20)));
        let gpu = Rc::new(RefCell::new(Gpu::new(GpuSku::mali_g71_mp4(), &clock, &mem)));
        let port = grt_driver::DirectPort::new(&gpu, &clock, &stats);
        // Device tree *lies* about the SKU (simulating a stale recording
        // environment): driver thinks MP4 hardware is an MP8.
        let mut driver = KbaseDriver::new(
            &port,
            &mem,
            GpuSku {
                gpu_id: GpuSku::mali_g71_mp4().gpu_id,
                ..GpuSku::mali_g71_mp8()
            },
            0,
            96 << 20,
        );
        driver.probe().unwrap();
        driver.power_up().unwrap();
        let spec = zoo::mnist();
        let net = crate::network::compile_network(&mut driver, &spec).unwrap();
        let mut hooks = NativeHooks::new(&gpu, &clock);
        let err = run_inference(&mut driver, &net, &test_input(&spec, 0), &mut hooks).unwrap_err();
        assert!(matches!(err, DriverError::JobFault(_)), "{err:?}");
    }
}
