//! The per-SKU JIT: lowers layers to tiled shader jobs.
//!
//! Tiling is keyed to the probed shader-core count, so kernels compiled for
//! a Mali-G71 MP8 fault on an MP4 (§2.4's SKU specificity). Job durations
//! come from the paper-scale MAC counts divided by the SKU's throughput.

use grt_gpu::shader::ShaderOp;
use grt_gpu::GpuSku;
use grt_ml::spec::{LayerOp, LayerSpec};

/// What role a job plays inside a layer (used by Figure 8's classifier and
/// by tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Runtime housekeeping (buffer fills, border handling).
    Setup,
    /// Weight/input staging before the main op.
    Stage,
    /// A tile of the main compute op.
    Tile,
    /// The fused activation pass.
    Activation,
    /// Pooling.
    Pool,
    /// Residual addition.
    Add,
    /// Softmax.
    Softmax,
}

/// One lowered GPU job: its shader program and modeled duration.
#[derive(Debug, Clone)]
pub struct JitJob {
    /// Shader instructions (usually one).
    pub ops: Vec<ShaderOp>,
    /// Virtual duration in microseconds (descriptor `cost_us`).
    pub cost_us: u32,
    /// Role within the layer.
    pub kind: JobKind,
}

/// Buffer addresses a layer's lowering needs.
#[derive(Debug, Clone, Copy)]
pub struct LayerBuffers {
    /// Input activation VA.
    pub in_va: u64,
    /// Output activation VA.
    pub out_va: u64,
    /// Weights VA (0 if the layer has none).
    pub w_va: u64,
    /// Bias VA (0 if none).
    pub b_va: u64,
    /// Skip-connection VA (for `Add` layers).
    pub skip_va: u64,
}

/// The JIT compiler for one probed device.
#[derive(Debug, Clone)]
pub struct Jit {
    /// Workgroup tiling — the probed shader-core count.
    pub tiles: u32,
    /// Device MAC throughput per microsecond (cost model denominator).
    pub macs_per_us: u64,
}

/// Fixed virtual cost of a housekeeping/staging job.
const SMALL_JOB_US: u32 = 10;

impl Jit {
    /// Builds a JIT for the probed SKU (what `clGetDeviceInfo` exposes).
    pub fn for_device(sku: &GpuSku) -> Self {
        Jit {
            tiles: sku.shader_cores,
            macs_per_us: sku.macs_per_us().max(1),
        }
    }

    /// Lowers one layer to its job sequence.
    ///
    /// The job count always equals [`LayerSpec::job_count`]; a cross-crate
    /// test enforces this.
    pub fn lower_layer(&self, layer: &LayerSpec, bufs: LayerBuffers) -> Vec<JitJob> {
        let mut jobs = Vec::new();
        let out_len = layer.op.out_len();
        // Housekeeping jobs: identity copies over a small prefix of the
        // output buffer (fills/border handling in the real ACL).
        for _ in 0..layer.setup_jobs {
            jobs.push(JitJob {
                ops: vec![ShaderOp::Copy {
                    src_va: bufs.out_va,
                    dst_va: bufs.out_va,
                    len: out_len.min(16),
                }],
                cost_us: SMALL_JOB_US,
                kind: JobKind::Setup,
            });
        }
        match &layer.op {
            LayerOp::Conv { p, relu } => {
                let tile_cost = self.tile_cost(layer);
                jobs.push(self.stage_job(bufs, layer));
                jobs.push(JitJob {
                    ops: vec![ShaderOp::Conv2d {
                        in_va: bufs.in_va,
                        w_va: bufs.w_va,
                        b_va: bufs.b_va,
                        out_va: bufs.out_va,
                        p: *p,
                        tiles: self.tiles,
                    }],
                    cost_us: tile_cost,
                    kind: JobKind::Tile,
                });
                for _ in 1..layer.splits {
                    jobs.push(self.extra_tile_job(bufs, out_len, tile_cost));
                }
                if *relu {
                    jobs.push(self.relu_job(bufs, out_len));
                }
            }
            LayerOp::Fc {
                in_dim,
                out_dim,
                relu,
            } => {
                let tile_cost = self.tile_cost(layer);
                jobs.push(self.stage_job(bufs, layer));
                jobs.push(JitJob {
                    ops: vec![ShaderOp::MatMul {
                        a_va: bufs.in_va,
                        b_va: bufs.w_va,
                        bias_va: bufs.b_va,
                        out_va: bufs.out_va,
                        m: 1,
                        k: *in_dim,
                        n: *out_dim,
                        tiles: self.tiles,
                    }],
                    cost_us: tile_cost,
                    kind: JobKind::Tile,
                });
                for _ in 1..layer.splits {
                    jobs.push(self.extra_tile_job(bufs, out_len, tile_cost));
                }
                if *relu {
                    jobs.push(self.relu_job(bufs, out_len));
                }
            }
            LayerOp::Pool {
                kind,
                c,
                h,
                w,
                k,
                stride,
            } => {
                jobs.push(JitJob {
                    ops: vec![ShaderOp::Pool {
                        in_va: bufs.in_va,
                        out_va: bufs.out_va,
                        kind: *kind,
                        c: *c,
                        h: *h,
                        w: *w,
                        k: *k,
                        stride: *stride,
                    }],
                    cost_us: self.tile_cost(layer).max(SMALL_JOB_US),
                    kind: JobKind::Pool,
                });
            }
            LayerOp::Add { len } => {
                jobs.push(JitJob {
                    ops: vec![ShaderOp::Add {
                        a_va: bufs.in_va,
                        b_va: bufs.skip_va,
                        out_va: bufs.out_va,
                        len: *len,
                    }],
                    cost_us: SMALL_JOB_US,
                    kind: JobKind::Add,
                });
                jobs.push(self.relu_job(bufs, *len));
            }
            LayerOp::Softmax { len } => {
                jobs.push(JitJob {
                    ops: vec![ShaderOp::Softmax {
                        in_va: bufs.in_va,
                        out_va: bufs.out_va,
                        len: *len,
                    }],
                    cost_us: SMALL_JOB_US,
                    kind: JobKind::Softmax,
                });
            }
        }
        jobs
    }

    /// The cost of one tile of the layer's main op.
    fn tile_cost(&self, layer: &LayerSpec) -> u32 {
        let per_tile = layer.nominal_macs / layer.splits.max(1) as u64 / self.macs_per_us;
        (per_tile as u32).max(SMALL_JOB_US)
    }

    fn stage_job(&self, bufs: LayerBuffers, layer: &LayerSpec) -> JitJob {
        // Stage: touch the input buffer (im2col / weight reshape stand-in).
        JitJob {
            ops: vec![ShaderOp::Copy {
                src_va: bufs.in_va,
                dst_va: bufs.in_va,
                len: layer.op.in_len().min(16),
            }],
            cost_us: SMALL_JOB_US,
            kind: JobKind::Stage,
        }
    }

    fn extra_tile_job(&self, bufs: LayerBuffers, out_len: u32, cost: u32) -> JitJob {
        // Subsequent GEMM tiles: the first tile already produced the whole
        // output at validation scale; these carry the remaining virtual
        // cost as idempotent passes over the output.
        JitJob {
            ops: vec![ShaderOp::Copy {
                src_va: bufs.out_va,
                dst_va: bufs.out_va,
                len: out_len.min(64),
            }],
            cost_us: cost,
            kind: JobKind::Tile,
        }
    }

    fn relu_job(&self, bufs: LayerBuffers, len: u32) -> JitJob {
        JitJob {
            ops: vec![ShaderOp::Relu {
                in_va: bufs.out_va,
                out_va: bufs.out_va,
                len,
            }],
            cost_us: SMALL_JOB_US,
            kind: JobKind::Activation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_ml::zoo;

    #[test]
    fn job_counts_match_spec_lowering() {
        let jit = Jit::for_device(&GpuSku::mali_g71_mp8());
        let bufs = LayerBuffers {
            in_va: 0x1000,
            out_va: 0x2000,
            w_va: 0x3000,
            b_va: 0x4000,
            skip_va: 0x5000,
        };
        for net in zoo::all_benchmarks() {
            for layer in &net.layers {
                let jobs = jit.lower_layer(layer, bufs);
                assert_eq!(
                    jobs.len() as u32,
                    layer.job_count(),
                    "{}::{}",
                    net.name,
                    layer.name
                );
            }
        }
    }

    #[test]
    fn tiles_follow_sku() {
        let jit8 = Jit::for_device(&GpuSku::mali_g71_mp8());
        let jit4 = Jit::for_device(&GpuSku::mali_g71_mp4());
        assert_eq!(jit8.tiles, 8);
        assert_eq!(jit4.tiles, 4);
        let layer = &zoo::mnist().layers[0];
        let bufs = LayerBuffers {
            in_va: 0,
            out_va: 0,
            w_va: 0,
            b_va: 0,
            skip_va: 0,
        };
        let j8 = jit8.lower_layer(layer, bufs);
        let conv8 = j8.iter().find_map(|j| match &j.ops[0] {
            ShaderOp::Conv2d { tiles, .. } => Some(*tiles),
            _ => None,
        });
        assert_eq!(conv8, Some(8));
        let j4 = jit4.lower_layer(layer, bufs);
        let conv4 = j4.iter().find_map(|j| match &j.ops[0] {
            ShaderOp::Conv2d { tiles, .. } => Some(*tiles),
            _ => None,
        });
        assert_eq!(conv4, Some(4));
    }

    #[test]
    fn cost_scales_with_nominal_macs() {
        let jit = Jit::for_device(&GpuSku::mali_g71_mp8());
        let vgg = zoo::vgg16();
        let mnist = zoo::mnist();
        let bufs = LayerBuffers {
            in_va: 0,
            out_va: 0,
            w_va: 0,
            b_va: 0,
            skip_va: 0,
        };
        let vgg_cost: u64 = vgg
            .layers
            .iter()
            .flat_map(|l| jit.lower_layer(l, bufs))
            .map(|j| j.cost_us as u64)
            .sum();
        let mnist_cost: u64 = mnist
            .layers
            .iter()
            .flat_map(|l| jit.lower_layer(l, bufs))
            .map(|j| j.cost_us as u64)
            .sum();
        assert!(
            vgg_cost > mnist_cost * 50,
            "vgg={vgg_cost} mnist={mnist_cost}"
        );
    }
}
