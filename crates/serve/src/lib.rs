//! `grt-serve`: the multi-tenant replay-serving subsystem.
//!
//! The paper's endgame (and GPUReplay's production story) is that the tiny
//! in-TEE replayer *serves* real ML inference with no GPU stack on the
//! client. This crate models that serving layer over the reproduction's
//! record/replay core: many concurrent inference requests, many client
//! devices of heterogeneous GPU SKUs, recordings recorded once and reused
//! fleet-wide.
//!
//! Four components:
//!
//! - [`registry`] — an LRU **recording registry** keyed by
//!   `(network, GPU_ID)`: recordings are signature-verified once on
//!   insert, reused on every later load, and recorded on demand (a
//!   "cold start") over a configurable network link when a model/SKU pair
//!   is first requested;
//! - [`admission`] — **admission control**: bounded per-device request
//!   queues with deadlines; a full fleet rejects new work with a
//!   retry-after hint instead of queueing unboundedly;
//! - [`fleet`] — the **fleet scheduler**: N client TEE devices, each
//!   hosting a [`grt_core::ReplayService`] behind the GP protocol,
//!   honouring the paper's job-queue-length-1 invariant per device, with
//!   same-model affinity so `LOAD_RECORDING`/`SET_WEIGHTS` are amortized
//!   across consecutive requests and only `SET_INPUT`+`RUN` pay per
//!   request;
//! - [`metrics`] — per-request queue-wait/service/total latency,
//!   p50/p95/p99, throughput, and cache statistics from DES timestamps,
//!   exported as deterministic JSON — accumulated into fixed-size
//!   [`sketch`] streaming quantile sketches so a 10⁶-request run costs
//!   O(1) memory per request.
//!
//! Fleet scale: the scheduler is **event-indexed** (a binary heap of
//! `(due_time, device)` entries wakes only devices with due events;
//! [`fleet::SchedulerKind::LegacySweep`] retains the original per-event
//! full-device sweep as a differential-test oracle), the registry is
//! **sharded** by an FNV hash of `(network, GPU_ID)`
//! ([`RegistryConfig::with_shards`]), and
//! [`fleet::ServiceMode::Profiled`] models per-request service from
//! measured per-`(model, SKU)` replay profiles so million-request runs
//! don't pay a real replay per request.
//!
//! Time: the fleet advances one discrete-event serving timeline
//! ([`fleet::Fleet`]'s clock). Each device's own hardware clock is a
//! private lane that measures replay service durations; the scheduler
//! re-anchors those durations onto the serving timeline, so devices serve
//! in parallel while every reported timestamp stays deterministic.
//!
//! [`workload`] generates the request traces (Zipf-distributed model
//! popularity, exponential interarrivals) the `serve_bench` binary and
//! the tests drive the subsystem with.

#![warn(missing_docs)]

pub mod admission;
pub mod fleet;
pub mod health;
pub mod metrics;
pub mod registry;
pub mod sketch;
pub mod workload;

pub use admission::{AdmissionQueue, Rejection, Request};
pub use fleet::{Fleet, FleetConfig, SchedulerKind, ServiceMode};
pub use health::{DeviceHealth, HealthState};
pub use metrics::{FailoverRecord, LatencySketches, MetricsCollector, Percentiles, ServeReport};
pub use registry::{FetchOutcome, RecordingRegistry, RegistryConfig, RegistryStats};
pub use sketch::{QuantileSketch, SketchSummary};
pub use workload::{generate_trace, TraceConfig, ZipfSampler};
