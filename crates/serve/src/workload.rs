//! Request-trace generation: Zipf-distributed model popularity over
//! exponentially-distributed interarrivals.
//!
//! Serving traffic is famously skewed — a few models take most requests
//! (the paper's §6 one-image-many-devicetrees argument assumes exactly
//! this reuse). The trace generator draws each request's model from a
//! Zipf distribution over the catalog and spaces arrivals with an
//! exponential clock, all from the deterministic [`grt_sim::Rng`] so two
//! traces from the same seed are identical.

use crate::admission::Request;
use grt_sim::{Rng, SimTime};

/// A Zipf sampler over ranks `0..n` (rank 0 most popular).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with the given exponent
    /// (`s = 0` is uniform; `s ≈ 1` is classic web-traffic skew).
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(exponent)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfSampler { cdf }
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of rank `k`.
    pub fn mass(&self, k: usize) -> f64 {
        let prev = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.cdf[k] - prev
    }
}

/// Parameters of one generated request trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of requests.
    pub requests: usize,
    /// Seed for the trace's private RNG stream.
    pub seed: u64,
    /// Zipf exponent over the model catalog (catalog order = popularity
    /// rank order).
    pub zipf_exponent: f64,
    /// Mean interarrival gap (exponentially distributed).
    pub mean_interarrival: SimTime,
    /// Per-request deadline, measured from arrival: latest acceptable
    /// service start.
    pub timeout: SimTime,
}

impl TraceConfig {
    /// A sensible default trace: `requests` requests at ~25 req/s with
    /// web-like skew and a generous deadline.
    pub fn new(requests: usize, seed: u64) -> Self {
        TraceConfig {
            requests,
            seed,
            zipf_exponent: 1.1,
            mean_interarrival: SimTime::from_millis(40),
            timeout: SimTime::from_secs(30),
        }
    }

    /// A fleet-scale trace: the same web-like Zipf skew at an aggregate
    /// arrival rate sized for a ~1000-device fleet (mean interarrival
    /// `interarrival_us` µs, so 50 µs ≈ 20k req/s), with a deadline
    /// generous enough that queueing, not the clock, is the bottleneck.
    pub fn fleet_scale(requests: usize, seed: u64, interarrival_us: u64) -> Self {
        TraceConfig {
            mean_interarrival: SimTime::from_micros(interarrival_us),
            timeout: SimTime::from_secs(60),
            ..TraceConfig::new(requests, seed)
        }
    }
}

/// Generates a trace over a catalog of `n_models` models, sorted by
/// arrival time (ids follow arrival order).
pub fn generate_trace(n_models: usize, cfg: &TraceConfig) -> Vec<Request> {
    let mut rng = Rng::new(cfg.seed);
    let zipf = ZipfSampler::new(n_models, cfg.zipf_exponent);
    let mut t = SimTime::ZERO;
    let mean = cfg.mean_interarrival.as_secs_f64();
    (0..cfg.requests as u64)
        .map(|id| {
            // Exponential interarrival via inverse transform; 1-u avoids ln(0).
            let gap = -(1.0 - rng.gen_f64()).ln() * mean;
            t += SimTime::from_secs_f64(gap);
            Request {
                id,
                model: zipf.sample(&mut rng),
                arrival: t,
                deadline: t + cfg.timeout,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_normalized() {
        let z = ZipfSampler::new(6, 1.1);
        let total: f64 = (0..6).map(|k| z.mass(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.mass(0) > z.mass(1));
        assert!(z.mass(1) > z.mass(5));
        // Rank 0 dominates under web-like skew.
        assert!(z.mass(0) > 0.3, "mass0={}", z.mass(0));
    }

    #[test]
    fn zipf_uniform_when_exponent_zero() {
        let z = ZipfSampler::new(4, 0.0);
        for k in 0..4 {
            assert!((z.mass(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_covers_all_ranks() {
        let z = ZipfSampler::new(6, 1.0);
        let mut rng = Rng::new(7);
        let mut seen = [false; 6];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn trace_is_deterministic_and_sorted() {
        let cfg = TraceConfig::new(500, 42);
        let a = generate_trace(6, &cfg);
        let b = generate_trace(6, &cfg);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().all(|r| r.deadline == r.arrival + cfg.timeout));
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let a = generate_trace(6, &TraceConfig::new(100, 1));
        let b = generate_trace(6, &TraceConfig::new(100, 2));
        assert_ne!(a, b);
    }
}
