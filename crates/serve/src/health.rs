//! Per-device health tracking: crash counting, latency EWMA, eviction.
//!
//! The fleet scheduler must not keep routing work to a device that is
//! down, flapping, or pathologically slow. Each [`DeviceWorker`] carries a
//! [`DeviceHealth`] that folds two signals:
//!
//! - **crashes** — a device that crashes repeatedly without a successful
//!   service in between (≥ [`FAILURE_THRESHOLD`] consecutive failures) is
//!   *evicted*: held out of scheduling for a probation period beyond its
//!   restart, so a flapping device stops absorbing (and then dropping)
//!   requests;
//! - **latency** — an exponentially weighted moving average of service
//!   time; when it drifts past [`SLOW_FACTOR`]× the device's first
//!   observed baseline (thermal throttling, background contention) the
//!   device is likewise evicted for probation.
//!
//! Re-admission is an explicit, counted event: when probation ends the
//! scheduler transitions the device back to `Up` and the readmission shows
//! up in the fleet report, so a chaos run can assert that flapping devices
//! were both taken out and brought back.
//!
//! All transitions are driven by virtual timestamps, never wall time, so
//! the same fault schedule produces the same eviction/readmission sequence
//! byte-for-byte.
//!
//! [`DeviceWorker`]: crate::fleet::Fleet

use grt_sim::SimTime;

/// Consecutive crash count at which a device is evicted instead of merely
/// marked down until restart.
pub const FAILURE_THRESHOLD: u32 = 3;

/// How long past restart (or past the slow-eviction instant) an evicted
/// device sits out before re-admission.
pub const PROBATION: SimTime = SimTime::from_secs(2);

/// Latency-EWMA multiple of the baseline service time beyond which a
/// device is evicted as too slow.
pub const SLOW_FACTOR: f64 = 3.0;

/// EWMA smoothing weight for the newest service-time observation.
pub const EWMA_ALPHA: f64 = 0.3;

/// Scheduling availability of one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Healthy: eligible for dispatch.
    Up,
    /// Crashed: unavailable until the restart instant.
    Down {
        /// When the device restarts and becomes schedulable again.
        until: SimTime,
    },
    /// Evicted (flapping or slow): on probation until re-admission.
    Evicted {
        /// When probation ends and the device is re-admitted.
        until: SimTime,
    },
}

/// Health tracker for one fleet device.
#[derive(Debug, Clone)]
pub struct DeviceHealth {
    state: HealthState,
    consecutive_failures: u32,
    /// EWMA of observed service latency, in milliseconds.
    ewma_ms: Option<f64>,
    /// First observed service latency, in milliseconds — the "healthy"
    /// reference the slow-eviction threshold is relative to.
    baseline_ms: Option<f64>,
    /// Crash outages observed (monotonic).
    pub crashes: u64,
    /// Evictions (flapping or slow) observed (monotonic).
    pub evictions: u64,
    /// Probation expiries that returned the device to service (monotonic).
    pub readmissions: u64,
}

impl Default for DeviceHealth {
    fn default() -> Self {
        DeviceHealth::new()
    }
}

impl DeviceHealth {
    /// A fresh, healthy device.
    pub fn new() -> Self {
        DeviceHealth {
            state: HealthState::Up,
            consecutive_failures: 0,
            ewma_ms: None,
            baseline_ms: None,
            crashes: 0,
            evictions: 0,
            readmissions: 0,
        }
    }

    /// Current state (transitions happen only via the `on_*` events).
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Whether the device may be dispatched to at `t`. This is a pure
    /// query: a `Down`/`Evicted` device whose outage has lapsed reads as
    /// up here even before the scheduler processes its re-admission event.
    pub fn is_up(&self, t: SimTime) -> bool {
        match self.state {
            HealthState::Up => true,
            HealthState::Down { until } | HealthState::Evicted { until } => t >= until,
        }
    }

    /// The pending state-transition instant (restart or probation end),
    /// if the device is currently out of service.
    pub fn next_transition(&self) -> Option<SimTime> {
        match self.state {
            HealthState::Up => None,
            HealthState::Down { until } | HealthState::Evicted { until } => Some(until),
        }
    }

    /// Records a crash outage `[at, restart_at)`. A device crossing
    /// [`FAILURE_THRESHOLD`] consecutive failures is evicted for
    /// [`PROBATION`] beyond its restart instead of merely marked down; a
    /// device already on probation stays evicted (the episode extends —
    /// a crash must never *upgrade* an evicted device to merely down, or
    /// its eventual return would not count as a re-admission).
    pub fn on_crash(&mut self, _at: SimTime, restart_at: SimTime) {
        self.crashes += 1;
        self.consecutive_failures += 1;
        // Overlapping outages extend, never shorten, the current one.
        let floor = self.next_transition().unwrap_or(SimTime::ZERO);
        let already_evicted = matches!(self.state, HealthState::Evicted { .. });
        if already_evicted || self.consecutive_failures >= FAILURE_THRESHOLD {
            // One eviction episode, however many crashes land inside it.
            if !already_evicted {
                self.evictions += 1;
            }
            self.state = HealthState::Evicted {
                until: (restart_at + PROBATION).max(floor),
            };
        } else {
            self.state = HealthState::Down {
                until: restart_at.max(floor),
            };
        }
    }

    /// Processes the pending restart / probation-end transition. Evicted
    /// devices count a re-admission. The failure streak is *not* forgiven
    /// here — only successful service does that — so a device flapping
    /// across restarts still accumulates toward eviction.
    pub fn on_restart(&mut self) {
        if matches!(self.state, HealthState::Evicted { .. }) {
            self.readmissions += 1;
            // A re-admitted device starts its streak fresh; re-evicting
            // it should take a full new run of failures.
            self.consecutive_failures = 0;
        }
        self.state = HealthState::Up;
    }

    /// Records a completed service of `latency` ending at `now`. Returns
    /// `true` when this observation pushed the latency EWMA past
    /// [`SLOW_FACTOR`]× baseline and the device was evicted.
    pub fn on_success(&mut self, latency: SimTime, now: SimTime) -> bool {
        self.consecutive_failures = 0;
        let obs = latency.as_millis_f64();
        let baseline = *self.baseline_ms.get_or_insert(obs);
        let ewma = match self.ewma_ms {
            Some(prev) => (1.0 - EWMA_ALPHA) * prev + EWMA_ALPHA * obs,
            None => obs,
        };
        if baseline > 0.0 && ewma > SLOW_FACTOR * baseline {
            // Evict and reset the EWMA to baseline so the device gets a
            // fresh chance after probation instead of re-evicting on its
            // first post-probation sample.
            self.ewma_ms = Some(baseline);
            self.evictions += 1;
            self.state = HealthState::Evicted {
                until: now + PROBATION,
            };
            true
        } else {
            self.ewma_ms = Some(ewma);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn crash_marks_down_until_restart() {
        let mut h = DeviceHealth::new();
        assert!(h.is_up(ms(0)));
        h.on_crash(ms(100), ms(150));
        assert_eq!(h.state(), HealthState::Down { until: ms(150) });
        assert!(!h.is_up(ms(120)));
        assert!(h.is_up(ms(150)), "pure query reads up once lapsed");
        h.on_restart();
        assert_eq!(h.state(), HealthState::Up);
        assert_eq!((h.crashes, h.evictions, h.readmissions), (1, 0, 0));
    }

    #[test]
    fn flapping_device_is_evicted_then_readmitted() {
        let mut h = DeviceHealth::new();
        h.on_crash(ms(100), ms(110));
        h.on_restart();
        h.on_crash(ms(200), ms(210));
        h.on_restart();
        // Third consecutive crash with no success in between: evicted.
        h.on_crash(ms(300), ms(310));
        assert_eq!(
            h.state(),
            HealthState::Evicted {
                until: ms(310) + PROBATION
            }
        );
        assert_eq!(h.evictions, 1);
        h.on_restart();
        assert_eq!(h.readmissions, 1);
        assert_eq!(h.state(), HealthState::Up);
    }

    #[test]
    fn success_forgives_the_streak() {
        let mut h = DeviceHealth::new();
        h.on_crash(ms(100), ms(110));
        h.on_restart();
        h.on_crash(ms(200), ms(210));
        h.on_restart();
        assert!(!h.on_success(ms(5), ms(250)));
        // The streak reset: two more crashes stay below the threshold.
        h.on_crash(ms(300), ms(310));
        assert_eq!(h.evictions, 0);
        assert_eq!(h.state(), HealthState::Down { until: ms(310) });
    }

    #[test]
    fn slow_drift_evicts_and_recovers() {
        let mut h = DeviceHealth::new();
        assert!(!h.on_success(ms(10), ms(100)), "baseline sample");
        let mut evicted = false;
        let mut now = ms(100);
        for _ in 0..40 {
            now += ms(100);
            if h.on_success(ms(100), now) {
                evicted = true;
                break;
            }
        }
        assert!(evicted, "10x-baseline latency must trip the EWMA");
        assert_eq!(h.evictions, 1);
        assert_eq!(
            h.state(),
            HealthState::Evicted {
                until: now + PROBATION
            }
        );
        h.on_restart();
        assert_eq!(h.readmissions, 1);
        // EWMA was reset to baseline: a healthy sample does not re-evict.
        assert!(!h.on_success(ms(10), now + PROBATION + ms(10)));
    }

    #[test]
    fn crash_during_probation_extends_the_eviction() {
        let mut h = DeviceHealth::new();
        // Slow-evicted: the streak is zero (the evicting observation was
        // a *successful* service), so a later crash must not downgrade
        // the state to merely Down.
        assert!(!h.on_success(ms(10), ms(100)));
        for i in 0..40u64 {
            if h.on_success(ms(100), ms(200 + 100 * i)) {
                break;
            }
        }
        assert!(matches!(h.state(), HealthState::Evicted { .. }));
        assert_eq!(h.evictions, 1);
        h.on_crash(ms(4300), ms(4400));
        assert!(
            matches!(h.state(), HealthState::Evicted { .. }),
            "a crash on probation must keep the device evicted"
        );
        assert_eq!(h.evictions, 1, "same episode, not a new eviction");
        h.on_restart();
        assert_eq!(h.readmissions, 1);
        assert_eq!(h.state(), HealthState::Up);
    }

    #[test]
    fn overlapping_outages_extend() {
        let mut h = DeviceHealth::new();
        h.on_crash(ms(100), ms(500));
        h.on_crash(ms(200), ms(300));
        // The second, shorter outage must not shorten the first.
        assert_eq!(h.state(), HealthState::Down { until: ms(500) });
    }
}
