//! Admission control: bounded per-device queues, deadlines, backpressure.
//!
//! The paper's replayer owns the whole GPU while it runs, so a device can
//! execute exactly one replay at a time; everything else must wait in a
//! queue or be turned away. This module models the waiting room: a
//! bounded FIFO per device. When every eligible queue is full the fleet
//! *rejects* the request with a retry-after hint (backpressure to the
//! client) rather than queueing unboundedly, and requests whose deadline
//! expires before they reach the GPU are *timed out* and accounted, never
//! silently dropped.

use grt_sim::SimTime;
use std::collections::VecDeque;

/// One inference request entering the serving system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Unique, monotonically increasing id (also seeds the input data).
    pub id: u64,
    /// Index into the fleet's model catalog.
    pub model: usize,
    /// Arrival time on the serving timeline.
    pub arrival: SimTime,
    /// Latest acceptable service *start*; a request still queued past
    /// this instant is timed out.
    pub deadline: SimTime,
}

/// A rejected request: the backpressure signal the client receives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Id of the rejected request.
    pub id: u64,
    /// Model the request asked for.
    pub model: usize,
    /// When the rejection happened.
    pub at: SimTime,
    /// Hint: how long the client should back off before retrying.
    pub retry_after: SimTime,
}

/// A bounded FIFO of admitted-but-not-yet-served requests.
#[derive(Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    queue: VecDeque<Request>,
    peak_depth: usize,
    admitted: u64,
}

impl AdmissionQueue {
    /// Creates a queue holding at most `capacity` waiting requests.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            capacity,
            queue: VecDeque::new(),
            peak_depth: 0,
            admitted: 0,
        }
    }

    /// Admits a request, or gives it back if the queue is full.
    pub fn try_push(&mut self, request: Request) -> Result<(), Request> {
        if self.queue.len() >= self.capacity {
            return Err(request);
        }
        self.queue.push_back(request);
        self.admitted += 1;
        self.peak_depth = self.peak_depth.max(self.queue.len());
        Ok(())
    }

    /// The next request to serve, if any.
    pub fn pop_front(&mut self) -> Option<Request> {
        self.queue.pop_front()
    }

    /// Peeks the head of the queue.
    pub fn front(&self) -> Option<&Request> {
        self.queue.front()
    }

    /// When the head request could start on a device free at `free_at`
    /// (the later of the device freeing up and the request arriving), or
    /// `None` when the queue is empty. Both fleet schedulers derive their
    /// service events from this one rule, so they cannot diverge on it.
    pub fn next_service_start(&self, free_at: SimTime) -> Option<SimTime> {
        self.queue.front().map(|head| free_at.max(head.arrival))
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deepest the queue ever got (for reports).
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Total requests ever admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64) -> Request {
        Request {
            id,
            model: 0,
            arrival: SimTime::from_millis(id),
            deadline: SimTime::from_secs(1),
        }
    }

    #[test]
    fn bounded_fifo_order() {
        let mut q = AdmissionQueue::new(2);
        q.try_push(req(1)).unwrap();
        q.try_push(req(2)).unwrap();
        // Full: the third request bounces back intact.
        let bounced = q.try_push(req(3)).unwrap_err();
        assert_eq!(bounced.id, 3);
        assert!(q.is_full());
        assert_eq!(q.pop_front().unwrap().id, 1);
        q.try_push(req(4)).unwrap();
        assert_eq!(q.pop_front().unwrap().id, 2);
        assert_eq!(q.pop_front().unwrap().id, 4);
        assert!(q.pop_front().is_none());
    }

    #[test]
    fn accounting_counters() {
        let mut q = AdmissionQueue::new(3);
        for i in 0..3 {
            q.try_push(req(i)).unwrap();
        }
        assert_eq!(q.peak_depth(), 3);
        assert_eq!(q.admitted(), 3);
        q.pop_front();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak_depth(), 3);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut q = AdmissionQueue::new(0);
        assert!(q.try_push(req(1)).is_err());
        assert!(q.is_full());
        assert!(q.is_empty());
    }
}
