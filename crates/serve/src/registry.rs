//! The recording registry: record once, replay fleet-wide.
//!
//! A recording is only valid for the exact `(network, GPU SKU)` pair it
//! was dry-run against (§2.4: subtle SKU differences break replay), so
//! the registry caches signed recordings under that key. On a miss it
//! *records on demand*: it drives a full [`RecordSession`] over the
//! configured network link — the serving system's cold-start cost, which
//! the DES charges to the unlucky first request. Signatures are verified
//! once, on insert; every later fetch hands out the same shared,
//! already-vetted recording. Bounded capacity with LRU eviction models a
//! registry node that cannot hold every model × SKU product.

use grt_attest::{AttestationExport, ExportEntry, ProvenanceRecord, VerifyError};
use grt_core::recording::SignedRecording;
use grt_core::replay::REPLAY_POLL_ITER_CAP;
use grt_core::session::{
    recording_trust_root, RecordError, RecordSession, RecorderMode, PROVISIONING_SECRET,
};
use grt_core::CompiledRecording;
use grt_crypto::Sha256;
use grt_gpu::GpuSku;
use grt_lint::{LintReport, Linter};
use grt_ml::NetworkSpec;
use grt_net::NetConditions;
use grt_sim::{FaultPlan, SimTime};
use std::rc::Rc;

/// Registry sizing and cold-start recording parameters.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Maximum cached recordings; on overflow the least-recently-used
    /// entry is evicted.
    pub capacity: usize,
    /// Link conditions a cold-start record session runs over.
    pub conditions: NetConditions,
    /// Recorder build used for cold starts.
    pub mode: RecorderMode,
    /// Fault schedule injected into every cold-start record tunnel
    /// (windows are relative to each session's own timeline). `None`
    /// records over the shaped-but-fault-free link.
    pub faults: Option<Rc<FaultPlan>>,
}

impl RegistryConfig {
    /// A registry of `capacity` entries recording over WiFi with the full
    /// GR-T recorder.
    pub fn new(capacity: usize) -> Self {
        RegistryConfig {
            capacity,
            conditions: NetConditions::wifi(),
            mode: RecorderMode::OursMDS,
            faults: None,
        }
    }
}

/// Counters the registry exposes (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Fetches served from cache.
    pub hits: u64,
    /// Fetches that required a cold-start record.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Recordings signature-verified at insert (once per insert, never
    /// per fetch).
    pub verified_inserts: u64,
    /// Recordings statically analyzed at insert (once per insert; the
    /// verdict is cached with the entry).
    pub linted_inserts: u64,
    /// Recordings lowered into their compiled replay form at insert (once
    /// per insert; the compiled form is cached with the entry, so fetches
    /// never pay parse/validate/decompress again — DESIGN.md §9).
    pub compiled_inserts: u64,
    /// Recordings refused because static analysis found a rule violation.
    pub lint_rejections: u64,
    /// Provenance records built and signed at insert (one per entry).
    pub provenance_records: u64,
    /// Externally shipped recordings refused because their provenance
    /// record was missing, unsigned, or mismatched.
    pub provenance_rejections: u64,
    /// Message retransmissions across all cold-start record tunnels.
    pub record_retries: u64,
    /// Checkpoint-rollback resumes across all cold-start record tunnels
    /// (layer boundaries replayed after a link failure healed).
    pub checkpoint_resumes: u64,
}

impl RegistryStats {
    /// Hit ratio over all fetches (1.0 when nothing was fetched).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Everything a cold-start record run produces for one cache insert:
/// the signed recording, its weight-slot count, the lint verdict, the
/// compiled replay form, the signed provenance record, and the virtual
/// time the run took.
type ColdRecord = (
    Rc<SignedRecording>,
    usize,
    Rc<LintReport>,
    Rc<CompiledRecording>,
    Rc<ProvenanceRecord>,
    SimTime,
);

/// What insert-time vetting produces for one entry.
type Vetted = (
    usize,
    Rc<LintReport>,
    Rc<CompiledRecording>,
    Rc<ProvenanceRecord>,
);

/// What a fetch returned.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// The verified recording (shared; cloning is cheap).
    pub recording: Rc<SignedRecording>,
    /// Number of weight slots the recording stages.
    pub weight_slots: usize,
    /// The cached lint verdict: the full report from the insert-time
    /// static analysis (always `passed()` — failing recordings never
    /// enter the cache).
    pub lint: Rc<LintReport>,
    /// The recording lowered once at insert for the fast replay path
    /// (shared; warm replays use this directly).
    pub compiled: Rc<CompiledRecording>,
    /// The signed provenance record built (or accepted) at insert; fleet
    /// devices chain their replay receipts to it.
    pub provenance: Rc<ProvenanceRecord>,
    /// Virtual time the cold-start record run took; `None` on a hit.
    pub cold_start_delay: Option<SimTime>,
}

impl FetchOutcome {
    /// The replay cost budget R9 certified at insert time. Cached entries
    /// always passed the analyzer, so this is `Some` for every fetch; the
    /// scheduler can admission-control replays against it without touching
    /// the recording.
    pub fn certified_budget(&self) -> Option<grt_lint::CertifiedBudget> {
        self.lint.budget
    }
}

struct Entry {
    key: (String, u32),
    recording: Rc<SignedRecording>,
    weight_slots: usize,
    /// Insert-time lint report, handed out with every fetch.
    lint: Rc<LintReport>,
    /// Insert-time compiled form, handed out with every fetch.
    compiled: Rc<CompiledRecording>,
    /// Insert-time signed provenance record, handed out with every fetch.
    provenance: Rc<ProvenanceRecord>,
    last_used: u64,
}

/// The LRU recording cache plus on-demand recorder.
pub struct RecordingRegistry {
    cfg: RegistryConfig,
    entries: Vec<Entry>,
    tick: u64,
    stats: RegistryStats,
    record_time: SimTime,
}

impl RecordingRegistry {
    /// Creates an empty registry.
    pub fn new(cfg: RegistryConfig) -> Self {
        assert!(cfg.capacity > 0, "registry capacity must be positive");
        RecordingRegistry {
            cfg,
            entries: Vec::new(),
            tick: 0,
            stats: RegistryStats::default(),
            record_time: SimTime::ZERO,
        }
    }

    /// Fetches the recording for `(spec, sku)`, recording it cold first
    /// if absent. The returned `cold_start_delay` is the virtual time the
    /// record run took — the caller charges it to whoever waited.
    pub fn fetch(&mut self, spec: &NetworkSpec, sku: &GpuSku) -> Result<FetchOutcome, RecordError> {
        self.tick += 1;
        let key = (spec.name.to_owned(), sku.gpu_id);
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.last_used = self.tick;
            self.stats.hits += 1;
            return Ok(FetchOutcome {
                recording: Rc::clone(&e.recording),
                weight_slots: e.weight_slots,
                lint: Rc::clone(&e.lint),
                compiled: Rc::clone(&e.compiled),
                provenance: Rc::clone(&e.provenance),
                cold_start_delay: None,
            });
        }
        self.stats.misses += 1;
        let (recording, weight_slots, lint, compiled, provenance, delay) =
            self.record_cold(spec, sku)?;
        self.insert(
            key,
            Rc::clone(&recording),
            weight_slots,
            Rc::clone(&lint),
            Rc::clone(&compiled),
            Rc::clone(&provenance),
        );
        Ok(FetchOutcome {
            recording,
            weight_slots,
            lint,
            compiled,
            provenance,
            cold_start_delay: Some(delay),
        })
    }

    /// Pre-populates the `(spec, sku)` entry without counting a hit or a
    /// miss (warming a registry ahead of traffic).
    pub fn warm(&mut self, spec: &NetworkSpec, sku: &GpuSku) -> Result<(), RecordError> {
        self.tick += 1;
        let key = (spec.name.to_owned(), sku.gpu_id);
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.last_used = self.tick;
            return Ok(());
        }
        let (recording, weight_slots, lint, compiled, provenance, _) =
            self.record_cold(spec, sku)?;
        self.insert(key, recording, weight_slots, lint, compiled, provenance);
        Ok(())
    }

    /// Whether `(spec, sku)` is currently cached (does not touch LRU
    /// state or counters).
    pub fn contains(&self, spec: &NetworkSpec, sku: &GpuSku) -> bool {
        self.entries
            .iter()
            .any(|e| e.key.0 == spec.name && e.key.1 == sku.gpu_id)
    }

    /// Current number of cached recordings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RegistryStats {
        self.stats
    }

    /// Zeroes the counters and record-time accumulator while keeping the
    /// cached entries — per-pass accounting when a warmed registry is
    /// reused across runs.
    pub fn reset_stats(&mut self) {
        self.stats = RegistryStats::default();
        self.record_time = SimTime::ZERO;
    }

    /// Total virtual time spent in cold-start record runs.
    pub fn record_time(&self) -> SimTime {
        self.record_time
    }

    /// Runs the cold-start record session, then verifies and lints the
    /// result once.
    fn record_cold(&mut self, spec: &NetworkSpec, sku: &GpuSku) -> Result<ColdRecord, RecordError> {
        let mut session = RecordSession::new(sku.clone(), self.cfg.conditions, self.cfg.mode);
        if let Some(plan) = &self.cfg.faults {
            session.attach_faults(plan);
        }
        let out = session.record(spec)?;
        let (weight_slots, lint, compiled, provenance) = self.vet(spec, sku, &out.recording)?;
        self.stats.record_retries += out.link_retries;
        self.stats.checkpoint_resumes += out.checkpoint_resumes;
        self.record_time += out.delay;
        Ok((
            Rc::new(out.recording),
            weight_slots,
            lint,
            compiled,
            provenance,
            out.delay,
        ))
    }

    /// Verify-once-and-lint-once-on-insert: a recording that fails the
    /// signature or static analysis never enters the cache (and would be
    /// refused again in every TEE). The registry has the `NetworkSpec` in
    /// hand, so its lint is *stricter* than the replayer's gate: R4/R6
    /// also check shapes and layer counts against the spec.
    fn vet(
        &mut self,
        spec: &NetworkSpec,
        sku: &GpuSku,
        recording: &SignedRecording,
    ) -> Result<Vetted, RecordError> {
        let parsed = recording
            .verify_and_parse(&recording_trust_root())
            .ok_or(RecordError::Attestation)?;
        self.stats.verified_inserts += 1;
        // Lift the recording to the semantics IR exactly once: the static
        // analysis proves R1-R9 over it, and the compiled form lowers from
        // it — both consume the same decode of the same bytes.
        let ir = grt_core::ir::lift_recording(&parsed, sku.pte_quirk);
        let report = Linter::new().lint_ir(&ir, sku, Some(spec));
        self.stats.linted_inserts += 1;
        if let Some(d) = report.first_error() {
            self.stats.lint_rejections += 1;
            return Err(RecordError::Rejected {
                rule: d.rule.id().to_owned(),
                message: d.message.clone(),
            });
        }
        // Lower once, cache beside the verdict (which carries the R9
        // certified budget): the compiled form reproduces the linted
        // recording event-for-event, so the R1-R9 verdict carries over to
        // every replay of it.
        let compiled = grt_core::compiled::compile_from_ir(&parsed, ir, REPLAY_POLL_ITER_CAP)
            .map_err(|e| RecordError::Rejected {
                rule: "compile".to_owned(),
                message: e.to_string(),
            })?;
        self.stats.compiled_inserts += 1;
        // Sign the provenance record binding the recording bytes, the SKU,
        // and the lint verdict together; fleet devices chain their replay
        // receipts to it and auditors verify against the registry export.
        let provenance = ProvenanceRecord::build(
            "registry",
            spec.name,
            sku.gpu_id,
            Sha256::digest(&recording.bytes),
            Sha256::digest(report.to_json().as_bytes()),
            PROVISIONING_SECRET,
        );
        self.stats.provenance_records += 1;
        Ok((
            parsed.weights.len(),
            Rc::new(report),
            Rc::new(compiled),
            Rc::new(provenance),
        ))
    }

    /// Inserts an externally produced signed recording (e.g. shipped from
    /// another registry node) under `(spec, sku)`, subject to the same
    /// verify-and-lint-on-insert policy as cold-start recordings — plus
    /// the provenance policy: the shipper must present a signed
    /// [`ProvenanceRecord`] whose recording digest, SKU, and lint digest
    /// all match what this registry recomputes locally. A recording with
    /// missing, unsigned, or mismatched provenance is refused with
    /// [`RecordError::Provenance`].
    pub fn insert_signed(
        &mut self,
        spec: &NetworkSpec,
        sku: &GpuSku,
        recording: SignedRecording,
        provenance: Option<ProvenanceRecord>,
    ) -> Result<(), RecordError> {
        self.tick += 1;
        let Some(prov) = provenance else {
            self.stats.provenance_rejections += 1;
            return Err(provenance_err(VerifyError::MissingProvenance));
        };
        let (weight_slots, lint, compiled, _local) = self.vet(spec, sku, &recording)?;
        if let Err(e) = check_shipped_provenance(&prov, spec, sku, &recording, &lint) {
            self.stats.provenance_rejections += 1;
            return Err(provenance_err(e));
        }
        let key = (spec.name.to_owned(), sku.gpu_id);
        self.entries.retain(|e| e.key != key);
        self.insert(
            key,
            Rc::new(recording),
            weight_slots,
            lint,
            compiled,
            Rc::new(prov),
        );
        Ok(())
    }

    /// Exports every cached entry's audit data — recording digest, lint
    /// report JSON, signed provenance record — as the deterministic
    /// container the offline `receipt-verify` tool consumes.
    pub fn export_attestation(&self) -> AttestationExport {
        AttestationExport::new(
            self.entries
                .iter()
                .map(|e| ExportEntry {
                    workload: e.key.0.clone(),
                    gpu_id: e.key.1,
                    recording_digest: e.provenance.recording_digest,
                    lint_json: e.lint.to_json(),
                    provenance: (*e.provenance).clone(),
                })
                .collect(),
        )
    }

    fn insert(
        &mut self,
        key: (String, u32),
        recording: Rc<SignedRecording>,
        weight_slots: usize,
        lint: Rc<LintReport>,
        compiled: Rc<CompiledRecording>,
        provenance: Rc<ProvenanceRecord>,
    ) {
        if self.entries.len() >= self.cfg.capacity {
            // Evict the least-recently-used entry (deterministic: ticks
            // are unique).
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("capacity > 0 implies a resident entry");
            self.entries.remove(lru);
            self.stats.evictions += 1;
        }
        self.entries.push(Entry {
            key,
            recording,
            weight_slots,
            lint,
            compiled,
            provenance,
            last_used: self.tick,
        });
    }
}

/// Maps a provenance verification failure into the registry's typed
/// refusal, preserving the stable rule code for metrics bucketing.
fn provenance_err(e: VerifyError) -> RecordError {
    RecordError::Provenance {
        code: e.code().to_owned(),
        message: e.to_string(),
    }
}

/// Checks a shipped provenance record against what the registry just
/// recomputed locally: authentic signature, matching SKU and workload,
/// matching recording digest, matching lint digest.
fn check_shipped_provenance(
    prov: &ProvenanceRecord,
    spec: &NetworkSpec,
    sku: &GpuSku,
    recording: &SignedRecording,
    lint: &LintReport,
) -> Result<(), VerifyError> {
    if !prov.verify(PROVISIONING_SECRET) {
        return Err(VerifyError::ProvenanceSignature);
    }
    if prov.gpu_id != sku.gpu_id {
        return Err(VerifyError::SkuMismatch {
            receipt: sku.gpu_id,
            provenance: prov.gpu_id,
        });
    }
    if prov.workload != spec.name {
        return Err(VerifyError::Malformed {
            what: "provenance workload",
        });
    }
    if prov.recording_digest != Sha256::digest(&recording.bytes) {
        return Err(VerifyError::RecordingDigestMismatch);
    }
    if prov.lint_digest != Sha256::digest(lint.to_json().as_bytes()) {
        return Err(VerifyError::LintDigestMismatch);
    }
    Ok(())
}

impl std::fmt::Debug for RecordingRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingRegistry")
            .field("entries", &self.entries.len())
            .field("capacity", &self.cfg.capacity)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(capacity: usize) -> RecordingRegistry {
        RecordingRegistry::new(RegistryConfig::new(capacity))
    }

    #[test]
    fn miss_records_then_hit_reuses() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let first = r.fetch(&spec, &sku).unwrap();
        assert!(first.cold_start_delay.is_some());
        assert!(first.weight_slots > 0);
        let second = r.fetch(&spec, &sku).unwrap();
        assert!(second.cold_start_delay.is_none());
        // Same shared recording, verified exactly once.
        assert!(Rc::ptr_eq(&first.recording, &second.recording));
        let s = r.stats();
        assert_eq!((s.hits, s.misses, s.verified_inserts), (1, 1, 1));
    }

    #[test]
    fn fetch_carries_the_certified_budget() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let cold = r.fetch(&spec, &sku).unwrap();
        let budget = cold.certified_budget().expect("insert-time R9 budget");
        assert!(budget.macs > 0 && budget.poll_iters > 0);
        let env = sku.cost_envelope();
        assert!(budget.macs <= env.max_macs && budget.poll_iters <= env.max_poll_iters);
        // The hit hands out the same cached report, budget included.
        let warm = r.fetch(&spec, &sku).unwrap();
        assert_eq!(warm.certified_budget(), Some(budget));
    }

    #[test]
    fn sku_keys_are_distinct() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let a = r.fetch(&spec, &GpuSku::mali_g71_mp8()).unwrap();
        let b = r.fetch(&spec, &GpuSku::mali_g71_mp4()).unwrap();
        assert!(b.cold_start_delay.is_some(), "different SKU is a miss");
        let pa = a
            .recording
            .verify_and_parse(&recording_trust_root())
            .unwrap();
        let pb = b
            .recording
            .verify_and_parse(&recording_trust_root())
            .unwrap();
        assert_ne!(pa.gpu_id, pb.gpu_id);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut r = registry(2);
        let mnist = grt_ml::zoo::mnist();
        let sku8 = GpuSku::mali_g71_mp8();
        let sku4 = GpuSku::mali_g71_mp4();
        r.fetch(&mnist, &sku8).unwrap(); // entry A
        r.fetch(&mnist, &sku4).unwrap(); // entry B
        r.fetch(&mnist, &sku8).unwrap(); // touch A → B is now LRU
        r.fetch(&mnist, &GpuSku::mali_g72_mp12()).unwrap(); // evicts B
        assert!(r.contains(&mnist, &sku8));
        assert!(!r.contains(&mnist, &sku4));
        assert_eq!(r.stats().evictions, 1);
        // B misses again.
        let again = r.fetch(&mnist, &sku4).unwrap();
        assert!(again.cold_start_delay.is_some());
    }

    #[test]
    fn lint_verdict_is_cached_with_the_entry() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let first = r.fetch(&spec, &sku).unwrap();
        assert!(first.lint.passed());
        assert_eq!(first.lint.workload, spec.name);
        let second = r.fetch(&spec, &sku).unwrap();
        // The verdict is analyzed once and shared, like the recording.
        assert!(Rc::ptr_eq(&first.lint, &second.lint));
        assert_eq!(r.stats().linted_inserts, 1);
        assert_eq!(r.stats().lint_rejections, 0);
    }

    #[test]
    fn compiled_form_is_cached_with_the_entry() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let first = r.fetch(&spec, &sku).unwrap();
        assert!(first.compiled.num_events() > 0);
        assert_eq!(first.compiled.workload, spec.name);
        let second = r.fetch(&spec, &sku).unwrap();
        // Lowered once and shared, like the recording and the verdict.
        assert!(Rc::ptr_eq(&first.compiled, &second.compiled));
        assert_eq!(r.stats().compiled_inserts, 1);
    }

    #[test]
    fn insert_refuses_recording_that_fails_lint() {
        use grt_core::recording::Event;
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        // A well-signed recording with one out-of-whitelist register write
        // appended — exactly what a compromised cloud stack could ship.
        let good = r.fetch(&spec, &sku).unwrap();
        let key = recording_trust_root();
        let mut rec = good.recording.verify_and_parse(&key).unwrap();
        rec.events.push(Event::RegWrite {
            offset: 0x4000,
            value: 0xDEAD,
        });
        let evil = grt_core::recording::SignedRecording::sign(&rec, &key);
        // Ship it with a formally valid provenance record: the lint gate
        // still refuses it first.
        let prov = ProvenanceRecord::build(
            "other-registry",
            spec.name,
            sku.gpu_id,
            Sha256::digest(&evil.bytes),
            [0u8; 32],
            PROVISIONING_SECRET,
        );
        let err = r.insert_signed(&spec, &sku, evil, Some(prov)).unwrap_err();
        match err {
            RecordError::Rejected { rule, .. } => assert_eq!(rule, "R1"),
            other => panic!("expected lint rejection, got {other}"),
        }
        assert_eq!(r.stats().lint_rejections, 1);
        // The previously cached good entry is untouched.
        assert!(r.contains(&spec, &sku));
        assert!(r.fetch(&spec, &sku).unwrap().lint.passed());
    }

    #[test]
    fn insert_signed_accepts_and_replaces_good_recording() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let good = r.fetch(&spec, &sku).unwrap();
        let shipped = (*good.recording).clone();
        let prov = (*good.provenance).clone();
        r.insert_signed(&spec, &sku, shipped, Some(prov)).unwrap();
        assert_eq!(r.len(), 1, "replaced, not duplicated");
        assert_eq!(r.stats().linted_inserts, 2);
    }

    #[test]
    fn insert_signed_refuses_missing_provenance() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let good = r.fetch(&spec, &sku).unwrap();
        let shipped = (*good.recording).clone();
        let err = r.insert_signed(&spec, &sku, shipped, None).unwrap_err();
        match err {
            RecordError::Provenance { code, .. } => assert_eq!(code, "missing-provenance"),
            other => panic!("expected provenance refusal, got {other}"),
        }
        assert_eq!(r.stats().provenance_rejections, 1);
    }

    #[test]
    fn insert_signed_refuses_mismatched_lint_digest() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let good = r.fetch(&spec, &sku).unwrap();
        let shipped = (*good.recording).clone();
        // A provenance record claiming a different lint verdict.
        let prov = ProvenanceRecord::build(
            "other-registry",
            spec.name,
            sku.gpu_id,
            Sha256::digest(&shipped.bytes),
            Sha256::digest(b"forged lint report"),
            PROVISIONING_SECRET,
        );
        let err = r
            .insert_signed(&spec, &sku, shipped, Some(prov))
            .unwrap_err();
        match err {
            RecordError::Provenance { code, .. } => assert_eq!(code, "lint-digest-mismatch"),
            other => panic!("expected provenance refusal, got {other}"),
        }
        assert_eq!(r.stats().provenance_rejections, 1);
        // The previously cached good entry is untouched.
        assert!(r.contains(&spec, &sku));
    }

    #[test]
    fn insert_signed_refuses_unsigned_provenance() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let good = r.fetch(&spec, &sku).unwrap();
        let shipped = (*good.recording).clone();
        let mut prov = (*good.provenance).clone();
        prov.recorder = "mallory".to_string(); // invalidates the signature
        let err = r
            .insert_signed(&spec, &sku, shipped, Some(prov))
            .unwrap_err();
        match err {
            RecordError::Provenance { code, .. } => assert_eq!(code, "provenance-signature"),
            other => panic!("expected provenance refusal, got {other}"),
        }
    }

    #[test]
    fn provenance_covers_recording_and_lint_verdict() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let f = r.fetch(&spec, &sku).unwrap();
        assert!(f.provenance.verify(PROVISIONING_SECRET));
        assert_eq!(f.provenance.recorder, "registry");
        assert_eq!(f.provenance.workload, spec.name);
        assert_eq!(f.provenance.gpu_id, sku.gpu_id);
        assert_eq!(
            f.provenance.recording_digest,
            Sha256::digest(&f.recording.bytes)
        );
        assert_eq!(
            f.provenance.lint_digest,
            Sha256::digest(f.lint.to_json().as_bytes())
        );
        // The compiled form carries the same digest the receipts will.
        assert_eq!(f.compiled.recording_digest(), f.provenance.recording_digest);
        assert_eq!(r.stats().provenance_records, 1);
    }

    #[test]
    fn attestation_export_round_trips_deterministically() {
        let mut r = registry(4);
        let mnist = grt_ml::zoo::mnist();
        let sku8 = GpuSku::mali_g71_mp8();
        let sku4 = GpuSku::mali_g71_mp4();
        r.warm(&mnist, &sku8).unwrap();
        r.warm(&mnist, &sku4).unwrap();
        let export = r.export_attestation();
        assert_eq!(export.entries().len(), 2);
        let restored = AttestationExport::from_bytes(&export.to_bytes()).unwrap();
        assert_eq!(export, restored);
        // Insertion order does not leak into the encoding: a registry
        // warmed in the opposite order exports identical bytes.
        let mut r2 = registry(4);
        r2.warm(&mnist, &sku4).unwrap();
        r2.warm(&mnist, &sku8).unwrap();
        assert_eq!(r2.export_attestation().to_bytes(), export.to_bytes());
    }

    #[test]
    fn cold_start_survives_fault_plan() {
        // A partition landing mid-record and outlasting the whole retry
        // ladder forces retransmissions and a checkpoint resume, but the
        // fetch still completes and the recording is indistinguishable
        // from a fault-free one.
        let mut cfg = RegistryConfig::new(4);
        cfg.faults = Some(Rc::new(
            grt_sim::FaultPlan::new()
                .with_partition(SimTime::from_millis(800), SimTime::from_millis(3000)),
        ));
        let mut faulted = RecordingRegistry::new(cfg);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let out = faulted.fetch(&spec, &sku).unwrap();
        assert!(out.cold_start_delay.is_some());
        let s = faulted.stats();
        assert!(s.record_retries > 0, "partition must cost retransmissions");
        assert!(s.checkpoint_resumes > 0, "mid-run partition must resume");

        let mut clean = registry(4);
        let base = clean.fetch(&spec, &sku).unwrap();
        assert_eq!(
            base.recording.wire_blob(),
            out.recording.wire_blob(),
            "recovered recording must be byte-identical"
        );
    }

    #[test]
    fn warm_counts_neither_hit_nor_miss() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        r.warm(&spec, &sku).unwrap();
        assert_eq!(r.stats().hits + r.stats().misses, 0);
        assert_eq!(r.stats().verified_inserts, 1);
        let f = r.fetch(&spec, &sku).unwrap();
        assert!(f.cold_start_delay.is_none());
        assert_eq!(r.stats().hits, 1);
    }
}
