//! The recording registry: record once, replay fleet-wide.
//!
//! A recording is only valid for the exact `(network, GPU SKU)` pair it
//! was dry-run against (§2.4: subtle SKU differences break replay), so
//! the registry caches signed recordings under that key. On a miss it
//! *records on demand*: it drives a full [`RecordSession`] over the
//! configured network link — the serving system's cold-start cost, which
//! the DES charges to the unlucky first request. Signatures are verified
//! once, on insert; every later fetch hands out the same shared,
//! already-vetted recording. Bounded capacity with LRU eviction models a
//! registry node that cannot hold every model × SKU product.
//!
//! **Sharding.** The registry is split into independent shards addressed
//! by an FNV-1a hash of the `(network, GPU_ID)` key
//! ([`RegistryConfig::with_shards`]; the default of one shard preserves
//! the single-LRU behaviour). Each shard owns its own entry list, LRU
//! clock, stats counters, and record-time accumulator, so a fleet-scale
//! run's hot keys don't contend on one list and per-shard load is
//! observable ([`RecordingRegistry::shard_stats`]). The aggregate
//! counters ([`RecordingRegistry::stats`]) are the sum over shards, and
//! the attestation export is shard-order independent (entries are sorted
//! by key).

use grt_attest::{AttestationExport, ExportEntry, ProvenanceRecord, VerifyError};
use grt_core::recording::SignedRecording;
use grt_core::replay::REPLAY_POLL_ITER_CAP;
use grt_core::session::{
    recording_trust_root, RecordError, RecordSession, RecorderMode, PROVISIONING_SECRET,
};
use grt_core::CompiledRecording;
use grt_crypto::Sha256;
use grt_gpu::GpuSku;
use grt_lint::{LintReport, Linter};
use grt_ml::NetworkSpec;
use grt_net::NetConditions;
use grt_sim::{FaultPlan, SimTime};
use std::rc::Rc;

/// Registry sizing and cold-start recording parameters.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Maximum cached recordings across all shards; on overflow a shard
    /// evicts its least-recently-used entry.
    pub capacity: usize,
    /// Link conditions a cold-start record session runs over.
    pub conditions: NetConditions,
    /// Recorder build used for cold starts.
    pub mode: RecorderMode,
    /// Fault schedule injected into every cold-start record tunnel
    /// (windows are relative to each session's own timeline). `None`
    /// records over the shaped-but-fault-free link.
    pub faults: Option<Rc<FaultPlan>>,
    /// Number of independent shards the `(network, GPU_ID)` key space is
    /// hashed over. 1 (the default) is a single global LRU.
    pub shards: usize,
}

impl RegistryConfig {
    /// A registry of `capacity` entries recording over WiFi with the full
    /// GR-T recorder, unsharded.
    pub fn new(capacity: usize) -> Self {
        RegistryConfig {
            capacity,
            conditions: NetConditions::wifi(),
            mode: RecorderMode::OursMDS,
            faults: None,
            shards: 1,
        }
    }

    /// Splits the key space over `shards` independent LRUs. The total
    /// capacity is divided as evenly as possible — the first
    /// `capacity % shards` shards take one extra slot so the per-shard
    /// capacities sum exactly to `capacity` — and each shard keeps at
    /// least one slot.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// Counters the registry exposes (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Fetches served from cache.
    pub hits: u64,
    /// Fetches that required a cold-start record.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Recordings signature-verified at insert (once per insert, never
    /// per fetch).
    pub verified_inserts: u64,
    /// Recordings statically analyzed at insert (once per insert; the
    /// verdict is cached with the entry).
    pub linted_inserts: u64,
    /// Recordings lowered into their compiled replay form at insert (once
    /// per insert; the compiled form is cached with the entry, so fetches
    /// never pay parse/validate/decompress again — DESIGN.md §9).
    pub compiled_inserts: u64,
    /// Superinstruction chains fused across all compiled inserts
    /// (DESIGN.md §15): every fetch of those entries replays with the
    /// cached fusion plan.
    pub fused_chains: u64,
    /// Job dialog windows (absorbed tails + identity copies) elided from
    /// the warm path across all compiled inserts.
    pub fused_jobs_elided: u64,
    /// Recordings refused because static analysis found a rule violation.
    pub lint_rejections: u64,
    /// Provenance records built and signed at insert (one per entry).
    pub provenance_records: u64,
    /// Externally shipped recordings refused because their provenance
    /// record was missing, unsigned, or mismatched.
    pub provenance_rejections: u64,
    /// Message retransmissions across all cold-start record tunnels.
    pub record_retries: u64,
    /// Checkpoint-rollback resumes across all cold-start record tunnels
    /// (layer boundaries replayed after a link failure healed).
    pub checkpoint_resumes: u64,
}

impl RegistryStats {
    /// Hit ratio over all fetches (1.0 when nothing was fetched).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Adds `other`'s counters into `self` (for cross-shard aggregation).
    pub fn absorb(&mut self, other: &RegistryStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.verified_inserts += other.verified_inserts;
        self.linted_inserts += other.linted_inserts;
        self.compiled_inserts += other.compiled_inserts;
        self.fused_chains += other.fused_chains;
        self.fused_jobs_elided += other.fused_jobs_elided;
        self.lint_rejections += other.lint_rejections;
        self.provenance_records += other.provenance_records;
        self.provenance_rejections += other.provenance_rejections;
        self.record_retries += other.record_retries;
        self.checkpoint_resumes += other.checkpoint_resumes;
    }
}

/// Everything a cold-start record run produces for one cache insert:
/// the signed recording, its weight-slot count, the lint verdict, the
/// compiled replay form, the signed provenance record, and the virtual
/// time the run took.
type ColdRecord = (
    Rc<SignedRecording>,
    usize,
    Rc<LintReport>,
    Rc<CompiledRecording>,
    Rc<ProvenanceRecord>,
    SimTime,
);

/// What insert-time vetting produces for one entry.
type Vetted = (
    usize,
    Rc<LintReport>,
    Rc<CompiledRecording>,
    Rc<ProvenanceRecord>,
);

/// What a fetch returned.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// The verified recording (shared; cloning is cheap).
    pub recording: Rc<SignedRecording>,
    /// Number of weight slots the recording stages.
    pub weight_slots: usize,
    /// The cached lint verdict: the full report from the insert-time
    /// static analysis (always `passed()` — failing recordings never
    /// enter the cache).
    pub lint: Rc<LintReport>,
    /// The recording lowered once at insert for the fast replay path
    /// (shared; warm replays use this directly).
    pub compiled: Rc<CompiledRecording>,
    /// The signed provenance record built (or accepted) at insert; fleet
    /// devices chain their replay receipts to it.
    pub provenance: Rc<ProvenanceRecord>,
    /// Virtual time the cold-start record run took; `None` on a hit.
    pub cold_start_delay: Option<SimTime>,
}

impl FetchOutcome {
    /// The replay cost budget R9 certified at insert time. Cached entries
    /// always passed the analyzer, so this is `Some` for every fetch; the
    /// scheduler can admission-control replays against it without touching
    /// the recording.
    pub fn certified_budget(&self) -> Option<grt_lint::CertifiedBudget> {
        self.lint.budget
    }
}

#[derive(Clone)]
struct Entry {
    key: (String, u32),
    recording: Rc<SignedRecording>,
    weight_slots: usize,
    /// Insert-time lint report, handed out with every fetch.
    lint: Rc<LintReport>,
    /// Insert-time compiled form, handed out with every fetch.
    compiled: Rc<CompiledRecording>,
    /// Insert-time signed provenance record, handed out with every fetch.
    provenance: Rc<ProvenanceRecord>,
    last_used: u64,
}

impl Entry {
    fn outcome(&self, cold_start_delay: Option<SimTime>) -> FetchOutcome {
        FetchOutcome {
            recording: Rc::clone(&self.recording),
            weight_slots: self.weight_slots,
            lint: Rc::clone(&self.lint),
            compiled: Rc::clone(&self.compiled),
            provenance: Rc::clone(&self.provenance),
            cold_start_delay,
        }
    }
}

/// One independent slice of the key space: entries, LRU clock, stats.
#[derive(Clone)]
struct Shard {
    entries: Vec<Entry>,
    capacity: usize,
    tick: u64,
    stats: RegistryStats,
    record_time: SimTime,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            entries: Vec::new(),
            capacity,
            tick: 0,
            stats: RegistryStats::default(),
            record_time: SimTime::ZERO,
        }
    }

    fn insert(
        &mut self,
        key: (String, u32),
        recording: Rc<SignedRecording>,
        weight_slots: usize,
        lint: Rc<LintReport>,
        compiled: Rc<CompiledRecording>,
        provenance: Rc<ProvenanceRecord>,
    ) {
        if self.entries.len() >= self.capacity {
            // Evict the shard's least-recently-used entry (deterministic:
            // ticks are unique within a shard).
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("capacity > 0 implies a resident entry");
            self.entries.remove(lru);
            self.stats.evictions += 1;
        }
        self.entries.push(Entry {
            key,
            recording,
            weight_slots,
            lint,
            compiled,
            provenance,
            last_used: self.tick,
        });
    }
}

/// The sharded LRU recording cache plus on-demand recorder.
#[derive(Clone)]
pub struct RecordingRegistry {
    cfg: RegistryConfig,
    shards: Vec<Shard>,
}

/// FNV-1a over the `(network, GPU_ID)` key — a stable, dependency-free
/// shard router.
fn shard_hash(name: &str, gpu_id: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes().iter().chain(gpu_id.to_le_bytes().iter()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl RecordingRegistry {
    /// Creates an empty registry.
    pub fn new(cfg: RegistryConfig) -> Self {
        assert!(cfg.capacity > 0, "registry capacity must be positive");
        let n = cfg.shards.max(1);
        // Distribute the configured capacity exactly: the first
        // `capacity % n` shards take one extra slot, so the per-shard
        // capacities sum to `capacity` (never silently rounded down to
        // `n * floor(capacity / n)`), with every shard keeping at least
        // one slot even when `capacity < n`.
        let base = cfg.capacity / n;
        let rem = cfg.capacity % n;
        let shards = (0..n)
            .map(|i| Shard::new((base + usize::from(i < rem)).max(1)))
            .collect();
        RecordingRegistry { cfg, shards }
    }

    /// Per-shard entry capacities, in shard order. They sum to the
    /// configured capacity whenever `capacity >= shards`.
    pub fn shard_capacities(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.capacity).collect()
    }

    /// Shard index the `(spec, sku)` key routes to.
    pub fn shard_of(&self, spec: &NetworkSpec, sku: &GpuSku) -> usize {
        (shard_hash(spec.name, sku.gpu_id) % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard counter snapshots, in shard order.
    pub fn shard_stats(&self) -> Vec<RegistryStats> {
        self.shards.iter().map(|s| s.stats).collect()
    }

    /// Per-shard resident entry counts, in shard order.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.entries.len()).collect()
    }

    /// Fetches the recording for `(spec, sku)`, recording it cold first
    /// if absent. The returned `cold_start_delay` is the virtual time the
    /// record run took — the caller charges it to whoever waited.
    pub fn fetch(&mut self, spec: &NetworkSpec, sku: &GpuSku) -> Result<FetchOutcome, RecordError> {
        let si = self.shard_of(spec, sku);
        let shard = &mut self.shards[si];
        shard.tick += 1;
        let key = (spec.name.to_owned(), sku.gpu_id);
        if let Some(e) = shard.entries.iter_mut().find(|e| e.key == key) {
            e.last_used = shard.tick;
            shard.stats.hits += 1;
            return Ok(e.outcome(None));
        }
        shard.stats.misses += 1;
        let (recording, weight_slots, lint, compiled, provenance, delay) = record_cold(
            &self.cfg,
            &mut shard.stats,
            &mut shard.record_time,
            spec,
            sku,
        )?;
        shard.insert(
            key,
            Rc::clone(&recording),
            weight_slots,
            Rc::clone(&lint),
            Rc::clone(&compiled),
            Rc::clone(&provenance),
        );
        Ok(FetchOutcome {
            recording,
            weight_slots,
            lint,
            compiled,
            provenance,
            cold_start_delay: Some(delay),
        })
    }

    /// Pre-populates the `(spec, sku)` entry without counting a hit or a
    /// miss (warming a registry ahead of traffic).
    pub fn warm(&mut self, spec: &NetworkSpec, sku: &GpuSku) -> Result<(), RecordError> {
        let si = self.shard_of(spec, sku);
        let shard = &mut self.shards[si];
        shard.tick += 1;
        let key = (spec.name.to_owned(), sku.gpu_id);
        if let Some(e) = shard.entries.iter_mut().find(|e| e.key == key) {
            e.last_used = shard.tick;
            return Ok(());
        }
        let mut warm_stats = shard.stats;
        let (recording, weight_slots, lint, compiled, provenance, _) = record_cold(
            &self.cfg,
            &mut warm_stats,
            &mut shard.record_time,
            spec,
            sku,
        )?;
        shard.stats = warm_stats;
        shard.insert(key, recording, weight_slots, lint, compiled, provenance);
        Ok(())
    }

    /// Whether `(spec, sku)` is currently cached (does not touch LRU
    /// state or counters).
    pub fn contains(&self, spec: &NetworkSpec, sku: &GpuSku) -> bool {
        self.shards[self.shard_of(spec, sku)]
            .entries
            .iter()
            .any(|e| e.key.0 == spec.name && e.key.1 == sku.gpu_id)
    }

    /// Current number of cached recordings across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot, aggregated over all shards.
    pub fn stats(&self) -> RegistryStats {
        let mut total = RegistryStats::default();
        for s in &self.shards {
            total.absorb(&s.stats);
        }
        total
    }

    /// Zeroes the counters and record-time accumulators while keeping the
    /// cached entries — per-pass accounting when a warmed registry is
    /// reused across runs.
    pub fn reset_stats(&mut self) {
        for s in &mut self.shards {
            s.stats = RegistryStats::default();
            s.record_time = SimTime::ZERO;
        }
    }

    /// Total virtual time spent in cold-start record runs.
    pub fn record_time(&self) -> SimTime {
        self.shards
            .iter()
            .fold(SimTime::ZERO, |acc, s| acc + s.record_time)
    }

    /// Inserts an externally produced signed recording (e.g. shipped from
    /// another registry node) under `(spec, sku)`, subject to the same
    /// verify-and-lint-on-insert policy as cold-start recordings — plus
    /// the provenance policy: the shipper must present a signed
    /// [`ProvenanceRecord`] whose recording digest, SKU, and lint digest
    /// all match what this registry recomputes locally. A recording with
    /// missing, unsigned, or mismatched provenance is refused with
    /// [`RecordError::Provenance`].
    pub fn insert_signed(
        &mut self,
        spec: &NetworkSpec,
        sku: &GpuSku,
        recording: SignedRecording,
        provenance: Option<ProvenanceRecord>,
    ) -> Result<(), RecordError> {
        let si = self.shard_of(spec, sku);
        let shard = &mut self.shards[si];
        shard.tick += 1;
        let Some(prov) = provenance else {
            shard.stats.provenance_rejections += 1;
            return Err(provenance_err(VerifyError::MissingProvenance));
        };
        let (weight_slots, lint, compiled, _local) = vet(&mut shard.stats, spec, sku, &recording)?;
        if let Err(e) = check_shipped_provenance(&prov, spec, sku, &recording, &lint) {
            shard.stats.provenance_rejections += 1;
            return Err(provenance_err(e));
        }
        let key = (spec.name.to_owned(), sku.gpu_id);
        shard.entries.retain(|e| e.key != key);
        shard.insert(
            key,
            Rc::new(recording),
            weight_slots,
            lint,
            compiled,
            Rc::new(prov),
        );
        Ok(())
    }

    /// Exports every cached entry's audit data — recording digest, lint
    /// report JSON, signed provenance record — as the deterministic
    /// container the offline `receipt-verify` tool consumes. Entries are
    /// sorted by key inside the export, so the shard layout never leaks
    /// into the encoding.
    pub fn export_attestation(&self) -> AttestationExport {
        AttestationExport::new(
            self.shards
                .iter()
                .flat_map(|s| s.entries.iter())
                .map(|e| ExportEntry {
                    workload: e.key.0.clone(),
                    gpu_id: e.key.1,
                    recording_digest: e.provenance.recording_digest,
                    lint_json: e.lint.to_json(),
                    provenance: (*e.provenance).clone(),
                })
                .collect(),
        )
    }
}

/// Runs the cold-start record session, then verifies and lints the
/// result once, charging counters to the owning shard.
fn record_cold(
    cfg: &RegistryConfig,
    stats: &mut RegistryStats,
    record_time: &mut SimTime,
    spec: &NetworkSpec,
    sku: &GpuSku,
) -> Result<ColdRecord, RecordError> {
    let mut session = RecordSession::new(sku.clone(), cfg.conditions, cfg.mode);
    if let Some(plan) = &cfg.faults {
        session.attach_faults(plan);
    }
    let out = session.record(spec)?;
    let (weight_slots, lint, compiled, provenance) = vet(stats, spec, sku, &out.recording)?;
    stats.record_retries += out.link_retries;
    stats.checkpoint_resumes += out.checkpoint_resumes;
    *record_time += out.delay;
    Ok((
        Rc::new(out.recording),
        weight_slots,
        lint,
        compiled,
        provenance,
        out.delay,
    ))
}

/// Verify-once-and-lint-once-on-insert: a recording that fails the
/// signature or static analysis never enters the cache (and would be
/// refused again in every TEE). The registry has the `NetworkSpec` in
/// hand, so its lint is *stricter* than the replayer's gate: R4/R6
/// also check shapes and layer counts against the spec.
fn vet(
    stats: &mut RegistryStats,
    spec: &NetworkSpec,
    sku: &GpuSku,
    recording: &SignedRecording,
) -> Result<Vetted, RecordError> {
    let parsed = recording
        .verify_and_parse(&recording_trust_root())
        .ok_or(RecordError::Attestation)?;
    stats.verified_inserts += 1;
    // Lift the recording to the semantics IR exactly once: the static
    // analysis proves R1-R9 over it, and the compiled form lowers from
    // it — both consume the same decode of the same bytes.
    let ir = grt_core::ir::lift_recording(&parsed, sku.pte_quirk);
    let report = Linter::new().lint_ir(&ir, sku, Some(spec));
    stats.linted_inserts += 1;
    if let Some(d) = report.first_error() {
        stats.lint_rejections += 1;
        return Err(RecordError::Rejected {
            rule: d.rule.id().to_owned(),
            message: d.message.clone(),
        });
    }
    // Lower once, cache beside the verdict (which carries the R9
    // certified budget): the compiled form reproduces the linted
    // recording event-for-event, so the R1-R9 verdict carries over to
    // every replay of it.
    let compiled =
        grt_core::compiled::compile_from_ir(&parsed, ir, REPLAY_POLL_ITER_CAP).map_err(|e| {
            RecordError::Rejected {
                rule: "compile".to_owned(),
                message: e.to_string(),
            }
        })?;
    stats.compiled_inserts += 1;
    let fusion = compiled.fusion_summary();
    stats.fused_chains += fusion.chains_fused as u64;
    stats.fused_jobs_elided += fusion.jobs_elided as u64;
    // Sign the provenance record binding the recording bytes, the SKU,
    // and the lint verdict together; fleet devices chain their replay
    // receipts to it and auditors verify against the registry export.
    let provenance = ProvenanceRecord::build(
        "registry",
        spec.name,
        sku.gpu_id,
        Sha256::digest(&recording.bytes),
        Sha256::digest(report.to_json().as_bytes()),
        PROVISIONING_SECRET,
    );
    stats.provenance_records += 1;
    Ok((
        parsed.weights.len(),
        Rc::new(report),
        Rc::new(compiled),
        Rc::new(provenance),
    ))
}

/// Maps a provenance verification failure into the registry's typed
/// refusal, preserving the stable rule code for metrics bucketing.
fn provenance_err(e: VerifyError) -> RecordError {
    RecordError::Provenance {
        code: e.code().to_owned(),
        message: e.to_string(),
    }
}

/// Checks a shipped provenance record against what the registry just
/// recomputed locally: authentic signature, matching SKU and workload,
/// matching recording digest, matching lint digest.
fn check_shipped_provenance(
    prov: &ProvenanceRecord,
    spec: &NetworkSpec,
    sku: &GpuSku,
    recording: &SignedRecording,
    lint: &LintReport,
) -> Result<(), VerifyError> {
    if !prov.verify(PROVISIONING_SECRET) {
        return Err(VerifyError::ProvenanceSignature);
    }
    if prov.gpu_id != sku.gpu_id {
        return Err(VerifyError::SkuMismatch {
            receipt: sku.gpu_id,
            provenance: prov.gpu_id,
        });
    }
    if prov.workload != spec.name {
        return Err(VerifyError::Malformed {
            what: "provenance workload",
        });
    }
    if prov.recording_digest != Sha256::digest(&recording.bytes) {
        return Err(VerifyError::RecordingDigestMismatch);
    }
    if prov.lint_digest != Sha256::digest(lint.to_json().as_bytes()) {
        return Err(VerifyError::LintDigestMismatch);
    }
    Ok(())
}

impl std::fmt::Debug for RecordingRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingRegistry")
            .field("entries", &self.len())
            .field("capacity", &self.cfg.capacity)
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(capacity: usize) -> RecordingRegistry {
        RecordingRegistry::new(RegistryConfig::new(capacity))
    }

    #[test]
    fn miss_records_then_hit_reuses() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let first = r.fetch(&spec, &sku).unwrap();
        assert!(first.cold_start_delay.is_some());
        assert!(first.weight_slots > 0);
        let second = r.fetch(&spec, &sku).unwrap();
        assert!(second.cold_start_delay.is_none());
        // Same shared recording, verified exactly once.
        assert!(Rc::ptr_eq(&first.recording, &second.recording));
        let s = r.stats();
        assert_eq!((s.hits, s.misses, s.verified_inserts), (1, 1, 1));
    }

    #[test]
    fn fetch_carries_the_certified_budget() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let cold = r.fetch(&spec, &sku).unwrap();
        let budget = cold.certified_budget().expect("insert-time R9 budget");
        assert!(budget.macs > 0 && budget.poll_iters > 0);
        let env = sku.cost_envelope();
        assert!(budget.macs <= env.max_macs && budget.poll_iters <= env.max_poll_iters);
        // The hit hands out the same cached report, budget included.
        let warm = r.fetch(&spec, &sku).unwrap();
        assert_eq!(warm.certified_budget(), Some(budget));
    }

    #[test]
    fn sku_keys_are_distinct() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let a = r.fetch(&spec, &GpuSku::mali_g71_mp8()).unwrap();
        let b = r.fetch(&spec, &GpuSku::mali_g71_mp4()).unwrap();
        assert!(b.cold_start_delay.is_some(), "different SKU is a miss");
        let pa = a
            .recording
            .verify_and_parse(&recording_trust_root())
            .unwrap();
        let pb = b
            .recording
            .verify_and_parse(&recording_trust_root())
            .unwrap();
        assert_ne!(pa.gpu_id, pb.gpu_id);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn lru_evicts_coldest() {
        let mut r = registry(2);
        let mnist = grt_ml::zoo::mnist();
        let sku8 = GpuSku::mali_g71_mp8();
        let sku4 = GpuSku::mali_g71_mp4();
        r.fetch(&mnist, &sku8).unwrap(); // entry A
        r.fetch(&mnist, &sku4).unwrap(); // entry B
        r.fetch(&mnist, &sku8).unwrap(); // touch A → B is now LRU
        r.fetch(&mnist, &GpuSku::mali_g72_mp12()).unwrap(); // evicts B
        assert!(r.contains(&mnist, &sku8));
        assert!(!r.contains(&mnist, &sku4));
        assert_eq!(r.stats().evictions, 1);
        // B misses again.
        let again = r.fetch(&mnist, &sku4).unwrap();
        assert!(again.cold_start_delay.is_some());
    }

    #[test]
    fn sharded_registry_partitions_keys_and_stats() {
        let mnist = grt_ml::zoo::mnist();
        let skus = [
            GpuSku::mali_g71_mp8(),
            GpuSku::mali_g71_mp4(),
            GpuSku::mali_g72_mp12(),
            GpuSku::mali_g76_mp10(),
        ];
        let mut r = RecordingRegistry::new(RegistryConfig::new(16).with_shards(4));
        assert_eq!(r.shard_count(), 4);
        for sku in &skus {
            r.fetch(&mnist, sku).unwrap();
            r.fetch(&mnist, sku).unwrap(); // hit on the same shard
        }
        assert_eq!(r.len(), 4);
        // Aggregates are exactly the sum of the shard-local counters.
        let agg = r.stats();
        let mut summed = RegistryStats::default();
        for s in r.shard_stats() {
            summed.absorb(&s);
        }
        assert_eq!(agg, summed);
        assert_eq!((agg.hits, agg.misses), (4, 4));
        // Every entry lives on exactly the shard its key hashes to.
        for sku in &skus {
            assert!(r.contains(&mnist, sku));
            let si = r.shard_of(&mnist, sku);
            assert!(r.shard_lens()[si] > 0, "entry must live on its shard");
        }
        assert_eq!(r.shard_lens().iter().sum::<usize>(), r.len());
    }

    #[test]
    fn shard_capacities_sum_exactly_to_configured_capacity() {
        // Regression: `capacity / shards` used to round every shard down,
        // so capacity 10 over 4 shards yielded 8 usable slots — two
        // entries' worth of LRU headroom silently gone. The remainder now
        // lands on the first shards.
        for (capacity, shards) in [
            (10usize, 4usize),
            (7, 3),
            (5, 2),
            (9, 8),
            (13, 5),
            (64, 7),
            (12, 4), // divisible: unchanged
            (1, 1),
        ] {
            let r = RecordingRegistry::new(RegistryConfig::new(capacity).with_shards(shards));
            let caps = r.shard_capacities();
            assert_eq!(caps.len(), shards);
            assert_eq!(
                caps.iter().sum::<usize>(),
                capacity,
                "capacity {capacity} over {shards} shards must not shrink (got {caps:?})"
            );
            assert!(caps.iter().all(|&c| c >= 1));
            // Even split: no shard more than one slot above another.
            let (min, max) = (caps.iter().min().unwrap(), caps.iter().max().unwrap());
            assert!(max - min <= 1, "uneven split {caps:?}");
        }
        // Degenerate case capacity < shards: every shard keeps one slot.
        let r = RecordingRegistry::new(RegistryConfig::new(3).with_shards(5));
        assert_eq!(r.shard_capacities(), vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn shard_routing_is_deterministic_and_eviction_is_shard_local() {
        let mnist = grt_ml::zoo::mnist();
        let sku8 = GpuSku::mali_g71_mp8();
        // Per-shard capacity 1 (capacity 2 over 2 shards): a second entry
        // on the *same* shard evicts, entries on other shards never do.
        let mut r = RecordingRegistry::new(RegistryConfig::new(2).with_shards(2));
        let si = r.shard_of(&mnist, &sku8);
        assert_eq!(si, r.shard_of(&mnist, &sku8), "routing is stable");
        r.fetch(&mnist, &sku8).unwrap();
        // Find a SKU on the same shard and one on the other shard.
        let pool = [
            GpuSku::mali_g71_mp4(),
            GpuSku::mali_g72_mp12(),
            GpuSku::mali_g76_mp10(),
        ];
        let same = pool.iter().find(|s| r.shard_of(&mnist, s) == si);
        let other = pool.iter().find(|s| r.shard_of(&mnist, s) != si);
        if let Some(other) = other {
            r.fetch(&mnist, other).unwrap();
            assert_eq!(r.stats().evictions, 0, "cross-shard insert must not evict");
            assert!(r.contains(&mnist, &sku8));
        }
        if let Some(same) = same {
            r.fetch(&mnist, same).unwrap();
            assert_eq!(r.stats().evictions, 1, "same-shard overflow evicts");
            assert!(!r.contains(&mnist, &sku8), "LRU entry left its shard");
        }
    }

    #[test]
    fn cloned_registry_shares_entries_but_forks_state() {
        let mut r = registry(4);
        let mnist = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        r.warm(&mnist, &sku).unwrap();
        let mut fork = r.clone();
        // The clone serves the warmed entry without re-recording…
        let f = fork.fetch(&mnist, &sku).unwrap();
        assert!(f.cold_start_delay.is_none());
        // …and its counters are independent of the original's.
        assert_eq!(fork.stats().hits, 1);
        assert_eq!(r.stats().hits, 0);
    }

    #[test]
    fn lint_verdict_is_cached_with_the_entry() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let first = r.fetch(&spec, &sku).unwrap();
        assert!(first.lint.passed());
        assert_eq!(first.lint.workload, spec.name);
        let second = r.fetch(&spec, &sku).unwrap();
        // The verdict is analyzed once and shared, like the recording.
        assert!(Rc::ptr_eq(&first.lint, &second.lint));
        assert_eq!(r.stats().linted_inserts, 1);
        assert_eq!(r.stats().lint_rejections, 0);
    }

    #[test]
    fn compiled_form_is_cached_with_the_entry() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let first = r.fetch(&spec, &sku).unwrap();
        assert!(first.compiled.num_events() > 0);
        assert_eq!(first.compiled.workload, spec.name);
        let second = r.fetch(&spec, &sku).unwrap();
        // Lowered once and shared, like the recording and the verdict.
        assert!(Rc::ptr_eq(&first.compiled, &second.compiled));
        assert_eq!(r.stats().compiled_inserts, 1);
    }

    #[test]
    fn fusion_plan_is_cached_with_the_entry() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let first = r.fetch(&spec, &sku).unwrap();
        // The insert-time lowering fused chains, and the cached compiled
        // form carries the plan — every subsequent fetch (which shares
        // the same Rc) replays fused without re-analysis.
        let summary = first.compiled.fusion_summary();
        assert!(summary.chains_fused > 0);
        assert!(!first.compiled.fusion_plan().is_empty());
        assert_eq!(r.stats().fused_chains, summary.chains_fused as u64);
        assert_eq!(r.stats().fused_jobs_elided, summary.jobs_elided as u64);
        let second = r.fetch(&spec, &sku).unwrap();
        assert!(Rc::ptr_eq(&first.compiled, &second.compiled));
        // Fetches never re-lower, so the fusion counters are per insert.
        assert_eq!(r.stats().fused_chains, summary.chains_fused as u64);
    }

    #[test]
    fn insert_refuses_recording_that_fails_lint() {
        use grt_core::recording::Event;
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        // A well-signed recording with one out-of-whitelist register write
        // appended — exactly what a compromised cloud stack could ship.
        let good = r.fetch(&spec, &sku).unwrap();
        let key = recording_trust_root();
        let mut rec = good.recording.verify_and_parse(&key).unwrap();
        rec.events.push(Event::RegWrite {
            offset: 0x4000,
            value: 0xDEAD,
        });
        let evil = grt_core::recording::SignedRecording::sign(&rec, &key);
        // Ship it with a formally valid provenance record: the lint gate
        // still refuses it first.
        let prov = ProvenanceRecord::build(
            "other-registry",
            spec.name,
            sku.gpu_id,
            Sha256::digest(&evil.bytes),
            [0u8; 32],
            PROVISIONING_SECRET,
        );
        let err = r.insert_signed(&spec, &sku, evil, Some(prov)).unwrap_err();
        match err {
            RecordError::Rejected { rule, .. } => assert_eq!(rule, "R1"),
            other => panic!("expected lint rejection, got {other}"),
        }
        assert_eq!(r.stats().lint_rejections, 1);
        // The previously cached good entry is untouched.
        assert!(r.contains(&spec, &sku));
        assert!(r.fetch(&spec, &sku).unwrap().lint.passed());
    }

    #[test]
    fn insert_signed_accepts_and_replaces_good_recording() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let good = r.fetch(&spec, &sku).unwrap();
        let shipped = (*good.recording).clone();
        let prov = (*good.provenance).clone();
        r.insert_signed(&spec, &sku, shipped, Some(prov)).unwrap();
        assert_eq!(r.len(), 1, "replaced, not duplicated");
        assert_eq!(r.stats().linted_inserts, 2);
    }

    #[test]
    fn insert_signed_refuses_missing_provenance() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let good = r.fetch(&spec, &sku).unwrap();
        let shipped = (*good.recording).clone();
        let err = r.insert_signed(&spec, &sku, shipped, None).unwrap_err();
        match err {
            RecordError::Provenance { code, .. } => assert_eq!(code, "missing-provenance"),
            other => panic!("expected provenance refusal, got {other}"),
        }
        assert_eq!(r.stats().provenance_rejections, 1);
    }

    #[test]
    fn insert_signed_refuses_mismatched_lint_digest() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let good = r.fetch(&spec, &sku).unwrap();
        let shipped = (*good.recording).clone();
        // A provenance record claiming a different lint verdict.
        let prov = ProvenanceRecord::build(
            "other-registry",
            spec.name,
            sku.gpu_id,
            Sha256::digest(&shipped.bytes),
            Sha256::digest(b"forged lint report"),
            PROVISIONING_SECRET,
        );
        let err = r
            .insert_signed(&spec, &sku, shipped, Some(prov))
            .unwrap_err();
        match err {
            RecordError::Provenance { code, .. } => assert_eq!(code, "lint-digest-mismatch"),
            other => panic!("expected provenance refusal, got {other}"),
        }
        assert_eq!(r.stats().provenance_rejections, 1);
        // The previously cached good entry is untouched.
        assert!(r.contains(&spec, &sku));
    }

    #[test]
    fn insert_signed_refuses_unsigned_provenance() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let good = r.fetch(&spec, &sku).unwrap();
        let shipped = (*good.recording).clone();
        let mut prov = (*good.provenance).clone();
        prov.recorder = "mallory".to_string(); // invalidates the signature
        let err = r
            .insert_signed(&spec, &sku, shipped, Some(prov))
            .unwrap_err();
        match err {
            RecordError::Provenance { code, .. } => assert_eq!(code, "provenance-signature"),
            other => panic!("expected provenance refusal, got {other}"),
        }
    }

    #[test]
    fn provenance_covers_recording_and_lint_verdict() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let f = r.fetch(&spec, &sku).unwrap();
        assert!(f.provenance.verify(PROVISIONING_SECRET));
        assert_eq!(f.provenance.recorder, "registry");
        assert_eq!(f.provenance.workload, spec.name);
        assert_eq!(f.provenance.gpu_id, sku.gpu_id);
        assert_eq!(
            f.provenance.recording_digest,
            Sha256::digest(&f.recording.bytes)
        );
        assert_eq!(
            f.provenance.lint_digest,
            Sha256::digest(f.lint.to_json().as_bytes())
        );
        // The compiled form carries the same digest the receipts will.
        assert_eq!(f.compiled.recording_digest(), f.provenance.recording_digest);
        assert_eq!(r.stats().provenance_records, 1);
    }

    #[test]
    fn attestation_export_round_trips_deterministically() {
        let mut r = registry(4);
        let mnist = grt_ml::zoo::mnist();
        let sku8 = GpuSku::mali_g71_mp8();
        let sku4 = GpuSku::mali_g71_mp4();
        r.warm(&mnist, &sku8).unwrap();
        r.warm(&mnist, &sku4).unwrap();
        let export = r.export_attestation();
        assert_eq!(export.entries().len(), 2);
        let restored = AttestationExport::from_bytes(&export.to_bytes()).unwrap();
        assert_eq!(export, restored);
        // Insertion order does not leak into the encoding: a registry
        // warmed in the opposite order exports identical bytes.
        let mut r2 = registry(4);
        r2.warm(&mnist, &sku4).unwrap();
        r2.warm(&mnist, &sku8).unwrap();
        assert_eq!(r2.export_attestation().to_bytes(), export.to_bytes());
        // Neither does the shard layout: a sharded registry over the same
        // entries exports the same bytes.
        let mut r4 = RecordingRegistry::new(RegistryConfig::new(4).with_shards(3));
        r4.warm(&mnist, &sku8).unwrap();
        r4.warm(&mnist, &sku4).unwrap();
        assert_eq!(r4.export_attestation().to_bytes(), export.to_bytes());
    }

    #[test]
    fn cold_start_survives_fault_plan() {
        // A partition landing mid-record and outlasting the whole retry
        // ladder forces retransmissions and a checkpoint resume, but the
        // fetch still completes and the recording is indistinguishable
        // from a fault-free one.
        let mut cfg = RegistryConfig::new(4);
        cfg.faults = Some(Rc::new(
            grt_sim::FaultPlan::new()
                .with_partition(SimTime::from_millis(800), SimTime::from_millis(3000)),
        ));
        let mut faulted = RecordingRegistry::new(cfg);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        let out = faulted.fetch(&spec, &sku).unwrap();
        assert!(out.cold_start_delay.is_some());
        let s = faulted.stats();
        assert!(s.record_retries > 0, "partition must cost retransmissions");
        assert!(s.checkpoint_resumes > 0, "mid-run partition must resume");

        let mut clean = registry(4);
        let base = clean.fetch(&spec, &sku).unwrap();
        assert_eq!(
            base.recording.wire_blob(),
            out.recording.wire_blob(),
            "recovered recording must be byte-identical"
        );
    }

    #[test]
    fn warm_counts_neither_hit_nor_miss() {
        let mut r = registry(4);
        let spec = grt_ml::zoo::mnist();
        let sku = GpuSku::mali_g71_mp8();
        r.warm(&spec, &sku).unwrap();
        assert_eq!(r.stats().hits + r.stats().misses, 0);
        assert_eq!(r.stats().verified_inserts, 1);
        let f = r.fetch(&spec, &sku).unwrap();
        assert!(f.cold_start_delay.is_none());
        assert_eq!(r.stats().hits, 1);
    }
}
