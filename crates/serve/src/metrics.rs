//! Serving metrics: per-request latency decomposition, percentiles,
//! throughput, cache statistics — exported as deterministic JSON.
//!
//! Every number is derived from DES timestamps, so two runs with the same
//! seed and fleet produce bit-identical reports (asserted by
//! `tests/determinism.rs`). The JSON writer is hand-rolled for the same
//! reason the recording byte format is: no serialization framework in the
//! dependency tree, and full control over field order and float
//! formatting so the output is reproducible byte-for-byte.
//!
//! **Memory.** The collector is streaming: latency distributions go into
//! fixed-size [`QuantileSketch`]es and per-model means into incremental
//! accumulators, so cost per completed request is O(1) with no
//! allocation. Rejection/timeout/failover *event logs* (kept because the
//! determinism suite compares failover decisions verbatim and tests
//! inspect retry hints) are bounded by
//! [`MetricsCollector::with_log_cap`]; their counters (`rejected`,
//! `timed_out`, `failover_count`) always count every event regardless of
//! the cap, and fleet-scale runs cap the logs so memory stays bounded at
//! 10⁶ requests ([`MetricsCollector::approx_bytes`] asserts it).

use crate::admission::Rejection;
use crate::sketch::{QuantileSketch, SketchSummary};
use grt_sim::SimTime;

/// Latency percentiles (nearest-rank over the sampled population).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median.
    pub p50: SimTime,
    /// 95th percentile.
    pub p95: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
}

impl Percentiles {
    /// Computes exact nearest-rank percentiles by sorting; all-zero when
    /// `values` is empty. O(n log n) — this is the *oracle* the streaming
    /// sketch is property-tested against, not the serving path.
    pub fn of(values: &mut [SimTime]) -> Percentiles {
        values.sort_unstable();
        let pick = |p: f64| -> SimTime {
            if values.is_empty() {
                return SimTime::ZERO;
            }
            let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
            values[rank.clamp(1, values.len()) - 1]
        };
        Percentiles {
            p50: pick(50.0),
            p95: pick(95.0),
            p99: pick(99.0),
        }
    }

    /// Reads the streaming sketch's p50/p95/p99 (within the sketch's
    /// documented <1.6% rank-error bound of the exact values).
    pub fn from_sketch(sketch: &QuantileSketch) -> Percentiles {
        Percentiles {
            p50: sketch.quantile_permille(500),
            p95: sketch.quantile_permille(950),
            p99: sketch.quantile_permille(990),
        }
    }
}

/// One served request's latency decomposition.
#[derive(Debug, Clone)]
pub struct RequestSample {
    /// Request id.
    pub id: u64,
    /// Model index in the catalog.
    pub model: usize,
    /// Device that served it.
    pub device: usize,
    /// Time spent queued before service started.
    pub queue_wait: SimTime,
    /// Service time (staging + replay, plus any cold-start record).
    pub service: SimTime,
    /// End-to-end latency (queue_wait + service).
    pub total: SimTime,
    /// Whether this request paid a registry cold-start record.
    pub cold_start: bool,
}

/// A request that timed out in the queue (deadline passed before the GPU
/// was reached).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeoutRecord {
    /// Request id.
    pub id: u64,
    /// Model index.
    pub model: usize,
    /// The deadline that expired.
    pub expired_at: SimTime,
}

/// One request re-routed off a crashed or evicted device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverRecord {
    /// Request id.
    pub id: u64,
    /// Device the request was pulled from.
    pub from: usize,
    /// Device the request was re-queued on.
    pub to: usize,
    /// When the failover happened (the crash/eviction instant).
    pub at: SimTime,
}

/// Streaming per-model accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelAccum {
    /// Requests completed for this model.
    pub completed: u64,
    /// Sum of end-to-end latencies (for the mean).
    pub sum_total: SimTime,
}

/// Streaming event accumulator a fleet run feeds; reduced to a
/// [`ServeReport`] at the end. O(1) per completed request.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsCollector {
    /// Queue-wait latency sketch.
    pub queue_wait: QuantileSketch,
    /// Service-time latency sketch.
    pub service: QuantileSketch,
    /// End-to-end latency sketch.
    pub total: QuantileSketch,
    /// Completed requests.
    pub completed: u64,
    /// Completed requests that paid a registry cold-start record.
    pub cold_starts: u64,
    /// Sum of end-to-end latencies (for the mean).
    pub sum_total: SimTime,
    /// Per-model accumulators, indexed by catalog position (grown on
    /// first completion for a model; bounded by the catalog size).
    pub per_model: Vec<ModelAccum>,
    /// Every backpressure rejection, counted even when the log is capped.
    pub rejected: u64,
    /// Every queue timeout, counted even when the log is capped.
    pub timed_out: u64,
    /// Every failover, counted even when the log is capped.
    pub failover_count: u64,
    /// Backpressured requests (log; first `log_cap` events).
    pub rejections: Vec<Rejection>,
    /// Queue-timeout casualties (log; first `log_cap` events).
    pub timeouts: Vec<TimeoutRecord>,
    /// Requests re-routed off crashed/evicted devices, in event order —
    /// the fleet's failover decision log (compared verbatim by the
    /// determinism suite; first `log_cap` events).
    pub failovers: Vec<FailoverRecord>,
    /// Requests whose service failed outright (cold-start record error).
    pub failed: u64,
    /// FNV-1a digest over every replay output, in completion order — an
    /// end-to-end determinism witness.
    pub output_digest: u64,
    /// Replay receipts fetched from devices (one per completed request
    /// once the attestation chain is active).
    pub receipts_issued: u64,
    /// Receipts that passed full chain verification against the entry's
    /// provenance record (signatures, digests, lint digest, output bytes).
    pub receipts_verified: u64,
    /// Receipts rejected, bucketed by the stable
    /// `grt_attest::VerifyError::code` string (sorted map so the JSON
    /// export stays deterministic).
    pub receipts_rejected: std::collections::BTreeMap<String, u64>,
    /// Multi-request service intervals (one batched replay serving ≥ 2
    /// same-model requests; single-request intervals are not counted).
    pub batches: u64,
    /// Requests served inside those multi-request intervals.
    pub batched_requests: u64,
    /// Largest batch any single replay served.
    pub max_batch_served: usize,
    /// Per-log event cap (counters above are exact regardless).
    log_cap: usize,
}

impl Default for MetricsCollector {
    fn default() -> Self {
        MetricsCollector::with_log_cap(usize::MAX)
    }
}

impl MetricsCollector {
    /// A collector whose rejection/timeout/failover logs keep at most
    /// `log_cap` events each (all *counters* stay exact). Fleet-scale
    /// runs use a small cap so memory stays bounded; tests use
    /// `usize::MAX` (the [`Default`]) to inspect every event.
    pub fn with_log_cap(log_cap: usize) -> Self {
        MetricsCollector {
            queue_wait: QuantileSketch::new(),
            service: QuantileSketch::new(),
            total: QuantileSketch::new(),
            completed: 0,
            cold_starts: 0,
            sum_total: SimTime::ZERO,
            per_model: Vec::new(),
            rejected: 0,
            timed_out: 0,
            failover_count: 0,
            rejections: Vec::new(),
            timeouts: Vec::new(),
            failovers: Vec::new(),
            failed: 0,
            output_digest: 0,
            receipts_issued: 0,
            receipts_verified: 0,
            receipts_rejected: std::collections::BTreeMap::new(),
            batches: 0,
            batched_requests: 0,
            max_batch_served: 0,
            log_cap,
        }
    }

    /// Counts one service interval that served `size` requests through a
    /// single replay. Single-request intervals only update
    /// `max_batch_served`; multi-request intervals are real batches.
    pub fn record_batch(&mut self, size: usize) {
        self.max_batch_served = self.max_batch_served.max(size);
        if size >= 2 {
            self.batches += 1;
            self.batched_requests += size as u64;
        }
    }

    /// Folds one completed request into the sketches and accumulators.
    /// O(1), no allocation beyond the one-time per-model table growth.
    pub fn record_sample(&mut self, s: &RequestSample) {
        self.queue_wait.record(s.queue_wait);
        self.service.record(s.service);
        self.total.record(s.total);
        self.completed += 1;
        self.sum_total += s.total;
        if s.cold_start {
            self.cold_starts += 1;
        }
        if self.per_model.len() <= s.model {
            self.per_model.resize(s.model + 1, ModelAccum::default());
        }
        let acc = &mut self.per_model[s.model];
        acc.completed += 1;
        acc.sum_total += s.total;
    }

    /// Counts a rejection; logs it if the log is below the cap.
    pub fn record_rejection(&mut self, r: Rejection) {
        self.rejected += 1;
        if self.rejections.len() < self.log_cap {
            self.rejections.push(r);
        }
    }

    /// Counts a timeout; logs it if the log is below the cap.
    pub fn record_timeout(&mut self, t: TimeoutRecord) {
        self.timed_out += 1;
        if self.timeouts.len() < self.log_cap {
            self.timeouts.push(t);
        }
    }

    /// Counts a failover; logs it if the log is below the cap.
    pub fn record_failover(&mut self, f: FailoverRecord) {
        self.failover_count += 1;
        if self.failovers.len() < self.log_cap {
            self.failovers.push(f);
        }
    }

    /// Folds one replay output into the run digest.
    pub fn absorb_output(&mut self, bytes: &[u8]) {
        let mut h = if self.output_digest == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.output_digest
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.output_digest = h;
    }

    /// Resident size of the collector: three fixed sketches, the
    /// per-model table (bounded by the catalog), and the capped event
    /// logs. Independent of how many requests were served — the
    /// bounded-memory property the 10⁶-request bench asserts.
    pub fn approx_bytes(&self) -> usize {
        self.queue_wait.approx_bytes()
            + self.service.approx_bytes()
            + self.total.approx_bytes()
            + self.per_model.capacity() * std::mem::size_of::<ModelAccum>()
            + self.rejections.capacity() * std::mem::size_of::<Rejection>()
            + self.timeouts.capacity() * std::mem::size_of::<TimeoutRecord>()
            + self.failovers.capacity() * std::mem::size_of::<FailoverRecord>()
            + self
                .receipts_rejected
                .keys()
                .map(|k| k.len() + std::mem::size_of::<u64>())
                .sum::<usize>()
            + std::mem::size_of::<Self>()
    }
}

/// Per-model serving outcome.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Model name.
    pub name: String,
    /// Requests completed.
    pub completed: u64,
    /// Mean end-to-end latency.
    pub mean_total: SimTime,
}

/// Per-device serving outcome.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Device SKU name.
    pub sku: String,
    /// Requests completed.
    pub completed: u64,
    /// `LOAD_RECORDING` invocations (model switches; lower = better
    /// affinity batching).
    pub loads: u64,
    /// Time spent serving.
    pub busy: SimTime,
    /// Deepest queue observed.
    pub peak_queue_depth: usize,
}

/// The three latency-distribution sketch summaries of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySketches {
    /// Queue-wait distribution.
    pub queue_wait: SketchSummary,
    /// Service-time distribution.
    pub service: SketchSummary,
    /// End-to-end distribution.
    pub total: SketchSummary,
}

impl LatencySketches {
    /// Serializes with stable field order (byte-identical across runs).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"queue_wait\": {}, \"service\": {}, \"total\": {}}}",
            self.queue_wait.to_json(),
            self.service.to_json(),
            self.total.to_json()
        )
    }
}

/// The reduced, export-ready report of one fleet run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests offered to the fleet.
    pub submitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests rejected with backpressure.
    pub rejected: u64,
    /// Requests that timed out in queue.
    pub timed_out: u64,
    /// Requests whose service failed (cold-start record error).
    pub failed: u64,
    /// Virtual time from first arrival to last completion.
    pub makespan: SimTime,
    /// Completed requests per virtual second.
    pub throughput_rps: f64,
    /// Queue-wait percentiles (from the streaming sketch).
    pub queue_wait: Percentiles,
    /// Service-time percentiles (from the streaming sketch).
    pub service: Percentiles,
    /// End-to-end latency percentiles (from the streaming sketch).
    pub total: Percentiles,
    /// Mean end-to-end latency.
    pub mean_total: SimTime,
    /// Full latency-distribution summaries (count/min/mean/p50…p99.9/max
    /// per dimension).
    pub sketches: LatencySketches,
    /// Registry cold starts (record runs triggered by traffic).
    pub cold_starts: u64,
    /// Registry hits.
    pub cache_hits: u64,
    /// Registry misses.
    pub cache_misses: u64,
    /// Registry evictions.
    pub cache_evictions: u64,
    /// Registry hit ratio.
    pub cache_hit_ratio: f64,
    /// Virtual time spent in cold-start record runs.
    pub record_time: SimTime,
    /// Device crash outages that struck the fleet during the run.
    pub crashes: u64,
    /// Requests re-queued onto a healthy peer after a crash or eviction.
    pub failovers: u64,
    /// Devices taken out of scheduling (flapping or slow).
    pub evictions: u64,
    /// Devices returned to scheduling after probation.
    pub readmissions: u64,
    /// Message retransmissions across all cold-start record tunnels.
    pub rec_link_retries: u64,
    /// Checkpoint resumes across all cold-start record tunnels.
    pub rec_checkpoint_resumes: u64,
    /// Replay receipts fetched from devices.
    pub receipts_issued: u64,
    /// Receipts that passed full chain verification.
    pub receipts_verified: u64,
    /// Receipts rejected, bucketed by rule code (sorted; deterministic).
    pub receipts_rejected: std::collections::BTreeMap<String, u64>,
    /// Multi-request service intervals (one batched replay, ≥ 2 requests).
    pub batches: u64,
    /// Requests served inside multi-request intervals.
    pub batched_requests: u64,
    /// Largest batch any single replay served.
    pub max_batch_served: usize,
    /// Max concurrent replays observed on any one device (the paper's
    /// job-queue-length-1 invariant requires this to be exactly 1).
    pub max_inflight: u32,
    /// Replay-output determinism digest.
    pub output_digest: u64,
    /// Per-model breakdown (catalog order).
    pub per_model: Vec<ModelReport>,
    /// Per-device breakdown (fleet order).
    pub per_device: Vec<DeviceReport>,
}

fn ms(t: SimTime) -> String {
    format!("{:.6}", t.as_millis_f64())
}

fn pct(p: &Percentiles) -> String {
    format!(
        "{{\"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}}}",
        ms(p.p50),
        ms(p.p95),
        ms(p.p99)
    )
}

impl ServeReport {
    /// Serializes the report as JSON with stable field order and float
    /// formatting (bit-identical across identically-seeded runs).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        s.push_str(&format!("  \"submitted\": {},\n", self.submitted));
        s.push_str(&format!("  \"completed\": {},\n", self.completed));
        s.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        s.push_str(&format!("  \"timed_out\": {},\n", self.timed_out));
        s.push_str(&format!("  \"failed\": {},\n", self.failed));
        s.push_str(&format!("  \"makespan_ms\": {},\n", ms(self.makespan)));
        s.push_str(&format!(
            "  \"throughput_rps\": {:.6},\n",
            self.throughput_rps
        ));
        s.push_str(&format!("  \"queue_wait\": {},\n", pct(&self.queue_wait)));
        s.push_str(&format!("  \"service\": {},\n", pct(&self.service)));
        s.push_str(&format!("  \"total\": {},\n", pct(&self.total)));
        s.push_str(&format!("  \"mean_total_ms\": {},\n", ms(self.mean_total)));
        s.push_str(&format!(
            "  \"latency_sketch\": {},\n",
            self.sketches.to_json()
        ));
        s.push_str("  \"recording_cache\": {\n");
        s.push_str(&format!("    \"cold_starts\": {},\n", self.cold_starts));
        s.push_str(&format!("    \"hits\": {},\n", self.cache_hits));
        s.push_str(&format!("    \"misses\": {},\n", self.cache_misses));
        s.push_str(&format!("    \"evictions\": {},\n", self.cache_evictions));
        s.push_str(&format!(
            "    \"hit_ratio\": {:.6},\n",
            self.cache_hit_ratio
        ));
        s.push_str(&format!(
            "    \"record_time_ms\": {}\n",
            ms(self.record_time)
        ));
        s.push_str("  },\n");
        s.push_str("  \"fault_tolerance\": {\n");
        s.push_str(&format!("    \"crashes\": {},\n", self.crashes));
        s.push_str(&format!("    \"failovers\": {},\n", self.failovers));
        s.push_str(&format!("    \"evictions\": {},\n", self.evictions));
        s.push_str(&format!("    \"readmissions\": {},\n", self.readmissions));
        s.push_str(&format!(
            "    \"rec_link_retries\": {},\n",
            self.rec_link_retries
        ));
        s.push_str(&format!(
            "    \"rec_checkpoint_resumes\": {}\n",
            self.rec_checkpoint_resumes
        ));
        s.push_str("  },\n");
        s.push_str("  \"attestation\": {\n");
        s.push_str(&format!(
            "    \"receipts_issued\": {},\n",
            self.receipts_issued
        ));
        s.push_str(&format!(
            "    \"receipts_verified\": {},\n",
            self.receipts_verified
        ));
        s.push_str("    \"receipts_rejected\": {");
        for (i, (code, n)) in self.receipts_rejected.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{code}\": {n}"));
        }
        s.push_str("}\n");
        s.push_str("  },\n");
        s.push_str("  \"batching\": {\n");
        s.push_str(&format!("    \"batches\": {},\n", self.batches));
        s.push_str(&format!(
            "    \"batched_requests\": {},\n",
            self.batched_requests
        ));
        s.push_str(&format!(
            "    \"max_batch_served\": {}\n",
            self.max_batch_served
        ));
        s.push_str("  },\n");
        s.push_str(&format!("  \"max_inflight\": {},\n", self.max_inflight));
        s.push_str(&format!(
            "  \"output_digest\": \"{:016x}\",\n",
            self.output_digest
        ));
        s.push_str("  \"per_model\": [\n");
        for (i, m) in self.per_model.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"completed\": {}, \"mean_total_ms\": {}}}{}\n",
                m.name,
                m.completed,
                ms(m.mean_total),
                if i + 1 < self.per_model.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"per_device\": [\n");
        for (i, d) in self.per_device.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"sku\": \"{}\", \"completed\": {}, \"loads\": {}, \"busy_ms\": {}, \"peak_queue_depth\": {}}}{}\n",
                d.sku,
                d.completed,
                d.loads,
                ms(d.busy),
                d.peak_queue_depth,
                if i + 1 < self.per_device.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut v: Vec<SimTime> = (1..=100).map(t).collect();
        let p = Percentiles::of(&mut v);
        assert_eq!(p.p50, t(50));
        assert_eq!(p.p95, t(95));
        assert_eq!(p.p99, t(99));
    }

    #[test]
    fn percentiles_small_and_empty() {
        let mut one = vec![t(7)];
        let p = Percentiles::of(&mut one);
        assert_eq!((p.p50, p.p95, p.p99), (t(7), t(7), t(7)));
        let p = Percentiles::of(&mut []);
        assert_eq!(p.p50, SimTime::ZERO);
    }

    #[test]
    fn output_digest_is_order_sensitive() {
        let mut a = MetricsCollector::default();
        a.absorb_output(&[1, 2]);
        a.absorb_output(&[3]);
        let mut b = MetricsCollector::default();
        b.absorb_output(&[3]);
        b.absorb_output(&[1, 2]);
        assert_ne!(a.output_digest, b.output_digest);
        let mut c = MetricsCollector::default();
        c.absorb_output(&[1, 2]);
        c.absorb_output(&[3]);
        assert_eq!(a.output_digest, c.output_digest);
    }

    #[test]
    fn collector_streams_samples_into_sketches() {
        let mut m = MetricsCollector::default();
        for i in 1..=100u64 {
            m.record_sample(&RequestSample {
                id: i,
                model: (i % 3) as usize,
                device: 0,
                queue_wait: t(i),
                service: t(2 * i),
                total: t(3 * i),
                cold_start: i == 1,
            });
        }
        assert_eq!(m.completed, 100);
        assert_eq!(m.cold_starts, 1);
        assert_eq!(m.total.count(), 100);
        assert_eq!(m.per_model.len(), 3);
        assert_eq!(m.per_model.iter().map(|a| a.completed).sum::<u64>(), 100);
        // Aggregate mean matches the per-model decomposition.
        let per_model_sum = m
            .per_model
            .iter()
            .fold(SimTime::ZERO, |acc, a| acc + a.sum_total);
        assert_eq!(per_model_sum, m.sum_total);
    }

    #[test]
    fn log_cap_bounds_logs_but_not_counters() {
        let mut m = MetricsCollector::with_log_cap(2);
        for i in 0..10u64 {
            m.record_rejection(Rejection {
                id: i,
                model: 0,
                at: t(i),
                retry_after: t(1),
            });
            m.record_timeout(TimeoutRecord {
                id: i,
                model: 0,
                expired_at: t(i),
            });
            m.record_failover(FailoverRecord {
                id: i,
                from: 0,
                to: 1,
                at: t(i),
            });
        }
        assert_eq!((m.rejected, m.timed_out, m.failover_count), (10, 10, 10));
        assert_eq!(m.rejections.len(), 2);
        assert_eq!(m.timeouts.len(), 2);
        assert_eq!(m.failovers.len(), 2);
        // The first events are kept, so capped logs stay deterministic.
        assert_eq!(m.failovers[0].id, 0);
        assert_eq!(m.failovers[1].id, 1);
    }

    #[test]
    fn approx_bytes_is_bounded_under_load() {
        let mut m = MetricsCollector::with_log_cap(8);
        let sample = RequestSample {
            id: 0,
            model: 1,
            device: 0,
            queue_wait: t(1),
            service: t(2),
            total: t(3),
            cold_start: false,
        };
        // Saturate the capped logs and the per-model table once…
        for i in 0..100u64 {
            m.record_sample(&RequestSample {
                id: i,
                ..sample.clone()
            });
            m.record_rejection(Rejection {
                id: i,
                model: 0,
                at: t(1),
                retry_after: t(1),
            });
        }
        let saturated = m.approx_bytes();
        // …then 50k more requests must not move the footprint at all.
        for i in 0..50_000u64 {
            m.record_sample(&RequestSample {
                id: i,
                ..sample.clone()
            });
            m.record_rejection(Rejection {
                id: i,
                model: 0,
                at: t(1),
                retry_after: t(1),
            });
        }
        assert_eq!(
            m.approx_bytes(),
            saturated,
            "footprint must not grow with request count"
        );
        assert!(m.approx_bytes() < 256 * 1024, "collector stays small");
    }

    #[test]
    fn json_has_required_fields() {
        let p = Percentiles {
            p50: t(1),
            p95: t(2),
            p99: t(3),
        };
        let mut sk = QuantileSketch::new();
        sk.record(t(1));
        let summary = sk.summary();
        let r = ServeReport {
            submitted: 10,
            completed: 8,
            rejected: 1,
            timed_out: 1,
            failed: 0,
            makespan: t(1000),
            throughput_rps: 8.0,
            queue_wait: p,
            service: p,
            total: p,
            mean_total: t(2),
            sketches: LatencySketches {
                queue_wait: summary,
                service: summary,
                total: summary,
            },
            cold_starts: 2,
            cache_hits: 6,
            cache_misses: 2,
            cache_evictions: 0,
            cache_hit_ratio: 0.75,
            record_time: t(100),
            crashes: 1,
            failovers: 2,
            evictions: 1,
            readmissions: 1,
            rec_link_retries: 3,
            rec_checkpoint_resumes: 1,
            receipts_issued: 8,
            receipts_verified: 8,
            receipts_rejected: std::collections::BTreeMap::from([(
                "receipt-signature".to_string(),
                1,
            )]),
            batches: 2,
            batched_requests: 5,
            max_batch_served: 3,
            max_inflight: 1,
            output_digest: 0xabcd,
            per_model: vec![ModelReport {
                name: "MNIST".into(),
                completed: 8,
                mean_total: t(2),
            }],
            per_device: vec![DeviceReport {
                sku: "Mali-G71 MP8".into(),
                completed: 8,
                loads: 2,
                busy: t(16),
                peak_queue_depth: 3,
            }],
        };
        let j = r.to_json();
        for field in [
            "\"p50_ms\"",
            "\"p95_ms\"",
            "\"p99_ms\"",
            "\"throughput_rps\"",
            "\"hit_ratio\"",
            "\"cold_starts\"",
            "\"latency_sketch\"",
            "\"p90_ms\"",
            "\"p999_ms\"",
            "\"mean_ms\"",
            "\"fault_tolerance\"",
            "\"crashes\"",
            "\"failovers\"",
            "\"evictions\"",
            "\"readmissions\"",
            "\"rec_link_retries\"",
            "\"rec_checkpoint_resumes\"",
            "\"attestation\"",
            "\"receipts_issued\"",
            "\"receipts_verified\"",
            "\"receipts_rejected\"",
            "\"receipt-signature\": 1",
            "\"batching\"",
            "\"batches\": 2",
            "\"batched_requests\": 5",
            "\"max_batch_served\": 3",
            "\"max_inflight\"",
            "\"per_model\"",
            "\"per_device\"",
        ] {
            assert!(j.contains(field), "missing {field} in {j}");
        }
    }
}
