//! Serving metrics: per-request latency decomposition, percentiles,
//! throughput, cache statistics — exported as deterministic JSON.
//!
//! Every number is derived from DES timestamps, so two runs with the same
//! seed and fleet produce bit-identical reports (asserted by
//! `tests/determinism.rs`). The JSON writer is hand-rolled for the same
//! reason the recording byte format is: no serialization framework in the
//! dependency tree, and full control over field order and float
//! formatting so the output is reproducible byte-for-byte.

use crate::admission::Rejection;
use grt_sim::SimTime;

/// Latency percentiles (nearest-rank over the sampled population).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median.
    pub p50: SimTime,
    /// 95th percentile.
    pub p95: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
}

impl Percentiles {
    /// Computes nearest-rank percentiles; all-zero when `values` is empty.
    pub fn of(values: &mut [SimTime]) -> Percentiles {
        values.sort_unstable();
        let pick = |p: f64| -> SimTime {
            if values.is_empty() {
                return SimTime::ZERO;
            }
            let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
            values[rank.clamp(1, values.len()) - 1]
        };
        Percentiles {
            p50: pick(50.0),
            p95: pick(95.0),
            p99: pick(99.0),
        }
    }
}

/// One served request's latency decomposition.
#[derive(Debug, Clone)]
pub struct RequestSample {
    /// Request id.
    pub id: u64,
    /// Model index in the catalog.
    pub model: usize,
    /// Device that served it.
    pub device: usize,
    /// Time spent queued before service started.
    pub queue_wait: SimTime,
    /// Service time (staging + replay, plus any cold-start record).
    pub service: SimTime,
    /// End-to-end latency (queue_wait + service).
    pub total: SimTime,
    /// Whether this request paid a registry cold-start record.
    pub cold_start: bool,
}

/// A request that timed out in the queue (deadline passed before the GPU
/// was reached).
#[derive(Debug, Clone)]
pub struct TimeoutRecord {
    /// Request id.
    pub id: u64,
    /// Model index.
    pub model: usize,
    /// The deadline that expired.
    pub expired_at: SimTime,
}

/// One request re-routed off a crashed or evicted device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverRecord {
    /// Request id.
    pub id: u64,
    /// Device the request was pulled from.
    pub from: usize,
    /// Device the request was re-queued on.
    pub to: usize,
    /// When the failover happened (the crash/eviction instant).
    pub at: SimTime,
}

/// Raw event log a fleet run accumulates; reduced to a [`ServeReport`] at
/// the end.
#[derive(Debug, Default)]
pub struct MetricsCollector {
    /// Completed requests.
    pub samples: Vec<RequestSample>,
    /// Backpressured requests.
    pub rejections: Vec<Rejection>,
    /// Queue-timeout casualties.
    pub timeouts: Vec<TimeoutRecord>,
    /// Requests re-routed off crashed/evicted devices, in event order —
    /// the fleet's failover decision log (compared verbatim by the
    /// determinism suite).
    pub failovers: Vec<FailoverRecord>,
    /// Requests whose service failed outright (cold-start record error).
    pub failed: u64,
    /// FNV-1a digest over every replay output, in completion order — an
    /// end-to-end determinism witness.
    pub output_digest: u64,
    /// Replay receipts fetched from devices (one per completed request
    /// once the attestation chain is active).
    pub receipts_issued: u64,
    /// Receipts that passed full chain verification against the entry's
    /// provenance record (signatures, digests, lint digest, output bytes).
    pub receipts_verified: u64,
    /// Receipts rejected, bucketed by the stable
    /// `grt_attest::VerifyError::code` string (sorted map so the JSON
    /// export stays deterministic).
    pub receipts_rejected: std::collections::BTreeMap<String, u64>,
}

impl MetricsCollector {
    /// Folds one replay output into the run digest.
    pub fn absorb_output(&mut self, bytes: &[u8]) {
        let mut h = if self.output_digest == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.output_digest
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.output_digest = h;
    }
}

/// Per-model serving outcome.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Model name.
    pub name: String,
    /// Requests completed.
    pub completed: u64,
    /// Mean end-to-end latency.
    pub mean_total: SimTime,
}

/// Per-device serving outcome.
#[derive(Debug, Clone)]
pub struct DeviceReport {
    /// Device SKU name.
    pub sku: String,
    /// Requests completed.
    pub completed: u64,
    /// `LOAD_RECORDING` invocations (model switches; lower = better
    /// affinity batching).
    pub loads: u64,
    /// Time spent serving.
    pub busy: SimTime,
    /// Deepest queue observed.
    pub peak_queue_depth: usize,
}

/// The reduced, export-ready report of one fleet run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests offered to the fleet.
    pub submitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests rejected with backpressure.
    pub rejected: u64,
    /// Requests that timed out in queue.
    pub timed_out: u64,
    /// Requests whose service failed (cold-start record error).
    pub failed: u64,
    /// Virtual time from first arrival to last completion.
    pub makespan: SimTime,
    /// Completed requests per virtual second.
    pub throughput_rps: f64,
    /// Queue-wait percentiles.
    pub queue_wait: Percentiles,
    /// Service-time percentiles.
    pub service: Percentiles,
    /// End-to-end latency percentiles.
    pub total: Percentiles,
    /// Mean end-to-end latency.
    pub mean_total: SimTime,
    /// Registry cold starts (record runs triggered by traffic).
    pub cold_starts: u64,
    /// Registry hits.
    pub cache_hits: u64,
    /// Registry misses.
    pub cache_misses: u64,
    /// Registry evictions.
    pub cache_evictions: u64,
    /// Registry hit ratio.
    pub cache_hit_ratio: f64,
    /// Virtual time spent in cold-start record runs.
    pub record_time: SimTime,
    /// Device crash outages that struck the fleet during the run.
    pub crashes: u64,
    /// Requests re-queued onto a healthy peer after a crash or eviction.
    pub failovers: u64,
    /// Devices taken out of scheduling (flapping or slow).
    pub evictions: u64,
    /// Devices returned to scheduling after probation.
    pub readmissions: u64,
    /// Message retransmissions across all cold-start record tunnels.
    pub rec_link_retries: u64,
    /// Checkpoint resumes across all cold-start record tunnels.
    pub rec_checkpoint_resumes: u64,
    /// Replay receipts fetched from devices.
    pub receipts_issued: u64,
    /// Receipts that passed full chain verification.
    pub receipts_verified: u64,
    /// Receipts rejected, bucketed by rule code (sorted; deterministic).
    pub receipts_rejected: std::collections::BTreeMap<String, u64>,
    /// Max concurrent replays observed on any one device (the paper's
    /// job-queue-length-1 invariant requires this to be exactly 1).
    pub max_inflight: u32,
    /// Replay-output determinism digest.
    pub output_digest: u64,
    /// Per-model breakdown (catalog order).
    pub per_model: Vec<ModelReport>,
    /// Per-device breakdown (fleet order).
    pub per_device: Vec<DeviceReport>,
}

fn ms(t: SimTime) -> String {
    format!("{:.6}", t.as_millis_f64())
}

fn pct(p: &Percentiles) -> String {
    format!(
        "{{\"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}}}",
        ms(p.p50),
        ms(p.p95),
        ms(p.p99)
    )
}

impl ServeReport {
    /// Serializes the report as JSON with stable field order and float
    /// formatting (bit-identical across identically-seeded runs).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        s.push_str(&format!("  \"submitted\": {},\n", self.submitted));
        s.push_str(&format!("  \"completed\": {},\n", self.completed));
        s.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        s.push_str(&format!("  \"timed_out\": {},\n", self.timed_out));
        s.push_str(&format!("  \"failed\": {},\n", self.failed));
        s.push_str(&format!("  \"makespan_ms\": {},\n", ms(self.makespan)));
        s.push_str(&format!(
            "  \"throughput_rps\": {:.6},\n",
            self.throughput_rps
        ));
        s.push_str(&format!("  \"queue_wait\": {},\n", pct(&self.queue_wait)));
        s.push_str(&format!("  \"service\": {},\n", pct(&self.service)));
        s.push_str(&format!("  \"total\": {},\n", pct(&self.total)));
        s.push_str(&format!("  \"mean_total_ms\": {},\n", ms(self.mean_total)));
        s.push_str("  \"recording_cache\": {\n");
        s.push_str(&format!("    \"cold_starts\": {},\n", self.cold_starts));
        s.push_str(&format!("    \"hits\": {},\n", self.cache_hits));
        s.push_str(&format!("    \"misses\": {},\n", self.cache_misses));
        s.push_str(&format!("    \"evictions\": {},\n", self.cache_evictions));
        s.push_str(&format!(
            "    \"hit_ratio\": {:.6},\n",
            self.cache_hit_ratio
        ));
        s.push_str(&format!(
            "    \"record_time_ms\": {}\n",
            ms(self.record_time)
        ));
        s.push_str("  },\n");
        s.push_str("  \"fault_tolerance\": {\n");
        s.push_str(&format!("    \"crashes\": {},\n", self.crashes));
        s.push_str(&format!("    \"failovers\": {},\n", self.failovers));
        s.push_str(&format!("    \"evictions\": {},\n", self.evictions));
        s.push_str(&format!("    \"readmissions\": {},\n", self.readmissions));
        s.push_str(&format!(
            "    \"rec_link_retries\": {},\n",
            self.rec_link_retries
        ));
        s.push_str(&format!(
            "    \"rec_checkpoint_resumes\": {}\n",
            self.rec_checkpoint_resumes
        ));
        s.push_str("  },\n");
        s.push_str("  \"attestation\": {\n");
        s.push_str(&format!(
            "    \"receipts_issued\": {},\n",
            self.receipts_issued
        ));
        s.push_str(&format!(
            "    \"receipts_verified\": {},\n",
            self.receipts_verified
        ));
        s.push_str("    \"receipts_rejected\": {");
        for (i, (code, n)) in self.receipts_rejected.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{code}\": {n}"));
        }
        s.push_str("}\n");
        s.push_str("  },\n");
        s.push_str(&format!("  \"max_inflight\": {},\n", self.max_inflight));
        s.push_str(&format!(
            "  \"output_digest\": \"{:016x}\",\n",
            self.output_digest
        ));
        s.push_str("  \"per_model\": [\n");
        for (i, m) in self.per_model.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"completed\": {}, \"mean_total_ms\": {}}}{}\n",
                m.name,
                m.completed,
                ms(m.mean_total),
                if i + 1 < self.per_model.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"per_device\": [\n");
        for (i, d) in self.per_device.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"sku\": \"{}\", \"completed\": {}, \"loads\": {}, \"busy_ms\": {}, \"peak_queue_depth\": {}}}{}\n",
                d.sku,
                d.completed,
                d.loads,
                ms(d.busy),
                d.peak_queue_depth,
                if i + 1 < self.per_device.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut v: Vec<SimTime> = (1..=100).map(t).collect();
        let p = Percentiles::of(&mut v);
        assert_eq!(p.p50, t(50));
        assert_eq!(p.p95, t(95));
        assert_eq!(p.p99, t(99));
    }

    #[test]
    fn percentiles_small_and_empty() {
        let mut one = vec![t(7)];
        let p = Percentiles::of(&mut one);
        assert_eq!((p.p50, p.p95, p.p99), (t(7), t(7), t(7)));
        let p = Percentiles::of(&mut []);
        assert_eq!(p.p50, SimTime::ZERO);
    }

    #[test]
    fn output_digest_is_order_sensitive() {
        let mut a = MetricsCollector::default();
        a.absorb_output(&[1, 2]);
        a.absorb_output(&[3]);
        let mut b = MetricsCollector::default();
        b.absorb_output(&[3]);
        b.absorb_output(&[1, 2]);
        assert_ne!(a.output_digest, b.output_digest);
        let mut c = MetricsCollector::default();
        c.absorb_output(&[1, 2]);
        c.absorb_output(&[3]);
        assert_eq!(a.output_digest, c.output_digest);
    }

    #[test]
    fn json_has_required_fields() {
        let p = Percentiles {
            p50: t(1),
            p95: t(2),
            p99: t(3),
        };
        let r = ServeReport {
            submitted: 10,
            completed: 8,
            rejected: 1,
            timed_out: 1,
            failed: 0,
            makespan: t(1000),
            throughput_rps: 8.0,
            queue_wait: p,
            service: p,
            total: p,
            mean_total: t(2),
            cold_starts: 2,
            cache_hits: 6,
            cache_misses: 2,
            cache_evictions: 0,
            cache_hit_ratio: 0.75,
            record_time: t(100),
            crashes: 1,
            failovers: 2,
            evictions: 1,
            readmissions: 1,
            rec_link_retries: 3,
            rec_checkpoint_resumes: 1,
            receipts_issued: 8,
            receipts_verified: 8,
            receipts_rejected: std::collections::BTreeMap::from([(
                "receipt-signature".to_string(),
                1,
            )]),
            max_inflight: 1,
            output_digest: 0xabcd,
            per_model: vec![ModelReport {
                name: "MNIST".into(),
                completed: 8,
                mean_total: t(2),
            }],
            per_device: vec![DeviceReport {
                sku: "Mali-G71 MP8".into(),
                completed: 8,
                loads: 2,
                busy: t(16),
                peak_queue_depth: 3,
            }],
        };
        let j = r.to_json();
        for field in [
            "\"p50_ms\"",
            "\"p95_ms\"",
            "\"p99_ms\"",
            "\"throughput_rps\"",
            "\"hit_ratio\"",
            "\"cold_starts\"",
            "\"fault_tolerance\"",
            "\"crashes\"",
            "\"failovers\"",
            "\"evictions\"",
            "\"readmissions\"",
            "\"rec_link_retries\"",
            "\"rec_checkpoint_resumes\"",
            "\"attestation\"",
            "\"receipts_issued\"",
            "\"receipts_verified\"",
            "\"receipts_rejected\"",
            "\"receipt-signature\": 1",
            "\"max_inflight\"",
            "\"per_model\"",
            "\"per_device\"",
        ] {
            assert!(j.contains(field), "missing {field} in {j}");
        }
    }
}
