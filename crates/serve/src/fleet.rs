//! The fleet scheduler: N client TEE devices serving one request stream.
//!
//! Each device is a full [`ClientDevice`] (GPU + TZASC + secure monitor)
//! hosting a [`ReplayService`] behind the GlobalPlatform protocol, exactly
//! as a production phone would run it. The scheduler dispatches requests
//! to devices with **same-model affinity**: a request for the model a
//! device already has staged skips `LOAD_RECORDING`/`SET_WEIGHTS` and
//! pays only `SET_INPUT`+`RUN`, so consecutive same-model requests
//! amortize the staging cost (the serving-side analogue of the paper's
//! record-once-replay-many economics).
//!
//! The paper's replayer assumes the GPU job queue never holds more than
//! one outstanding job; the fleet preserves that per device — a device
//! serves exactly one replay at a time, and the scheduler asserts it
//! (service intervals on one device never overlap; see
//! [`Fleet::max_inflight`]) — even across crashes and failovers.
//!
//! **Event-indexed scheduling.** The DES driver is a binary heap of
//! `(due_time, kind, device, epoch)` candidates — one live entry per
//! device — so advancing the timeline wakes only devices with due events
//! instead of sweeping the whole fleet per event
//! ([`SchedulerKind::EventIndexed`], the default). A device's entry is
//! re-issued (with a bumped epoch; stale heap entries are discarded
//! lazily) whenever its state changes: queue push/pop, service end,
//! crash, eviction, restart. The original per-event full-fleet sweep is
//! retained as [`SchedulerKind::LegacySweep`] — the differential-test
//! oracle the event-indexed path must match report-byte-for-report-byte.
//! Both drivers derive service events from the same
//! [`AdmissionQueue::next_service_start`] rule and dispatch into the same
//! event handlers, so they can only differ in *which event is next*, and
//! the heap order `(due, kind, index)` reproduces the sweep's argmin
//! exactly.
//!
//! **Profiled service.** A real replay costs real wall-clock time, which
//! a 10⁶-request run cannot afford. [`ServiceMode::Profiled`] measures
//! each `(model, SKU)` pair once on a probe TEE stack — real staging,
//! real replays, one fully verified replay receipt — and then models
//! every service interval from that profile (staging + first replay on a
//! model switch, warm replay otherwise, cold-start record delays still
//! charged for real from the registry). Scheduling, admission, health,
//! failover, and accounting all run unchanged; only the per-request GP
//! protocol drive is replaced by its measured duration.
//!
//! **Fault tolerance.** When a [`FaultPlan`] is attached
//! ([`FleetConfig::with_faults`]), the scheduler interleaves plan events
//! with service starts in strict time order (same-instant ties: crash,
//! then restart, then service, then device index):
//!
//! - a **crash** wipes the device's staged model, marks it down until its
//!   restart ([`DeviceHealth`] evicts a flapping device for a probation
//!   period instead), and *fails over* every queued request to a healthy
//!   peer — same SKU preferred, so the recording stays valid;
//! - a crash landing **inside a service interval** interrupts it: the
//!   partial work and its output are discarded (never folded into the
//!   run digest) and the in-flight request fails over like a queued one;
//! - **slowdown** windows stretch service time, and a device whose
//!   latency EWMA drifts past the slow-eviction threshold is evicted the
//!   same way a flapping one is;
//! - re-queued requests *re-arrive at the failover instant* — a failed
//!   over request can never start anywhere before the fault that
//!   displaced it.
//!
//! Time: the fleet clock is the discrete-event serving timeline. Each
//! device's hardware clock is a private lane measuring service durations
//! (replay polls, staging, cold-start records); the scheduler re-anchors
//! those durations onto the serving timeline, so devices serve in
//! parallel while all timestamps stay deterministic.

use crate::admission::{AdmissionQueue, Rejection, Request};
use crate::health::DeviceHealth;
use crate::metrics::{
    DeviceReport, FailoverRecord, LatencySketches, MetricsCollector, ModelReport, Percentiles,
    RequestSample, ServeReport, TimeoutRecord,
};
use crate::registry::{FetchOutcome, RecordingRegistry, RegistryConfig};
use grt_attest::{verify_chain, verify_receipt_data, ProvenanceRecord, ReplayReceipt};
use grt_core::replay::workload_weights;
use grt_core::service::cmd;
use grt_core::session::{recording_trust_root, ClientDevice, PROVISIONING_SECRET};
use grt_core::ReplayService;
use grt_gpu::GpuSku;
use grt_ml::reference::test_input;
use grt_ml::NetworkSpec;
use grt_net::NetConditions;
use grt_sim::{Clock, Crash, FaultPlan, SimTime, Stats};
use grt_tee::TeeHost;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::rc::Rc;

/// Which DES driver advances the serving timeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Event-indexed: a binary heap of per-device due-event candidates;
    /// only devices with due events wake. The production path.
    #[default]
    EventIndexed,
    /// The original per-event full-fleet sweep (O(devices) per event),
    /// retained as the differential-test oracle: it must produce
    /// byte-identical reports to [`SchedulerKind::EventIndexed`].
    LegacySweep,
}

/// How a service interval's duration is obtained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ServiceMode {
    /// Every request drives a real replay through the GP protocol on the
    /// device's own TEE stack (staging, SET_INPUT, RUN, receipt).
    #[default]
    Replay,
    /// Service durations are modeled from a per-`(model, SKU)` profile
    /// measured once on a real probe TEE stack (including one fully
    /// verified replay receipt); per-request work is O(1), which is what
    /// makes 10⁶-request fleet runs affordable. Scheduling, admission,
    /// health, failover, and accounting are identical to
    /// [`ServiceMode::Replay`].
    Profiled,
}

/// Fleet composition and scheduling parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// One entry per device; duplicates are distinct devices.
    pub skus: Vec<GpuSku>,
    /// Per-device admission-queue bound.
    pub queue_capacity: usize,
    /// How much deeper a same-model device's queue may be than the
    /// shallowest queue before affinity is abandoned for load balance.
    pub affinity_slack: usize,
    /// Recording-registry sizing and cold-start parameters.
    pub registry: RegistryConfig,
    /// Fault schedule for the serving timeline: crash/slowdown device
    /// indices are worker indices. `None` serves fault-free.
    pub faults: Option<Rc<FaultPlan>>,
    /// DES driver (event-indexed by default; the legacy sweep is the
    /// test oracle).
    pub scheduler: SchedulerKind,
    /// Real replays per request, or modeled from measured profiles.
    pub service: ServiceMode,
    /// Max same-model requests one service interval may serve through a
    /// single batched replay (`RUN_BATCH`, DESIGN.md §14). `1` (the
    /// default) keeps every interval on the scalar `SET_INPUT`+`RUN`
    /// path, byte-identical to a fleet without batching.
    pub max_batch: usize,
    /// Cap on the rejection/timeout/failover *event logs* the collector
    /// keeps (their counters stay exact regardless). `usize::MAX` keeps
    /// every event; fleet-scale runs set a small cap to bound memory.
    pub event_log_cap: usize,
}

impl FleetConfig {
    /// A fleet of `skus` with an 8-deep queue per device, slack-2
    /// affinity, and a 64-entry WiFi registry.
    pub fn new(skus: Vec<GpuSku>) -> Self {
        FleetConfig {
            skus,
            queue_capacity: 8,
            affinity_slack: 2,
            registry: RegistryConfig::new(64),
            faults: None,
            scheduler: SchedulerKind::default(),
            service: ServiceMode::default(),
            max_batch: 1,
            event_log_cap: usize::MAX,
        }
    }

    /// Overrides the registry's cold-start link conditions.
    pub fn with_conditions(mut self, conditions: NetConditions) -> Self {
        self.registry.conditions = conditions;
        self
    }

    /// Attaches `plan` to both fault surfaces: the serving timeline
    /// (device crashes and slowdowns) and the registry's cold-start
    /// record tunnels (loss bursts, RTT spikes, partitions).
    pub fn with_faults(mut self, plan: Rc<FaultPlan>) -> Self {
        self.registry.faults = Some(Rc::clone(&plan));
        self.faults = Some(plan);
        self
    }

    /// Selects the DES driver.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Selects real vs profiled service.
    pub fn with_service_mode(mut self, service: ServiceMode) -> Self {
        self.service = service;
        self
    }

    /// Caps how many same-model requests one replay may batch
    /// (`1..=grt_core::compiled::MAX_BATCH`).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(
            (1..=grt_core::compiled::MAX_BATCH).contains(&max_batch),
            "max_batch must be in 1..={}",
            grt_core::compiled::MAX_BATCH
        );
        self.max_batch = max_batch;
        self
    }

    /// Caps the metrics event logs (counters stay exact).
    pub fn with_event_log_cap(mut self, cap: usize) -> Self {
        self.event_log_cap = cap;
        self
    }
}

/// One device's full TEE stack: the simulated client hardware, its
/// TrustZone host, and the open replay-service session.
struct TeeStack {
    device: ClientDevice,
    host: TeeHost,
    session: u32,
}

impl TeeStack {
    fn new(sku: GpuSku, stats: &Rc<Stats>) -> Self {
        let clock = Clock::new();
        let device = ClientDevice::new(sku, &clock, stats, PROVISIONING_SECRET);
        let host = TeeHost::new(&device.monitor);
        host.register(Box::new(RefCell::new(ReplayService::new(
            &device,
            recording_trust_root(),
            Rc::new(grt_lint::Linter::new()),
        ))));
        let session = host
            .open_session("grt.replay")
            .expect("replay module just registered");
        TeeStack {
            device,
            host,
            session,
        }
    }
}

/// Measured service durations of one `(model, SKU)` pair, taken once on
/// a probe TEE stack and reused by every modeled service interval
/// ([`ServiceMode::Profiled`]).
#[derive(Debug, Clone, Copy)]
struct ServiceProfile {
    /// `LOAD_RECORDING` + `SET_WEIGHTS` + `SET_PROVENANCE` staging cost.
    load: SimTime,
    /// First `SET_INPUT`+`RUN` after staging (cold TLB/page state).
    first_replay: SimTime,
    /// Steady-state `SET_INPUT`+`RUN`.
    warm_replay: SimTime,
}

/// One client device plus its serving state.
struct DeviceWorker {
    /// The real TEE stack; `None` in [`ServiceMode::Profiled`], where
    /// service is modeled and no per-device hardware is simulated.
    stack: Option<TeeStack>,
    sku: GpuSku,
    queue: AdmissionQueue,
    /// When the device finishes its current replay (serving timeline).
    free_at: SimTime,
    /// End of the previous service interval; a new interval starting
    /// before this would mean two concurrent replays on one GPU.
    last_service_end: SimTime,
    /// Model currently staged in the replay service.
    loaded_model: Option<usize>,
    /// Provenance record of the staged model; replay receipts chain to it.
    provenance: Option<Rc<ProvenanceRecord>>,
    /// Canonical lint-report JSON of the staged model, cached for
    /// receipt-chain verification (its digest is covered by provenance).
    lint_json: Option<String>,
    /// Crash/latency health; gates whether the scheduler dispatches here.
    health: DeviceHealth,
    /// Monotone generation counter for the event-indexed heap: a heap
    /// entry is live only while its epoch matches this.
    epoch: u64,
    /// In-flight replays right now (the invariant holds this ≤ 1).
    inflight: u32,
    max_inflight: u32,
    completed: u64,
    loads: u64,
    busy: SimTime,
}

impl DeviceWorker {
    fn new(sku: GpuSku, queue_capacity: usize, stats: &Rc<Stats>, mode: ServiceMode) -> Self {
        let stack = match mode {
            ServiceMode::Replay => Some(TeeStack::new(sku.clone(), stats)),
            ServiceMode::Profiled => None,
        };
        DeviceWorker {
            stack,
            sku,
            queue: AdmissionQueue::new(queue_capacity),
            free_at: SimTime::ZERO,
            last_service_end: SimTime::ZERO,
            loaded_model: None,
            provenance: None,
            lint_json: None,
            health: DeviceHealth::new(),
            epoch: 0,
            inflight: 0,
            max_inflight: 0,
            completed: 0,
            loads: 0,
            busy: SimTime::ZERO,
        }
    }
}

/// The serving fleet: devices + registry + one DES timeline.
pub struct Fleet {
    cfg: FleetConfig,
    models: Vec<NetworkSpec>,
    workers: Vec<DeviceWorker>,
    registry: RecordingRegistry,
    /// Cached replay-time model parameters, one slot per catalog model.
    weights: Vec<Option<Vec<Vec<f32>>>>,
    /// The serving timeline.
    clock: Rc<Clock>,
    /// Plan crashes targeting real workers, in schedule order.
    pending_crashes: Vec<Crash>,
    /// First unprocessed entry in `pending_crashes`.
    crash_cursor: usize,
    /// Crash events processed so far.
    crashes_seen: u64,
    service_time_sum: SimTime,
    service_count: u64,
    /// Event-indexed scheduler state: a min-heap of `(due, kind, device,
    /// epoch)` candidates. Entries whose epoch no longer matches their
    /// worker's are stale and discarded lazily at the top.
    heap: BinaryHeap<Reverse<(SimTime, u8, usize, u64)>>,
    /// Measured `(model, GPU_ID)` profiles for [`ServiceMode::Profiled`].
    profiles: BTreeMap<(usize, u32), ServiceProfile>,
    /// Measured warm `(model, GPU_ID, B)` batched-replay durations for
    /// [`ServiceMode::Profiled`] with `max_batch > 1`.
    batch_profiles: BTreeMap<(usize, u32, usize), SimTime>,
}

/// Retry-after fallback before any request has completed.
const DEFAULT_SERVICE_ESTIMATE: SimTime = SimTime::from_millis(25);

/// Same-instant event ordering: crashes first, then restarts, then
/// service starts.
const EV_CRASH: u8 = 0;
const EV_RESTART: u8 = 1;
const EV_SERVE: u8 = 2;

/// How far a processed event's side effects reach: only the device that
/// owned the event, or (via failover/eviction) possibly every device.
enum Ripple {
    One,
    All,
}

impl Fleet {
    /// Builds a fleet serving `models` with a fresh registry.
    pub fn new(models: Vec<NetworkSpec>, cfg: FleetConfig) -> Self {
        let registry = RecordingRegistry::new(cfg.registry.clone());
        Self::with_registry(models, cfg, registry)
    }

    /// Builds a fleet around an existing registry (e.g. one warmed by a
    /// previous run), preserving its cache contents and counters.
    pub fn with_registry(
        models: Vec<NetworkSpec>,
        cfg: FleetConfig,
        registry: RecordingRegistry,
    ) -> Self {
        assert!(!cfg.skus.is_empty(), "a fleet needs at least one device");
        let stats = Stats::new();
        let workers: Vec<DeviceWorker> = cfg
            .skus
            .iter()
            .map(|sku| DeviceWorker::new(sku.clone(), cfg.queue_capacity, &stats, cfg.service))
            .collect();
        let pending_crashes = cfg
            .faults
            .as_ref()
            .map(|p| {
                p.crashes()
                    .iter()
                    .filter(|c| c.device < workers.len())
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
        let n_models = models.len();
        Fleet {
            cfg,
            models,
            workers,
            registry,
            weights: vec![None; n_models],
            clock: Clock::new(),
            pending_crashes,
            crash_cursor: 0,
            crashes_seen: 0,
            service_time_sum: SimTime::ZERO,
            service_count: 0,
            heap: BinaryHeap::new(),
            profiles: BTreeMap::new(),
            batch_profiles: BTreeMap::new(),
        }
    }

    /// Releases the registry (to carry a warmed cache into another fleet).
    pub fn into_registry(self) -> RecordingRegistry {
        self.registry
    }

    /// Registry counters (hits/misses/evictions so far).
    pub fn registry_stats(&self) -> crate::registry::RegistryStats {
        self.registry.stats()
    }

    /// Per-shard registry counters, in shard order.
    pub fn registry_shard_stats(&self) -> Vec<crate::registry::RegistryStats> {
        self.registry.shard_stats()
    }

    /// Max concurrent replays ever observed on any single device. The
    /// job-queue-length-1 invariant requires this to be exactly 1 after
    /// any run that served at least one request.
    pub fn max_inflight(&self) -> u32 {
        self.workers
            .iter()
            .map(|w| w.max_inflight)
            .max()
            .unwrap_or(0)
    }

    /// Serves a whole arrival-ordered trace, returning the reduced report.
    pub fn run(&mut self, trace: &[Request]) -> ServeReport {
        self.run_detailed(trace).0
    }

    /// Like [`Fleet::run`] but also returns the raw event accumulator
    /// (latency sketches, per-request rejection/timeout/failover logs up
    /// to the configured cap, and exact counters).
    pub fn run_detailed(&mut self, trace: &[Request]) -> (ServeReport, MetricsCollector) {
        let mut metrics = MetricsCollector::with_log_cap(self.cfg.event_log_cap);
        let indexed = matches!(self.cfg.scheduler, SchedulerKind::EventIndexed);
        if indexed {
            // Rebuild the candidate heap from current worker state (the
            // fleet may carry queue/health state across runs).
            self.heap.clear();
            self.refresh_all();
        }
        for req in trace {
            debug_assert!(
                req.arrival >= self.clock.now(),
                "trace must be arrival-ordered"
            );
            self.drain_until(req.arrival, &mut metrics);
            self.clock.advance_to(req.arrival);
            match self.pick_device(req) {
                Some(i) => {
                    self.workers[i]
                        .queue
                        .try_push(req.clone())
                        .expect("pick_device returns only non-full queues");
                    if indexed {
                        self.refresh(i);
                    }
                }
                None => {
                    let retry_after = self.retry_after_estimate(req.arrival);
                    metrics.record_rejection(Rejection {
                        id: req.id,
                        model: req.model,
                        at: req.arrival,
                        retry_after,
                    });
                }
            }
        }
        self.drain_until(SimTime::MAX, &mut metrics);
        let report = self.reduce(trace.len() as u64, &metrics);
        (report, metrics)
    }

    /// Processes every event due strictly before `t` in deterministic
    /// earliest-first order: plan crashes, health restarts/re-admissions,
    /// and service starts, with same-instant ties broken by event kind
    /// ([`EV_CRASH`] < [`EV_RESTART`] < [`EV_SERVE`]) then device index.
    fn drain_until(&mut self, t: SimTime, metrics: &mut MetricsCollector) {
        match self.cfg.scheduler {
            SchedulerKind::EventIndexed => self.drain_indexed(t, metrics),
            SchedulerKind::LegacySweep => self.drain_sweep(t, metrics),
        }
    }

    /// The due-event candidate of worker `i` right now: its pending
    /// restart while out of service, else its queue head's service start.
    /// The single source both schedulers derive worker events from.
    fn candidate(w: &DeviceWorker) -> Option<(SimTime, u8)> {
        match w.health.next_transition() {
            Some(until) => Some((until, EV_RESTART)),
            None => w
                .queue
                .next_service_start(w.free_at)
                .map(|at| (at, EV_SERVE)),
        }
    }

    /// Re-issues worker `i`'s heap entry after a state change: bumps its
    /// epoch (invalidating prior entries) and pushes its current
    /// candidate, if any.
    fn refresh(&mut self, i: usize) {
        let w = &mut self.workers[i];
        w.epoch += 1;
        if let Some((at, kind)) = Self::candidate(w) {
            self.heap.push(Reverse((at, kind, i, w.epoch)));
        }
    }

    /// Re-issues every worker's heap entry (after failover or eviction,
    /// whose side effects can touch any queue in the fleet).
    fn refresh_all(&mut self) {
        for i in 0..self.workers.len() {
            self.refresh(i);
        }
    }

    /// Legacy driver: scan every worker per event for the earliest
    /// candidate. O(devices) per event — the differential oracle.
    fn drain_sweep(&mut self, t: SimTime, metrics: &mut MetricsCollector) {
        loop {
            let mut best: Option<(SimTime, u8, usize)> = None;
            if let Some(c) = self.pending_crashes.get(self.crash_cursor) {
                best = Some((c.at, EV_CRASH, c.device));
            }
            for (i, w) in self.workers.iter().enumerate() {
                if let Some((at, kind)) = Self::candidate(w) {
                    let cand = (at, kind, i);
                    if match best {
                        Some(b) => cand < b,
                        None => true,
                    } {
                        best = Some(cand);
                    }
                }
            }
            let Some((at, kind, idx)) = best else { break };
            if at >= t {
                break;
            }
            match kind {
                EV_CRASH => self.process_crash(metrics),
                EV_RESTART => self.process_restart(idx),
                _ => {
                    self.process_serve(idx, at, metrics);
                }
            }
        }
    }

    /// Event-indexed driver: pop the earliest live heap candidate, merge
    /// it against the crash cursor, dispatch. O(log devices) per event.
    fn drain_indexed(&mut self, t: SimTime, metrics: &mut MetricsCollector) {
        loop {
            // Discard entries invalidated by a later refresh.
            while let Some(&Reverse((_, _, i, epoch))) = self.heap.peek() {
                if self.workers[i].epoch == epoch {
                    break;
                }
                self.heap.pop();
            }
            let worker_ev = self
                .heap
                .peek()
                .map(|&Reverse((at, kind, i, _))| (at, kind, i));
            let crash_ev = self
                .pending_crashes
                .get(self.crash_cursor)
                .map(|c| (c.at, EV_CRASH, c.device));
            // Tuples are unique (kinds differ, worker indices differ), so
            // this min reproduces the sweep's argmin exactly.
            let best = match (crash_ev, worker_ev) {
                (Some(c), Some(w)) => Some(if c < w { c } else { w }),
                (c, w) => c.or(w),
            };
            let Some((at, kind, idx)) = best else { break };
            if at >= t {
                break;
            }
            match kind {
                EV_CRASH => {
                    // Crash events come from the cursor, not the heap.
                    self.process_crash(metrics);
                    self.refresh_all();
                }
                EV_RESTART => {
                    self.heap.pop();
                    self.process_restart(idx);
                    self.refresh(idx);
                }
                _ => {
                    self.heap.pop();
                    match self.process_serve(idx, at, metrics) {
                        Ripple::One => self.refresh(idx),
                        Ripple::All => self.refresh_all(),
                    }
                }
            }
        }
    }

    /// Handles the crash at the cursor: health bookkeeping, staged-state
    /// wipe, queue failover.
    fn process_crash(&mut self, metrics: &mut MetricsCollector) {
        let crash = self.pending_crashes[self.crash_cursor];
        self.crash_cursor += 1;
        self.crashes_seen += 1;
        let w = &mut self.workers[crash.device];
        w.health.on_crash(crash.at, crash.restart_at);
        // The crash wipes TEE state: staged model is gone, and with it
        // the attestation context receipts chain to.
        w.loaded_model = None;
        w.provenance = None;
        w.lint_json = None;
        let avg = avg_service(self.service_time_sum, self.service_count);
        fail_over_queue(&mut self.workers, crash.device, crash.at, avg, metrics);
    }

    /// Handles a restart/re-admission transition on worker `idx`.
    fn process_restart(&mut self, idx: usize) {
        self.workers[idx].health.on_restart();
    }

    /// Serves worker `idx`'s queue head at instant `at` (or times it
    /// out), batching up to `max_batch` consecutive already-arrived
    /// same-model followers into the same replay (DESIGN.md §14).
    /// Returns how far the side effects reached.
    fn process_serve(&mut self, idx: usize, at: SimTime, metrics: &mut MetricsCollector) -> Ripple {
        let Fleet {
            workers,
            registry,
            models,
            weights,
            cfg,
            service_time_sum,
            service_count,
            profiles,
            batch_profiles,
            ..
        } = self;
        let plan = cfg.faults.as_deref();
        let worker = &mut workers[idx];
        let req = worker.queue.pop_front().expect("serve event has a head");
        if at > req.deadline {
            // Deadline expired while queued: accounted, never silently
            // dropped.
            metrics.record_timeout(TimeoutRecord {
                id: req.id,
                model: req.model,
                expired_at: req.deadline,
            });
            return Ripple::One;
        }
        // Same-SKU affinity queues naturally run same-model streaks; pull
        // the head's streak (already arrived, deadline still live) into
        // one batched replay. An expired follower stays queued and times
        // out at its own serve event, exactly as without batching.
        let mut batch = vec![req];
        while batch.len() < cfg.max_batch {
            match worker.queue.front() {
                Some(r) if r.model == batch[0].model && r.arrival <= at && r.deadline >= at => {
                    let r = worker.queue.pop_front().expect("front was just peeked");
                    batch.push(r);
                }
                _ => break,
            }
        }
        match serve_batch(
            worker,
            idx,
            &batch,
            at,
            plan,
            registry,
            models,
            weights,
            cfg.service,
            profiles,
            batch_profiles,
            metrics,
        ) {
            ServeOutcome::Completed {
                samples,
                batch_service,
                evicted,
            } => {
                *service_time_sum += batch_service;
                *service_count += 1;
                let end = at + batch_service;
                metrics.record_batch(samples.len());
                for sample in &samples {
                    metrics.record_sample(sample);
                }
                if evicted {
                    // Slow device left scheduling: its queue must not
                    // wait out the probation.
                    let avg = avg_service(*service_time_sum, *service_count);
                    fail_over_queue(workers, idx, end, avg, metrics);
                    Ripple::All
                } else {
                    Ripple::One
                }
            }
            ServeOutcome::Failed => Ripple::One,
            ServeOutcome::Interrupted { reqs, at } => {
                let avg = avg_service(*service_time_sum, *service_count);
                for req in reqs {
                    fail_over_one(workers, idx, req, at, avg, metrics);
                }
                Ripple::All
            }
        }
    }

    /// Picks the device to queue `req` on: same-model affinity first
    /// (within the configured slack of the shallowest queue), then least
    /// queue depth, then earliest free, then lowest index. Down or
    /// evicted devices are never picked. Returns `None` when every
    /// healthy queue is full — the backpressure case.
    ///
    /// Single sweep: the unfiltered affine minimum already has the least
    /// queue depth among affine devices, so the slack filter reduces to
    /// one post-check against the fleet-wide minimum depth.
    fn pick_device(&self, req: &Request) -> Option<usize> {
        let now = req.arrival;
        let mut min_depth: Option<usize> = None;
        let mut best_any: Option<(usize, SimTime, usize)> = None;
        let mut best_affine: Option<(usize, SimTime, usize)> = None;
        for (i, w) in self.workers.iter().enumerate() {
            if w.queue.is_full() || !w.health.is_up(now) {
                continue;
            }
            let key = (w.queue.len(), w.free_at, i);
            min_depth = Some(match min_depth {
                Some(d) => d.min(key.0),
                None => key.0,
            });
            if match best_any {
                Some(b) => key < b,
                None => true,
            } {
                best_any = Some(key);
            }
            if w.loaded_model == Some(req.model)
                && match best_affine {
                    Some(b) => key < b,
                    None => true,
                }
            {
                best_affine = Some(key);
            }
        }
        if let Some(a) = best_affine {
            if a.0 <= min_depth.expect("affine implies open") + self.cfg.affinity_slack {
                return Some(a.2);
            }
        }
        best_any.map(|b| b.2)
    }

    /// How long a rejected client should back off: the soonest any
    /// device could plausibly reach new work, plus one service time.
    fn retry_after_estimate(&self, now: SimTime) -> SimTime {
        let avg = avg_service(self.service_time_sum, self.service_count);
        let soonest = self
            .workers
            .iter()
            .map(|w| w.free_at.saturating_sub(now) + avg * w.queue.len() as u64)
            .min()
            .unwrap_or(SimTime::ZERO);
        soonest + avg
    }

    /// Reduces the streamed accumulators into the export-ready report.
    /// O(models + devices + sketch buckets) — independent of how many
    /// requests were served.
    fn reduce(&self, submitted: u64, metrics: &MetricsCollector) -> ServeReport {
        let completed = metrics.completed;
        let makespan = self
            .workers
            .iter()
            .map(|w| w.last_service_end)
            .max()
            .unwrap_or(SimTime::ZERO)
            .max(self.clock.now());
        let throughput_rps = if makespan.is_zero() {
            0.0
        } else {
            completed as f64 / makespan.as_secs_f64()
        };
        let mean_total = if completed == 0 {
            SimTime::ZERO
        } else {
            metrics.sum_total / completed
        };
        let per_model = self
            .models
            .iter()
            .enumerate()
            .map(|(mi, spec)| {
                let acc = metrics.per_model.get(mi).copied().unwrap_or_default();
                ModelReport {
                    name: spec.name.to_owned(),
                    completed: acc.completed,
                    mean_total: if acc.completed == 0 {
                        SimTime::ZERO
                    } else {
                        acc.sum_total / acc.completed
                    },
                }
            })
            .collect();
        let per_device = self
            .workers
            .iter()
            .map(|w| DeviceReport {
                sku: w.sku.name.to_owned(),
                completed: w.completed,
                loads: w.loads,
                busy: w.busy,
                peak_queue_depth: w.queue.peak_depth(),
            })
            .collect();
        let cache = self.registry.stats();
        ServeReport {
            submitted,
            completed,
            rejected: metrics.rejected,
            timed_out: metrics.timed_out,
            failed: metrics.failed,
            makespan,
            throughput_rps,
            queue_wait: Percentiles::from_sketch(&metrics.queue_wait),
            service: Percentiles::from_sketch(&metrics.service),
            total: Percentiles::from_sketch(&metrics.total),
            mean_total,
            sketches: LatencySketches {
                queue_wait: metrics.queue_wait.summary(),
                service: metrics.service.summary(),
                total: metrics.total.summary(),
            },
            cold_starts: metrics.cold_starts,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_hit_ratio: cache.hit_ratio(),
            record_time: self.registry.record_time(),
            crashes: self.crashes_seen,
            failovers: metrics.failover_count,
            evictions: self.workers.iter().map(|w| w.health.evictions).sum(),
            readmissions: self.workers.iter().map(|w| w.health.readmissions).sum(),
            rec_link_retries: cache.record_retries,
            rec_checkpoint_resumes: cache.checkpoint_resumes,
            max_inflight: self.max_inflight(),
            receipts_issued: metrics.receipts_issued,
            receipts_verified: metrics.receipts_verified,
            receipts_rejected: metrics.receipts_rejected.clone(),
            batches: metrics.batches,
            batched_requests: metrics.batched_requests,
            max_batch_served: metrics.max_batch_served,
            output_digest: metrics.output_digest,
            per_model,
            per_device,
        }
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("devices", &self.workers.len())
            .field("models", &self.models.len())
            .field("scheduler", &self.cfg.scheduler)
            .field("service", &self.cfg.service)
            .finish()
    }
}

/// Mean observed service time, with a fixed estimate before any sample.
fn avg_service(sum: SimTime, count: u64) -> SimTime {
    if count == 0 {
        DEFAULT_SERVICE_ESTIMATE
    } else {
        sum / count
    }
}

/// Fails over every request queued on `from` at instant `at`.
fn fail_over_queue(
    workers: &mut [DeviceWorker],
    from: usize,
    at: SimTime,
    avg: SimTime,
    metrics: &mut MetricsCollector,
) {
    while let Some(req) = workers[from].queue.pop_front() {
        fail_over_one(workers, from, req, at, avg, metrics);
    }
}

/// Re-queues one request displaced from `from` (queued there, or
/// interrupted mid-service) onto a healthy peer: same-SKU devices first
/// (the staged recording stays valid for them), then any healthy device,
/// each by (queue depth, earliest free, index). A request with nowhere
/// to go is rejected with a retry-after hint. The re-queued copy
/// re-arrives at `at` — it cannot start anywhere before the fault that
/// displaced it.
fn fail_over_one(
    workers: &mut [DeviceWorker],
    from: usize,
    req: Request,
    at: SimTime,
    avg: SimTime,
    metrics: &mut MetricsCollector,
) {
    let sku_name = workers[from].sku.name;
    let pick = |same_sku: bool| {
        workers
            .iter()
            .enumerate()
            .filter(|(i, w)| {
                *i != from
                    && !w.queue.is_full()
                    && w.health.is_up(at)
                    && (!same_sku || w.sku.name == sku_name)
            })
            .min_by_key(|(i, w)| (w.queue.len(), w.free_at, *i))
            .map(|(i, _)| i)
    };
    match pick(true).or_else(|| pick(false)) {
        Some(to) => {
            let moved = Request {
                arrival: at,
                ..req.clone()
            };
            workers[to]
                .queue
                .try_push(moved)
                .expect("picked an open queue");
            metrics.record_failover(FailoverRecord {
                id: req.id,
                from,
                to,
                at,
            });
        }
        None => metrics.record_rejection(Rejection {
            id: req.id,
            model: req.model,
            at,
            retry_after: avg,
        }),
    }
}

/// What one service attempt produced.
enum ServeOutcome {
    /// Served to completion (one sample per batched request). `evicted`
    /// is set when this completion's latency tripped the slow-device
    /// EWMA and the worker was evicted.
    Completed {
        samples: Vec<RequestSample>,
        batch_service: SimTime,
        evicted: bool,
    },
    /// Cold-start record failed; every batched request is accounted as
    /// failed.
    Failed,
    /// A plan crash landed inside the service interval: the partial work
    /// is discarded and every batched request must fail over.
    Interrupted { reqs: Vec<Request>, at: SimTime },
}

/// What the service phase produced besides its duration: real replay
/// bytes to verify a receipt over (one input lane per batched request,
/// outputs concatenated in lane order), or nothing (modeled service).
enum Payload {
    Real {
        input_lanes: Vec<Vec<u8>>,
        output: Vec<u8>,
    },
    Modeled,
}

/// Stages a fetched model onto a TEE stack: `LOAD_RECORDING`, every
/// weight slot, then the provenance record receipts will chain to.
fn stage_model(stack: &TeeStack, fetch: &FetchOutcome, model_weights: &[Vec<f32>]) {
    let blob = fetch.recording.wire_blob();
    let n = stack
        .host
        .invoke(stack.session, cmd::LOAD_RECORDING, &blob)
        .expect("registry-vetted recording loads");
    let slots = u32::from_le_bytes([n[0], n[1], n[2], n[3]]) as usize;
    assert_eq!(slots, model_weights.len(), "weight slot count mismatch");
    for (i, w) in model_weights.iter().enumerate() {
        let mut p = (i as u32).to_le_bytes().to_vec();
        p.extend(w.iter().flat_map(|v| v.to_le_bytes()));
        stack
            .host
            .invoke(stack.session, cmd::SET_WEIGHTS, &p)
            .expect("staged weights match recording slots");
    }
    stack
        .host
        .invoke(
            stack.session,
            cmd::SET_PROVENANCE,
            &fetch.provenance.to_bytes(),
        )
        .expect("registry provenance matches the recording it vetted");
}

/// Measures one `(model, SKU)` service profile on a throwaway probe
/// stack: real staging, a first and a warm replay, and one fully
/// verified replay receipt — so the attestation path is proven end to
/// end before modeled services stand in for it.
fn measure_profile(
    spec: &NetworkSpec,
    sku: &GpuSku,
    fetch: &FetchOutcome,
    model_weights: &[Vec<f32>],
) -> ServiceProfile {
    let stats = Stats::new();
    let stack = TeeStack::new(sku.clone(), &stats);
    let t0 = stack.device.clock.now();
    stage_model(&stack, fetch, model_weights);
    let load = stack.device.clock.now() - t0;

    let input = test_input(spec, 0);
    let input_bytes: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
    let t1 = stack.device.clock.now();
    stack
        .host
        .invoke(stack.session, cmd::SET_INPUT, &input_bytes)
        .expect("input matches recording slot");
    let output = stack
        .host
        .invoke(stack.session, cmd::RUN, &[])
        .expect("replay of vetted recording succeeds");
    let first_replay = stack.device.clock.now() - t1;

    let receipt_bytes = stack
        .host
        .invoke(stack.session, cmd::RECEIPT, &[])
        .expect("completed replay has a receipt");
    let receipt = ReplayReceipt::from_bytes(&receipt_bytes).expect("probe receipt parses");
    verify_chain(
        &receipt,
        &fetch.provenance,
        &fetch.lint.to_json(),
        PROVISIONING_SECRET,
    )
    .expect("probe receipt chains to registry provenance");
    verify_receipt_data(&receipt, &input_bytes, &output).expect("probe receipt covers its data");

    let t2 = stack.device.clock.now();
    stack
        .host
        .invoke(stack.session, cmd::SET_INPUT, &input_bytes)
        .expect("input matches recording slot");
    stack
        .host
        .invoke(stack.session, cmd::RUN, &[])
        .expect("replay of vetted recording succeeds");
    let warm_replay = stack.device.clock.now() - t2;

    ServiceProfile {
        load,
        first_replay,
        warm_replay,
    }
}

/// Measures one warm `(model, SKU, B)` batched-replay duration on a
/// throwaway probe stack: stage, one scalar warm-up replay (so the timed
/// batch runs against the warm TLB/page state it models), then one
/// `RUN_BATCH` interval over `b` lanes.
fn measure_batch_profile(
    spec: &NetworkSpec,
    sku: &GpuSku,
    fetch: &FetchOutcome,
    model_weights: &[Vec<f32>],
    b: usize,
) -> SimTime {
    let stats = Stats::new();
    let stack = TeeStack::new(sku.clone(), &stats);
    stage_model(&stack, fetch, model_weights);
    let input = test_input(spec, 0);
    let input_bytes: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
    stack
        .host
        .invoke(stack.session, cmd::SET_INPUT, &input_bytes)
        .expect("input matches recording slot");
    stack
        .host
        .invoke(stack.session, cmd::RUN, &[])
        .expect("replay of vetted recording succeeds");
    let mut payload = (b as u32).to_le_bytes().to_vec();
    for lane in 0..b {
        payload.extend(
            test_input(spec, lane as u64)
                .iter()
                .flat_map(|v| v.to_le_bytes()),
        );
    }
    let t0 = stack.device.clock.now();
    stack
        .host
        .invoke(stack.session, cmd::RUN_BATCH, &payload)
        .expect("batched replay of vetted recording succeeds");
    stack.device.clock.now() - t0
}

/// Serves one same-model batch of requests on one device through a
/// single replay, starting at `start` on the serving timeline. A batch
/// of one takes exactly the scalar `SET_INPUT`+`RUN` path (so
/// `max_batch = 1` fleets are byte-identical to pre-batching ones);
/// larger batches drive one `RUN_BATCH` interval and verify its single
/// batch receipt against every staged input lane (DESIGN.md §14).
#[allow(clippy::too_many_arguments)] // Split borrows of Fleet's fields.
fn serve_batch(
    worker: &mut DeviceWorker,
    device_index: usize,
    reqs: &[Request],
    start: SimTime,
    plan: Option<&FaultPlan>,
    registry: &mut RecordingRegistry,
    models: &[NetworkSpec],
    weights: &mut [Option<Vec<Vec<f32>>>],
    mode: ServiceMode,
    profiles: &mut BTreeMap<(usize, u32), ServiceProfile>,
    batch_profiles: &mut BTreeMap<(usize, u32, usize), SimTime>,
    metrics: &mut MetricsCollector,
) -> ServeOutcome {
    // Job-queue-length-1: service intervals on one device never overlap.
    assert!(
        start >= worker.last_service_end,
        "device {device_index} would run two replays at once"
    );
    worker.inflight += 1;
    worker.max_inflight = worker.max_inflight.max(worker.inflight);

    let head = &reqs[0];
    let b = reqs.len();
    let spec = &models[head.model];
    let mut cold_start = false;

    let (raw_service, payload) = match mode {
        ServiceMode::Replay => {
            let stack = worker
                .stack
                .as_ref()
                .expect("replay-mode workers own a TEE stack");
            let t0 = stack.device.clock.now();
            if worker.loaded_model != Some(head.model) {
                let fetch = match registry.fetch(spec, &worker.sku) {
                    Ok(f) => f,
                    Err(_) => {
                        metrics.failed += b as u64;
                        worker.inflight -= 1;
                        return ServeOutcome::Failed;
                    }
                };
                if let Some(delay) = fetch.cold_start_delay {
                    // The cold-start record ran while this request
                    // waited; charge its full delay to this interval.
                    stack.device.clock.advance(delay);
                    cold_start = true;
                }
                let model_weights =
                    weights[head.model].get_or_insert_with(|| workload_weights(spec));
                stage_model(stack, &fetch, model_weights);
                worker.provenance = Some(Rc::clone(&fetch.provenance));
                worker.lint_json = Some(fetch.lint.to_json());
                worker.loaded_model = Some(head.model);
                worker.loads += 1;
            }
            // Per-request cost: input staging + replay only.
            let input_lanes: Vec<Vec<u8>> = reqs
                .iter()
                .map(|r| {
                    test_input(spec, r.id)
                        .iter()
                        .flat_map(|v| v.to_le_bytes())
                        .collect()
                })
                .collect();
            let output = if b == 1 {
                stack
                    .host
                    .invoke(stack.session, cmd::SET_INPUT, &input_lanes[0])
                    .expect("input matches recording slot");
                stack
                    .host
                    .invoke(stack.session, cmd::RUN, &[])
                    .expect("replay of vetted recording succeeds")
            } else {
                let mut run_payload = (b as u32).to_le_bytes().to_vec();
                for lane in &input_lanes {
                    run_payload.extend_from_slice(lane);
                }
                stack
                    .host
                    .invoke(stack.session, cmd::RUN_BATCH, &run_payload)
                    .expect("batched replay of vetted recording succeeds")
            };
            (
                stack.device.clock.now() - t0,
                Payload::Real {
                    input_lanes,
                    output,
                },
            )
        }
        ServiceMode::Profiled => {
            let svc = if b == 1 {
                if worker.loaded_model != Some(head.model) {
                    let fetch = match registry.fetch(spec, &worker.sku) {
                        Ok(f) => f,
                        Err(_) => {
                            metrics.failed += 1;
                            worker.inflight -= 1;
                            return ServeOutcome::Failed;
                        }
                    };
                    let profile = *profiles
                        .entry((head.model, worker.sku.gpu_id))
                        .or_insert_with(|| {
                            let mw =
                                weights[head.model].get_or_insert_with(|| workload_weights(spec));
                            measure_profile(spec, &worker.sku, &fetch, mw)
                        });
                    let mut svc = profile.load + profile.first_replay;
                    if let Some(delay) = fetch.cold_start_delay {
                        // Cold-start record delays are always real (the
                        // registry actually recorded), never modeled.
                        svc += delay;
                        cold_start = true;
                    }
                    worker.provenance = Some(Rc::clone(&fetch.provenance));
                    worker.lint_json = Some(fetch.lint.to_json());
                    worker.loaded_model = Some(head.model);
                    worker.loads += 1;
                    svc
                } else {
                    profiles
                        .get(&(head.model, worker.sku.gpu_id))
                        .expect("staged model was profiled at load")
                        .warm_replay
                }
            } else {
                // The batch probe needs the recording either way; for a
                // staged model the fetch is a registry hit (unless the
                // entry was evicted, in which case the re-record is real
                // and charged below like any cold start).
                let switch = worker.loaded_model != Some(head.model);
                let fetch = match registry.fetch(spec, &worker.sku) {
                    Ok(f) => f,
                    Err(_) => {
                        metrics.failed += b as u64;
                        worker.inflight -= 1;
                        return ServeOutcome::Failed;
                    }
                };
                let mw = weights[head.model].get_or_insert_with(|| workload_weights(spec));
                let profile = *profiles
                    .entry((head.model, worker.sku.gpu_id))
                    .or_insert_with(|| measure_profile(spec, &worker.sku, &fetch, mw));
                let mut svc = *batch_profiles
                    .entry((head.model, worker.sku.gpu_id, b))
                    .or_insert_with(|| measure_batch_profile(spec, &worker.sku, &fetch, mw, b));
                if switch {
                    // Staging plus the cold-first-replay penalty, on top
                    // of the warm batched-replay duration.
                    svc += profile.load + profile.first_replay.saturating_sub(profile.warm_replay);
                    worker.loads += 1;
                }
                if let Some(delay) = fetch.cold_start_delay {
                    svc += delay;
                    cold_start = true;
                }
                worker.provenance = Some(Rc::clone(&fetch.provenance));
                worker.lint_json = Some(fetch.lint.to_json());
                worker.loaded_model = Some(head.model);
                svc
            };
            (svc, Payload::Modeled)
        }
    };

    let mut service = raw_service;
    if let Some(p) = plan {
        // Thermal throttling / background contention stretch the interval.
        service = service.mul_f64(p.slowdown_at(device_index, start));
    }
    let end = start + service;

    if let Some(crash) = plan.and_then(|p| p.crash_within(device_index, start, end)) {
        // The device died mid-replay: everything since `start` is lost
        // and no lane's output ever reaches a client (nor the run
        // digest). Every batched request fails over.
        worker.busy += crash.at - start;
        worker.free_at = crash.at;
        worker.last_service_end = crash.at;
        worker.inflight -= 1;
        return ServeOutcome::Interrupted {
            reqs: reqs.to_vec(),
            at: crash.at,
        };
    }

    match payload {
        Payload::Real {
            input_lanes,
            output,
        } => {
            metrics.absorb_output(&output);
            // The replay is committed: pull its signed receipt and verify
            // the full chain (receipt → provenance → recording/lint
            // digests) plus the interval's own input/output bytes — one
            // receipt covers the whole batch (its input digest commits to
            // the lane vector, its output digest to the concatenated lane
            // outputs). Failures are counted by rule, never silently
            // dropped.
            let stack = worker
                .stack
                .as_ref()
                .expect("replay-mode workers own a TEE stack");
            let receipt_bytes = stack
                .host
                .invoke(stack.session, cmd::RECEIPT, &[])
                .expect("completed replay has a receipt");
            metrics.receipts_issued += 1;
            let verdict = ReplayReceipt::from_bytes(&receipt_bytes).and_then(|receipt| {
                let provenance = worker
                    .provenance
                    .as_deref()
                    .ok_or(grt_attest::VerifyError::MissingProvenance)?;
                let lint_json = worker.lint_json.as_deref().unwrap_or_default();
                verify_chain(&receipt, provenance, lint_json, PROVISIONING_SECRET)?;
                if input_lanes.len() == 1 {
                    verify_receipt_data(&receipt, &input_lanes[0], &output)
                } else {
                    grt_attest::verify_batch_receipt_data(&receipt, &input_lanes, &output)
                }
            });
            match verdict {
                Ok(()) => metrics.receipts_verified += 1,
                Err(e) => {
                    *metrics
                        .receipts_rejected
                        .entry(e.code().to_owned())
                        .or_insert(0) += 1;
                }
            }
        }
        Payload::Modeled => {
            // The modeled replay's deterministic stand-in for its output
            // bytes (one token per lane, in lane order); the receipt
            // itself was issued and verified for real on this
            // (model, SKU)'s probe run.
            for req in reqs {
                let mut token = req.id.to_le_bytes().to_vec();
                token.extend((req.model as u64).to_le_bytes());
                token.extend(worker.sku.gpu_id.to_le_bytes());
                metrics.absorb_output(&token);
            }
            metrics.receipts_issued += 1;
            metrics.receipts_verified += 1;
        }
    }

    worker.free_at = end;
    worker.last_service_end = end;
    worker.busy += service;
    worker.completed += b as u64;
    worker.inflight -= 1;
    let evicted = worker.health.on_success(service, end);
    ServeOutcome::Completed {
        samples: reqs
            .iter()
            .map(|req| RequestSample {
                id: req.id,
                model: req.model,
                device: device_index,
                queue_wait: start - req.arrival,
                service,
                total: end - req.arrival,
                cold_start,
            })
            .collect(),
        batch_service: service,
        evicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_trace, TraceConfig};

    fn small_fleet() -> Fleet {
        // Deep queues: the test asserts zero rejections, and every request
        // arriving during a multi-second cold-start record must fit.
        let cfg = FleetConfig {
            queue_capacity: 64,
            ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp4()])
        };
        Fleet::new(vec![grt_ml::zoo::mnist()], cfg)
    }

    #[test]
    fn serves_a_short_trace_completely() {
        let mut fleet = small_fleet();
        let trace = generate_trace(1, &TraceConfig::new(20, 1));
        let report = fleet.run(&trace);
        assert_eq!(report.submitted, 20);
        assert_eq!(report.completed, 20);
        assert_eq!(report.rejected + report.timed_out + report.failed, 0);
        assert_eq!(report.max_inflight, 1);
        assert!(report.throughput_rps > 0.0);
        // No fault plan: the fault-tolerance section stays all-zero.
        assert_eq!(report.crashes + report.failovers + report.evictions, 0);
        // Two SKUs were exercised → at least two cold starts possible,
        // but a single-model trace needs at most one per SKU.
        assert!(report.cold_starts as usize <= 2);
        // Every completed replay produced a receipt and every receipt's
        // full chain verified against the registry provenance.
        assert_eq!(report.receipts_issued, report.completed);
        assert_eq!(report.receipts_verified, report.receipts_issued);
        assert!(report.receipts_rejected.is_empty());
    }

    #[test]
    fn affinity_amortizes_staging() {
        // One device, one model: exactly one LOAD_RECORDING for N runs.
        let cfg = FleetConfig {
            queue_capacity: 16,
            ..FleetConfig::new(vec![GpuSku::mali_g71_mp8()])
        };
        let mut fleet = Fleet::new(vec![grt_ml::zoo::mnist()], cfg);
        let trace = generate_trace(1, &TraceConfig::new(12, 3));
        let report = fleet.run(&trace);
        assert_eq!(report.completed, 12);
        assert_eq!(report.per_device[0].loads, 1);
        assert_eq!(report.cold_starts, 1);
    }

    #[test]
    fn queue_wait_reflects_contention() {
        // One device, arrivals far faster than service: later requests
        // wait longer than earlier ones.
        let cfg = FleetConfig {
            queue_capacity: 64,
            ..FleetConfig::new(vec![GpuSku::mali_g71_mp8()])
        };
        let mut fleet = Fleet::new(vec![grt_ml::zoo::mnist()], cfg);
        let trace_cfg = TraceConfig {
            mean_interarrival: SimTime::from_micros(100),
            ..TraceConfig::new(30, 5)
        };
        let trace = generate_trace(1, &trace_cfg);
        let report = fleet.run(&trace);
        assert_eq!(report.completed, 30);
        assert!(report.queue_wait.p99 > report.queue_wait.p50);
        assert!(report.total.p50 >= report.service.p50);
    }

    #[test]
    fn crash_fails_over_to_same_sku_peer() {
        // Two same-SKU devices; device 0 crashes mid-run. Everything the
        // crash displaces lands on device 1 (same SKU ⇒ the recording is
        // still valid) and the whole trace is accounted.
        // Crash lands inside device 0's first service interval (the
        // multi-second cold-start record), so it interrupts in-flight
        // work as well as displacing whatever queued behind it.
        let plan = Rc::new(FaultPlan::new().with_crash(
            0,
            SimTime::from_secs(1),
            SimTime::from_millis(500),
        ));
        let cfg = FleetConfig {
            queue_capacity: 64,
            ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp8()])
        }
        .with_faults(plan);
        let mut fleet = Fleet::new(vec![grt_ml::zoo::mnist()], cfg);
        let trace = generate_trace(1, &TraceConfig::new(24, 9));
        let (report, metrics) = fleet.run_detailed(&trace);
        assert_eq!(report.crashes, 1);
        assert!(report.failovers > 0, "crash must displace queued work");
        assert!(metrics.failovers.iter().all(|f| f.from == 0 && f.to == 1));
        assert_eq!(report.max_inflight, 1, "invariant holds through failover");
        assert_eq!(
            report.completed + report.rejected + report.timed_out + report.failed,
            report.submitted
        );
        // The crash-displaced work completed on the healthy peer.
        assert_eq!(report.failed, 0);
        assert_eq!(report.timed_out, 0);
        // Interrupted work never yields a receipt: issuance tracks
        // completions exactly, and every issued receipt verified.
        assert_eq!(report.receipts_issued, report.completed);
        assert_eq!(report.receipts_verified, report.completed);
        assert!(report.receipts_rejected.is_empty());
    }

    #[test]
    fn flapping_device_is_evicted_and_readmitted() {
        // Three back-to-back crashes on device 0 (each lands exactly at
        // the previous restart, so the device never completes a service
        // in between) cross the failure threshold: eviction, probation,
        // then a counted re-admission once the run drains past it.
        let plan = Rc::new(
            FaultPlan::new()
                .with_crash(0, SimTime::from_millis(100), SimTime::from_millis(10))
                .with_crash(0, SimTime::from_millis(110), SimTime::from_millis(10))
                .with_crash(0, SimTime::from_millis(120), SimTime::from_millis(10)),
        );
        let cfg = FleetConfig {
            queue_capacity: 64,
            ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp8()])
        }
        .with_faults(plan);
        let mut fleet = Fleet::new(vec![grt_ml::zoo::mnist()], cfg);
        let trace = generate_trace(1, &TraceConfig::new(10, 4));
        let report = fleet.run(&trace);
        assert_eq!(report.crashes, 3);
        assert_eq!(report.evictions, 1, "third consecutive crash evicts");
        assert_eq!(report.readmissions, 1, "probation ends during drain");
        assert_eq!(
            report.completed + report.rejected + report.timed_out + report.failed,
            report.submitted
        );
    }

    #[test]
    fn faulted_record_tunnel_counters_surface_in_report() {
        // A partition over the cold-start record window, long enough to
        // exhaust the per-message retry ladder, forces the tunnel through
        // retransmissions and a checkpoint resume; both surface in the
        // serve report's fault-tolerance section.
        let plan = Rc::new(
            FaultPlan::new().with_partition(SimTime::from_millis(800), SimTime::from_millis(3000)),
        );
        let cfg = FleetConfig {
            queue_capacity: 64,
            ..FleetConfig::new(vec![GpuSku::mali_g71_mp8()])
        }
        .with_faults(plan);
        let mut fleet = Fleet::new(vec![grt_ml::zoo::mnist()], cfg);
        let trace = generate_trace(1, &TraceConfig::new(6, 2));
        let report = fleet.run(&trace);
        assert_eq!(report.completed, 6);
        assert!(report.rec_link_retries > 0);
        assert!(report.rec_checkpoint_resumes > 0);
    }

    #[test]
    fn event_indexed_scheduler_matches_legacy_sweep() {
        // The tentpole's pin, in miniature: same trace, same fleet, both
        // schedulers → byte-identical reports and equal event logs. The
        // full harness (warm/cold registries, faults, random configs)
        // lives in tests/serve.rs.
        let run = |kind| {
            let cfg = FleetConfig {
                queue_capacity: 64,
                scheduler: kind,
                ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp4()])
            };
            let mut fleet = Fleet::new(vec![grt_ml::zoo::mnist()], cfg);
            let trace = generate_trace(1, &TraceConfig::new(16, 21));
            let (report, metrics) = fleet.run_detailed(&trace);
            (report.to_json(), metrics)
        };
        let (legacy_json, legacy_metrics) = run(SchedulerKind::LegacySweep);
        let (indexed_json, indexed_metrics) = run(SchedulerKind::EventIndexed);
        assert_eq!(legacy_json, indexed_json);
        assert_eq!(legacy_metrics, indexed_metrics);
    }

    #[test]
    fn profiled_mode_models_service_deterministically() {
        let run = || {
            let cfg = FleetConfig {
                queue_capacity: 64,
                service: ServiceMode::Profiled,
                ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp4()])
            };
            let mut fleet = Fleet::new(vec![grt_ml::zoo::mnist()], cfg);
            let trace = generate_trace(1, &TraceConfig::new(20, 1));
            fleet.run(&trace)
        };
        let a = run();
        assert_eq!(a.completed, 20);
        assert_eq!(a.rejected + a.timed_out + a.failed, 0);
        assert_eq!(a.max_inflight, 1);
        // Modeled services keep the attestation accounting invariant (the
        // probe verified one real receipt per (model, SKU)).
        assert_eq!(a.receipts_issued, a.completed);
        assert_eq!(a.receipts_verified, a.completed);
        assert!(a.cold_starts as usize <= 2);
        // Profiled runs are as deterministic as real ones.
        let b = run();
        assert_eq!(a.to_json(), b.to_json());
    }
}
