//! The fleet scheduler: N client TEE devices serving one request stream.
//!
//! Each device is a full [`ClientDevice`] (GPU + TZASC + secure monitor)
//! hosting a [`ReplayService`] behind the GlobalPlatform protocol, exactly
//! as a production phone would run it. The scheduler dispatches requests
//! to devices with **same-model affinity**: a request for the model a
//! device already has staged skips `LOAD_RECORDING`/`SET_WEIGHTS` and
//! pays only `SET_INPUT`+`RUN`, so consecutive same-model requests
//! amortize the staging cost (the serving-side analogue of the paper's
//! record-once-replay-many economics).
//!
//! The paper's replayer assumes the GPU job queue never holds more than
//! one outstanding job; the fleet preserves that per device — a device
//! serves exactly one replay at a time, and the scheduler asserts it
//! (service intervals on one device never overlap; see
//! [`Fleet::max_inflight`]).
//!
//! Time: the fleet clock is the discrete-event serving timeline. Each
//! device's hardware clock is a private lane measuring service durations
//! (replay polls, staging, cold-start records); the scheduler re-anchors
//! those durations onto the serving timeline, so devices serve in
//! parallel while all timestamps stay deterministic.

use crate::admission::{AdmissionQueue, Rejection, Request};
use crate::metrics::{
    DeviceReport, MetricsCollector, ModelReport, Percentiles, RequestSample, ServeReport,
    TimeoutRecord,
};
use crate::registry::{RecordingRegistry, RegistryConfig};
use grt_core::replay::workload_weights;
use grt_core::service::cmd;
use grt_core::session::{recording_trust_root, ClientDevice, PROVISIONING_SECRET};
use grt_core::ReplayService;
use grt_gpu::GpuSku;
use grt_ml::reference::test_input;
use grt_ml::NetworkSpec;
use grt_net::NetConditions;
use grt_sim::{Clock, SimTime, Stats};
use grt_tee::TeeHost;
use std::cell::RefCell;
use std::rc::Rc;

/// Fleet composition and scheduling parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// One entry per device; duplicates are distinct devices.
    pub skus: Vec<GpuSku>,
    /// Per-device admission-queue bound.
    pub queue_capacity: usize,
    /// How much deeper a same-model device's queue may be than the
    /// shallowest queue before affinity is abandoned for load balance.
    pub affinity_slack: usize,
    /// Recording-registry sizing and cold-start parameters.
    pub registry: RegistryConfig,
}

impl FleetConfig {
    /// A fleet of `skus` with an 8-deep queue per device, slack-2
    /// affinity, and a 64-entry WiFi registry.
    pub fn new(skus: Vec<GpuSku>) -> Self {
        FleetConfig {
            skus,
            queue_capacity: 8,
            affinity_slack: 2,
            registry: RegistryConfig::new(64),
        }
    }

    /// Overrides the registry's cold-start link conditions.
    pub fn with_conditions(mut self, conditions: NetConditions) -> Self {
        self.registry.conditions = conditions;
        self
    }
}

/// One client device plus its serving state.
struct DeviceWorker {
    device: ClientDevice,
    host: TeeHost,
    session: u32,
    sku: GpuSku,
    queue: AdmissionQueue,
    /// When the device finishes its current replay (serving timeline).
    free_at: SimTime,
    /// End of the previous service interval; a new interval starting
    /// before this would mean two concurrent replays on one GPU.
    last_service_end: SimTime,
    /// Model currently staged in the replay service.
    loaded_model: Option<usize>,
    /// In-flight replays right now (the invariant holds this ≤ 1).
    inflight: u32,
    max_inflight: u32,
    completed: u64,
    loads: u64,
    busy: SimTime,
}

impl DeviceWorker {
    fn new(sku: GpuSku, queue_capacity: usize, stats: &Rc<Stats>) -> Self {
        let clock = Clock::new();
        let device = ClientDevice::new(sku.clone(), &clock, stats, PROVISIONING_SECRET);
        let host = TeeHost::new(&device.monitor);
        host.register(Box::new(RefCell::new(ReplayService::new(
            &device,
            recording_trust_root(),
            Rc::new(grt_lint::Linter::new()),
        ))));
        let session = host
            .open_session("grt.replay")
            .expect("replay module just registered");
        DeviceWorker {
            device,
            host,
            session,
            sku,
            queue: AdmissionQueue::new(queue_capacity),
            free_at: SimTime::ZERO,
            last_service_end: SimTime::ZERO,
            loaded_model: None,
            inflight: 0,
            max_inflight: 0,
            completed: 0,
            loads: 0,
            busy: SimTime::ZERO,
        }
    }
}

/// The serving fleet: devices + registry + one DES timeline.
pub struct Fleet {
    cfg: FleetConfig,
    models: Vec<NetworkSpec>,
    workers: Vec<DeviceWorker>,
    registry: RecordingRegistry,
    /// Cached replay-time model parameters, one slot per catalog model.
    weights: Vec<Option<Vec<Vec<f32>>>>,
    /// The serving timeline.
    clock: Rc<Clock>,
    service_time_sum: SimTime,
    service_count: u64,
}

/// Retry-after fallback before any request has completed.
const DEFAULT_SERVICE_ESTIMATE: SimTime = SimTime::from_millis(25);

impl Fleet {
    /// Builds a fleet serving `models` with a fresh registry.
    pub fn new(models: Vec<NetworkSpec>, cfg: FleetConfig) -> Self {
        let registry = RecordingRegistry::new(cfg.registry.clone());
        Self::with_registry(models, cfg, registry)
    }

    /// Builds a fleet around an existing registry (e.g. one warmed by a
    /// previous run), preserving its cache contents and counters.
    pub fn with_registry(
        models: Vec<NetworkSpec>,
        cfg: FleetConfig,
        registry: RecordingRegistry,
    ) -> Self {
        assert!(!cfg.skus.is_empty(), "a fleet needs at least one device");
        let stats = Stats::new();
        let workers = cfg
            .skus
            .iter()
            .map(|sku| DeviceWorker::new(sku.clone(), cfg.queue_capacity, &stats))
            .collect();
        let n_models = models.len();
        Fleet {
            cfg,
            models,
            workers,
            registry,
            weights: vec![None; n_models],
            clock: Clock::new(),
            service_time_sum: SimTime::ZERO,
            service_count: 0,
        }
    }

    /// Releases the registry (to carry a warmed cache into another fleet).
    pub fn into_registry(self) -> RecordingRegistry {
        self.registry
    }

    /// Registry counters (hits/misses/evictions so far).
    pub fn registry_stats(&self) -> crate::registry::RegistryStats {
        self.registry.stats()
    }

    /// Max concurrent replays ever observed on any single device. The
    /// job-queue-length-1 invariant requires this to be exactly 1 after
    /// any run that served at least one request.
    pub fn max_inflight(&self) -> u32 {
        self.workers
            .iter()
            .map(|w| w.max_inflight)
            .max()
            .unwrap_or(0)
    }

    /// Serves a whole arrival-ordered trace, returning the reduced report.
    pub fn run(&mut self, trace: &[Request]) -> ServeReport {
        self.run_detailed(trace).0
    }

    /// Like [`Fleet::run`] but also returns the raw event log (per-request
    /// samples, rejections with retry hints, timeout records).
    pub fn run_detailed(&mut self, trace: &[Request]) -> (ServeReport, MetricsCollector) {
        let mut metrics = MetricsCollector::default();
        for req in trace {
            debug_assert!(
                req.arrival >= self.clock.now(),
                "trace must be arrival-ordered"
            );
            self.drain_until(req.arrival, &mut metrics);
            self.clock.advance_to(req.arrival);
            match self.pick_device(req) {
                Some(i) => {
                    self.workers[i]
                        .queue
                        .try_push(req.clone())
                        .expect("pick_device returns only non-full queues");
                }
                None => {
                    let retry_after = self.retry_after_estimate(req.arrival);
                    metrics.rejections.push(Rejection {
                        id: req.id,
                        model: req.model,
                        at: req.arrival,
                        retry_after,
                    });
                }
            }
        }
        self.drain_until(SimTime::MAX, &mut metrics);
        let report = self.reduce(trace.len() as u64, &metrics);
        (report, metrics)
    }

    /// Serves every queued request whose service would start before `t`.
    fn drain_until(&mut self, t: SimTime, metrics: &mut MetricsCollector) {
        let Fleet {
            workers,
            registry,
            models,
            weights,
            service_time_sum,
            service_count,
            ..
        } = self;
        for (wi, worker) in workers.iter_mut().enumerate() {
            while let Some(head) = worker.queue.front() {
                let start = worker.free_at.max(head.arrival);
                if start >= t {
                    break;
                }
                let req = worker.queue.pop_front().expect("front() was Some");
                if start > req.deadline {
                    // Deadline expired while queued: accounted, not dropped.
                    metrics.timeouts.push(TimeoutRecord {
                        id: req.id,
                        model: req.model,
                        expired_at: req.deadline,
                    });
                    continue;
                }
                if let Some(sample) =
                    serve_one(worker, wi, &req, start, registry, models, weights, metrics)
                {
                    *service_time_sum += sample.service;
                    *service_count += 1;
                    metrics.samples.push(sample);
                }
            }
        }
    }

    /// Picks the device to queue `req` on: same-model affinity first
    /// (within the configured slack of the shallowest queue), then least
    /// queue depth, then earliest free, then lowest index. Returns `None`
    /// when every queue is full — the backpressure case.
    fn pick_device(&self, req: &Request) -> Option<usize> {
        let open = |w: &DeviceWorker| !w.queue.is_full();
        let min_depth = self
            .workers
            .iter()
            .filter(|w| open(w))
            .map(|w| w.queue.len())
            .min()?;
        // Affinity pass: a device already staged with this model, unless
        // its queue has fallen too far behind the shallowest.
        let affine = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| {
                open(w)
                    && w.loaded_model == Some(req.model)
                    && w.queue.len() <= min_depth + self.cfg.affinity_slack
            })
            .min_by_key(|(i, w)| (w.queue.len(), w.free_at, *i));
        if let Some((i, _)) = affine {
            return Some(i);
        }
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| open(w))
            .min_by_key(|(i, w)| (w.queue.len(), w.free_at, *i))
            .map(|(i, _)| i)
    }

    /// How long a rejected client should back off: the soonest any
    /// device could plausibly reach new work, plus one service time.
    fn retry_after_estimate(&self, now: SimTime) -> SimTime {
        let avg = if self.service_count == 0 {
            DEFAULT_SERVICE_ESTIMATE
        } else {
            self.service_time_sum / self.service_count
        };
        let soonest = self
            .workers
            .iter()
            .map(|w| w.free_at.saturating_sub(now) + avg * w.queue.len() as u64)
            .min()
            .unwrap_or(SimTime::ZERO);
        soonest + avg
    }

    /// Reduces the collected events into the export-ready report.
    fn reduce(&self, submitted: u64, metrics: &MetricsCollector) -> ServeReport {
        let mut queue_waits: Vec<SimTime> = metrics.samples.iter().map(|s| s.queue_wait).collect();
        let mut services: Vec<SimTime> = metrics.samples.iter().map(|s| s.service).collect();
        let mut totals: Vec<SimTime> = metrics.samples.iter().map(|s| s.total).collect();
        let completed = metrics.samples.len() as u64;
        let makespan = self
            .workers
            .iter()
            .map(|w| w.last_service_end)
            .max()
            .unwrap_or(SimTime::ZERO)
            .max(self.clock.now());
        let throughput_rps = if makespan.is_zero() {
            0.0
        } else {
            completed as f64 / makespan.as_secs_f64()
        };
        let mean_total = if completed == 0 {
            SimTime::ZERO
        } else {
            metrics
                .samples
                .iter()
                .fold(SimTime::ZERO, |acc, s| acc + s.total)
                / completed
        };
        let per_model = self
            .models
            .iter()
            .enumerate()
            .map(|(mi, spec)| {
                let done: Vec<&RequestSample> =
                    metrics.samples.iter().filter(|s| s.model == mi).collect();
                let mean = if done.is_empty() {
                    SimTime::ZERO
                } else {
                    done.iter().fold(SimTime::ZERO, |acc, s| acc + s.total) / done.len() as u64
                };
                ModelReport {
                    name: spec.name.to_owned(),
                    completed: done.len() as u64,
                    mean_total: mean,
                }
            })
            .collect();
        let per_device = self
            .workers
            .iter()
            .map(|w| DeviceReport {
                sku: w.sku.name.to_owned(),
                completed: w.completed,
                loads: w.loads,
                busy: w.busy,
                peak_queue_depth: w.queue.peak_depth(),
            })
            .collect();
        let cache = self.registry.stats();
        let cold_starts = metrics.samples.iter().filter(|s| s.cold_start).count() as u64;
        ServeReport {
            submitted,
            completed,
            rejected: metrics.rejections.len() as u64,
            timed_out: metrics.timeouts.len() as u64,
            failed: metrics.failed,
            makespan,
            throughput_rps,
            queue_wait: Percentiles::of(&mut queue_waits),
            service: Percentiles::of(&mut services),
            total: Percentiles::of(&mut totals),
            mean_total,
            cold_starts,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_hit_ratio: cache.hit_ratio(),
            record_time: self.registry.record_time(),
            max_inflight: self.max_inflight(),
            output_digest: metrics.output_digest,
            per_model,
            per_device,
        }
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("devices", &self.workers.len())
            .field("models", &self.models.len())
            .finish()
    }
}

/// Serves one request on one device, starting at `start` on the serving
/// timeline. Returns `None` (and bumps `metrics.failed`) if the
/// cold-start record failed.
#[allow(clippy::too_many_arguments)] // Split borrows of Fleet's fields.
fn serve_one(
    worker: &mut DeviceWorker,
    device_index: usize,
    req: &Request,
    start: SimTime,
    registry: &mut RecordingRegistry,
    models: &[NetworkSpec],
    weights: &mut [Option<Vec<Vec<f32>>>],
    metrics: &mut MetricsCollector,
) -> Option<RequestSample> {
    // Job-queue-length-1: service intervals on one device never overlap.
    assert!(
        start >= worker.last_service_end,
        "device {device_index} would run two replays at once"
    );
    worker.inflight += 1;
    worker.max_inflight = worker.max_inflight.max(worker.inflight);

    let spec = &models[req.model];
    let t0 = worker.device.clock.now();
    let mut cold_start = false;

    if worker.loaded_model != Some(req.model) {
        let fetch = match registry.fetch(spec, &worker.sku) {
            Ok(f) => f,
            Err(_) => {
                metrics.failed += 1;
                worker.inflight -= 1;
                return None;
            }
        };
        if let Some(delay) = fetch.cold_start_delay {
            // The cold-start record ran while this request waited; charge
            // its full delay to this service interval.
            worker.device.clock.advance(delay);
            cold_start = true;
        }
        let blob = fetch.recording.wire_blob();
        let n = worker
            .host
            .invoke(worker.session, cmd::LOAD_RECORDING, &blob)
            .expect("registry-vetted recording loads");
        let slots = u32::from_le_bytes([n[0], n[1], n[2], n[3]]) as usize;
        let model_weights = weights[req.model].get_or_insert_with(|| workload_weights(spec));
        assert_eq!(slots, model_weights.len(), "weight slot count mismatch");
        for (i, w) in model_weights.iter().enumerate() {
            let mut p = (i as u32).to_le_bytes().to_vec();
            p.extend(w.iter().flat_map(|v| v.to_le_bytes()));
            worker
                .host
                .invoke(worker.session, cmd::SET_WEIGHTS, &p)
                .expect("staged weights match recording slots");
        }
        worker.loaded_model = Some(req.model);
        worker.loads += 1;
    }

    // Per-request cost: input staging + replay only.
    let input = test_input(spec, req.id);
    let input_bytes: Vec<u8> = input.iter().flat_map(|v| v.to_le_bytes()).collect();
    worker
        .host
        .invoke(worker.session, cmd::SET_INPUT, &input_bytes)
        .expect("input matches recording slot");
    let output = worker
        .host
        .invoke(worker.session, cmd::RUN, &[])
        .expect("replay of vetted recording succeeds");
    metrics.absorb_output(&output);

    let service = worker.device.clock.now() - t0;
    let end = start + service;
    worker.free_at = end;
    worker.last_service_end = end;
    worker.busy += service;
    worker.completed += 1;
    worker.inflight -= 1;
    Some(RequestSample {
        id: req.id,
        model: req.model,
        device: device_index,
        queue_wait: start - req.arrival,
        service,
        total: end - req.arrival,
        cold_start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_trace, TraceConfig};

    fn small_fleet() -> Fleet {
        // Deep queues: the test asserts zero rejections, and every request
        // arriving during a multi-second cold-start record must fit.
        let cfg = FleetConfig {
            queue_capacity: 64,
            ..FleetConfig::new(vec![GpuSku::mali_g71_mp8(), GpuSku::mali_g71_mp4()])
        };
        Fleet::new(vec![grt_ml::zoo::mnist()], cfg)
    }

    #[test]
    fn serves_a_short_trace_completely() {
        let mut fleet = small_fleet();
        let trace = generate_trace(1, &TraceConfig::new(20, 1));
        let report = fleet.run(&trace);
        assert_eq!(report.submitted, 20);
        assert_eq!(report.completed, 20);
        assert_eq!(report.rejected + report.timed_out + report.failed, 0);
        assert_eq!(report.max_inflight, 1);
        assert!(report.throughput_rps > 0.0);
        // Two SKUs were exercised → at least two cold starts possible,
        // but a single-model trace needs at most one per SKU.
        assert!(report.cold_starts as usize <= 2);
    }

    #[test]
    fn affinity_amortizes_staging() {
        // One device, one model: exactly one LOAD_RECORDING for N runs.
        let cfg = FleetConfig {
            queue_capacity: 16,
            ..FleetConfig::new(vec![GpuSku::mali_g71_mp8()])
        };
        let mut fleet = Fleet::new(vec![grt_ml::zoo::mnist()], cfg);
        let trace = generate_trace(1, &TraceConfig::new(12, 3));
        let report = fleet.run(&trace);
        assert_eq!(report.completed, 12);
        assert_eq!(report.per_device[0].loads, 1);
        assert_eq!(report.cold_starts, 1);
    }

    #[test]
    fn queue_wait_reflects_contention() {
        // One device, arrivals far faster than service: later requests
        // wait longer than earlier ones.
        let cfg = FleetConfig {
            queue_capacity: 64,
            ..FleetConfig::new(vec![GpuSku::mali_g71_mp8()])
        };
        let mut fleet = Fleet::new(vec![grt_ml::zoo::mnist()], cfg);
        let trace_cfg = TraceConfig {
            mean_interarrival: SimTime::from_micros(100),
            ..TraceConfig::new(30, 5)
        };
        let trace = generate_trace(1, &trace_cfg);
        let report = fleet.run(&trace);
        assert_eq!(report.completed, 30);
        assert!(report.queue_wait.p99 > report.queue_wait.p50);
        assert!(report.total.p50 >= report.service.p50);
    }
}
