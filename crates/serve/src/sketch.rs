//! Streaming quantile sketch: fixed-size, integer-only, byte-stable.
//!
//! The serve tier's original percentile path buffered every latency
//! sample and sorted at reduce time — O(requests) memory and O(n log n)
//! work, which a 10⁶-request fleet run cannot afford. This sketch is the
//! replacement: a **log-linear histogram** over nanosecond values with a
//! fixed bucket table, so recording is O(1), memory is constant, and —
//! because every operation is integer arithmetic on `u64` counters — two
//! runs over the same stream produce byte-identical JSON on every
//! platform.
//!
//! ## Bucket layout
//!
//! Values `0..64` ns get exact singleton buckets (group 0). Every later
//! octave `[2^e, 2^(e+1))` for `e in 6..=63` is split into 64 linear
//! sub-buckets of width `2^(e-6)` each, giving `64 + 58·64 = 3776`
//! buckets total covering the full `u64` range.
//!
//! ## Error bound
//!
//! A bucket reports its **lower bound** as the representative, so for any
//! recorded value `v` with representative `r`:
//!
//! ```text
//! r <= v  and  v - r < r / 64        (group 0 is exact)
//! ```
//!
//! because a sub-bucket's width `2^(e-6)` is at most 1/64 of its own
//! lower bound (`>= 64·2^(e-6)`). Bucketing is monotone, so the rank-`k`
//! sketch value is the representative of the bucket holding the rank-`k`
//! exact value, and every reported quantile `q_sketch` satisfies
//!
//! ```text
//! q_sketch <= q_exact <= q_sketch + q_sketch/64 + 1   (nanoseconds)
//! ```
//!
//! (the `+1` absorbs integer flooring). That is a <1.6% relative error —
//! far below run-to-run latency noise — verified against an exact-sort
//! oracle by the property tests below.

use grt_sim::SimTime;

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 6;
/// Sub-buckets per octave (and the size of the exact group 0).
const SUB: usize = 1 << SUB_BITS;
/// Octaves with exponent `6..=63`, each split into [`SUB`] sub-buckets.
const OCTAVES: usize = 58;
/// Total bucket count: group 0 plus the linearized octaves.
const BUCKETS: usize = SUB + OCTAVES * SUB;

/// Bucket index of a nanosecond value (monotone in `ns`).
fn bucket_of(ns: u64) -> usize {
    if ns < SUB as u64 {
        ns as usize
    } else {
        let e = 63 - ns.leading_zeros(); // >= SUB_BITS
        let group = (e - SUB_BITS + 1) as usize;
        let sub = ((ns >> (e - SUB_BITS)) as usize) & (SUB - 1);
        group * SUB + sub
    }
}

/// Lower bound (the representative) of bucket `idx`.
fn bucket_floor(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let group = (idx / SUB) as u32;
        let sub = (idx % SUB) as u64;
        (SUB as u64 + sub) << (group - 1)
    }
}

/// A fixed-size streaming quantile sketch over [`SimTime`] values.
///
/// Recording is O(1); quantile queries are O(buckets) and happen only at
/// report-reduction time. Two sketches fed the same stream are equal
/// ([`PartialEq`]) and serialize to byte-identical JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    count: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// An empty sketch (allocates its fixed bucket table once).
    pub fn new() -> Self {
        QuantileSketch {
            counts: vec![0; BUCKETS],
            count: 0,
            min: 0,
            max: 0,
            sum: 0,
        }
    }

    /// Records one value. O(1), no allocation.
    pub fn record(&mut self, v: SimTime) {
        let ns = v.as_nanos();
        self.counts[bucket_of(ns)] += 1;
        self.sum += ns as u128;
        if self.count == 0 {
            self.min = ns;
            self.max = ns;
        } else {
            self.min = self.min.min(ns);
            self.max = self.max.max(ns);
        }
        self.count += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (exact; zero when empty).
    pub fn min(&self) -> SimTime {
        SimTime::from_nanos(self.min)
    }

    /// Largest recorded value (exact; zero when empty).
    pub fn max(&self) -> SimTime {
        SimTime::from_nanos(self.max)
    }

    /// Mean of the recorded values (exact sum, integer division).
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_nanos((self.sum / self.count as u128) as u64)
        }
    }

    /// The nearest-rank quantile at `permille`/1000 (e.g. 500 = median,
    /// 999 = p99.9): the representative of the bucket containing the
    /// rank-`ceil(permille·n/1000)` value. Zero when empty.
    ///
    /// The extremes round-trip exactly: `quantile_permille(0)` returns
    /// the tracked [`QuantileSketch::min`] and any rank landing on the
    /// last sample returns the tracked [`QuantileSketch::max`]. Interior
    /// ranks are within the documented bound: `result <= exact quantile
    /// <= result + result/64 + 1` ns.
    pub fn quantile_permille(&self, permille: u32) -> SimTime {
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let rank =
            ((permille as u128 * self.count as u128).div_ceil(1000) as u64).clamp(1, self.count);
        // The maximum is tracked exactly; returning the bucket floor here
        // used to report q=1.0 on an all-`u64::MAX` stream short by almost
        // a full sub-bucket width (2^57 - 1 ns).
        if rank == self.count {
            return self.max();
        }
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // `min` lives in the first non-empty bucket, so clamping
                // the representative up to it is exact at rank 1 and never
                // overshoots the true rank-`rank` value.
                return SimTime::from_nanos(bucket_floor(i).max(self.min));
            }
        }
        // Counts always sum to `count >= rank`; unreachable.
        SimTime::from_nanos(self.max)
    }

    /// Resident size of the sketch: fixed at construction, independent of
    /// how many values were recorded (the bounded-memory guarantee the
    /// 10⁶-request bench asserts).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.len() * std::mem::size_of::<u64>()
    }

    /// Reduces to the export-ready summary.
    pub fn summary(&self) -> SketchSummary {
        SketchSummary {
            count: self.count,
            min: self.min(),
            mean: self.mean(),
            p50: self.quantile_permille(500),
            p90: self.quantile_permille(900),
            p95: self.quantile_permille(950),
            p99: self.quantile_permille(990),
            p999: self.quantile_permille(999),
            max: self.max(),
        }
    }

    /// JSON of [`QuantileSketch::summary`] (stable field order, stable
    /// float formatting — byte-identical across identical streams).
    pub fn to_json(&self) -> String {
        self.summary().to_json()
    }
}

/// The export-ready reduction of one sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchSummary {
    /// Values recorded.
    pub count: u64,
    /// Exact minimum.
    pub min: SimTime,
    /// Exact mean.
    pub mean: SimTime,
    /// Median (sketch rank).
    pub p50: SimTime,
    /// 90th percentile.
    pub p90: SimTime,
    /// 95th percentile.
    pub p95: SimTime,
    /// 99th percentile.
    pub p99: SimTime,
    /// 99.9th percentile.
    pub p999: SimTime,
    /// Exact maximum.
    pub max: SimTime,
}

fn ms(t: SimTime) -> String {
    format!("{:.6}", t.as_millis_f64())
}

impl SketchSummary {
    /// Serializes with stable field order and float formatting.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"min_ms\": {}, \"mean_ms\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}, \"max_ms\": {}}}",
            self.count,
            ms(self.min),
            ms(self.mean),
            ms(self.p50),
            ms(self.p90),
            ms(self.p95),
            ms(self.p99),
            ms(self.p999),
            ms(self.max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_sim::Rng;

    /// Exact nearest-rank oracle with the sketch's own rank rule.
    fn exact_quantile(sorted: &[u64], permille: u32) -> u64 {
        let n = sorted.len() as u64;
        let rank = ((permille as u128 * n as u128).div_ceil(1000) as u64).clamp(1, n);
        sorted[(rank - 1) as usize]
    }

    /// Asserts the documented bound at every tracked permille.
    fn assert_within_bound(values: &[u64], label: &str) {
        let mut sketch = QuantileSketch::new();
        for &v in values {
            sketch.record(SimTime::from_nanos(v));
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        for permille in [0, 1, 10, 100, 250, 500, 750, 900, 950, 990, 999, 1000] {
            let s = sketch.quantile_permille(permille).as_nanos();
            let e = exact_quantile(&sorted, permille);
            assert!(
                s <= e && e <= s.saturating_add(s / 64).saturating_add(1),
                "{label}: p{permille} sketch={s} exact={e} violates bound"
            );
        }
        assert_eq!(sketch.min().as_nanos(), sorted[0], "{label}: min is exact");
        assert_eq!(
            sketch.max().as_nanos(),
            *sorted.last().unwrap(),
            "{label}: max is exact"
        );
        assert_eq!(sketch.count(), values.len() as u64);
    }

    #[test]
    fn bucket_map_is_monotone_and_floor_inverts() {
        // Every bucket's floor maps back to that bucket, and floors
        // strictly increase with the index.
        let mut prev = None;
        for idx in 0..BUCKETS {
            let floor = bucket_floor(idx);
            assert_eq!(bucket_of(floor), idx, "floor of bucket {idx}");
            if let Some(p) = prev {
                assert!(floor > p, "floors must strictly increase at {idx}");
            }
            prev = Some(floor);
        }
        // Spot-check boundaries and extremes.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(63), 63);
        assert_eq!(bucket_of(64), 64);
        assert_eq!(bucket_of(127), 127);
        assert_eq!(bucket_of(128), 128);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn representative_error_is_under_one_64th() {
        let mut rng = Rng::new(11);
        for _ in 0..20_000 {
            let v = rng.next_u64();
            let r = bucket_floor(bucket_of(v));
            assert!(r <= v && v - r <= r / 64, "v={v} r={r}");
        }
    }

    #[test]
    fn bound_holds_on_random_stream() {
        let mut rng = Rng::new(42);
        // Latency-shaped magnitudes: µs to tens of seconds.
        let values: Vec<u64> = (0..5000)
            .map(|_| 1_000 + rng.next_u64() % 40_000_000_000)
            .collect();
        assert_within_bound(&values, "random");
    }

    #[test]
    fn bound_holds_on_sorted_stream() {
        let values: Vec<u64> = (0..5000).map(|i| (i as u64) * 77_001).collect();
        assert_within_bound(&values, "sorted");
    }

    #[test]
    fn bound_holds_on_constant_stream() {
        let values = vec![123_456_789u64; 2048];
        assert_within_bound(&values, "constant");
        // A constant stream's quantiles are all in one bucket.
        let mut s = QuantileSketch::new();
        for &v in &values {
            s.record(SimTime::from_nanos(v));
        }
        assert_eq!(s.quantile_permille(500), s.quantile_permille(999));
    }

    #[test]
    fn bound_holds_on_bimodal_stream() {
        // A fast mode around 2ms and a slow mode around 1.9s.
        let mut rng = Rng::new(7);
        let values: Vec<u64> = (0..4000)
            .map(|i| {
                if i % 10 == 0 {
                    1_900_000_000 + rng.next_u64() % 50_000_000
                } else {
                    2_000_000 + rng.next_u64() % 100_000
                }
            })
            .collect();
        assert_within_bound(&values, "bimodal");
    }

    #[test]
    fn empty_and_singleton() {
        let empty = QuantileSketch::new();
        assert_eq!(empty.quantile_permille(500), SimTime::ZERO);
        assert_eq!(empty.mean(), SimTime::ZERO);
        assert_eq!(empty.count(), 0);
        let mut one = QuantileSketch::new();
        one.record(SimTime::from_millis(7));
        for p in [1, 500, 999, 1000] {
            // 7ms lands in an octave bucket; the representative is its
            // floor, within the documented bound of the exact value.
            let q = one.quantile_permille(p).as_nanos();
            assert!(q <= 7_000_000 && 7_000_000 <= q + q / 64 + 1);
        }
        assert_eq!(one.min(), SimTime::from_millis(7));
        assert_eq!(one.max(), SimTime::from_millis(7));
    }

    #[test]
    fn edge_quantiles_round_trip_zero_and_max() {
        // Regression: q=1.0 used to report the bucket *floor* of the last
        // non-empty bucket, so an all-`u64::MAX` stream came back short by
        // 2^57 - 1 ns, and q=0.0 floored below the tracked minimum.
        let mut zeros = QuantileSketch::new();
        for _ in 0..100 {
            zeros.record(SimTime::ZERO);
        }
        let mut maxed = QuantileSketch::new();
        for _ in 0..100 {
            maxed.record(SimTime::from_nanos(u64::MAX));
        }
        for permille in [0, 1, 500, 999, 1000] {
            assert_eq!(
                zeros.quantile_permille(permille).as_nanos(),
                0,
                "all-zero stream at p{permille}"
            );
            assert_eq!(
                maxed.quantile_permille(permille).as_nanos(),
                u64::MAX,
                "all-max stream at p{permille}"
            );
        }
        assert_eq!(zeros.min().as_nanos(), 0);
        assert_eq!(zeros.max().as_nanos(), 0);
        assert_eq!(maxed.min().as_nanos(), u64::MAX);
        assert_eq!(maxed.max().as_nanos(), u64::MAX);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        // One recorded value *is* every quantile; the sketch must return
        // it bit-exactly, not its bucket representative.
        for v in [
            0u64,
            1,
            63,
            64,
            65,
            4_095,
            123_456_789,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut s = QuantileSketch::new();
            s.record(SimTime::from_nanos(v));
            for permille in [0, 1, 250, 500, 750, 999, 1000] {
                assert_eq!(
                    s.quantile_permille(permille).as_nanos(),
                    v,
                    "single sample {v} at p{permille}"
                );
            }
        }
    }

    #[test]
    fn extreme_quantiles_match_exact_sort_oracle() {
        // On an arbitrary stream the extremes agree with a full sort, not
        // just to within the bucket bound.
        let mut rng = Rng::new(2024);
        let values: Vec<u64> = (0..2500)
            .map(|i| match i % 50 {
                0 => 0,
                1 => u64::MAX,
                _ => rng.next_u64() % 30_000_000_000,
            })
            .collect();
        let mut sketch = QuantileSketch::new();
        for &v in &values {
            sketch.record(SimTime::from_nanos(v));
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sketch.quantile_permille(0).as_nanos(), sorted[0]);
        assert_eq!(
            sketch.quantile_permille(1000).as_nanos(),
            *sorted.last().unwrap()
        );
        assert_within_bound(&values, "extremes");
    }

    #[test]
    fn identical_streams_are_equal_and_json_byte_identical() {
        let mut rng = Rng::new(99);
        let values: Vec<u64> = (0..3000).map(|_| rng.next_u64() % 10_000_000_000).collect();
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for &v in &values {
            a.record(SimTime::from_nanos(v));
            b.record(SimTime::from_nanos(v));
        }
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        for field in [
            "\"count\"",
            "\"min_ms\"",
            "\"mean_ms\"",
            "\"p50_ms\"",
            "\"p90_ms\"",
            "\"p95_ms\"",
            "\"p99_ms\"",
            "\"p999_ms\"",
            "\"max_ms\"",
        ] {
            assert!(a.to_json().contains(field), "missing {field}");
        }
    }

    #[test]
    fn footprint_is_fixed() {
        let mut s = QuantileSketch::new();
        let base = s.approx_bytes();
        for i in 0..100_000u64 {
            s.record(SimTime::from_nanos(i * 31));
        }
        assert_eq!(s.approx_bytes(), base, "recording must not allocate");
        assert_eq!(base, std::mem::size_of::<QuantileSketch>() + BUCKETS * 8);
    }
}
