//! The abstract domain's memory: a sparse shadow of the client carveout.
//!
//! The lifter replays `LoadMemDelta` events against this shadow exactly the
//! way the real replayer applies them to device DRAM, so that when a job is
//! submitted it can walk the page tables the GPU would walk — without
//! allocating the full 96 MiB carveout per lift.

use grt_gpu::mmu::{decode_pte, decode_table_entry, PteFlags, WALK_IDX_BITS, WALK_LEVELS};
use grt_gpu::PAGE_SIZE;
use std::collections::BTreeMap;

/// Sparse page-granular memory; absent pages read as zero.
#[derive(Debug, Default)]
pub struct ShadowMem {
    pages: BTreeMap<u64, Vec<u8>>,
}

impl ShadowMem {
    /// Creates an empty (all-zero) shadow.
    pub fn new() -> Self {
        ShadowMem::default()
    }

    fn page_size() -> u64 {
        PAGE_SIZE as u64
    }

    /// Reads `len` bytes at `pa` (zero-filled where nothing was written).
    pub fn dump_range(&self, pa: u64, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let ps = Self::page_size();
        let mut off = 0usize;
        while off < len {
            let cur = pa + off as u64;
            let page = cur / ps * ps;
            let in_page = (cur - page) as usize;
            let n = (ps as usize - in_page).min(len - off);
            if let Some(p) = self.pages.get(&page) {
                out[off..off + n].copy_from_slice(&p[in_page..in_page + n]);
            }
            off += n;
        }
        out
    }

    /// Writes `data` at `pa`, materializing pages as needed.
    pub fn restore_range(&mut self, pa: u64, data: &[u8]) {
        let ps = Self::page_size();
        let mut off = 0usize;
        while off < data.len() {
            let cur = pa + off as u64;
            let page = cur / ps * ps;
            let in_page = (cur - page) as usize;
            let n = (ps as usize - in_page).min(data.len() - off);
            let p = self
                .pages
                .entry(page)
                .or_insert_with(|| vec![0u8; ps as usize]);
            p[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            off += n;
        }
    }

    /// Reads a little-endian u64 at `pa`.
    pub fn read_u64(&self, pa: u64) -> u64 {
        let b = self.dump_range(pa, 8);
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Number of materialized pages (testing aid).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// Everything a page-table walk discovered.
#[derive(Debug, Default)]
pub struct WalkSummary {
    /// Leaf mappings as `(va, pa, flags)`, in VA order.
    pub leaves: Vec<(u64, u64, PteFlags)>,
    /// Physical addresses of every table page touched (root included).
    pub tables: Vec<u64>,
    /// True when the walk was abandoned because the tree exceeded
    /// [`MAX_LEAVES`] — itself a lintable condition.
    pub truncated: bool,
}

impl WalkSummary {
    /// Translates a VA range to page-run `(pa, len)` pairs via the leaves,
    /// plus the bytes with no usable mapping — absent, or (when
    /// `need_write`) mapped without write permission; reads likewise
    /// require the read flag. Runs merge across physically contiguous
    /// pages, mirroring the replayer's `translate_run`.
    pub fn resolve(&self, va: u64, bytes: u64, need_write: bool) -> (Vec<(u64, u64)>, u64) {
        let ps = PAGE_SIZE as u64;
        let mut runs: Vec<(u64, u64)> = Vec::new();
        let mut unmapped = 0u64;
        let mut cur = va;
        let end = match va.checked_add(bytes) {
            Some(e) => e,
            None => return (runs, bytes),
        };
        while cur < end {
            let page_va = cur / ps * ps;
            let in_page = cur - page_va;
            let n = (ps - in_page).min(end - cur);
            let i = self.leaves.partition_point(|&(lva, _, _)| lva < page_va);
            match self.leaves.get(i) {
                Some(&(lva, lpa, flags))
                    if lva == page_va && (if need_write { flags.write } else { flags.read }) =>
                {
                    let pa = lpa + in_page;
                    match runs.last_mut() {
                        Some(last) if last.0 + last.1 == pa => last.1 += n,
                        _ => runs.push((pa, n)),
                    }
                }
                _ => unmapped += n,
            }
            cur += n;
        }
        (runs, unmapped)
    }
}

/// Upper bound on leaf mappings a walk will enumerate before giving up: a
/// plausible GPU address space for a 96 MiB carveout is tens of thousands
/// of pages, so a million-leaf tree is an attack on the analyzer, not a
/// workload.
pub const MAX_LEAVES: usize = 1 << 20;

/// Walks the 4-level table rooted at `root_pa` in the shadow, decoding
/// leaves under the SKU's PTE `quirk`.
pub fn walk(shadow: &ShadowMem, root_pa: u64, quirk: u8) -> WalkSummary {
    let mut summary = WalkSummary {
        leaves: Vec::new(),
        tables: vec![root_pa],
        truncated: false,
    };
    visit(shadow, root_pa, 0, 0, quirk, &mut summary);
    summary
}

fn visit(
    shadow: &ShadowMem,
    table_pa: u64,
    level: u32,
    va_base: u64,
    quirk: u8,
    out: &mut WalkSummary,
) {
    if out.truncated {
        return;
    }
    for idx in 0..(1u64 << WALK_IDX_BITS) {
        let entry = shadow.read_u64(table_pa + idx * 8);
        if entry == 0 {
            continue;
        }
        let shift = 12 + WALK_IDX_BITS * (WALK_LEVELS - 1 - level);
        let va = va_base | (idx << shift);
        if level < WALK_LEVELS - 1 {
            if let Some(child) = decode_table_entry(entry) {
                out.tables.push(child);
                visit(shadow, child, level + 1, va, quirk, out);
                if out.truncated {
                    return;
                }
            }
        } else if let Some((pa, flags)) = decode_pte(entry, quirk) {
            if out.leaves.len() >= MAX_LEAVES {
                out.truncated = true;
                return;
            }
            out.leaves.push((va, pa, flags));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_gpu::mem::{Accessor, Memory};
    use grt_gpu::mmu::{map_page, PteFlags};

    #[test]
    fn sparse_read_write_round_trips() {
        let mut s = ShadowMem::new();
        assert_eq!(s.dump_range(0x5000, 8), vec![0u8; 8]);
        s.restore_range(0x5FFE, &[1, 2, 3, 4]); // Straddles a page boundary.
        assert_eq!(s.dump_range(0x5FFE, 4), vec![1, 2, 3, 4]);
        assert_eq!(s.resident_pages(), 2);
        assert_eq!(s.dump_range(0x5FFC, 2), vec![0, 0]);
    }

    #[test]
    fn walk_agrees_with_hardware_walker() {
        // Build tables in real Memory with the driver-side builder, copy
        // into the shadow, and check the shadow walk sees the same pages.
        let mut mem = Memory::new(2 * 1024 * 1024);
        let mut next = 0x10_000u64;
        let root = {
            let pa = next;
            next += 0x1000;
            pa
        };
        let mut alloc = || {
            let pa = next;
            next += 0x1000;
            pa
        };
        map_page(
            &mut mem,
            root,
            0x4000_0000,
            0x8_0000,
            PteFlags::rw(),
            3,
            &mut alloc,
        )
        .unwrap();
        map_page(
            &mut mem,
            root,
            0x4000_1000,
            0x8_1000,
            PteFlags::rx(),
            3,
            &mut alloc,
        )
        .unwrap();

        let mut shadow = ShadowMem::new();
        let size = mem.size();
        let mut buf = vec![0u8; 4096];
        for page in (0..size as u64).step_by(4096) {
            mem.read(page, &mut buf, Accessor::Cpu).unwrap();
            if buf.iter().any(|&b| b != 0) {
                shadow.restore_range(page, &buf);
            }
        }
        let summary = walk(&shadow, root, 3);
        assert!(!summary.truncated);
        assert_eq!(summary.leaves.len(), 2);
        assert_eq!(summary.leaves[0], (0x4000_0000, 0x8_0000, PteFlags::rw()));
        assert_eq!(summary.leaves[1], (0x4000_1000, 0x8_1000, PteFlags::rx()));
        assert!(summary.tables.contains(&root));
        assert_eq!(summary.tables.len(), 4, "root + one table per level");
    }

    #[test]
    fn empty_root_walks_to_nothing() {
        let shadow = ShadowMem::new();
        let summary = walk(&shadow, 0x1000, 0);
        assert!(summary.leaves.is_empty());
        assert_eq!(summary.tables, vec![0x1000]);
    }

    #[test]
    fn resolve_merges_contiguous_runs_and_counts_gaps() {
        let mut s = WalkSummary::default();
        // Two physically contiguous pages, then a hole, then a third page.
        s.leaves.push((0x4000_0000, 0x8_0000, PteFlags::rw()));
        s.leaves.push((0x4000_1000, 0x8_1000, PteFlags::rw()));
        s.leaves.push((0x4000_3000, 0xA_0000, PteFlags::rx()));
        let (runs, unmapped) = s.resolve(0x4000_0800, 0x3000, false);
        assert_eq!(runs, vec![(0x8_0800, 0x1800), (0xA_0000, 0x800)]);
        assert_eq!(unmapped, 0x1000);
        let (runs, unmapped) = s.resolve(0x5000_0000, 0x2000, false);
        assert!(runs.is_empty());
        assert_eq!(unmapped, 0x2000);
        // Write access is denied on the read-execute page.
        let (runs, unmapped) = s.resolve(0x4000_3000, 0x800, true);
        assert!(runs.is_empty());
        assert_eq!(unmapped, 0x800);
    }
}
