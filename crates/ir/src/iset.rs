//! Interval sets and interval maps over physical-address ranges.
//!
//! The dataflow rules reason about byte ranges of carveout memory: which
//! ranges a shader instruction reads and writes, which ranges are defined
//! by injected slots or synced-down deltas, and which writer last touched
//! a range. Both containers keep their ranges sorted and disjoint, so
//! every query is a binary search plus a linear scan over the overlap.

/// A half-open byte range `[start, end)`.
pub type Range = (u64, u64);

/// A set of disjoint, sorted, half-open `u64` ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    ranges: Vec<Range>,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// The disjoint ranges, in ascending order.
    pub fn ranges(&self) -> &[Range] {
        &self.ranges
    }

    /// True when the set holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total bytes covered.
    pub fn len_bytes(&self) -> u64 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Inserts `[start, end)`, merging with any overlapping or adjacent
    /// ranges. Empty ranges are ignored.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // First range whose end could touch `start`.
        let i = self.ranges.partition_point(|&(_, e)| e < start);
        let mut new = (start, end);
        let mut j = i;
        while j < self.ranges.len() && self.ranges[j].0 <= new.1 {
            new.0 = new.0.min(self.ranges[j].0);
            new.1 = new.1.max(self.ranges[j].1);
            j += 1;
        }
        self.ranges.splice(i..j, std::iter::once(new));
    }

    /// True when every byte of `[start, end)` is in the set.
    pub fn covers(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        match self.ranges.get(i) {
            Some(&(s, e)) => s <= start && end <= e,
            None => false,
        }
    }

    /// True when any byte of `[start, end)` is in the set.
    pub fn intersects(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        match self.ranges.get(i) {
            Some(&(s, _)) => s < end,
            None => false,
        }
    }
}

/// A map from disjoint, sorted byte ranges to copyable tags (the last
/// writer wins on overlap, like memory).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalMap<T: Copy + PartialEq> {
    entries: Vec<(u64, u64, T)>,
}

impl<T: Copy + PartialEq> IntervalMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        IntervalMap {
            entries: Vec::new(),
        }
    }

    /// The entries, ascending and disjoint.
    pub fn entries(&self) -> &[(u64, u64, T)] {
        &self.entries
    }

    /// Writes `tag` over `[start, end)`, truncating or splitting whatever
    /// was there before (last writer wins).
    pub fn insert(&mut self, start: u64, end: u64, tag: T) {
        if start >= end {
            return;
        }
        let mut out: Vec<(u64, u64, T)> = Vec::with_capacity(self.entries.len() + 2);
        let mut placed = false;
        for &(s, e, t) in &self.entries {
            if e <= start || s >= end {
                // Disjoint from the new range; place the new range once we
                // pass its position.
                if s >= end && !placed {
                    out.push((start, end, tag));
                    placed = true;
                }
                out.push((s, e, t));
                continue;
            }
            // Overlap: keep the non-overlapping left/right pieces.
            if s < start {
                out.push((s, start, t));
            }
            if !placed {
                out.push((start, end, tag));
                placed = true;
            }
            if e > end {
                out.push((end, e, t));
            }
        }
        if !placed {
            out.push((start, end, tag));
        }
        self.entries = out;
    }

    /// Decomposes the query range into maximal segments, each labelled
    /// with the covering tag or `None` where nothing is mapped.
    pub fn query(&self, start: u64, end: u64) -> Vec<(u64, u64, Option<T>)> {
        let mut out = Vec::new();
        if start >= end {
            return out;
        }
        let mut cur = start;
        let i = self.entries.partition_point(|&(_, e, _)| e <= start);
        for &(s, e, t) in &self.entries[i..] {
            if s >= end {
                break;
            }
            if s > cur {
                out.push((cur, s.min(end), None));
            }
            let seg_s = s.max(cur);
            let seg_e = e.min(end);
            if seg_s < seg_e {
                out.push((seg_s, seg_e, Some(t)));
            }
            cur = seg_e.max(cur);
        }
        if cur < end {
            out.push((cur, end, None));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_merges_overlaps_and_adjacency() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.ranges(), &[(10, 20), (30, 40)]);
        s.insert(20, 30); // Adjacent to both: one range remains.
        assert_eq!(s.ranges(), &[(10, 40)]);
        s.insert(5, 12);
        assert_eq!(s.ranges(), &[(5, 40)]);
        s.insert(50, 50); // Empty: ignored.
        assert_eq!(s.len_bytes(), 35);
    }

    #[test]
    fn covers_and_intersects() {
        let mut s = IntervalSet::new();
        s.insert(0x1000, 0x2000);
        s.insert(0x3000, 0x4000);
        assert!(s.covers(0x1000, 0x2000));
        assert!(s.covers(0x1800, 0x1900));
        assert!(!s.covers(0x1800, 0x2001));
        assert!(!s.covers(0x2800, 0x2900));
        assert!(s.intersects(0x1FFF, 0x2800));
        assert!(!s.intersects(0x2000, 0x3000));
        assert!(s.intersects(0x2000, 0x3001));
        assert!(s.covers(5, 5), "empty range is vacuously covered");
    }

    #[test]
    fn map_last_writer_wins() {
        let mut m = IntervalMap::new();
        m.insert(0, 100, 'a');
        m.insert(40, 60, 'b');
        assert_eq!(m.entries(), &[(0, 40, 'a'), (40, 60, 'b'), (60, 100, 'a')]);
        m.insert(0, 100, 'c');
        assert_eq!(m.entries(), &[(0, 100, 'c')]);
    }

    #[test]
    fn map_query_reports_gaps() {
        let mut m = IntervalMap::new();
        m.insert(10, 20, 1u32);
        m.insert(30, 40, 2u32);
        let q = m.query(0, 50);
        assert_eq!(
            q,
            vec![
                (0, 10, None),
                (10, 20, Some(1)),
                (20, 30, None),
                (30, 40, Some(2)),
                (40, 50, None),
            ]
        );
        assert_eq!(m.query(12, 18), vec![(12, 18, Some(1))]);
        assert!(m.query(5, 5).is_empty());
    }
}
