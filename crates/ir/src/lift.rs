//! Lifting: recording bytes → [`IrProgram`], once, totally.
//!
//! The lifter is deliberately *total*: it never fails. Malformed input —
//! corrupt deltas, unmapped descriptors, undefined opcodes, impossible
//! shapes — is recorded as [`Anomaly`] values (or a `parsed: None` delta)
//! on the lifted structure, so analyses decide what malformation means.
//! It is also *policy-free*: carveout bounds, whitelists and budgets are
//! the linter's business; the lifter only decodes what the bytes say and
//! mirrors the replayer's machine model (register windows, TRANSTAB
//! latching, the descriptor hop bound, MMU permission checks).

use crate::program::{
    Anomaly, CostSummary, DeltaLift, Dir, IrProgram, JobChain, LiftedDesc, Operand, RegClass,
    SemInstr, SlotDesc, Step,
};
use crate::shadow::{walk, ShadowMem, WalkSummary};
use grt_compress::DeltaCodec;
use grt_gpu::job::{JobDescriptor, DESC_SIZE};
use grt_gpu::regs::{job_control as jc, mmu_control as mc};
use grt_gpu::shader::{OpKind, ShaderOp, INSTR_SIZE};
use std::rc::Rc;

/// Descriptor hop bound, mirroring the hardware's chain cutoff.
pub const MAX_CHAIN_HOPS: usize = 1024;

/// Largest shader program the lifter will decode instruction-by-
/// instruction. Real workloads stay well under this; a larger claim is an
/// attack on the analyzer and is surfaced as an anomaly instead.
pub const MAX_PROGRAM_INSTRS: u32 = 4096;

/// Largest single tensor operand the lifter will resolve through the page
/// tables. The whole carveout is 96 MiB, so a gigabyte operand cannot be
/// legitimate — flagged instead of walked.
pub const MAX_OPERAND_BYTES: u64 = 1 << 30;

/// A borrowed view of one recorded event.
///
/// `grt-ir` sits below the crate that owns the recording container, so the
/// lifter consumes this view; the owner converts its event type 1:1.
#[derive(Debug, Clone, Copy)]
pub enum EventView<'a> {
    /// Layer marker.
    BeginLayer {
        /// Recorded layer index.
        index: u32,
    },
    /// MMIO register write.
    RegWrite {
        /// Register offset.
        offset: u32,
        /// Value written.
        value: u32,
    },
    /// MMIO register read.
    RegRead {
        /// Register offset.
        offset: u32,
        /// Recorded value.
        value: u32,
        /// Replay-time verification flag.
        verify: bool,
    },
    /// Bounded status poll.
    Poll {
        /// Register polled.
        reg: u32,
        /// Mask applied before comparing.
        mask: u32,
        /// Raw condition code.
        cond: u8,
        /// Comparison value.
        cmp: u32,
        /// Iteration budget.
        max_iters: u32,
        /// Inter-iteration delay.
        delay_us: u32,
    },
    /// Interrupt wait.
    WaitIrq {
        /// Raw line code.
        line: u8,
    },
    /// Metastate delta.
    LoadMemDelta {
        /// Target physical address.
        pa: u64,
        /// Decoded region length.
        len: u32,
        /// Packed delta bytes.
        delta: &'a [u8],
    },
}

/// A borrowed view of a whole recording, ready to lift.
#[derive(Debug)]
pub struct LiftInput<'a> {
    /// Workload name.
    pub workload: &'a str,
    /// Target GPU identity.
    pub gpu_id: u32,
    /// Input slot.
    pub input: SlotDesc,
    /// Output slot.
    pub output: SlotDesc,
    /// Weight slots in stage order.
    pub weights: Vec<SlotDesc>,
    /// Events in recorded order.
    pub events: Vec<EventView<'a>>,
}

/// Lifts a recording into the semantics IR.
///
/// `quirk` is the SKU's PTE decode quirk (page-table walks must match the
/// GPU being vetted for); `page_size` keys the delta codec.
pub fn lift(input: &LiftInput<'_>, quirk: u8, page_size: usize) -> IrProgram {
    Lifter::new(input, quirk, page_size).run()
}

struct Lifter<'a, 'b> {
    input: &'b LiftInput<'a>,
    quirk: u8,
    codec: DeltaCodec,
    shadow: ShadowMem,
    steps: Vec<Step>,
    deltas: Vec<DeltaLift>,
    jobs: Vec<JobChain>,
    cost: CostSummary,
    transtab_lo: [u32; 16],
    transtab_hi: [u32; 16],
    latched_root: [u64; 16],
    slot_config: [u32; 16],
    head_lo: [u32; 16],
    head_hi: [u32; 16],
    mem_version: u64,
    walk_cache: Option<(u64, u64, Rc<WalkSummary>)>,
}

impl<'a, 'b> Lifter<'a, 'b> {
    fn new(input: &'b LiftInput<'a>, quirk: u8, page_size: usize) -> Self {
        Lifter {
            input,
            quirk,
            codec: DeltaCodec::new(page_size),
            shadow: ShadowMem::new(),
            steps: Vec::with_capacity(input.events.len()),
            deltas: Vec::new(),
            jobs: Vec::new(),
            cost: CostSummary::default(),
            transtab_lo: [0; 16],
            transtab_hi: [0; 16],
            latched_root: [0; 16],
            slot_config: [0; 16],
            head_lo: [0; 16],
            head_hi: [0; 16],
            mem_version: 0,
            walk_cache: None,
        }
    }

    fn run(mut self) -> IrProgram {
        for i in 0..self.input.events.len() {
            let step = match self.input.events[i] {
                EventView::BeginLayer { index } => {
                    self.cost.layers += 1;
                    Step::BeginLayer { index }
                }
                EventView::RegWrite { offset, value } => self.on_write(i, offset, value),
                EventView::RegRead {
                    offset,
                    value,
                    verify,
                } => Step::RegRead {
                    offset,
                    value,
                    verify,
                },
                EventView::Poll {
                    reg,
                    mask,
                    cond,
                    cmp,
                    max_iters,
                    delay_us,
                } => {
                    self.cost.raw_poll_iters =
                        self.cost.raw_poll_iters.saturating_add(max_iters as u64);
                    Step::Poll {
                        reg,
                        mask,
                        cond,
                        cmp,
                        max_iters,
                        delay_us,
                    }
                }
                EventView::WaitIrq { line } => Step::WaitIrq { line },
                EventView::LoadMemDelta { pa, len, delta } => self.on_delta(i, pa, len, delta),
            };
            self.steps.push(step);
        }
        IrProgram {
            workload: self.input.workload.to_owned(),
            gpu_id: self.input.gpu_id,
            input: self.input.input,
            output: self.input.output,
            weights: self.input.weights.clone(),
            steps: self.steps,
            deltas: self.deltas,
            jobs: self.jobs,
            cost: self.cost,
        }
    }

    fn on_write(&mut self, i: usize, offset: u32, value: u32) -> Step {
        let class = RegClass::classify(offset);
        let mut root_latched = None;
        match class {
            RegClass::JobSlot { slot, reg } => {
                let s = slot as usize;
                match reg {
                    r if r == jc::JS_HEAD_LO => self.head_lo[s] = value,
                    r if r == jc::JS_HEAD_HI => self.head_hi[s] = value,
                    r if r == jc::JS_CONFIG => self.slot_config[s] = value,
                    r if r == jc::JS_COMMAND && value == jc::JS_CMD_START => {
                        self.lift_chain(i, slot);
                    }
                    _ => {}
                }
            }
            RegClass::AsWindow { asn, reg } => {
                let a = asn as usize;
                match reg {
                    r if r == mc::AS_TRANSTAB_LO => self.transtab_lo[a] = value,
                    r if r == mc::AS_TRANSTAB_HI => self.transtab_hi[a] = value,
                    r if r == mc::AS_COMMAND && value == mc::AS_CMD_UPDATE => {
                        let root = (self.transtab_hi[a] as u64) << 32 | self.transtab_lo[a] as u64;
                        self.latched_root[a] = root;
                        self.walk_cache = None;
                        root_latched = Some(root);
                    }
                    _ => {}
                }
            }
            RegClass::GpuCtrl => {}
        }
        Step::RegWrite {
            offset,
            value,
            class,
            root_latched,
        }
    }

    fn on_delta(&mut self, i: usize, pa: u64, len: u32, delta: &[u8]) -> Step {
        let index = self.deltas.len() as u32;
        let parsed = self.codec.parse_limited(delta, len as usize).ok();
        if let Some(p) = &parsed {
            if len > 0 {
                let current = self.shadow.dump_range(pa, len as usize);
                let new = p.apply(&current);
                self.shadow.restore_range(pa, &new);
                self.mem_version += 1;
            }
        }
        self.deltas.push(DeltaLift {
            event: i,
            pa,
            len,
            wire_len: delta.len(),
            parsed,
        });
        Step::LoadDelta { index }
    }

    // --- job chains -----------------------------------------------------

    fn lift_chain(&mut self, event: usize, slot: u32) {
        let s = slot as usize;
        let head_va = (self.head_hi[s] as u64) << 32 | self.head_lo[s] as u64;
        let asn = self.slot_config[s] & 0x7;
        let root = self.latched_root[asn as usize];
        let (walk_rc, walk_fresh) = if root == 0 {
            (Rc::new(WalkSummary::default()), false)
        } else {
            match &self.walk_cache {
                Some((r, v, rc)) if *r == root && *v == self.mem_version => (Rc::clone(rc), false),
                _ => {
                    let rc = Rc::new(walk(&self.shadow, root, self.quirk));
                    self.walk_cache = Some((root, self.mem_version, Rc::clone(&rc)));
                    (rc, true)
                }
            }
        };
        let mut chain = JobChain {
            event,
            slot,
            asn,
            head_va,
            root,
            walk: walk_rc,
            walk_fresh,
            descs: Vec::new(),
            anomalies: Vec::new(),
        };
        let mut va = head_va;
        let mut hops = 0usize;
        while va != 0 {
            hops += 1;
            if hops > MAX_CHAIN_HOPS {
                chain.anomalies.push(Anomaly::ChainTooLong {
                    max: MAX_CHAIN_HOPS,
                });
                break;
            }
            let (runs, unmapped) = chain.walk.resolve(va, DESC_SIZE as u64, false);
            if unmapped > 0 {
                chain.anomalies.push(Anomaly::DescUnmapped { va });
                break;
            }
            let mut raw = [0u8; DESC_SIZE];
            let mut off = 0usize;
            for (pa, n) in runs {
                raw[off..off + n as usize].copy_from_slice(&self.shadow.dump_range(pa, n as usize));
                off += n as usize;
            }
            let Some(desc) = JobDescriptor::decode(&raw) else {
                chain.anomalies.push(Anomaly::DescBadMagic { va });
                break;
            };
            let lifted = self.lift_desc(va, desc, &chain.walk);
            va = desc.next_va;
            chain.descs.push(lifted);
        }
        self.cost.job_chains += 1;
        self.jobs.push(chain);
    }

    fn lift_desc(&mut self, va: u64, desc: JobDescriptor, walk: &WalkSummary) -> LiftedDesc {
        let mut out = LiftedDesc {
            va,
            desc,
            instrs: Vec::new(),
            anomalies: Vec::new(),
        };
        if desc.n_instrs > MAX_PROGRAM_INSTRS {
            out.anomalies.push(Anomaly::ProgramTooLarge {
                n_instrs: desc.n_instrs,
                max: MAX_PROGRAM_INSTRS,
            });
            return out;
        }
        let prog_bytes = desc.n_instrs as u64 * INSTR_SIZE as u64;
        let (runs, unmapped) = walk.resolve(desc.shader_va, prog_bytes, false);
        if unmapped > 0 {
            out.anomalies.push(Anomaly::ShaderUnmapped {
                va: desc.shader_va,
                bytes: unmapped,
            });
            return out;
        }
        let mut bytes = Vec::with_capacity(prog_bytes as usize);
        for (pa, n) in runs {
            bytes.extend(self.shadow.dump_range(pa, n as usize));
        }
        for (i, chunk) in bytes.chunks_exact(INSTR_SIZE).enumerate() {
            let raw: &[u8; INSTR_SIZE] = chunk.try_into().expect("chunk size");
            match ShaderOp::decode(raw) {
                None => {
                    let opcode = u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]);
                    out.anomalies.push(Anomaly::BadOpcode { instr: i, opcode });
                }
                Some(op) => {
                    let instr = sem_instr(op, i, walk, &mut out.anomalies);
                    self.cost.total_macs = self.cost.total_macs.saturating_add(instr.macs);
                    self.cost.instrs += 1;
                    out.instrs.push(instr);
                }
            }
        }
        out
    }
}

/// Operand role, direction, VA and element count before page resolution.
type OperandSpec = (&'static str, Dir, u64, u64);

/// Builds a [`SemInstr`] with typed, page-resolved operands. Malformed
/// shapes yield an empty operand list, zero MACs and a `BadShape` anomaly
/// — the instruction would fault (or wrap) the shape arithmetic the
/// executor runs unchecked.
fn sem_instr(op: ShaderOp, idx: usize, walk: &WalkSummary, anoms: &mut Vec<Anomaly>) -> SemInstr {
    let kind = OpKind::of(&op);
    match shape_of(&op) {
        Err(detail) => {
            anoms.push(Anomaly::BadShape { instr: idx, detail });
            SemInstr {
                op,
                kind,
                macs: 0,
                operands: Vec::new(),
            }
        }
        Ok((specs, macs)) => {
            let operands = specs
                .into_iter()
                .map(|(name, dir, va, elems)| {
                    let (pa_runs, unmapped) =
                        walk.resolve(va, elems * 4, matches!(dir, Dir::Write));
                    Operand {
                        name,
                        dir,
                        va,
                        elems,
                        pa_runs,
                        unmapped,
                    }
                })
                .collect();
            SemInstr {
                op,
                kind,
                macs,
                operands,
            }
        }
    }
}

/// Derives operand extents and the MAC count with fully checked
/// arithmetic. `Err` carries a human-readable description of the defect.
fn shape_of(op: &ShaderOp) -> Result<(Vec<OperandSpec>, u64), String> {
    let mul = |parts: &[u64]| -> Result<u64, String> {
        let mut acc = 1u64;
        for &p in parts {
            acc = acc
                .checked_mul(p)
                .ok_or_else(|| "size arithmetic overflows".to_owned())?;
        }
        Ok(acc)
    };
    let bound = |name: &str, elems: u64| -> Result<u64, String> {
        if elems.checked_mul(4).is_none_or(|b| b > MAX_OPERAND_BYTES) {
            Err(format!(
                "{name} operand of {elems} elements exceeds the {MAX_OPERAND_BYTES}-byte bound"
            ))
        } else {
            Ok(elems)
        }
    };
    match *op {
        ShaderOp::Conv2d {
            in_va,
            w_va,
            b_va,
            out_va,
            p,
            ..
        } => {
            if p.stride == 0 {
                return Err("convolution stride is zero".to_owned());
            }
            if p.k == 0 {
                return Err("convolution kernel is zero-sized".to_owned());
            }
            let padded_h = p.in_h as u64 + 2 * p.pad as u64;
            let padded_w = p.in_w as u64 + 2 * p.pad as u64;
            if padded_h < p.k as u64 || padded_w < p.k as u64 {
                return Err(format!(
                    "kernel {k}x{k} exceeds the padded input {padded_h}x{padded_w}",
                    k = p.k
                ));
            }
            let out_h = (padded_h - p.k as u64) / p.stride as u64 + 1;
            let out_w = (padded_w - p.k as u64) / p.stride as u64 + 1;
            let in_e = bound(
                "input",
                mul(&[p.in_c as u64, p.in_h as u64, p.in_w as u64])?,
            )?;
            let w_e = bound(
                "weight",
                mul(&[p.out_c as u64, p.in_c as u64, p.k as u64, p.k as u64])?,
            )?;
            let out_e = bound("output", mul(&[p.out_c as u64, out_h, out_w])?)?;
            let macs = mul(&[out_e, p.in_c as u64, p.k as u64, p.k as u64])?;
            let mut specs = vec![("in", Dir::Read, in_va, in_e), ("w", Dir::Read, w_va, w_e)];
            if b_va != 0 {
                specs.push(("bias", Dir::Read, b_va, p.out_c as u64));
            }
            specs.push(("out", Dir::Write, out_va, out_e));
            Ok((specs, macs))
        }
        ShaderOp::MatMul {
            a_va,
            b_va,
            bias_va,
            out_va,
            m,
            k,
            n,
            ..
        } => {
            let a_e = bound("a", mul(&[m as u64, k as u64])?)?;
            let b_e = bound("b", mul(&[k as u64, n as u64])?)?;
            let out_e = bound("output", mul(&[m as u64, n as u64])?)?;
            let macs = mul(&[m as u64, k as u64, n as u64])?;
            let mut specs = vec![("a", Dir::Read, a_va, a_e), ("b", Dir::Read, b_va, b_e)];
            if bias_va != 0 {
                specs.push(("bias", Dir::Read, bias_va, n as u64));
            }
            specs.push(("out", Dir::Write, out_va, out_e));
            Ok((specs, macs))
        }
        ShaderOp::Pool {
            in_va,
            out_va,
            c,
            h,
            w,
            k,
            stride,
            ..
        } => {
            if stride == 0 {
                return Err("pool stride is zero".to_owned());
            }
            if k == 0 {
                return Err("pool kernel is zero-sized".to_owned());
            }
            if k > h || k > w {
                return Err(format!("pool kernel {k}x{k} exceeds the input {h}x{w}"));
            }
            let oh = (h as u64 - k as u64) / stride as u64 + 1;
            let ow = (w as u64 - k as u64) / stride as u64 + 1;
            let in_e = bound("input", mul(&[c as u64, h as u64, w as u64])?)?;
            let out_e = bound("output", mul(&[c as u64, oh, ow])?)?;
            let macs = mul(&[in_e, k as u64, k as u64])? / 4;
            Ok((
                vec![
                    ("in", Dir::Read, in_va, in_e),
                    ("out", Dir::Write, out_va, out_e),
                ],
                macs,
            ))
        }
        ShaderOp::Relu { in_va, out_va, len } => Ok((
            vec![
                ("in", Dir::Read, in_va, bound("input", len as u64)?),
                ("out", Dir::Write, out_va, len as u64),
            ],
            len as u64,
        )),
        ShaderOp::Add {
            a_va,
            b_va,
            out_va,
            len,
        } => Ok((
            vec![
                ("a", Dir::Read, a_va, bound("a", len as u64)?),
                ("b", Dir::Read, b_va, len as u64),
                ("out", Dir::Write, out_va, len as u64),
            ],
            len as u64,
        )),
        ShaderOp::Softmax { in_va, out_va, len } => Ok((
            vec![
                ("in", Dir::Read, in_va, bound("input", len as u64)?),
                ("out", Dir::Write, out_va, len as u64),
            ],
            len as u64 * 4,
        )),
        ShaderOp::Copy {
            src_va,
            dst_va,
            len,
        } => Ok((
            vec![
                ("src", Dir::Read, src_va, bound("source", len as u64)?),
                ("dst", Dir::Write, dst_va, len as u64),
            ],
            len as u64 / 2,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grt_gpu::shader::{ConvParams, PoolKind};

    #[test]
    fn conv_shapes_are_checked() {
        let good = ShaderOp::Conv2d {
            in_va: 0x1000,
            w_va: 0x2000,
            b_va: 0x3000,
            out_va: 0x4000,
            p: ConvParams {
                in_c: 3,
                in_h: 8,
                in_w: 8,
                out_c: 4,
                k: 3,
                stride: 1,
                pad: 1,
            },
            tiles: 8,
        };
        let (specs, macs) = shape_of(&good).unwrap();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0], ("in", Dir::Read, 0x1000, 3 * 8 * 8));
        assert_eq!(specs[3], ("out", Dir::Write, 0x4000, 4 * 8 * 8));
        assert_eq!(macs, good.macs());

        let zero_stride = ShaderOp::Conv2d {
            in_va: 0,
            w_va: 0,
            b_va: 0,
            out_va: 0,
            p: ConvParams {
                in_c: 1,
                in_h: 4,
                in_w: 4,
                out_c: 1,
                k: 2,
                stride: 0,
                pad: 0,
            },
            tiles: 8,
        };
        assert!(shape_of(&zero_stride).unwrap_err().contains("stride"));
    }

    #[test]
    fn pool_underflow_is_flagged_not_panicked() {
        // k > h would underflow the executor's u32 arithmetic.
        let bad = ShaderOp::Pool {
            in_va: 0,
            out_va: 0,
            kind: PoolKind::Max,
            c: 1,
            h: 2,
            w: 2,
            k: 5,
            stride: 1,
        };
        assert!(shape_of(&bad).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn oversized_operands_are_bounded() {
        let huge = ShaderOp::MatMul {
            a_va: 0,
            b_va: 0,
            bias_va: 0,
            out_va: 0,
            m: 1 << 20,
            k: 1 << 20,
            n: 1,
            tiles: 8,
        };
        assert!(shape_of(&huge).unwrap_err().contains("bound"));
    }

    #[test]
    fn bias_operand_is_elided_when_va_is_zero() {
        let no_bias = ShaderOp::MatMul {
            a_va: 0x100,
            b_va: 0x200,
            bias_va: 0,
            out_va: 0x300,
            m: 2,
            k: 2,
            n: 2,
            tiles: 8,
        };
        let (specs, _) = shape_of(&no_bias).unwrap();
        assert_eq!(specs.len(), 3);
    }
}
