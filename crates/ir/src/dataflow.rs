//! Def-use analysis over tensor slots: the engine behind grt-lint's R7.
//!
//! Works in the carveout's physical address space, where operand page runs
//! land after MMU resolution. Definitions come from three sources — the
//! injected input slot, the injected weight slots, and synced-down
//! metastate deltas — plus every earlier shader write. One forward pass
//! checks that reads are defined and operands don't partially alias; one
//! reverse pass finds writes no later instruction (and no sync-up) can
//! observe. Identity copies (`src == dst`, the JIT's staging no-ops) are
//! exempt everywhere: they move no information.

use crate::iset::IntervalSet;
use crate::program::{Dir, IrProgram, JobChain, SemInstr};

/// What a dataflow finding is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A shader read reaches bytes no definition covers.
    UndefinedRead,
    /// A read and a write operand of one instruction overlap without being
    /// the exact same range (partial aliasing: element order changes the
    /// result).
    OperandOverlap,
    /// A shader write lands inside the injected input or weight slots,
    /// masking injected data with recorded data.
    SlotClobber,
    /// A shader write that no later read and no sync-up can observe.
    DeadWrite,
}

/// One dataflow defect, anchored to the job-chain submission event.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Event index of the chain's `JS_COMMAND = START`.
    pub event: usize,
    /// Defect category.
    pub kind: FindingKind,
    /// Human-readable description.
    pub message: String,
}

/// Runs the forward def-use pass and the reverse liveness pass.
pub fn analyze(prog: &IrProgram) -> Vec<Finding> {
    let mut findings = forward(prog);
    findings.extend(reverse(prog));
    findings
}

fn slot_sets(prog: &IrProgram) -> (IntervalSet, IntervalSet) {
    let mut injected = IntervalSet::new();
    let (s, e) = prog.input.range();
    injected.insert(s, e);
    for w in &prog.weights {
        let (s, e) = w.range();
        injected.insert(s, e);
    }
    let mut output = IntervalSet::new();
    let (s, e) = prog.output.range();
    output.insert(s, e);
    (injected, output)
}

fn forward(prog: &IrProgram) -> Vec<Finding> {
    let mut findings = Vec::new();
    let (injected, _) = slot_sets(prog);
    let mut defined = injected.clone();

    // Merge deltas and chains back into event order.
    let mut di = 0usize;
    for chain in &prog.jobs {
        while di < prog.deltas.len() && prog.deltas[di].event < chain.event {
            let d = &prog.deltas[di];
            if d.parsed.is_some() && d.len > 0 {
                defined.insert(d.pa, d.pa + d.len as u64);
            }
            di += 1;
        }
        check_chain(chain, &mut defined, &injected, &mut findings);
    }
    findings
}

fn check_chain(
    chain: &JobChain,
    defined: &mut IntervalSet,
    injected: &IntervalSet,
    findings: &mut Vec<Finding>,
) {
    for desc in &chain.descs {
        for instr in &desc.instrs {
            if instr.is_identity_copy() {
                continue;
            }
            // Reads must be covered by a definition.
            for opnd in instr.operands.iter().filter(|o| o.dir == Dir::Read) {
                let gap = opnd
                    .pa_runs
                    .iter()
                    .find(|&&(s, len)| !defined.covers(s, s + len))
                    .map(|&(s, len)| (s, s + len));
                if let Some((s, e)) = gap {
                    findings.push(Finding {
                        event: chain.event,
                        kind: FindingKind::UndefinedRead,
                        message: format!(
                            "{} reads {} operand at va {:#x} ({} elems) through pa [{s:#x}, {e:#x}) \
                             with no preceding write, injected slot or synced-down delta covering it",
                            instr.kind.name(),
                            opnd.name,
                            opnd.va,
                            opnd.elems,
                        ),
                    });
                }
            }
            overlap_check(chain.event, instr, findings);
            // Writes define their bytes — and must not land in the
            // injected slots, whose recorded content is replaced at
            // replay start.
            for opnd in instr.operands.iter().filter(|o| o.dir == Dir::Write) {
                for &(s, len) in &opnd.pa_runs {
                    if injected.intersects(s, s + len) {
                        findings.push(Finding {
                            event: chain.event,
                            kind: FindingKind::SlotClobber,
                            message: format!(
                                "{} writes {} operand at va {:#x} over an injected input/weight \
                                 slot (pa run [{s:#x}, {:#x}))",
                                instr.kind.name(),
                                opnd.name,
                                opnd.va,
                                s + len,
                            ),
                        });
                        break;
                    }
                }
                for &(s, len) in &opnd.pa_runs {
                    defined.insert(s, s + len);
                }
            }
        }
    }
}

fn overlap_check(event: usize, instr: &SemInstr, findings: &mut Vec<Finding>) {
    for r in instr.operands.iter().filter(|o| o.dir == Dir::Read) {
        for w in instr.operands.iter().filter(|o| o.dir == Dir::Write) {
            let (rs, re) = r.va_range();
            let (ws, we) = w.va_range();
            let exact = rs == ws && re == we;
            let overlap = rs < we && ws < re;
            if overlap && !exact {
                findings.push(Finding {
                    event,
                    kind: FindingKind::OperandOverlap,
                    message: format!(
                        "{} operands {} [va {rs:#x}, {re:#x}) and {} [va {ws:#x}, {we:#x}) \
                         partially overlap: element order would change the result",
                        instr.kind.name(),
                        r.name,
                        w.name,
                    ),
                });
            }
        }
    }
}

fn reverse(prog: &IrProgram) -> Vec<Finding> {
    let mut findings = Vec::new();
    let (_, output) = slot_sets(prog);
    // The output slot is synced up after replay: writes into it are live.
    let mut future_reads = output;
    for chain in prog.jobs.iter().rev() {
        for desc in chain.descs.iter().rev() {
            for instr in desc.instrs.iter().rev() {
                if instr.is_identity_copy() {
                    continue;
                }
                for opnd in instr.operands.iter().filter(|o| o.dir == Dir::Write) {
                    let live = opnd
                        .pa_runs
                        .iter()
                        .any(|&(s, len)| future_reads.intersects(s, s + len));
                    if !live && !opnd.pa_runs.is_empty() {
                        findings.push(Finding {
                            event: chain.event,
                            kind: FindingKind::DeadWrite,
                            message: format!(
                                "{} writes {} operand at va {:#x} ({} elems) that no later \
                                 read observes and that is never synced up: dead output",
                                instr.kind.name(),
                                opnd.name,
                                opnd.va,
                                opnd.elems,
                            ),
                        });
                    }
                }
                for opnd in instr.operands.iter().filter(|o| o.dir == Dir::Read) {
                    for &(s, len) in &opnd.pa_runs {
                        future_reads.insert(s, s + len);
                    }
                }
            }
        }
    }
    // Report in program order.
    findings.reverse();
    findings
}
