//! IR-driven superinstruction fusion analysis (DESIGN.md §15).
//!
//! A recording's job dialog is expensive to replay even when the shader
//! work inside it is trivial: every submission pays a cache clean, a
//! three-command MMU lock/flush/unlock, the slot programming writes, an
//! interrupt wait, and the mirrored completion maintenance. The JIT emits
//! many jobs whose *only* purpose is to stage data (identity copies) or to
//! apply a one-instruction elementwise tail (`add` bias/residual, `relu`)
//! to the output a head kernel just produced.
//!
//! This pass decides — over the lifted [`IrProgram`], using the same R7
//! dataflow facts `grt-lint` proves — which of those jobs the compiled
//! executor may *elide*:
//!
//! * **Identity copies** (`src == dst`, the JIT's staging and tiling
//!   no-ops) move no information; their whole dialog window is removed.
//! * **Fusable chains** — `conv2d`/`matmul` followed by an `add` consuming
//!   the head's output exactly once while the intermediate is dead
//!   afterwards, optionally followed by an in-place `relu` (and bare
//!   `add → relu` residual tails) — collapse into one job: the head keeps
//!   its dialog and executes a [`FusedDirective`]; the tail windows are
//!   removed and their instructions run against the head's output while it
//!   still sits in the executor's scratch.
//!
//! Fusion is a *lowering* decision: the vetted recording, its lint
//! verdict, and the R7/R9 analyses are all over the unfused IR. The pass
//! is deliberately conservative — a window that does not exactly match the
//! recorded kbase dialog shape, an intermediate that any later event could
//! observe, or any lift anomaly keeps the jobs unfused. Replay correctness
//! never depends on fusion firing.

use crate::iset::IntervalSet;
use crate::program::{Dir, IrProgram, Operand, SemInstr, Step};
use grt_gpu::fusion::{FusedDirective, TailAdd};
use grt_gpu::regs::{gpu_control as gc, job_control as jc, mmu_control as mc};
use grt_gpu::shader::{OpKind, ShaderOp};

/// What the fusion pass decided for one recording.
#[derive(Debug, Default)]
pub struct FusionPlan {
    /// Fused-execution directives, keyed by the head job's descriptor VA
    /// (unique per recording: descriptors are laid out at increasing VAs).
    pub directives: Vec<(u64, FusedDirective)>,
    /// Half-open step-index ranges (the elided dialog windows), sorted and
    /// disjoint. Index-aligned with the recording's events, so the
    /// compiled lowering can skip the same ranges in its op arena.
    pub elided: Vec<(usize, usize)>,
    /// Roll-up counters for profiles and bench output.
    pub summary: FusionSummary,
}

/// Roll-up of what fusion removed from the warm replay path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionSummary {
    /// Superinstruction chains formed (one fused directive each).
    pub chains_fused: u32,
    /// Tail shader instructions absorbed into head kernels.
    pub instrs_fused: u32,
    /// Identity-copy jobs elided outright.
    pub copies_elided: u32,
    /// Job dialog windows removed (absorbed tails + elided copies).
    pub jobs_elided: u32,
    /// Recorded events the compiled op walk no longer executes.
    pub steps_elided: u64,
    /// Bytes of intermediate tensor never materialized in the carveout.
    pub bytes_not_materialized: u64,
}

impl FusionSummary {
    /// Total shader instructions eliminated from standalone execution
    /// (absorbed tails plus elided identity copies).
    pub fn instrs_eliminated(&self) -> u32 {
        self.instrs_fused + self.copies_elided
    }
}

/// Number of steps in a submit sequence up to and including the
/// `JS_COMMAND = START` write: pm-metrics sample (6 reads), cache clean
/// (3), MMU lock/flush/unlock (8), `LATEST_FLUSH` read, six slot-window
/// writes, and the start command itself.
const SUBMIT_STEPS: usize = 25;

/// A step-stream cursor that consumes one recorded kbase call at a time.
struct Cursor<'a> {
    steps: &'a [Step],
    pos: usize,
}

impl Cursor<'_> {
    fn write(&mut self, offset: u32) -> Option<u32> {
        match self.steps.get(self.pos) {
            Some(&Step::RegWrite {
                offset: o, value, ..
            }) if o == offset => {
                self.pos += 1;
                Some(value)
            }
            _ => None,
        }
    }

    fn write_val(&mut self, offset: u32, value: u32) -> Option<()> {
        (self.write(offset)? == value).then_some(())
    }

    fn read(&mut self, offset: u32) -> Option<u32> {
        match self.steps.get(self.pos) {
            Some(&Step::RegRead {
                offset: o, value, ..
            }) if o == offset => {
                self.pos += 1;
                Some(value)
            }
            _ => None,
        }
    }

    fn poll(&mut self, reg: u32, mask: u32, cond: u8) -> Option<()> {
        match self.steps.get(self.pos) {
            Some(&Step::Poll {
                reg: r,
                mask: m,
                cond: c,
                ..
            }) if r == reg && m == mask && c == cond => {
                self.pos += 1;
                Some(())
            }
            _ => None,
        }
    }

    fn wait_irq(&mut self, line: u8) -> Option<()> {
        match self.steps.get(self.pos) {
            Some(&Step::WaitIrq { line: l }) if l == line => {
                self.pos += 1;
                Some(())
            }
            _ => None,
        }
    }

    /// `kbase_pm_metrics_update`: six data-flow reads.
    fn pm_metrics(&mut self) -> Option<()> {
        self.read(gc::GPU_STATUS)?;
        self.read(gc::SHADER_READY_LO)?;
        self.read(gc::L2_READY_LO)?;
        self.read(gc::TILER_READY_LO)?;
        self.read(gc::SHADER_PWRTRANS_LO)?;
        self.read(jc::JOB_IRQ_JS_STATE)?;
        Some(())
    }

    /// `kbase_gpu_cache_clean`: command, completion poll, clear.
    fn cache_clean(&mut self) -> Option<()> {
        self.write_val(gc::GPU_COMMAND, gc::CMD_CLEAN_INV_CACHES)?;
        self.poll(gc::GPU_IRQ_RAWSTAT, gc::IRQ_CLEAN_CACHES_COMPLETED, 1)?;
        self.write_val(gc::GPU_IRQ_CLEAR, gc::IRQ_CLEAN_CACHES_COMPLETED)?;
        Some(())
    }

    /// `kbase_mmu_hw_do_operation`: lockaddr programming plus the
    /// three-command lock/flush/unlock polling loops (paper Listing 2).
    fn mmu_flush(&mut self, asn: u32) -> Option<()> {
        let base = mc::as_base(asn);
        self.write(base + mc::AS_LOCKADDR_LO)?;
        self.write(base + mc::AS_LOCKADDR_HI)?;
        for cmd in [mc::AS_CMD_LOCK, mc::AS_CMD_FLUSH_MEM, mc::AS_CMD_UNLOCK] {
            self.write_val(base + mc::AS_COMMAND, cmd)?;
            self.poll(base + mc::AS_STATUS, mc::AS_STATUS_ACTIVE, 0)?;
        }
        Some(())
    }
}

/// Matches one job's complete dialog window — `submit_job` through the
/// `handle_job_irq` maintenance tail — around the chain's
/// `JS_COMMAND = START` step. Returns the half-open step range, or `None`
/// when the recorded stream deviates in any way from the kbase shape (the
/// job then simply stays unfused).
fn match_window(steps: &[Step], event: usize, slot: u32, asn: u32) -> Option<(usize, usize)> {
    let start = event.checked_sub(SUBMIT_STEPS - 1)?;
    let mut c = Cursor { steps, pos: start };
    c.pm_metrics()?;
    c.cache_clean()?;
    c.mmu_flush(asn)?;
    c.read(gc::LATEST_FLUSH)?;
    let slot_base = jc::slot_base(slot);
    c.write(slot_base + jc::JS_FLUSH_ID_NEXT)?;
    c.write(slot_base + jc::JS_HEAD_LO)?;
    c.write(slot_base + jc::JS_HEAD_HI)?;
    c.write(slot_base + jc::JS_AFFINITY_LO)?;
    c.write(slot_base + jc::JS_AFFINITY_HI)?;
    c.write(slot_base + jc::JS_CONFIG)?;
    if c.pos != event {
        return None;
    }
    c.write_val(slot_base + jc::JS_COMMAND, jc::JS_CMD_START)?;
    c.wait_irq(1)?; // Job line.
    c.read(jc::JOB_IRQ_STATUS)?;
    c.write(jc::JOB_IRQ_CLEAR)?;
    c.read(slot_base + jc::JS_STATUS)?;
    c.mmu_flush(asn)?;
    c.cache_clean()?;
    c.pm_metrics()?;
    // `kbase_pm_update_state`: the third read only happens when a power
    // transition was in flight — decided from the recorded values.
    let trans = c.read(gc::SHADER_PWRTRANS_LO)?;
    let l2 = c.read(gc::L2_PWRTRANS_LO)?;
    if (trans | l2) != 0 {
        c.read(gc::GPU_STATUS)?;
    }
    Some((start, c.pos))
}

/// One job chain reduced to what the fusion pass reasons about.
struct Job<'a> {
    event: usize,
    window: Option<(usize, usize)>,
    desc_va: u64,
    cost_us: u32,
    /// `Some` only for a clean single-descriptor, single-instruction chain
    /// with fully mapped operands; `None` marks an opaque barrier.
    instr: Option<&'a SemInstr>,
}

impl Job<'_> {
    fn out(&self) -> Option<&Operand> {
        self.instr?.operands.iter().find(|o| o.dir == Dir::Write)
    }
}

fn runs_as_ranges(op: &Operand) -> impl Iterator<Item = (u64, u64)> + '_ {
    op.pa_runs.iter().map(|&(s, len)| (s, s + len))
}

fn ranges_intersect(a: (u64, u64), b: (u64, u64)) -> Option<(u64, u64)> {
    let s = a.0.max(b.0);
    let e = a.1.min(b.1);
    (s < e).then_some((s, e))
}

/// Structural match of an elementwise `add` consuming the head's output
/// exactly once (by VA identity and exact length).
fn tail_add_of(head_out: &Operand, next: &SemInstr) -> Option<TailAdd> {
    let ShaderOp::Add {
        a_va,
        b_va,
        out_va,
        len,
    } = next.op
    else {
        return None;
    };
    let x = head_out.va;
    let a_is_x = a_va == x;
    let b_is_x = b_va == x;
    // Exactly one operand must be the intermediate, the add must cover it
    // exactly, and the result must land elsewhere (an in-place add would
    // re-materialize the intermediate).
    if a_is_x == b_is_x || len as u64 != head_out.elems || out_va == x {
        return None;
    }
    Some(TailAdd {
        other_va: if a_is_x { b_va } else { a_va },
        out_va,
        len: len as u64,
        interm_first: a_is_x,
    })
}

/// Structural match of an in-place `relu` over the chain's current output.
fn tail_relu_of(cur_va: u64, cur_len: u64, next: &SemInstr) -> bool {
    matches!(next.op, ShaderOp::Relu { in_va, out_va, len }
        if in_va == cur_va && out_va == cur_va && len as u64 == cur_len)
}

/// The pass entry point: decides elisions and fusion chains for `prog`.
pub fn analyze(prog: &IrProgram) -> FusionPlan {
    let jobs: Vec<Job> = prog
        .jobs
        .iter()
        .map(|ch| {
            let clean = ch.anomalies.is_empty()
                && ch.descs.len() == 1
                && ch.descs[0].anomalies.is_empty()
                && ch.descs[0].instrs.len() == 1
                && !ch.descs[0].instrs[0].operands.is_empty()
                && ch.descs[0].instrs[0]
                    .operands
                    .iter()
                    .all(|o| o.unmapped == 0);
            Job {
                event: ch.event,
                window: match_window(&prog.steps, ch.event, ch.slot, ch.asn),
                desc_va: ch.descs.first().map_or(0, |d| d.va),
                cost_us: ch.descs.first().map_or(0, |d| d.desc.cost_us),
                instr: clean.then(|| &ch.descs[0].instrs[0]),
            }
        })
        .collect();

    // Pass 1: elide identity-copy jobs whose dialog matched exactly.
    let mut elided: Vec<bool> = jobs
        .iter()
        .map(|j| j.window.is_some() && j.instr.is_some_and(|i| i.is_identity_copy()))
        .collect();
    let copies_elided = elided.iter().filter(|&&e| e).count() as u32;

    // Pass 2: fuse chains over the surviving jobs.
    let survivors: Vec<usize> = (0..jobs.len()).filter(|&i| !elided[i]).collect();
    let mut consumed: Vec<bool> = vec![false; jobs.len()];
    let mut directives: Vec<(u64, FusedDirective)> = Vec::new();
    let mut instrs_fused = 0u32;
    let mut bytes_not_materialized = 0u64;

    for (si, &hi) in survivors.iter().enumerate() {
        if consumed[hi] {
            continue;
        }
        let head = &jobs[hi];
        let (Some(instr), Some(_)) = (head.instr, head.window) else {
            continue;
        };
        let Some(head_out) = head.out() else {
            continue;
        };
        let head_kind = instr.kind;
        let next = survivors.get(si + 1).map(|&ni| &jobs[ni]);
        let next2 = survivors.get(si + 2).map(|&ni| &jobs[ni]);

        // Structural candidates, longest first; the first one that also
        // passes the dataflow verification wins.
        let mut candidates: Vec<(Option<TailAdd>, bool)> = Vec::new();
        match head_kind {
            OpKind::Conv2d | OpKind::MatMul => {
                let add = next
                    .filter(|n| n.window.is_some())
                    .and_then(|n| n.instr)
                    .and_then(|n| tail_add_of(head_out, n));
                if let Some(add) = add {
                    let relu_after_add = next2
                        .filter(|n| n.window.is_some())
                        .and_then(|n| n.instr)
                        .is_some_and(|n| tail_relu_of(add.out_va, add.len, n));
                    if relu_after_add {
                        candidates.push((Some(add), true));
                    }
                    candidates.push((Some(add), false));
                }
                let relu = next
                    .filter(|n| n.window.is_some())
                    .and_then(|n| n.instr)
                    .is_some_and(|n| tail_relu_of(head_out.va, head_out.elems, n));
                if relu {
                    candidates.push((None, true));
                }
            }
            OpKind::Add => {
                let relu = next
                    .filter(|n| n.window.is_some())
                    .and_then(|n| n.instr)
                    .is_some_and(|n| tail_relu_of(head_out.va, head_out.elems, n));
                if relu {
                    candidates.push((None, true));
                }
            }
            _ => {}
        }

        for (add, relu) in candidates {
            let n_tails = add.is_some() as usize + relu as usize;
            let tail_idx: Vec<usize> = survivors[si + 1..si + 1 + n_tails].to_vec();
            if !verify_chain(prog, &jobs, &elided, hi, &tail_idx, add.as_ref(), head_out) {
                continue;
            }
            let kind = OpKind::fused(head_kind, add.is_some(), relu)
                .expect("candidate kinds are fusable by construction");
            let extra_cost_us: u64 = tail_idx.iter().map(|&t| jobs[t].cost_us as u64).sum();
            let d = FusedDirective {
                head: head_kind,
                head_out_va: head_out.va,
                head_len: head_out.elems,
                tail_add: add,
                tail_relu: relu,
                extra_cost_us,
                kind,
            };
            instrs_fused += d.instrs_eliminated();
            bytes_not_materialized += d.bytes_not_materialized();
            directives.push((head.desc_va, d));
            for &t in &tail_idx {
                consumed[t] = true;
                elided[t] = true;
            }
            break;
        }
    }

    // Collect the elided windows; every elided job matched one.
    let mut windows: Vec<(usize, usize)> = (0..jobs.len())
        .filter(|&i| elided[i])
        .filter_map(|i| jobs[i].window)
        .collect();
    windows.sort_unstable();
    // Windows of distinct jobs can never share steps in a well-formed
    // recording; a crafted stream that makes them overlap (or hides a
    // metastate delta inside one) gets no fusion at all.
    let overlapping = windows.windows(2).any(|w| w[1].0 < w[0].1);
    let delta_inside = prog
        .deltas
        .iter()
        .any(|d| windows.iter().any(|&(s, e)| d.event >= s && d.event < e));
    if overlapping || delta_inside {
        return FusionPlan::default();
    }

    let steps_elided: u64 = windows.iter().map(|&(s, e)| (e - s) as u64).sum();
    let chains_fused = directives.len() as u32;
    let jobs_elided = consumed.iter().filter(|&&c| c).count() as u32 + copies_elided;
    directives.sort_by_key(|e| e.0);
    FusionPlan {
        directives,
        elided: windows,
        summary: FusionSummary {
            chains_fused,
            instrs_fused,
            copies_elided,
            jobs_elided,
            steps_elided,
            bytes_not_materialized,
        },
    }
}

/// Verifies a structural chain against the R7 dataflow facts: the moved
/// tail accesses must not race any metastate delta inside the fused
/// window, and (when an `add` leaves the intermediate unmaterialized) the
/// intermediate must be dead — invisible to every later event — exactly
/// as rule R7's interval analysis sees it.
fn verify_chain(
    prog: &IrProgram,
    jobs: &[Job],
    elided: &[bool],
    head_idx: usize,
    tail_idx: &[usize],
    add: Option<&TailAdd>,
    head_out: &Operand,
) -> bool {
    let head_event = jobs[head_idx].event;
    let last_event = tail_idx
        .iter()
        .map(|&t| jobs[t].event)
        .max()
        .unwrap_or(head_event);

    // Every tail operand (read or write) is touched at head time instead
    // of tail time; a delta landing inside the fused window on any of
    // those bytes would observe — or produce — different bytes.
    let moved: Vec<(u64, u64)> = tail_idx
        .iter()
        .filter_map(|&t| jobs[t].instr)
        .flat_map(|i| i.operands.iter().flat_map(runs_as_ranges))
        .collect();
    for d in &prog.deltas {
        if d.event <= head_event || d.event > last_event {
            continue;
        }
        let dr = (d.pa, d.pa + d.len as u64);
        if moved.iter().any(|&m| ranges_intersect(m, dr).is_some()) {
            return false;
        }
    }

    // Without an absorbed add the head's buffer holds its final bytes
    // from the head's own window onward; nothing else moved.
    let Some(_) = add else { return true };

    // The intermediate X is never written in the fused execution: prove
    // no later event can observe the difference.
    let x_runs: Vec<(u64, u64)> = runs_as_ranges(head_out).collect();
    let mut slots = vec![prog.input.range(), prog.output.range()];
    slots.extend(prog.weights.iter().map(|w| w.range()));
    for &x in &x_runs {
        if slots.iter().any(|&s| ranges_intersect(x, s).is_some()) {
            return false;
        }
    }

    // Forward scan after the head: deltas XOR against live bytes (value-
    // dependent), reads observe them; both are only safe over bytes some
    // later write has already re-defined identically in both executions.
    let mut covered = IntervalSet::new();
    let check = |ranges: &mut dyn Iterator<Item = (u64, u64)>, covered: &IntervalSet| -> bool {
        for r in ranges {
            for &x in &x_runs {
                if let Some((s, e)) = ranges_intersect(r, x) {
                    if !covered.covers(s, e) {
                        return false;
                    }
                }
            }
        }
        true
    };
    let mut di = prog.deltas.partition_point(|d| d.event <= head_event);
    let later_jobs = jobs
        .iter()
        .enumerate()
        .filter(|&(i, j)| j.event > last_event && !elided[i] && !tail_idx.contains(&i));
    for (_, j) in later_jobs {
        while di < prog.deltas.len() && prog.deltas[di].event < j.event {
            let d = &prog.deltas[di];
            if !check(&mut std::iter::once((d.pa, d.pa + d.len as u64)), &covered) {
                return false;
            }
            di += 1;
        }
        // An opaque job after the chain could touch anything.
        let Some(instr) = j.instr else { return false };
        let mut reads = instr
            .operands
            .iter()
            .filter(|o| o.dir == Dir::Read)
            .flat_map(runs_as_ranges);
        if !check(&mut reads, &covered) {
            return false;
        }
        for w in instr.operands.iter().filter(|o| o.dir == Dir::Write) {
            for r in runs_as_ranges(w) {
                for &x in &x_runs {
                    if let Some((s, e)) = ranges_intersect(r, x) {
                        covered.insert(s, e);
                    }
                }
            }
        }
    }
    while di < prog.deltas.len() {
        let d = &prog.deltas[di];
        if !check(&mut std::iter::once((d.pa, d.pa + d.len as u64)), &covered) {
            return false;
        }
        di += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CostSummary, DeltaLift, JobChain, LiftedDesc, RegClass, SlotDesc};
    use crate::shadow::WalkSummary;
    use grt_gpu::{ConvParams, JobDescriptor, JobStatus};
    use std::rc::Rc;

    // Synthetic operand arena, well away from the data slots.
    const X: u64 = 0x10_0000; // head output (the fusion intermediate)
    const Y: u64 = 0x20_0000; // tail add's other operand
    const Z: u64 = 0x30_0000;
    const O1: u64 = 0x40_0000;
    const O2: u64 = 0x50_0000;
    const LEN: u64 = 64;

    fn w(offset: u32, value: u32) -> Step {
        Step::RegWrite {
            offset,
            value,
            class: RegClass::classify(offset),
            root_latched: None,
        }
    }

    fn r(offset: u32) -> Step {
        Step::RegRead {
            offset,
            value: 0,
            verify: false,
        }
    }

    fn poll(reg: u32, mask: u32, cond: u8, delay_us: u32) -> Step {
        Step::Poll {
            reg,
            mask,
            cond,
            cmp: 0,
            max_iters: 100,
            delay_us,
        }
    }

    fn pm_metrics(steps: &mut Vec<Step>) {
        for off in [
            gc::GPU_STATUS,
            gc::SHADER_READY_LO,
            gc::L2_READY_LO,
            gc::TILER_READY_LO,
            gc::SHADER_PWRTRANS_LO,
            jc::JOB_IRQ_JS_STATE,
        ] {
            steps.push(r(off));
        }
    }

    fn cache_clean(steps: &mut Vec<Step>) {
        steps.push(w(gc::GPU_COMMAND, gc::CMD_CLEAN_INV_CACHES));
        steps.push(poll(
            gc::GPU_IRQ_RAWSTAT,
            gc::IRQ_CLEAN_CACHES_COMPLETED,
            1,
            5,
        ));
        steps.push(w(gc::GPU_IRQ_CLEAR, gc::IRQ_CLEAN_CACHES_COMPLETED));
    }

    fn mmu_flush(steps: &mut Vec<Step>) {
        let base = mc::as_base(0);
        steps.push(w(base + mc::AS_LOCKADDR_LO, 0));
        steps.push(w(base + mc::AS_LOCKADDR_HI, 0));
        for cmd in [mc::AS_CMD_LOCK, mc::AS_CMD_FLUSH_MEM, mc::AS_CMD_UNLOCK] {
            steps.push(w(base + mc::AS_COMMAND, cmd));
            steps.push(poll(base + mc::AS_STATUS, mc::AS_STATUS_ACTIVE, 0, 2));
        }
    }

    /// Emits one complete kbase dialog window (quiescent power domains);
    /// returns the `JS_COMMAND = START` event index.
    fn push_window(steps: &mut Vec<Step>) -> usize {
        pm_metrics(steps);
        cache_clean(steps);
        mmu_flush(steps);
        steps.push(r(gc::LATEST_FLUSH));
        let sb = jc::slot_base(0);
        for off in [
            jc::JS_FLUSH_ID_NEXT,
            jc::JS_HEAD_LO,
            jc::JS_HEAD_HI,
            jc::JS_AFFINITY_LO,
            jc::JS_AFFINITY_HI,
            jc::JS_CONFIG,
        ] {
            steps.push(w(sb + off, 0));
        }
        let event = steps.len();
        steps.push(w(sb + jc::JS_COMMAND, jc::JS_CMD_START));
        steps.push(Step::WaitIrq { line: 1 });
        steps.push(r(jc::JOB_IRQ_STATUS));
        steps.push(w(jc::JOB_IRQ_CLEAR, 1));
        steps.push(r(sb + jc::JS_STATUS));
        mmu_flush(steps);
        cache_clean(steps);
        pm_metrics(steps);
        steps.push(r(gc::SHADER_PWRTRANS_LO));
        steps.push(r(gc::L2_PWRTRANS_LO));
        event
    }

    fn rd(name: &'static str, va: u64, elems: u64) -> Operand {
        Operand {
            name,
            dir: Dir::Read,
            va,
            elems,
            pa_runs: vec![(va, elems * 4)],
            unmapped: 0,
        }
    }

    fn wr(va: u64, elems: u64) -> Operand {
        Operand {
            name: "out",
            dir: Dir::Write,
            va,
            elems,
            pa_runs: vec![(va, elems * 4)],
            unmapped: 0,
        }
    }

    fn conv_instr(out_va: u64) -> SemInstr {
        let p = ConvParams {
            in_c: 1,
            in_h: 8,
            in_w: 8,
            out_c: 1,
            k: 1,
            stride: 1,
            pad: 0,
        };
        SemInstr {
            op: ShaderOp::Conv2d {
                in_va: Z + 0x1000,
                w_va: Z + 0x2000,
                b_va: 0,
                out_va,
                p,
                tiles: 1,
            },
            kind: OpKind::Conv2d,
            macs: LEN,
            operands: vec![
                rd("in", Z + 0x1000, LEN),
                rd("w", Z + 0x2000, 1),
                wr(out_va, LEN),
            ],
        }
    }

    fn add_instr(a_va: u64, b_va: u64, out_va: u64) -> SemInstr {
        SemInstr {
            op: ShaderOp::Add {
                a_va,
                b_va,
                out_va,
                len: LEN as u32,
            },
            kind: OpKind::Add,
            macs: LEN,
            operands: vec![rd("a", a_va, LEN), rd("b", b_va, LEN), wr(out_va, LEN)],
        }
    }

    fn relu_instr(va: u64) -> SemInstr {
        SemInstr {
            op: ShaderOp::Relu {
                in_va: va,
                out_va: va,
                len: LEN as u32,
            },
            kind: OpKind::Relu,
            macs: LEN,
            operands: vec![rd("in", va, LEN), wr(va, LEN)],
        }
    }

    fn copy_instr(src: u64, dst: u64) -> SemInstr {
        SemInstr {
            op: ShaderOp::Copy {
                src_va: src,
                dst_va: dst,
                len: LEN as u32,
            },
            kind: OpKind::Copy,
            macs: 0,
            operands: vec![rd("src", src, LEN), wr(dst, LEN)],
        }
    }

    fn chain(event: usize, desc_va: u64, instr: SemInstr) -> JobChain {
        JobChain {
            event,
            slot: 0,
            asn: 0,
            head_va: desc_va,
            root: 0,
            walk: Rc::new(WalkSummary::default()),
            walk_fresh: false,
            descs: vec![LiftedDesc {
                va: desc_va,
                desc: JobDescriptor {
                    shader_va: desc_va + 0x100,
                    n_instrs: 1,
                    cost_us: 10,
                    next_va: 0,
                    status: JobStatus::Done,
                },
                instrs: vec![instr],
                anomalies: vec![],
            }],
            anomalies: vec![],
        }
    }

    fn program(steps: Vec<Step>, jobs: Vec<JobChain>) -> IrProgram {
        IrProgram {
            workload: "t".into(),
            gpu_id: 0x60A0_0001,
            input: SlotDesc {
                pa: 0x1000,
                len_elems: 16,
            },
            output: SlotDesc {
                pa: 0x2000,
                len_elems: 16,
            },
            weights: vec![],
            steps,
            deltas: vec![],
            jobs,
            cost: CostSummary::default(),
        }
    }

    /// Emits `instrs.len()` back-to-back dialog windows and the matching
    /// job chains.
    fn windows(instrs: Vec<SemInstr>) -> IrProgram {
        let mut steps = Vec::new();
        let mut jobs = Vec::new();
        for (i, instr) in instrs.into_iter().enumerate() {
            let event = push_window(&mut steps);
            jobs.push(chain(event, 0x7_0000 + i as u64 * 0x100, instr));
        }
        program(steps, jobs)
    }

    #[test]
    fn conv_add_relu_chain_fuses() {
        let prog = windows(vec![conv_instr(X), add_instr(X, Y, O1), relu_instr(O1)]);
        let plan = analyze(&prog);
        assert_eq!(plan.summary.chains_fused, 1);
        assert_eq!(plan.summary.instrs_fused, 2);
        assert_eq!(plan.summary.jobs_elided, 2);
        assert_eq!(plan.summary.bytes_not_materialized, LEN * 4);
        assert_eq!(plan.elided.len(), 2);
        let (_, d) = &plan.directives[0];
        assert_eq!(d.kind, OpKind::FusedConvAddRelu);
        let add = d.tail_add.as_ref().unwrap();
        assert_eq!(add.other_va, Y);
        assert_eq!(add.out_va, O1);
        assert!(add.interm_first);
        assert!(d.tail_relu);
        assert_eq!(d.extra_cost_us, 20);
    }

    #[test]
    fn conv_relu_in_place_fuses_without_materialization_savings() {
        let prog = windows(vec![conv_instr(X), relu_instr(X)]);
        let plan = analyze(&prog);
        assert_eq!(plan.summary.chains_fused, 1);
        assert_eq!(plan.summary.bytes_not_materialized, 0);
        assert_eq!(plan.directives[0].1.kind, OpKind::FusedConvRelu);
    }

    /// The satellite case ISSUE 10 pins: an intermediate consumed *twice*
    /// must block add-fusion — the fused execution would never write X,
    /// and the second consumer would read stale bytes.
    #[test]
    fn live_intermediate_blocks_fusion() {
        let blocked = windows(vec![
            conv_instr(X),
            add_instr(X, Y, O1),
            add_instr(X, Z, O2), // second consumer keeps X live
        ]);
        let plan = analyze(&blocked);
        assert_eq!(plan.summary.chains_fused, 0, "live X must block the chain");
        assert!(plan.directives.is_empty());

        // Control: the same shape with the later add reading Z twice
        // instead of X leaves the intermediate dead, and the chain fuses.
        let free = windows(vec![
            conv_instr(X),
            add_instr(X, Y, O1),
            add_instr(Z, Z, O2),
        ]);
        let plan = analyze(&free);
        assert_eq!(plan.summary.chains_fused, 1);
        assert_eq!(plan.directives[0].1.kind, OpKind::FusedConvAdd);
    }

    #[test]
    fn identity_copies_elide_and_matmul_add_fuses() {
        let mut instrs = vec![copy_instr(Z, Z)];
        instrs.push(SemInstr {
            op: ShaderOp::MatMul {
                a_va: Z + 0x1000,
                b_va: Z + 0x2000,
                bias_va: 0,
                out_va: X,
                m: 1,
                k: LEN as u32,
                n: LEN as u32,
                tiles: 1,
            },
            kind: OpKind::MatMul,
            macs: LEN * LEN,
            operands: vec![
                rd("a", Z + 0x1000, LEN),
                rd("b", Z + 0x2000, LEN * LEN),
                wr(X, LEN),
            ],
        });
        instrs.push(add_instr(Y, X, O1)); // interm as second operand
        let prog = windows(instrs);
        let plan = analyze(&prog);
        assert_eq!(plan.summary.copies_elided, 1);
        assert_eq!(plan.summary.chains_fused, 1);
        assert_eq!(plan.summary.jobs_elided, 2);
        let (_, d) = &plan.directives[0];
        assert_eq!(d.kind, OpKind::FusedMatMulAdd);
        assert!(!d.tail_add.as_ref().unwrap().interm_first);
        assert_eq!(plan.elided.len(), 2);
        // Elided windows are sorted, disjoint step ranges.
        assert!(plan.elided[0].1 <= plan.elided[1].0);
    }

    /// A metastate delta landing between the head and the tail touches
    /// bytes whose access the fusion would move in time: no fusion.
    #[test]
    fn delta_inside_the_fused_window_blocks_fusion() {
        let mut steps = Vec::new();
        let e0 = push_window(&mut steps);
        let delta_event = steps.len();
        steps.push(Step::LoadDelta { index: 0 });
        let e1 = push_window(&mut steps);
        let mut prog = program(
            steps,
            vec![
                chain(e0, 0x7_0000, conv_instr(X)),
                chain(e1, 0x7_0100, add_instr(X, Y, O1)),
            ],
        );
        prog.deltas.push(DeltaLift {
            event: delta_event,
            pa: Y, // overlaps the add's moved read
            len: 16,
            wire_len: 8,
            parsed: None,
        });
        let plan = analyze(&prog);
        assert_eq!(plan.summary.chains_fused, 0);

        // Control: the same delta on unrelated bytes doesn't block.
        prog.deltas[0].pa = Z + 0x8000;
        let plan = analyze(&prog);
        assert_eq!(plan.summary.chains_fused, 1);
    }

    /// A job whose dialog deviates from the kbase shape (an extra read
    /// spliced into the window) must not elide or fuse.
    #[test]
    fn deviant_dialog_window_blocks_fusion() {
        let mut steps = Vec::new();
        let e0 = push_window(&mut steps);
        // Corrupt the head's submit window: swap one pm-metrics read.
        steps[e0 - 24] = r(gc::L2_PWRTRANS_LO);
        let e1 = push_window(&mut steps);
        let prog = program(
            steps,
            vec![
                chain(e0, 0x7_0000, conv_instr(X)),
                chain(e1, 0x7_0100, relu_instr(X)),
            ],
        );
        let plan = analyze(&prog);
        assert_eq!(plan.summary.chains_fused, 0);
        assert_eq!(plan.summary.copies_elided, 0);
    }

    /// An intermediate aliasing a data slot is never fused away: the
    /// output slot must hold real bytes after replay.
    #[test]
    fn slot_aliasing_intermediate_blocks_fusion() {
        let mut prog = windows(vec![conv_instr(X), add_instr(X, Y, O1)]);
        prog.output = SlotDesc {
            pa: X,
            len_elems: LEN as u32,
        };
        let plan = analyze(&prog);
        assert_eq!(plan.summary.chains_fused, 0);
    }
}
