//! Deterministic textual rendering of an [`IrProgram`].
//!
//! The output is a pure function of the recording bytes and the lift
//! parameters: no timestamps, no addresses-of, no hash-map iteration.
//! CI double-emits the dump for the golden corpus and diffs the two
//! copies to pin that property.

use crate::program::{Dir, IrProgram, Operand, RegClass, Step};
use std::fmt::Write as _;

/// Renders the program as stable, line-oriented text.
pub fn dump(prog: &IrProgram) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "ir-dump v1");
    let _ = writeln!(s, "workload: {}", prog.workload);
    let _ = writeln!(s, "gpu_id: {:#x}", prog.gpu_id);
    let _ = writeln!(
        s,
        "input: pa={:#x} elems={}",
        prog.input.pa, prog.input.len_elems
    );
    let _ = writeln!(
        s,
        "output: pa={:#x} elems={}",
        prog.output.pa, prog.output.len_elems
    );
    for (i, w) in prog.weights.iter().enumerate() {
        let _ = writeln!(s, "weight[{i}]: pa={:#x} elems={}", w.pa, w.len_elems);
    }
    let _ = writeln!(
        s,
        "cost: macs={} poll_iters={} chains={} instrs={} layers={}",
        prog.cost.total_macs,
        prog.cost.raw_poll_iters,
        prog.cost.job_chains,
        prog.cost.instrs,
        prog.cost.layers
    );

    let _ = writeln!(s, "steps: {}", prog.steps.len());
    for (i, step) in prog.steps.iter().enumerate() {
        let _ = write!(s, "  [{i}] ");
        match *step {
            Step::BeginLayer { index } => {
                let _ = writeln!(s, "layer {index}");
            }
            Step::RegWrite {
                offset,
                value,
                class,
                root_latched,
            } => {
                let _ = write!(s, "wr {offset:#06x} <- {value:#010x} {}", class_tag(class));
                if let Some(root) = root_latched {
                    let _ = write!(s, " latch-root={root:#x}");
                }
                let _ = writeln!(s);
            }
            Step::RegRead {
                offset,
                value,
                verify,
            } => {
                let _ = writeln!(
                    s,
                    "rd {offset:#06x} == {value:#010x}{}",
                    if verify { " verify" } else { "" }
                );
            }
            Step::Poll {
                reg,
                mask,
                cond,
                cmp,
                max_iters,
                delay_us,
            } => {
                let _ = writeln!(
                    s,
                    "poll {reg:#06x} mask={mask:#010x} cond={cond} cmp={cmp:#x} iters={max_iters} delay={delay_us}us"
                );
            }
            Step::WaitIrq { line } => {
                let _ = writeln!(s, "irq line={line}");
            }
            Step::LoadDelta { index } => {
                let _ = writeln!(s, "delta #{index}");
            }
        }
    }

    let _ = writeln!(s, "deltas: {}", prog.deltas.len());
    for (i, d) in prog.deltas.iter().enumerate() {
        let _ = write!(
            s,
            "  [{i}] @{} pa={:#x} len={} wire={}",
            d.event, d.pa, d.len, d.wire_len
        );
        match &d.parsed {
            Some(p) => {
                let _ = writeln!(
                    s,
                    " pages={} changed={} ok",
                    p.pages().len(),
                    p.changed_bytes()
                );
            }
            None => {
                let _ = writeln!(s, " corrupt");
            }
        }
    }

    let _ = writeln!(s, "chains: {}", prog.jobs.len());
    for (ci, chain) in prog.jobs.iter().enumerate() {
        let _ = writeln!(
            s,
            "  chain[{ci}] @{} slot={} asn={} head={:#x} root={:#x} leaves={} tables={}{}{}",
            chain.event,
            chain.slot,
            chain.asn,
            chain.head_va,
            chain.root,
            chain.walk.leaves.len(),
            chain.walk.tables.len(),
            if chain.walk.truncated {
                " truncated"
            } else {
                ""
            },
            if chain.walk_fresh { " fresh-walk" } else { "" },
        );
        for a in &chain.anomalies {
            let _ = writeln!(s, "    anomaly: {a}");
        }
        for (di, desc) in chain.descs.iter().enumerate() {
            let _ = writeln!(
                s,
                "    desc[{di}] @va={:#x} shader={:#x} n_instrs={} cost_us={} next={:#x}",
                desc.va,
                desc.desc.shader_va,
                desc.desc.n_instrs,
                desc.desc.cost_us,
                desc.desc.next_va
            );
            for a in &desc.anomalies {
                let _ = writeln!(s, "      anomaly: {a}");
            }
            for (ii, instr) in desc.instrs.iter().enumerate() {
                let _ = write!(s, "      [{ii}] {} macs={}", instr.kind.name(), instr.macs);
                for opnd in &instr.operands {
                    let _ = write!(s, " {}", operand_tag(opnd));
                }
                let _ = writeln!(s);
            }
        }
    }
    s
}

fn class_tag(class: RegClass) -> String {
    match class {
        RegClass::GpuCtrl => "gpu".to_owned(),
        RegClass::JobSlot { slot, reg } => format!("js{slot}+{reg:#x}"),
        RegClass::AsWindow { asn, reg } => format!("as{asn}+{reg:#x}"),
    }
}

fn operand_tag(o: &Operand) -> String {
    let dir = match o.dir {
        Dir::Read => "r",
        Dir::Write => "w",
    };
    let mut tag = format!("{}:{dir}:va={:#x}:elems={}", o.name, o.va, o.elems);
    for (i, &(pa, len)) in o.pa_runs.iter().take(2).enumerate() {
        let _ = write!(tag, ":run{i}={pa:#x}+{len:#x}");
    }
    if o.pa_runs.len() > 2 {
        let _ = write!(tag, ":+{}runs", o.pa_runs.len() - 2);
    }
    if o.unmapped > 0 {
        let _ = write!(tag, ":unmapped={}", o.unmapped);
    }
    tag
}
