//! The typed semantics IR: what a recording *means*, lifted once.
//!
//! A recording is a straight-line program over three layers of machine
//! state — MMIO registers, carveout memory deltas, and the shader programs
//! those deltas install. The lifter (`crate::lift`) decodes all three
//! layers into the types here: every event becomes a [`Step`], every
//! `JS_COMMAND = START` becomes a [`JobChain`] whose descriptors and
//! shader instructions are fully decoded, with each instruction's operand
//! tensors resolved through the page tables the GPU would walk. Analyses
//! (grt-lint's R1–R9) and the compiled replay path both consume this IR
//! instead of re-deriving it from bytes.

use grt_compress::ParsedDelta;
use grt_gpu::job::JobDescriptor;
use grt_gpu::regs::{job_control as jc, mmu_control as mc};
use grt_gpu::shader::{OpKind, ShaderOp};
use std::fmt;
use std::rc::Rc;

use crate::shadow::WalkSummary;

/// An injected data slot: `len_elems` f32 elements at physical `pa`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotDesc {
    /// Physical base address inside the carveout.
    pub pa: u64,
    /// Length in f32 elements.
    pub len_elems: u32,
}

impl SlotDesc {
    /// Byte length of the slot.
    pub fn bytes(&self) -> u64 {
        self.len_elems as u64 * 4
    }

    /// Half-open byte range `[pa, pa + bytes)`.
    pub fn range(&self) -> (u64, u64) {
        (self.pa, self.pa + self.bytes())
    }
}

/// Which register block an MMIO offset falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegClass {
    /// GPU control / job-manager global registers (not in a window).
    GpuCtrl,
    /// Job-slot window: `(slot, register-within-window)`.
    JobSlot {
        /// Slot index (0..16).
        slot: u32,
        /// Register offset within the slot window.
        reg: u32,
    },
    /// Address-space window: `(asn, register-within-window)`.
    AsWindow {
        /// Address-space index (0..16).
        asn: u32,
        /// Register offset within the AS window.
        reg: u32,
    },
}

impl RegClass {
    /// Classifies a raw MMIO offset.
    pub fn classify(offset: u32) -> RegClass {
        if (jc::slot_base(0)..jc::slot_base(16)).contains(&offset) {
            let rel = offset - jc::slot_base(0);
            let span = jc::slot_base(1) - jc::slot_base(0);
            return RegClass::JobSlot {
                slot: rel / span,
                reg: rel % span,
            };
        }
        if (mc::as_base(0)..mc::as_base(16)).contains(&offset) {
            let rel = offset - mc::as_base(0);
            let span = mc::as_base(1) - mc::as_base(0);
            return RegClass::AsWindow {
                asn: rel / span,
                reg: rel % span,
            };
        }
        RegClass::GpuCtrl
    }
}

/// One lifted event. Steps are index-aligned with the recording's event
/// stream: `steps[i]` is the lift of `events[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Layer marker.
    BeginLayer {
        /// Recorded layer index.
        index: u32,
    },
    /// MMIO register write.
    RegWrite {
        /// Raw register offset.
        offset: u32,
        /// Value written.
        value: u32,
        /// Decoded register block.
        class: RegClass,
        /// For `AS_COMMAND = UPDATE` writes: the 64-bit root this write
        /// latched (0 = address space disabled).
        root_latched: Option<u64>,
    },
    /// MMIO register read (optionally verified on replay).
    RegRead {
        /// Raw register offset.
        offset: u32,
        /// Recorded value.
        value: u32,
        /// Whether replay compares against the recorded value.
        verify: bool,
    },
    /// Bounded status-register poll.
    Poll {
        /// Register polled.
        reg: u32,
        /// Mask applied before the comparison.
        mask: u32,
        /// Raw condition code (0 = masked-zero, 1 = non-zero, 2 = equal).
        cond: u8,
        /// Comparison value for `cond = 2`.
        cmp: u32,
        /// Recorded iteration budget.
        max_iters: u32,
        /// Delay between iterations.
        delay_us: u32,
    },
    /// Wait on an interrupt line (raw wire code).
    WaitIrq {
        /// Line code (0 = GPU, 1 = Job, 2 = MMU).
        line: u8,
    },
    /// Metastate delta: `deltas[index]` holds the decoded payload.
    LoadDelta {
        /// Index into [`IrProgram::deltas`].
        index: u32,
    },
}

/// A decoded `LoadMemDelta` event.
#[derive(Debug)]
pub struct DeltaLift {
    /// Event index in the recording.
    pub event: usize,
    /// Target physical address.
    pub pa: u64,
    /// Decoded (post-apply) region length in bytes.
    pub len: u32,
    /// Wire size of the packed delta.
    pub wire_len: usize,
    /// The parsed delta, or `None` when the packed bytes are corrupt.
    pub parsed: Option<ParsedDelta>,
}

/// Direction of a tensor operand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// The instruction reads this operand.
    Read,
    /// The instruction writes this operand.
    Write,
}

/// One tensor operand of a shader instruction, resolved through the page
/// tables live at job-submission time.
#[derive(Debug, Clone)]
pub struct Operand {
    /// Role of the operand ("in", "w", "bias", "out", ...).
    pub name: &'static str,
    /// Access direction.
    pub dir: Dir,
    /// GPU virtual base address.
    pub va: u64,
    /// Length in f32 elements.
    pub elems: u64,
    /// Physical page runs `(pa, len)` backing the operand, merged across
    /// physically contiguous pages.
    pub pa_runs: Vec<(u64, u64)>,
    /// Bytes with no usable mapping (absent, or lacking the required
    /// read/write permission).
    pub unmapped: u64,
}

impl Operand {
    /// Byte length of the operand.
    pub fn bytes(&self) -> u64 {
        self.elems * 4
    }

    /// Half-open VA byte range.
    pub fn va_range(&self) -> (u64, u64) {
        (self.va, self.va.saturating_add(self.bytes()))
    }
}

/// A decoded shader instruction with typed operands.
#[derive(Debug, Clone)]
pub struct SemInstr {
    /// The decoded instruction.
    pub op: ShaderOp,
    /// Its kind (stable stat/display key).
    pub kind: OpKind,
    /// MAC cost (0 when the shape is malformed).
    pub macs: u64,
    /// Operands in a fixed per-kind order (inputs first, output last).
    pub operands: Vec<Operand>,
}

impl SemInstr {
    /// True when this is a self-copy (`src == dst`): the JIT's staging
    /// and tiling no-ops, exempt from dataflow checks.
    pub fn is_identity_copy(&self) -> bool {
        matches!(self.op, ShaderOp::Copy { src_va, dst_va, .. } if src_va == dst_va)
    }
}

/// One job descriptor of a chain, with its shader program decoded.
#[derive(Debug)]
pub struct LiftedDesc {
    /// VA the descriptor was fetched from.
    pub va: u64,
    /// The decoded descriptor.
    pub desc: JobDescriptor,
    /// Decoded shader instructions (empty when the program is unliftable).
    pub instrs: Vec<SemInstr>,
    /// Everything that stopped or degraded the lift of this descriptor.
    pub anomalies: Vec<Anomaly>,
}

/// A `JS_COMMAND = START` submission with its full descriptor chain.
#[derive(Debug)]
pub struct JobChain {
    /// Event index of the starting register write.
    pub event: usize,
    /// Job slot the chain was started on.
    pub slot: u32,
    /// Address space selected by the slot's `JS_CONFIG`.
    pub asn: u32,
    /// Chain head VA from the slot's `JS_HEAD` registers.
    pub head_va: u64,
    /// Page-table root latched on the AS (0 = none).
    pub root: u64,
    /// The page-table walk live at submission (shared across chains that
    /// observe the same root and memory version).
    pub walk: Rc<WalkSummary>,
    /// True when this chain triggered a fresh walk (cache miss): walk-level
    /// checks need to run once per fresh walk, like the replayer's own
    /// walker cache.
    pub walk_fresh: bool,
    /// Descriptors in chain order.
    pub descs: Vec<LiftedDesc>,
    /// Chain-level lift anomalies.
    pub anomalies: Vec<Anomaly>,
}

/// A structural defect found while lifting: the recording encodes
/// something the replayer could not execute (or that would be unsafe /
/// unbounded to analyze). Surfaced by grt-lint as R8 errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anomaly {
    /// A descriptor VA has no readable mapping.
    DescUnmapped {
        /// The descriptor VA.
        va: u64,
    },
    /// Descriptor bytes carry the wrong magic.
    DescBadMagic {
        /// The descriptor VA.
        va: u64,
    },
    /// The chain exceeded the hardware's hop bound without terminating.
    ChainTooLong {
        /// The bound.
        max: usize,
    },
    /// The program's instruction count exceeds the analyzable bound.
    ProgramTooLarge {
        /// Claimed instruction count.
        n_instrs: u32,
        /// The bound.
        max: u32,
    },
    /// Part of the shader program has no readable mapping.
    ShaderUnmapped {
        /// Program base VA.
        va: u64,
        /// Unmapped byte count.
        bytes: u64,
    },
    /// An instruction slot decodes to no known opcode.
    BadOpcode {
        /// Instruction index within the program.
        instr: usize,
        /// The opcode word.
        opcode: u32,
    },
    /// An instruction's shape parameters are malformed (zero stride,
    /// kernel larger than the padded input, size overflow, ...).
    BadShape {
        /// Instruction index within the program.
        instr: usize,
        /// Human-readable defect.
        detail: String,
    },
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anomaly::DescUnmapped { va } => {
                write!(f, "job descriptor at va {va:#x} has no readable mapping")
            }
            Anomaly::DescBadMagic { va } => {
                write!(f, "job descriptor at va {va:#x} has a bad magic tag")
            }
            Anomaly::ChainTooLong { max } => {
                write!(f, "job chain exceeds the {max}-descriptor hop bound")
            }
            Anomaly::ProgramTooLarge { n_instrs, max } => {
                write!(
                    f,
                    "shader program claims {n_instrs} instructions (analyzable bound {max})"
                )
            }
            Anomaly::ShaderUnmapped { va, bytes } => {
                write!(
                    f,
                    "shader program at va {va:#x} has {bytes} unmapped byte(s)"
                )
            }
            Anomaly::BadOpcode { instr, opcode } => {
                write!(f, "instruction {instr} has undefined opcode {opcode:#x}")
            }
            Anomaly::BadShape { instr, detail } => {
                write!(f, "instruction {instr} has a malformed shape: {detail}")
            }
        }
    }
}

/// Whole-program cost facts, computed once at lift time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSummary {
    /// Total MACs across every lifted shader instruction.
    pub total_macs: u64,
    /// Sum of recorded poll iteration budgets (uncapped).
    pub raw_poll_iters: u64,
    /// Number of job-chain submissions.
    pub job_chains: usize,
    /// Total decoded shader instructions.
    pub instrs: usize,
    /// Number of layer markers.
    pub layers: usize,
}

/// The lifted program: one recording, fully decoded.
#[derive(Debug)]
pub struct IrProgram {
    /// Workload name from the recording header.
    pub workload: String,
    /// GPU identity the recording targets.
    pub gpu_id: u32,
    /// Input slot.
    pub input: SlotDesc,
    /// Output slot.
    pub output: SlotDesc,
    /// Weight slots in stage order.
    pub weights: Vec<SlotDesc>,
    /// One step per recorded event, index-aligned.
    pub steps: Vec<Step>,
    /// Decoded metastate deltas, in event order.
    pub deltas: Vec<DeltaLift>,
    /// Job chains, in event order.
    pub jobs: Vec<JobChain>,
    /// Whole-program cost facts.
    pub cost: CostSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_decodes_windows() {
        assert_eq!(RegClass::classify(0x030), RegClass::GpuCtrl);
        assert_eq!(
            RegClass::classify(jc::slot_base(2) + jc::JS_COMMAND),
            RegClass::JobSlot {
                slot: 2,
                reg: jc::JS_COMMAND
            }
        );
        assert_eq!(
            RegClass::classify(mc::as_base(3) + mc::AS_COMMAND),
            RegClass::AsWindow {
                asn: 3,
                reg: mc::AS_COMMAND
            }
        );
        // One past the last window falls back to GpuCtrl.
        assert_eq!(RegClass::classify(jc::slot_base(16)), RegClass::GpuCtrl);
    }

    #[test]
    fn slot_ranges() {
        let s = SlotDesc {
            pa: 0x1000,
            len_elems: 8,
        };
        assert_eq!(s.bytes(), 32);
        assert_eq!(s.range(), (0x1000, 0x1020));
    }
}
