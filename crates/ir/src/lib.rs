//! grt-ir: a typed semantics IR for vetted GPU recordings.
//!
//! The paper's safety story vets a recording *before* replay; the deeper
//! the vetting, the stronger the story. This crate decodes a recording
//! once — MMIO events, metastate deltas, job descriptors, and the
//! `ShaderOp` bytecode those descriptors point at — into one analyzable
//! structure, [`program::IrProgram`]:
//!
//! * every event becomes a typed [`program::Step`];
//! * every `JS_COMMAND = START` becomes a [`program::JobChain`] whose
//!   shader instructions carry shape metadata and page-resolved operand
//!   tensors;
//! * [`dataflow`] computes the def-use relation over those operands;
//! * [`dump`] renders it all as deterministic text.
//!
//! grt-lint proves R1–R9 over this IR, and grt-core lowers
//! `CompiledRecording` from it, so the two never disagree about what the
//! bytes mean. Lifting is total: malformed input becomes
//! [`program::Anomaly`] annotations, never a lifter error.

#![warn(missing_docs)]

pub mod dataflow;
pub mod dump;
pub mod fusion;
pub mod iset;
pub mod lift;
pub mod program;
pub mod shadow;

pub use fusion::{FusionPlan, FusionSummary};
pub use lift::{lift, EventView, LiftInput};
pub use program::IrProgram;
