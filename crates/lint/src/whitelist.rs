//! The R1 register whitelist: the MMIO surface a recording may touch.
//!
//! Built programmatically from the named register map in `grt_gpu::regs`
//! and the SKU's resource counts — a job-slot or address-space window only
//! exists for slots/spaces the SKU actually has. Everything else (holes in
//! the map, windows beyond the SKU's counts) is off-limits: the real GPU
//! model ignores such accesses silently, which is exactly the kind of
//! "looks harmless, is unauditable" surface the paper's §6 verification
//! argument excludes.

use grt_gpu::regs::{gpu_control as gc, job_control as jc, mmu_control as mc};
use grt_gpu::GpuSku;

/// What a whitelisted register admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegInfo {
    /// Reads allowed.
    pub read: bool,
    /// Writes allowed.
    pub write: bool,
    /// Status-class register: read-only-idempotent *and* externally
    /// progressed, so a bounded poll on it can make progress (R3).
    pub status: bool,
}

impl RegInfo {
    const RO: RegInfo = RegInfo {
        read: true,
        write: false,
        status: false,
    };
    const WO: RegInfo = RegInfo {
        read: false,
        write: true,
        status: false,
    };
    const RW: RegInfo = RegInfo {
        read: true,
        write: true,
        status: false,
    };
    /// Read-only status register (pollable).
    const ST: RegInfo = RegInfo {
        read: true,
        write: false,
        status: true,
    };
}

/// Looks up `offset` in the SKU's MMIO map. `None` means the offset is not
/// part of the allowed surface at all.
pub fn lookup(offset: u32, sku: &GpuSku) -> Option<RegInfo> {
    // Job-slot windows: only slots the SKU has.
    if let Some((slot, reg)) = slot_window(offset) {
        if slot >= sku.job_slots {
            return None;
        }
        return slot_reg(reg);
    }
    // Address-space windows: only spaces the SKU has.
    if let Some((asn, reg)) = as_window(offset) {
        if asn >= sku.address_spaces {
            return None;
        }
        return as_reg(reg);
    }
    fixed_reg(offset)
}

/// Decomposes an offset inside the job-slot register file.
pub fn slot_window(offset: u32) -> Option<(u32, u32)> {
    let base = jc::slot_base(0);
    let end = jc::slot_base(16);
    if (base..end).contains(&offset) {
        Some(((offset - base) / 0x80, (offset - base) % 0x80))
    } else {
        None
    }
}

/// Decomposes an offset inside the address-space register file.
pub fn as_window(offset: u32) -> Option<(u32, u32)> {
    let base = mc::as_base(0);
    let end = mc::as_base(16);
    if (base..end).contains(&offset) {
        Some(((offset - base) / 0x40, (offset - base) % 0x40))
    } else {
        None
    }
}

fn slot_reg(reg: u32) -> Option<RegInfo> {
    match reg {
        r if r == jc::JS_HEAD_LO
            || r == jc::JS_HEAD_HI
            || r == jc::JS_TAIL_LO
            || r == jc::JS_TAIL_HI
            || r == jc::JS_AFFINITY_LO
            || r == jc::JS_AFFINITY_HI
            || r == jc::JS_CONFIG
            || r == jc::JS_FLUSH_ID_NEXT =>
        {
            Some(RegInfo::RW)
        }
        r if r == jc::JS_COMMAND => Some(RegInfo::WO),
        r if r == jc::JS_STATUS => Some(RegInfo::ST),
        _ => None,
    }
}

fn as_reg(reg: u32) -> Option<RegInfo> {
    match reg {
        r if r == mc::AS_TRANSTAB_LO
            || r == mc::AS_TRANSTAB_HI
            || r == mc::AS_MEMATTR_LO
            || r == mc::AS_MEMATTR_HI
            || r == mc::AS_LOCKADDR_LO
            || r == mc::AS_LOCKADDR_HI =>
        {
            Some(RegInfo::RW)
        }
        r if r == mc::AS_COMMAND => Some(RegInfo::WO),
        r if r == mc::AS_FAULTSTATUS
            || r == mc::AS_FAULTADDRESS_LO
            || r == mc::AS_FAULTADDRESS_HI =>
        {
            Some(RegInfo::RO)
        }
        r if r == mc::AS_STATUS => Some(RegInfo::ST),
        _ => None,
    }
}

fn fixed_reg(offset: u32) -> Option<RegInfo> {
    // Probe-class identity and feature words (read during discovery).
    const PROBE: &[u32] = &[
        gc::GPU_ID,
        gc::L2_FEATURES,
        gc::CORE_FEATURES,
        gc::TILER_FEATURES,
        gc::MEM_FEATURES,
        gc::MMU_FEATURES,
        gc::AS_PRESENT,
        gc::JS_PRESENT,
        gc::THREAD_MAX_THREADS,
        gc::THREAD_MAX_WORKGROUP_SIZE,
        gc::THREAD_MAX_BARRIER_SIZE,
        gc::THREAD_FEATURES,
        gc::SHADER_PRESENT_LO,
        gc::SHADER_PRESENT_HI,
        gc::TILER_PRESENT_LO,
        gc::L2_PRESENT_LO,
        gc::LATEST_FLUSH,
    ];
    if PROBE.contains(&offset) {
        return Some(RegInfo::RO);
    }
    // Texture feature words 0-3 and the 16 per-slot feature words.
    if (gc::TEXTURE_FEATURES_0..gc::TEXTURE_FEATURES_0 + 16).contains(&offset)
        && offset.is_multiple_of(4)
    {
        return Some(RegInfo::RO);
    }
    if (gc::JS0_FEATURES..gc::JS0_FEATURES + 64).contains(&offset) && offset.is_multiple_of(4) {
        return Some(RegInfo::RO);
    }
    match offset {
        // Interrupt plumbing.
        o if o == gc::GPU_IRQ_RAWSTAT || o == gc::GPU_IRQ_STATUS => Some(RegInfo::ST),
        o if o == gc::GPU_IRQ_CLEAR => Some(RegInfo::WO),
        o if o == gc::GPU_IRQ_MASK => Some(RegInfo::RW),
        o if o == jc::JOB_IRQ_RAWSTAT || o == jc::JOB_IRQ_STATUS || o == jc::JOB_IRQ_JS_STATE => {
            Some(RegInfo::ST)
        }
        o if o == jc::JOB_IRQ_CLEAR => Some(RegInfo::WO),
        o if o == jc::JOB_IRQ_MASK => Some(RegInfo::RW),
        o if o == mc::MMU_IRQ_RAWSTAT || o == mc::MMU_IRQ_STATUS => Some(RegInfo::ST),
        o if o == mc::MMU_IRQ_CLEAR => Some(RegInfo::WO),
        o if o == mc::MMU_IRQ_MASK => Some(RegInfo::RW),
        // Command/status.
        o if o == gc::GPU_COMMAND => Some(RegInfo::WO),
        o if o == gc::GPU_STATUS => Some(RegInfo::ST),
        // Performance counters (base address is value-constrained in the
        // pass: the GPU writes the dump there).
        o if o == gc::PRFCNT_BASE_LO
            || o == gc::PRFCNT_BASE_HI
            || o == gc::PRFCNT_CONFIG
            || o == gc::PRFCNT_JM_EN
            || o == gc::PRFCNT_SHADER_EN
            || o == gc::PRFCNT_TILER_EN
            || o == gc::PRFCNT_MMU_L2_EN =>
        {
            Some(RegInfo::RW)
        }
        // Power management.
        o if o == gc::SHADER_READY_LO
            || o == gc::TILER_READY_LO
            || o == gc::L2_READY_LO
            || o == gc::SHADER_PWRTRANS_LO
            || o == gc::TILER_PWRTRANS_LO
            || o == gc::L2_PWRTRANS_LO =>
        {
            Some(RegInfo::ST)
        }
        o if o == gc::SHADER_PWRON_LO
            || o == gc::TILER_PWRON_LO
            || o == gc::L2_PWRON_LO
            || o == gc::SHADER_PWROFF_LO
            || o == gc::TILER_PWROFF_LO
            || o == gc::L2_PWROFF_LO =>
        {
            Some(RegInfo::WO)
        }
        // Init-time quirk configuration (read-modify-write).
        o if o == gc::SHADER_CONFIG || o == gc::TILER_CONFIG || o == gc::L2_MMU_CONFIG => {
            Some(RegInfo::RW)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sku() -> GpuSku {
        GpuSku::mali_g71_mp8()
    }

    #[test]
    fn probe_registers_are_read_only() {
        let info = lookup(gc::GPU_ID, &sku()).unwrap();
        assert!(info.read && !info.write);
        assert!(lookup(gc::JS0_FEATURES + 60, &sku()).is_some());
        assert!(lookup(gc::JS0_FEATURES + 2, &sku()).is_none(), "unaligned");
    }

    #[test]
    fn holes_are_rejected() {
        for off in [0x03Cu32, 0x0FF, 0x500, 0x1014, 0x3000, 0xFFFF_FFF0] {
            assert!(lookup(off, &sku()).is_none(), "offset {off:#x}");
        }
    }

    #[test]
    fn slot_windows_respect_sku_count() {
        let s = sku(); // 3 job slots
        assert!(lookup(jc::slot_base(0) + jc::JS_COMMAND, &s).is_some());
        assert!(lookup(jc::slot_base(2) + jc::JS_HEAD_LO, &s).is_some());
        assert!(lookup(jc::slot_base(3) + jc::JS_COMMAND, &s).is_none());
        // Holes inside a valid slot window.
        assert!(lookup(jc::slot_base(0) + 0x30, &s).is_none());
    }

    #[test]
    fn as_windows_respect_sku_count() {
        let s = sku(); // 8 address spaces
        assert!(lookup(mc::as_base(7) + mc::AS_COMMAND, &s).is_some());
        assert!(lookup(mc::as_base(8) + mc::AS_COMMAND, &s).is_none());
        assert!(lookup(mc::as_base(0) + 0x2C, &s).is_none());
    }

    #[test]
    fn status_class_is_pollable_only() {
        assert!(lookup(gc::GPU_IRQ_RAWSTAT, &sku()).unwrap().status);
        assert!(lookup(gc::SHADER_READY_LO, &sku()).unwrap().status);
        assert!(!lookup(gc::GPU_ID, &sku()).unwrap().status);
        assert!(!lookup(gc::GPU_COMMAND, &sku()).unwrap().status);
    }
}
