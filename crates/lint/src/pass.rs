//! The forward abstract-interpretation pass over a recording's event
//! stream, plus the header checkers.
//!
//! The abstract domain tracks exactly the machine state the safety rules
//! need and nothing more: a sparse shadow of carveout memory (for the R2
//! page-table walk), the staged/latched `AS_TRANSTAB` roots and per-slot
//! `JS_CONFIG` values, an abstract job-queue length (R5), and a pending
//! counter per interrupt line (R3). One pass, event order, no fixpoints —
//! recordings are straight-line programs.

use crate::report::{Diagnostic, LintReport, Rule, Severity};
use crate::shadow::{walk, ShadowMem};
use crate::whitelist;
use crate::LintConfig;
use grt_compress::DeltaCodec;
use grt_core::recording::{Event, Recording};
use grt_gpu::regs::{gpu_control as gc, job_control as jc, mmu_control as mc};
use grt_gpu::{GpuSku, PAGE_SIZE};
use grt_ml::NetworkSpec;
use std::collections::BTreeSet;

/// Interrupt-line indices (wire codes from `recording::irq_line_code`).
const LINE_GPU: usize = 0;
const LINE_JOB: usize = 1;
const LINE_MMU: usize = 2;

/// `GPU_COMMAND` values that are defined by the register model.
const GPU_COMMANDS: &[u32] = &[
    gc::CMD_NOP,
    gc::CMD_SOFT_RESET,
    gc::CMD_HARD_RESET,
    gc::CMD_PRFCNT_CLEAR,
    gc::CMD_PRFCNT_SAMPLE,
    gc::CMD_CLEAN_CACHES,
    gc::CMD_CLEAN_INV_CACHES,
];

/// `GPU_COMMAND` values that raise the GPU interrupt line when they
/// complete (reset, counter sample, cache maintenance).
const GPU_IRQ_RAISERS: &[u32] = &[
    gc::CMD_SOFT_RESET,
    gc::CMD_HARD_RESET,
    gc::CMD_PRFCNT_SAMPLE,
    gc::CMD_CLEAN_CACHES,
    gc::CMD_CLEAN_INV_CACHES,
];

pub(crate) struct Pass<'a> {
    rec: &'a Recording,
    sku: &'a GpuSku,
    spec: Option<&'a NetworkSpec>,
    cfg: &'a LintConfig,
    codec: DeltaCodec,
    shadow: ShadowMem,
    diags: Vec<Diagnostic>,
    /// Staged (written but not latched) TRANSTAB halves, per AS.
    transtab_lo: [u32; 16],
    transtab_hi: [u32; 16],
    /// Roots latched by `AS_COMMAND = UPDATE`; `0` means disabled.
    latched_root: [u64; 16],
    /// Last value written to each slot's `JS_CONFIG`.
    slot_config: [u32; 16],
    prfcnt_lo: u32,
    prfcnt_hi: u32,
    /// Abstract job-queue length (R5: never exceeds 1).
    queue: u32,
    /// Pending-interrupt counters per line (R3 raiser discipline).
    pending: [u32; 3],
    /// Next expected `BeginLayer` index (R6).
    next_layer: u32,
    /// Bumped on every shadow mutation; keys the walk cache.
    mem_version: u64,
    /// `(root, mem_version)` of the last completed R2 walk.
    walk_cache: Option<(u64, u64)>,
}

impl<'a> Pass<'a> {
    pub(crate) fn new(
        rec: &'a Recording,
        sku: &'a GpuSku,
        spec: Option<&'a NetworkSpec>,
        cfg: &'a LintConfig,
    ) -> Self {
        Pass {
            rec,
            sku,
            spec,
            cfg,
            codec: DeltaCodec::new(PAGE_SIZE),
            shadow: ShadowMem::new(),
            diags: Vec::new(),
            transtab_lo: [0; 16],
            transtab_hi: [0; 16],
            latched_root: [0; 16],
            slot_config: [0; 16],
            prfcnt_lo: 0,
            prfcnt_hi: 0,
            queue: 0,
            pending: [0; 3],
            next_layer: 0,
            mem_version: 0,
            walk_cache: None,
        }
    }

    pub(crate) fn run(mut self) -> LintReport {
        self.check_header();
        for i in 0..self.rec.events.len() {
            // Clone is cheap for everything except LoadMemDelta, whose
            // bytes we need by reference anyway — so match on a borrow.
            let event = &self.rec.events[i];
            match *event {
                Event::BeginLayer { index } => self.on_begin_layer(i, index),
                Event::RegWrite { offset, value } => self.on_write(i, offset, value),
                Event::RegRead { offset, .. } => self.on_read(i, offset),
                Event::Poll {
                    reg,
                    cond,
                    max_iters,
                    ..
                } => self.on_poll(i, reg, cond, max_iters),
                Event::WaitIrq { line } => self.on_wait_irq(i, line),
                Event::LoadMemDelta { pa, len, ref delta } => self.on_delta(i, pa, len, delta),
            }
        }
        self.check_footer();
        LintReport {
            workload: self.rec.workload.clone(),
            gpu_id: self.rec.gpu_id,
            sku: self.sku.name.to_owned(),
            events: self.rec.events.len(),
            diagnostics: self.diags,
        }
    }

    fn diag(&mut self, rule: Rule, severity: Severity, event: Option<usize>, message: String) {
        self.diags.push(Diagnostic {
            rule,
            severity,
            event,
            message,
        });
    }

    fn error(&mut self, rule: Rule, event: usize, message: String) {
        self.diag(rule, Severity::Error, Some(event), message);
    }

    fn in_carveout(&self, pa: u64, len: u64) -> bool {
        let base = self.cfg.carveout_base;
        let end = base + self.cfg.carveout_len;
        pa >= base && pa.checked_add(len).is_some_and(|e| e <= end)
    }

    // --- header (R1 identity, R4 slots/shape) ---------------------------

    fn check_header(&mut self) {
        if self.rec.gpu_id != self.sku.gpu_id {
            self.diag(
                Rule::R1RegisterWhitelist,
                Severity::Error,
                None,
                format!(
                    "recording targets GPU {:#x} but is being vetted for {:#x} ({})",
                    self.rec.gpu_id, self.sku.gpu_id, self.sku.name
                ),
            );
        }
        // Every slot in-bounds and non-empty.
        let mut ranges: Vec<(u64, u64, String)> = Vec::new();
        let slots = [
            (self.rec.input, "input".to_owned()),
            (self.rec.output, "output".to_owned()),
        ]
        .into_iter()
        .chain(
            self.rec
                .weights
                .iter()
                .enumerate()
                .map(|(i, w)| (*w, format!("weight[{i}]"))),
        );
        for (slot, name) in slots {
            let bytes = slot.len_elems as u64 * 4;
            if slot.len_elems == 0 {
                self.diag(
                    Rule::R4SlotShape,
                    Severity::Error,
                    None,
                    format!("{name} slot is empty"),
                );
                continue;
            }
            if !self.in_carveout(slot.pa, bytes) {
                self.diag(
                    Rule::R4SlotShape,
                    Severity::Error,
                    None,
                    format!(
                        "{name} slot [{:#x}, {:#x}) leaves the protected carveout",
                        slot.pa,
                        slot.pa + bytes
                    ),
                );
            }
            ranges.push((slot.pa, slot.pa.saturating_add(bytes), name));
        }
        // Pairwise disjoint (sorted sweep).
        ranges.sort_by_key(|r| (r.0, r.1));
        for pair in ranges.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if b.0 < a.1 {
                self.diag(
                    Rule::R4SlotShape,
                    Severity::Error,
                    None,
                    format!(
                        "{} [{:#x}, {:#x}) overlaps {} [{:#x}, {:#x})",
                        a.2, a.0, a.1, b.2, b.0, b.1
                    ),
                );
            }
        }
        self.check_spec();
    }

    fn check_spec(&mut self) {
        let Some(spec) = self.spec else { return };
        if self.rec.workload != spec.name {
            self.diag(
                Rule::R4SlotShape,
                Severity::Error,
                None,
                format!(
                    "recording is for workload {:?}, spec is {:?}",
                    self.rec.workload, spec.name
                ),
            );
        }
        if self.rec.input.len_elems != spec.input_len {
            self.diag(
                Rule::R4SlotShape,
                Severity::Error,
                None,
                format!(
                    "input slot holds {} elems, spec wants {}",
                    self.rec.input.len_elems, spec.input_len
                ),
            );
        }
        if self.rec.output.len_elems != spec.output_len {
            self.diag(
                Rule::R4SlotShape,
                Severity::Error,
                None,
                format!(
                    "output slot holds {} elems, spec wants {}",
                    self.rec.output.len_elems, spec.output_len
                ),
            );
        }
        // Weight slots in layer order: weights then biases, zero-length
        // buffers omitted — the same order `workload_weights` stages.
        let mut expected: Vec<u32> = Vec::new();
        for layer in &spec.layers {
            let wl = layer.op.weight_len();
            let bl = layer.op.bias_len();
            if wl > 0 {
                expected.push(wl);
            }
            if bl > 0 {
                expected.push(bl);
            }
        }
        let got: Vec<u32> = self.rec.weights.iter().map(|w| w.len_elems).collect();
        if got != expected {
            self.diag(
                Rule::R4SlotShape,
                Severity::Error,
                None,
                format!(
                    "weight slots {got:?} do not match the spec's parameter shapes {expected:?}"
                ),
            );
        }
    }

    // --- R6 -------------------------------------------------------------

    fn on_begin_layer(&mut self, i: usize, index: u32) {
        if index != self.next_layer {
            self.error(
                Rule::R6LayerStructure,
                i,
                format!(
                    "BeginLayer {index} out of order (expected {}): layered replay would skew",
                    self.next_layer
                ),
            );
        }
        // Resynchronize on the recorded index so one bad marker doesn't
        // cascade into a diagnostic per layer.
        self.next_layer = index.saturating_add(1);
    }

    // --- R1 + write side effects ---------------------------------------

    fn on_write(&mut self, i: usize, offset: u32, value: u32) {
        let Some(info) = whitelist::lookup(offset, self.sku) else {
            self.error(
                Rule::R1RegisterWhitelist,
                i,
                format!("write of {value:#x} to non-whitelisted register {offset:#x}"),
            );
            return;
        };
        if !info.write {
            self.error(
                Rule::R1RegisterWhitelist,
                i,
                format!("write of {value:#x} to read-only register {offset:#x}"),
            );
            return;
        }
        // Write-value constraints for control registers, then abstract
        // side effects.
        if offset == gc::GPU_COMMAND {
            if !GPU_COMMANDS.contains(&value) {
                self.error(
                    Rule::R1RegisterWhitelist,
                    i,
                    format!("undefined GPU_COMMAND value {value:#x}"),
                );
                return;
            }
            if GPU_IRQ_RAISERS.contains(&value) {
                self.pending[LINE_GPU] = self.pending[LINE_GPU].saturating_add(1);
            }
            return;
        }
        if offset == gc::SHADER_PWRON_LO
            || offset == gc::TILER_PWRON_LO
            || offset == gc::L2_PWRON_LO
            || offset == gc::SHADER_PWROFF_LO
            || offset == gc::TILER_PWROFF_LO
            || offset == gc::L2_PWROFF_LO
        {
            // Power transitions complete with a GPU-line interrupt.
            self.pending[LINE_GPU] = self.pending[LINE_GPU].saturating_add(1);
            return;
        }
        if offset == gc::PRFCNT_BASE_LO || offset == gc::PRFCNT_BASE_HI {
            if offset == gc::PRFCNT_BASE_LO {
                self.prfcnt_lo = value;
            } else {
                self.prfcnt_hi = value;
            }
            let base = (self.prfcnt_hi as u64) << 32 | self.prfcnt_lo as u64;
            if base != 0 && !self.in_carveout(base, PAGE_SIZE as u64) {
                self.error(
                    Rule::R1RegisterWhitelist,
                    i,
                    format!("PRFCNT_BASE {base:#x} points the counter dump outside the carveout"),
                );
            }
            return;
        }
        if let Some((slot, reg)) = whitelist::slot_window(offset) {
            self.on_slot_write(i, slot as usize, reg, value);
            return;
        }
        if let Some((asn, reg)) = whitelist::as_window(offset) {
            self.on_as_write(i, asn as usize, reg, value);
        }
    }

    fn on_slot_write(&mut self, i: usize, slot: usize, reg: u32, value: u32) {
        if reg == jc::JS_CONFIG {
            let asn = value & 0x7;
            if asn >= self.sku.address_spaces {
                self.error(
                    Rule::R1RegisterWhitelist,
                    i,
                    format!(
                        "JS_CONFIG selects address space {asn}, SKU has {}",
                        self.sku.address_spaces
                    ),
                );
            }
            self.slot_config[slot] = value;
            return;
        }
        if reg == jc::JS_COMMAND {
            if ![
                jc::JS_CMD_NOP,
                jc::JS_CMD_START,
                jc::JS_CMD_SOFT_STOP,
                jc::JS_CMD_HARD_STOP,
            ]
            .contains(&value)
            {
                self.error(
                    Rule::R1RegisterWhitelist,
                    i,
                    format!("undefined JS_COMMAND value {value:#x} on slot {slot}"),
                );
                return;
            }
            if value == jc::JS_CMD_START {
                self.on_job_start(i, slot);
            }
        }
    }

    fn on_as_write(&mut self, i: usize, asn: usize, reg: u32, value: u32) {
        match reg {
            r if r == mc::AS_TRANSTAB_LO => self.transtab_lo[asn] = value,
            r if r == mc::AS_TRANSTAB_HI => self.transtab_hi[asn] = value,
            r if r == mc::AS_COMMAND => {
                if value > mc::AS_CMD_FLUSH_MEM {
                    self.error(
                        Rule::R1RegisterWhitelist,
                        i,
                        format!("undefined AS_COMMAND value {value:#x} on AS {asn}"),
                    );
                    return;
                }
                if value == mc::AS_CMD_UPDATE {
                    let root = (self.transtab_hi[asn] as u64) << 32 | self.transtab_lo[asn] as u64;
                    if root != 0
                        && (!self.in_carveout(root, PAGE_SIZE as u64)
                            || !root.is_multiple_of(PAGE_SIZE as u64))
                    {
                        self.error(
                            Rule::R2PageTableReachability,
                            i,
                            format!("AS {asn} latched page-table root {root:#x} outside the carveout (or unaligned)"),
                        );
                    }
                    self.latched_root[asn] = root;
                    self.walk_cache = None;
                }
            }
            _ => {}
        }
    }

    // --- R2 + R5 + R3: job submission ----------------------------------

    fn on_job_start(&mut self, i: usize, slot: usize) {
        // R5: the paper's replayer assumes the job queue never holds more
        // than one job between sync points (§5).
        self.queue += 1;
        if self.queue > 1 {
            self.error(
                Rule::R5JobQueueDiscipline,
                i,
                format!(
                    "second job started on slot {slot} while one is already in flight (queue length {})",
                    self.queue
                ),
            );
        }
        // R3: a start is what makes a Job-line wait satisfiable.
        self.pending[LINE_JOB] = self.pending[LINE_JOB].saturating_add(1);
        // R2: walk the page tables the GPU would walk for this job.
        let asn = (self.slot_config[slot] & 0x7) as usize;
        let root = self.latched_root[asn];
        if root == 0 {
            self.error(
                Rule::R2PageTableReachability,
                i,
                format!("job started on slot {slot} with no page-table root latched on AS {asn}"),
            );
            return;
        }
        if self.walk_cache == Some((root, self.mem_version)) {
            return; // Tables unchanged since the last walk.
        }
        self.walk_tables(i, asn, root);
        self.walk_cache = Some((root, self.mem_version));
    }

    fn walk_tables(&mut self, i: usize, asn: usize, root: u64) {
        let summary = walk(&self.shadow, root, self.sku.pte_quirk);
        if summary.truncated {
            self.error(
                Rule::R2PageTableReachability,
                i,
                format!("AS {asn} page-table tree is implausibly large (walk truncated)"),
            );
            return;
        }
        if summary.leaves.is_empty() {
            self.error(
                Rule::R2PageTableReachability,
                i,
                format!("AS {asn} maps no pages: the job chain cannot be fetched"),
            );
            return;
        }
        let tables: BTreeSet<u64> = summary.tables.iter().copied().collect();
        for &table_pa in &tables {
            if !self.in_carveout(table_pa, PAGE_SIZE as u64) {
                self.error(
                    Rule::R2PageTableReachability,
                    i,
                    format!("AS {asn} walks a table page at {table_pa:#x}, outside the carveout"),
                );
            }
        }
        let mut escapes = 0usize;
        let mut first_escape = None;
        let mut aliases = 0usize;
        let mut first_alias = None;
        for &(va, pa, flags) in &summary.leaves {
            if !self.in_carveout(pa, PAGE_SIZE as u64) {
                escapes += 1;
                if first_escape.is_none() {
                    first_escape = Some((va, pa));
                }
            }
            if flags.write && tables.contains(&pa) {
                aliases += 1;
                if first_alias.is_none() {
                    first_alias = Some((va, pa));
                }
            }
        }
        if let Some((va, pa)) = first_escape {
            self.error(
                Rule::R2PageTableReachability,
                i,
                format!(
                    "AS {asn} maps {escapes} page(s) outside the protected carveout (first: va {va:#x} -> pa {pa:#x})"
                ),
            );
        }
        if let Some((va, pa)) = first_alias {
            self.error(
                Rule::R2PageTableReachability,
                i,
                format!(
                    "AS {asn} maps {aliases} GPU-writable page(s) over its own translation tables (first: va {va:#x} -> pa {pa:#x}): a job could rewrite its address space"
                ),
            );
        }
    }

    // --- R1 reads -------------------------------------------------------

    fn on_read(&mut self, i: usize, offset: u32) {
        match whitelist::lookup(offset, self.sku) {
            None => self.error(
                Rule::R1RegisterWhitelist,
                i,
                format!("read of non-whitelisted register {offset:#x}"),
            ),
            Some(info) if !info.read => self.error(
                Rule::R1RegisterWhitelist,
                i,
                format!("read of write-only register {offset:#x}"),
            ),
            Some(_) => {}
        }
    }

    // --- R3 -------------------------------------------------------------

    fn on_poll(&mut self, i: usize, reg: u32, cond: u8, max_iters: u32) {
        match whitelist::lookup(reg, self.sku) {
            None => {
                self.error(
                    Rule::R1RegisterWhitelist,
                    i,
                    format!("poll of non-whitelisted register {reg:#x}"),
                );
                return;
            }
            Some(info) if !info.status => {
                self.error(
                    Rule::R3Termination,
                    i,
                    format!(
                        "poll of {reg:#x}, which is not a read-only-idempotent status register: the loop cannot make progress"
                    ),
                );
            }
            Some(_) => {}
        }
        if cond > 2 {
            self.error(
                Rule::R3Termination,
                i,
                format!("undefined poll condition code {cond}"),
            );
        }
        if max_iters == 0 {
            self.error(
                Rule::R3Termination,
                i,
                "poll with a zero iteration budget can never succeed".to_owned(),
            );
        } else if max_iters > self.cfg.poll_iter_cap {
            self.error(
                Rule::R3Termination,
                i,
                format!(
                    "poll budget {max_iters} exceeds the replayer's spin cap ({})",
                    self.cfg.poll_iter_cap
                ),
            );
        }
    }

    fn on_wait_irq(&mut self, i: usize, line: u8) {
        let idx = match line {
            0 => LINE_GPU,
            1 => LINE_JOB,
            2 => LINE_MMU,
            _ => {
                self.error(
                    Rule::R3Termination,
                    i,
                    format!("wait on undefined interrupt line {line}"),
                );
                return;
            }
        };
        if self.pending[idx] == 0 {
            let name = ["GPU", "Job", "MMU"][idx];
            self.error(
                Rule::R3Termination,
                i,
                format!(
                    "wait on the {name} interrupt line with no recorded event that can raise it: replay would hang"
                ),
            );
            return;
        }
        self.pending[idx] -= 1;
        if idx == LINE_JOB {
            // A consumed job interrupt is the sync point that drains the
            // abstract queue (R5).
            self.queue = self.queue.saturating_sub(1);
        }
    }

    // --- R2/R5: metastate sync ------------------------------------------

    fn on_delta(&mut self, i: usize, pa: u64, len: u32, delta: &[u8]) {
        if self.queue > 0 {
            self.error(
                Rule::R5JobQueueDiscipline,
                i,
                "metastate delta applied while a job is in flight: sync points must see an idle queue".to_owned(),
            );
        }
        let len = len as usize;
        if len == 0 {
            return;
        }
        if !self.in_carveout(pa, len as u64) {
            self.error(
                Rule::R2PageTableReachability,
                i,
                format!(
                    "metastate region [{pa:#x}, {:#x}) leaves the protected carveout",
                    pa as u128 + len as u128
                ),
            );
            return;
        }
        let current = self.shadow.dump_range(pa, len);
        match self.codec.decode_limited(&current, delta, len) {
            Ok(new) => {
                self.shadow.restore_range(pa, &new);
                self.mem_version += 1;
                self.check_delta_slot_overlap(i, pa, len as u64);
            }
            Err(_) => {
                self.error(
                    Rule::R2PageTableReachability,
                    i,
                    format!("metastate delta at {pa:#x} failed to decode"),
                );
            }
        }
    }

    fn check_delta_slot_overlap(&mut self, i: usize, pa: u64, len: u64) {
        let end = pa + len;
        let slots = [(self.rec.input, "input"), (self.rec.output, "output")]
            .into_iter()
            .chain(self.rec.weights.iter().map(|w| (*w, "weight")));
        for (slot, name) in slots {
            let s_end = slot.pa + slot.len_elems as u64 * 4;
            if pa < s_end && slot.pa < end {
                self.diag(
                    Rule::R4SlotShape,
                    Severity::Warning,
                    Some(i),
                    format!(
                        "metastate region [{pa:#x}, {end:#x}) overlaps the {name} slot: recorded data may mask injected data"
                    ),
                );
                return; // One warning per delta event is enough.
            }
        }
    }

    // --- stream-end invariants ------------------------------------------

    fn check_footer(&mut self) {
        if self.queue != 0 {
            self.diag(
                Rule::R5JobQueueDiscipline,
                Severity::Error,
                None,
                format!(
                    "{} job(s) still in flight at the end of the recording: the final sync point is missing",
                    self.queue
                ),
            );
        }
        if self.next_layer == 0 {
            self.diag(
                Rule::R6LayerStructure,
                Severity::Warning,
                None,
                "recording has no layer markers; layered replay degenerates to monolithic"
                    .to_owned(),
            );
        }
        if let Some(spec) = self.spec {
            if self.next_layer != 0 && self.next_layer as usize != spec.layers.len() {
                self.diag(
                    Rule::R6LayerStructure,
                    Severity::Error,
                    None,
                    format!(
                        "recording has {} layer(s), spec has {}",
                        self.next_layer,
                        spec.layers.len()
                    ),
                );
            }
        }
    }
}
